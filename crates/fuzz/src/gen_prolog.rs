//! Seeded generator for well-formed Prolog programs with a
//! generator-computed expected outcome.
//!
//! Each case is a `main/0` clause whose body is a conjunction of
//! independent *checks*, plus whichever library predicates the checks
//! call. Every check's truth value is known by construction — list
//! results are computed in Rust, arithmetic through the very
//! [`AluOp::eval`] semantics both machines share — so the oracle can
//! demand not just engine agreement but the *right* answer. Checks are
//! ground or locally deterministic on re-entry, which keeps
//! backtracking finite: a program that is expected to fail fails after
//! exhausting finitely many choice points.

use symbol_intcode::{AluOp, Outcome};

use crate::rng::Rng;

/// One generated Prolog case.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PrologCase {
    /// Parseable source text (one clause per line).
    pub source: String,
    /// The outcome the query must produce.
    pub expected: Outcome,
}

/// Library predicates, keyed in emission order. `rev` needs `app`.
const LIBS: [(&str, &str); 6] = [
    (
        "app",
        "app([], L, L).\napp([H|T], L, [H|R]) :- app(T, L, R).",
    ),
    (
        "len",
        "len([], 0).\nlen([_|T], N) :- len(T, M), N is M + 1.",
    ),
    ("mem", "mem(X, [X|_]).\nmem(X, [_|T]) :- mem(X, T)."),
    ("cmax", "cmax(X, Y, X) :- X >= Y, !.\ncmax(_, Y, Y)."),
    (
        "rev",
        "rev([], []).\nrev([H|T], R) :- rev(T, S), app(S, [H], R).",
    ),
    (
        "suml",
        "suml([], A, A).\nsuml([H|T], A, R) :- B is A + H, suml(T, B, R).",
    ),
];

fn fmt_list(xs: &[i64]) -> String {
    let items: Vec<String> = xs.iter().map(|x| x.to_string()).collect();
    format!("[{}]", items.join(","))
}

fn gen_list(rng: &mut Rng, max_len: u64) -> Vec<i64> {
    let n = rng.below(max_len + 1) as usize;
    (0..n).map(|_| rng.range_i64(0, 9)).collect()
}

/// A random arithmetic expression and its value, evaluated with the
/// shared [`AluOp::eval`] semantics (`//` truncates, `mod` floors).
/// Divisors are patched to be non-zero, so the expression always has a
/// value. Leaf magnitudes and depth keep every intermediate far from
/// `i64` overflow.
fn gen_expr(rng: &mut Rng, depth: u64) -> (String, i64) {
    if depth == 0 || rng.chance(1, 3) {
        let v = rng.range_i64(-9, 9);
        let s = if v < 0 {
            format!("({v})")
        } else {
            v.to_string()
        };
        return (s, v);
    }
    let (ls, lv) = gen_expr(rng, depth - 1);
    let (sym, op) = *rng.pick(&[
        ("+", AluOp::Add),
        ("-", AluOp::Sub),
        ("*", AluOp::Mul),
        ("//", AluOp::Div),
        ("mod", AluOp::Mod),
    ]);
    let (rs, rv) = {
        let (s, v) = gen_expr(rng, depth - 1);
        if matches!(op, AluOp::Div | AluOp::Mod) && v == 0 {
            let v = rng.range_i64(1, 5);
            (v.to_string(), v)
        } else {
            (s, v)
        }
    };
    let v = op.eval(lv, rv).expect("divisor patched non-zero");
    (format!("({ls} {sym} {rs})"), v)
}

/// One check: its goal text, the libraries it needs, and whether it is
/// built to succeed.
struct Check {
    goal: String,
    libs: &'static [&'static str],
}

fn gen_check(rng: &mut Rng, idx: usize, pass: bool) -> Check {
    let x = format!("X{idx}");
    match rng.below(10) {
        // X is E, X =:= v  (or a wrong v).
        0 | 1 => {
            let (e, v) = gen_expr(rng, 3);
            let want = if pass { v } else { v + rng.range_i64(1, 3) };
            let w = if want < 0 {
                format!("({want})")
            } else {
                want.to_string()
            };
            Check {
                goal: format!("{x} is {e}, {x} =:= {w}"),
                libs: &[],
            }
        }
        // app with the true (or padded-wrong) concatenation.
        2 => {
            let l1 = gen_list(rng, 4);
            let l2 = gen_list(rng, 4);
            let mut cat: Vec<i64> = l1.iter().chain(l2.iter()).copied().collect();
            if !pass {
                cat.push(99);
            }
            Check {
                goal: format!(
                    "app({}, {}, {})",
                    fmt_list(&l1),
                    fmt_list(&l2),
                    fmt_list(&cat)
                ),
                libs: &["app"],
            }
        }
        // len measured against the true (or off-by-one) length.
        3 => {
            let l = gen_list(rng, 5);
            let n = l.len() as i64 + if pass { 0 } else { 1 };
            Check {
                goal: format!("len({}, {x}), {x} =:= {n}", fmt_list(&l)),
                libs: &["len"],
            }
        }
        // Ground membership: an element of the list, or 42 (never in a
        // list of 0..9 digits).
        4 => {
            let mut l = gen_list(rng, 5);
            if l.is_empty() {
                l.push(rng.range_i64(0, 9));
            }
            let k = if pass { l[rng.index(l.len())] } else { 42 };
            Check {
                goal: format!("mem({k}, {})", fmt_list(&l)),
                libs: &["mem"],
            }
        }
        // Cut-guarded max.
        5 => {
            let a = rng.range_i64(0, 9);
            let b = rng.range_i64(0, 9);
            let m = a.max(b) + if pass { 0 } else { 1 };
            Check {
                goal: format!("cmax({a}, {b}, {x}), {x} =:= {m}"),
                libs: &["cmax"],
            }
        }
        // Naive reverse (quadratic: rev leans on app).
        6 => {
            let l = gen_list(rng, 5);
            let mut r: Vec<i64> = l.iter().rev().copied().collect();
            if !pass {
                r.push(99);
            }
            Check {
                goal: format!("rev({}, {})", fmt_list(&l), fmt_list(&r)),
                libs: &["app", "rev"],
            }
        }
        // Accumulator sum.
        7 => {
            let l = gen_list(rng, 5);
            let s = l.iter().sum::<i64>() + if pass { 0 } else { 1 };
            Check {
                goal: format!("suml({}, 0, {x}), {x} =:= {s}", fmt_list(&l)),
                libs: &["suml"],
            }
        }
        // Nondeterministic membership then an arithmetic filter: the
        // engine must backtrack through mem/2's choice points.
        8 => {
            let mut l = gen_list(rng, 5);
            if l.is_empty() {
                l.push(rng.range_i64(0, 9));
            }
            let k = if pass { l[rng.index(l.len())] } else { 42 };
            Check {
                goal: format!("mem({x}, {}), {x} =:= {k}", fmt_list(&l)),
                libs: &["mem"],
            }
        }
        // If-then-else (normalizes into a cut-carrying auxiliary).
        _ => {
            let a = rng.range_i64(0, 9);
            let b = rng.range_i64(0, 9);
            let truth = if a < b { 1 } else { 0 };
            let want = if pass { truth } else { 1 - truth };
            Check {
                goal: format!("({a} < {b} -> {x} = 1 ; {x} = 0), {x} =:= {want}"),
                libs: &[],
            }
        }
    }
}

/// Generates one Prolog case from `rng`. Deterministic: the same
/// stream yields the same case.
pub fn generate(rng: &mut Rng) -> PrologCase {
    let n = rng.below(3) as usize + 1;
    // One case in five is built to fail; the failing check goes last so
    // every passing check's bindings are already established when the
    // engine starts backtracking.
    let fail = rng.chance(1, 5);
    let mut goals = Vec::new();
    let mut libs: Vec<&'static str> = Vec::new();
    for i in 0..n {
        let pass = !(fail && i == n - 1);
        let c = gen_check(rng, i, pass);
        goals.push(c.goal);
        for l in c.libs {
            if !libs.contains(l) {
                libs.push(l);
            }
        }
    }
    let mut source = format!("main :- {}.\n", goals.join(", "));
    for (name, text) in LIBS {
        if libs.contains(&name) {
            source.push_str(text);
            source.push('\n');
        }
    }
    PrologCase {
        source,
        expected: if fail {
            Outcome::Failure
        } else {
            Outcome::Success
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symbol_core::Compiled;
    use symbol_intcode::emu::ExecConfig;
    use symbol_intcode::{DecodedEmulator, Layout};

    fn small_layout() -> Layout {
        Layout {
            heap_size: 1 << 14,
            env_size: 1 << 13,
            cp_size: 1 << 13,
            trail_size: 1 << 13,
            pdl_size: 1 << 10,
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&mut Rng::new(5));
        let b = generate(&mut Rng::new(5));
        assert_eq!(a, b);
    }

    #[test]
    fn generated_programs_compile_and_meet_their_expectation() {
        for seed in 0..150u64 {
            let case = generate(&mut Rng::new(seed));
            let compiled = Compiled::from_source_with_layout(&case.source, small_layout())
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{}", case.source));
            let outcome = DecodedEmulator::new(&compiled.decoded, &compiled.layout)
                .run(&ExecConfig {
                    max_steps: 2_000_000,
                })
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{}", case.source))
                .outcome;
            assert_eq!(outcome, case.expected, "seed {seed}\n{}", case.source);
        }
    }

    #[test]
    fn generated_source_survives_the_pretty_round_trip() {
        for seed in 0..50u64 {
            let case = generate(&mut Rng::new(seed));
            let p1 = symbol_prolog::parse_program(&case.source)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            let rendered = symbol_prolog::program_to_source(&p1);
            let p2 = symbol_prolog::parse_program(&rendered)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{rendered}"));
            assert_eq!(p1.num_clauses(), p2.num_clauses(), "seed {seed}");
        }
    }
}
