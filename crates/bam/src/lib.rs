//! # symbol-bam
//!
//! The BAM-style abstract machine layer of the SYMBOL evaluation
//! system: a RISC-grain instruction set ([`instr::BamInstr`]) and a
//! Prolog → BAM compiler with first-argument indexing and specialized
//! (mode-split) head unification, in the spirit of the Berkeley
//! Abstract Machine the paper builds on.
//!
//! The output of [`compile()`](crate::compile()) is consumed by `symbol-intcode`, which
//! expands each BAM instruction into IntCode operations.
//!
//! ```
//! use symbol_prolog::parse_program;
//! use symbol_bam::compile;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = parse_program("app([], L, L). app([X|T], L, [X|R]) :- app(T, L, R).")?;
//! let bam = compile(&program)?;
//! assert_eq!(bam.predicates().count(), 1);
//! # Ok(())
//! # }
//! ```

pub mod compile;
pub mod error;
pub mod instr;
pub mod pretty;
pub mod program;
pub mod vars;

pub use compile::index::CompiledPred;
pub use error::CompileError;
pub use instr::{
    ArithOp, BamInstr, BamLabel, Cmp, Const, Functor, Operand, Slot, TagClass, TypeTest,
};
pub use program::BamProgram;

/// Compiles a normalized Prolog program to BAM code.
///
/// # Errors
///
/// See [`compile::compile_program`].
pub fn compile(program: &symbol_prolog::Program) -> Result<BamProgram, CompileError> {
    compile_with_events(program, &symbol_obs::Events::silent())
}

/// [`compile()`] with compiler diagnostics emitted to `events` instead of
/// any output stream — the library never prints; the caller decides
/// whether events are collected, echoed or dropped.
///
/// # Errors
///
/// See [`compile::compile_program`].
pub fn compile_with_events(
    program: &symbol_prolog::Program,
    events: &symbol_obs::Events,
) -> Result<BamProgram, CompileError> {
    let bam = match compile::compile_program(program) {
        Ok(b) => b,
        Err(e) => {
            events.emit_with(symbol_obs::Level::Error, "bam::compile", || {
                format!("compilation failed: {e}")
            });
            return Err(e);
        }
    };
    events.emit_with(symbol_obs::Level::Info, "bam::compile", || {
        let preds = bam.predicates().count();
        let instrs: usize = bam.predicates().map(|p| p.code.len()).sum();
        format!("compiled {preds} predicates to {instrs} BAM instructions")
    });
    if events.enabled(symbol_obs::Level::Debug) {
        for p in bam.predicates() {
            events.emit_with(symbol_obs::Level::Debug, "bam::compile", || {
                format!(
                    "{}: {} instructions",
                    program.symbols().name(p.id.name),
                    p.code.len()
                )
            });
        }
    }
    Ok(bam)
}
