//! Regenerates every table and figure of the paper from scratch:
//! compiles the sixteen Aquarius benchmarks, profiles them on the
//! sequential emulator, compacts them for every machine configuration,
//! re-runs them on the validating VLIW simulator, and prints the
//! reports with the paper's published numbers alongside.
//!
//! Usage:
//!   tables                 # everything
//!   tables fig2|fig3|fig4|fig6|table1|table2|table3|table4|table5|growth|util|csv

use symbol_core::experiments::{measure_all, reports};

fn main() {
    let which: Vec<String> = std::env::args().skip(1).collect();
    eprintln!("measuring 16 benchmarks across 9 machine configurations...");
    let results = match measure_all() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("measurement failed: {e}");
            std::process::exit(1);
        }
    };
    if which.is_empty() {
        println!("{}", reports::full_report(&results));
        return;
    }
    for w in which {
        let out = match w.as_str() {
            "fig2" => reports::fig2_mix(&results),
            "fig3" => reports::fig3_amdahl(&results),
            "fig4" => reports::fig4_histogram(&results),
            "fig6" => reports::fig6_chart(&results),
            "table1" => reports::table1_compaction(&results),
            "table2" => reports::table2_predictability(&results),
            "table3" => reports::table3_units(&results),
            "table4" => reports::table4_absolute(&results),
            "table5" => reports::table5_speedups(&results),
            "growth" => reports::code_growth(&results),
            "util" => reports::utilization(&results),
            "csv" => reports::csv(&results),
            other => format!("unknown report: {other}"),
        };
        println!("{out}\n");
    }
}
