//! Register allocation round-trip: allocated code must compute the
//! same answers in the same cycles, within the physical budget.

use symbol_compactor::{compact, pressure, regalloc, CompactMode, TracePolicy};
use symbol_intcode::{Emulator, ExecConfig, Layout, Outcome};
use symbol_prolog::PredId;
use symbol_vliw::{MachineConfig, SimConfig, SimOutcome, VliwSim};

fn check(src: &str, budget: usize) {
    let program = symbol_prolog::parse_program(src).expect("parse");
    let bam = symbol_bam::compile(&program).expect("compile");
    let main = PredId::new(program.symbols().lookup("main").expect("main"), 0);
    let layout = Layout {
        heap_size: 1 << 16,
        env_size: 1 << 14,
        cp_size: 1 << 14,
        trail_size: 1 << 14,
        pdl_size: 1 << 12,
    };
    let ici = symbol_intcode::translate(&bam, main, &layout).expect("translate");
    let run = Emulator::new(&ici, &layout)
        .run(&ExecConfig::default())
        .expect("sequential");
    let want = match run.outcome {
        Outcome::Success => SimOutcome::Success,
        Outcome::Failure => SimOutcome::Failure,
    };

    let machine = MachineConfig::units(3);
    let compacted = compact(
        &ici,
        &run.stats,
        &machine,
        CompactMode::TraceSchedule,
        &TracePolicy::default(),
    );
    let before = VliwSim::new(&compacted.program, machine, &layout)
        .run(&SimConfig::default())
        .expect("pre-allocation run");

    let (allocated, used) =
        regalloc::allocate(&compacted.program, budget).expect("allocates within budget");
    assert!(used <= budget);

    // allocated code: same answer, same cycle count (renaming cannot
    // change the schedule), and pressure within the physical pool
    let after = VliwSim::new(&allocated, machine, &layout)
        .run(&SimConfig::default())
        .expect("post-allocation run");
    assert_eq!(after.outcome, want);
    assert_eq!(after.cycles, before.cycles, "allocation must not retime");

    let p = pressure::measure(&allocated);
    assert!(
        p.temps_used <= budget,
        "allocated program touches {} temps",
        p.temps_used
    );
}

#[test]
fn nreverse_allocates_into_32_registers() {
    check(
        "main :- nrev([1,2,3,4,5,6,7,8], R), R = [8,7,6,5,4,3,2,1].
         nrev([], []).
         nrev([H|T], R) :- nrev(T, RT), app(RT, [H], R).
         app([], L, L).
         app([X|T], L, [X|R]) :- app(T, L, R).",
        32,
    );
}

#[test]
fn backtracking_search_allocates() {
    check(
        "main :- perm([1,2,3], P), P = [3,2,1].
         perm([], []).
         perm(L, [X|P]) :- sel(X, L, R), perm(R, P).
         sel(X, [X|T], T).
         sel(X, [Y|T], [Y|R]) :- sel(X, T, R).",
        32,
    );
}

#[test]
fn arithmetic_allocates() {
    check(
        "main :- fib(10, F), F = 55.
         fib(0, 0). fib(1, 1).
         fib(N, F) :- N > 1, A is N - 1, B is N - 2,
                      fib(A, FA), fib(B, FB), F is FA + FB.",
        32,
    );
}

#[test]
fn impossible_budget_reports_requirement() {
    let program = symbol_prolog::parse_program(
        "main :- nrev([1,2,3,4], R), R = [4,3,2,1].
         nrev([], []).
         nrev([H|T], R) :- nrev(T, RT), app(RT, [H], R).
         app([], L, L).
         app([X|T], L, [X|R]) :- app(T, L, R).",
    )
    .unwrap();
    let bam = symbol_bam::compile(&program).unwrap();
    let main = PredId::new(program.symbols().lookup("main").unwrap(), 0);
    let layout = Layout {
        heap_size: 1 << 14,
        env_size: 1 << 12,
        cp_size: 1 << 12,
        trail_size: 1 << 12,
        pdl_size: 1 << 10,
    };
    let ici = symbol_intcode::translate(&bam, main, &layout).unwrap();
    let run = Emulator::new(&ici, &layout)
        .run(&ExecConfig::default())
        .unwrap();
    let machine = MachineConfig::units(3);
    let compacted = compact(
        &ici,
        &run.stats,
        &machine,
        CompactMode::TraceSchedule,
        &TracePolicy::default(),
    );
    let err = regalloc::allocate(&compacted.program, 2).unwrap_err();
    assert!(err.required > 2);
    assert_eq!(err.budget, 2);
}
