//! Quick calibration sweep: per-benchmark cycles for the sequential
//! model, the BAM model and 1–5 unit trace-scheduled VLIWs.

use symbol_compactor::{sequential_cycles, try_compact, CompactMode, SeqDurations, TracePolicy};
use symbol_core::benchmarks;
use symbol_core::pipeline::Compiled;
use symbol_vliw::{MachineConfig, SimConfig, VliwSim};

fn main() {
    println!(
        "{:<10} {:>10} {:>7} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6}  {:>5} {:>5}",
        "bench", "seq", "bam", "bbU", "trU", "u1", "u2", "u3", "u5", "tlen", "grow"
    );
    for b in benchmarks::ALL {
        let c = Compiled::from_source(b.source).expect("compile");
        let run = c.run_sequential().expect("run");
        let seq = sequential_cycles(&c.ici, &run.stats, &SeqDurations::default());

        let sim = |mode, machine: MachineConfig| {
            let comp = try_compact(&c.ici, &run.stats, &machine, mode, &TracePolicy::default())
                .expect("schedule verifies");
            let r = VliwSim::new(&comp.program, machine, &c.layout)
                .run(&SimConfig::default())
                .expect("sim");
            (
                r.cycles,
                comp.stats.avg_region_len,
                comp.stats.code_growth(),
            )
        };
        let (bam, _, _) = sim(CompactMode::BamGroups, MachineConfig::bam());
        let (bbu, _, _) = sim(CompactMode::BasicBlock, MachineConfig::unbounded());
        let (tru, _, _) = sim(CompactMode::TraceSchedule, MachineConfig::unbounded());
        let mut tr = Vec::new();
        let mut tlen = 0.0;
        let mut grow = 0.0;
        for u in [1usize, 2, 3, 5] {
            let (cyc, l, g) = sim(CompactMode::TraceSchedule, MachineConfig::units(u));
            tr.push(cyc);
            tlen = l;
            grow = g;
        }
        println!(
            "{:<10} {:>10} {:>7.2} {:>6.2} {:>6.2} {:>6.2} {:>6.2} {:>6.2} {:>6.2}  {:>5.1} {:>5.2}",
            b.name,
            seq,
            seq as f64 / bam as f64,
            seq as f64 / bbu as f64,
            seq as f64 / tru as f64,
            seq as f64 / tr[0] as f64,
            seq as f64 / tr[1] as f64,
            seq as f64 / tr[2] as f64,
            seq as f64 / tr[3] as f64,
            tlen,
            grow
        );
    }
}
