//! A small assembler for building IntCode programs with symbolic
//! labels, fresh registers, and BAM-instruction group markers.

use std::collections::HashMap;

use crate::layout::reg;
use crate::op::{Label, Op, R};
use crate::program::IciProgram;
use crate::word::Tag;

/// Incremental IntCode builder.
///
/// Labels are allocated with [`Asm::fresh_label`] and attached to the
/// next emitted op with [`Asm::bind`]; fresh virtual registers come
/// from [`Asm::fresh_reg`]; [`Asm::next_group`] tags
/// emitted ops with the BAM instruction they expand (the compaction
/// barrier of the BAM cost model).
#[derive(Debug, Default)]
pub struct Asm {
    ops: Vec<Op>,
    groups: Vec<u32>,
    label_at: HashMap<Label, usize>,
    next_label: u32,
    next_reg: u32,
    group: u32,
    next_group: u32,
}

impl Asm {
    /// Creates an empty assembler.
    pub fn new() -> Self {
        Asm {
            ops: Vec::new(),
            groups: Vec::new(),
            label_at: HashMap::new(),
            next_label: 0,
            next_reg: reg::FIRST_TEMP,
            group: 0,
            next_group: 1,
        }
    }

    /// Allocates a fresh label (not yet bound to an address).
    pub fn fresh_label(&mut self) -> Label {
        let l = Label(self.next_label);
        self.next_label += 1;
        l
    }

    /// Allocates a fresh virtual register.
    pub fn fresh_reg(&mut self) -> R {
        let r = R(self.next_reg);
        self.next_reg += 1;
        r
    }

    /// Binds `label` to the address of the next emitted op.
    ///
    /// # Panics
    ///
    /// Panics if the label was already bound.
    pub fn bind(&mut self, label: Label) {
        let prev = self.label_at.insert(label, self.ops.len());
        assert!(prev.is_none(), "label {label} bound twice");
    }

    /// Starts a new BAM-instruction group for subsequently emitted ops.
    pub fn next_group(&mut self) {
        self.group = self.next_group;
        self.next_group += 1;
    }

    /// Emits one op.
    pub fn emit(&mut self, op: Op) {
        self.ops.push(op);
        self.groups.push(self.group);
    }

    /// Number of ops emitted so far.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether nothing has been emitted.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Emits the canonical in-place dereference loop on `r`.
    ///
    /// ```text
    ///   btag r != Ref -> done
    /// loop:
    ///   t = mem[r]
    ///   if t == r (word) -> done      ; self-reference = unbound
    ///   r = t
    ///   btag r == Ref -> loop
    /// done:
    /// ```
    pub fn deref_in_place(&mut self, r: R) {
        let done = self.fresh_label();
        let lp = self.fresh_label();
        let t = self.fresh_reg();
        self.emit(Op::BrTag {
            a: r,
            tag: Tag::Ref,
            eq: false,
            t: done,
        });
        self.bind(lp);
        self.emit(Op::Ld {
            d: t,
            base: r,
            off: 0,
        });
        self.emit(Op::BrWEq {
            a: t,
            b: r,
            eq: true,
            t: done,
        });
        self.emit(Op::Mv { d: r, s: t });
        self.emit(Op::BrTag {
            a: r,
            tag: Tag::Ref,
            eq: true,
            t: lp,
        });
        self.bind(done);
    }

    /// Emits the conditional-trail binding sequence `mem[v] = w`.
    ///
    /// The store is trailed when the bound cell is older than the
    /// newest choice point (heap cells below `HB`, environment cells
    /// below `EB`).
    pub fn bind_cell(&mut self, v: R, w: R, env_base: i64) {
        use crate::op::{Cond, Operand};
        let ltrail = self.fresh_label();
        let ldone = self.fresh_label();
        self.emit(Op::St {
            s: w,
            base: v,
            off: 0,
        });
        self.emit(Op::Br {
            cond: Cond::Lt,
            a: v,
            b: Operand::Reg(reg::HB),
            t: ltrail,
        });
        self.emit(Op::Br {
            cond: Cond::Lt,
            a: v,
            b: Operand::Imm(env_base),
            t: ldone,
        });
        self.emit(Op::Br {
            cond: Cond::Ge,
            a: v,
            b: Operand::Reg(reg::EB),
            t: ldone,
        });
        self.bind(ltrail);
        self.emit(Op::St {
            s: v,
            base: reg::TR,
            off: 0,
        });
        self.emit(Op::Alu {
            op: crate::op::AluOp::Add,
            d: reg::TR,
            a: reg::TR,
            b: Operand::Imm(1),
        });
        self.bind(ldone);
    }

    /// Finalizes into an [`IciProgram`] entered at `entry`.
    ///
    /// # Panics
    ///
    /// Panics if any referenced label is unbound or out of range.
    pub fn finish(self, entry: Label) -> IciProgram {
        IciProgram::new(self.ops, self.groups, self.label_at, self.next_label, entry)
    }

    /// Finalizes into an [`IciProgram`] entered at `entry`, surfacing
    /// validation failures as a [`ProgramError`](crate::program::ProgramError)
    /// instead of panicking —
    /// the form the serving tier's panic-free pipeline uses.
    ///
    /// # Errors
    ///
    /// Returns the first structural defect [`IciProgram::try_new`]
    /// finds.
    pub fn try_finish(self, entry: Label) -> Result<IciProgram, crate::program::ProgramError> {
        IciProgram::try_new(self.ops, self.groups, self.label_at, self.next_label, entry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{Cond, Operand};

    #[test]
    fn labels_bind_to_next_op() {
        let mut a = Asm::new();
        let l = a.fresh_label();
        a.emit(Op::Mv { d: R(40), s: R(41) });
        a.bind(l);
        a.emit(Op::Halt { success: true });
        let p = a.finish(l);
        assert_eq!(p.label_addr(l), 1);
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn double_bind_panics() {
        let mut a = Asm::new();
        let l = a.fresh_label();
        a.bind(l);
        a.bind(l);
    }

    #[test]
    fn fresh_regs_are_distinct_and_above_fixed() {
        let mut a = Asm::new();
        let r1 = a.fresh_reg();
        let r2 = a.fresh_reg();
        assert_ne!(r1, r2);
        assert!(r1.0 >= reg::FIRST_TEMP);
    }

    #[test]
    fn groups_tag_ops() {
        let mut a = Asm::new();
        a.next_group();
        a.emit(Op::Mv { d: R(40), s: R(41) });
        a.next_group();
        a.emit(Op::Mv { d: R(42), s: R(41) });
        let entry = a.fresh_label();
        a.bind(entry);
        a.emit(Op::Halt { success: true });
        let p = a.finish(entry);
        assert_ne!(p.groups()[0], p.groups()[1]);
    }

    #[test]
    fn deref_sequence_shape() {
        let mut a = Asm::new();
        let entry = a.fresh_label();
        a.bind(entry);
        a.deref_in_place(R(50));
        a.emit(Op::Halt { success: true });
        let p = a.finish(entry);
        // 1 guard branch + 4-op loop + halt
        assert_eq!(p.ops().len(), 6);
    }

    #[test]
    fn bind_cell_sequence_has_one_store_plus_trail() {
        let mut a = Asm::new();
        let entry = a.fresh_label();
        a.bind(entry);
        a.bind_cell(R(50), R(51), 1000);
        a.emit(Op::Br {
            cond: Cond::Eq,
            a: R(50),
            b: Operand::Imm(0),
            t: entry,
        });
        a.emit(Op::Halt { success: true });
        let p = a.finish(entry);
        let stores = p
            .ops()
            .iter()
            .filter(|o| matches!(o, Op::St { .. }))
            .count();
        assert_eq!(stores, 2);
    }
}
