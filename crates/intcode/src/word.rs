//! Tagged machine words.
//!
//! The SYMBOL datapath (paper §5.2) keeps registers and memory words
//! split into independently addressable fields: a small *tag* and a
//! *value*. We model the tag as an enum and the value as an `i64`
//! (addresses, integers, atom ids, packed functors or code labels,
//! depending on the tag).

use std::fmt;

/// Word tags.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Tag {
    /// Reference: `val` is the address of a cell. An unbound variable
    /// is a `Ref` cell pointing at itself.
    Ref,
    /// Integer: `val` is the number.
    Int,
    /// Atom: `val` is the interned atom id.
    Atm,
    /// List: `val` is the heap address of a two-word cons cell.
    Lst,
    /// Structure: `val` is the heap address of a functor word followed
    /// by the arguments.
    Str,
    /// Functor word: `val` packs `name << 8 | arity`.
    Fun,
    /// Code label: `val` is a program label id (stable across
    /// rescheduling, resolved to an address by each machine).
    Cod,
}

impl fmt::Display for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Tag::Ref => "ref",
            Tag::Int => "int",
            Tag::Atm => "atm",
            Tag::Lst => "lst",
            Tag::Str => "str",
            Tag::Fun => "fun",
            Tag::Cod => "cod",
        };
        f.write_str(s)
    }
}

/// A tagged word: the unit of registers and data memory.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct Word {
    /// Tag field.
    pub tag: Tag,
    /// Value field.
    pub val: i64,
}

impl Word {
    /// An integer word.
    pub fn int(v: i64) -> Word {
        Word {
            tag: Tag::Int,
            val: v,
        }
    }

    /// An atom word.
    pub fn atom(id: u32) -> Word {
        Word {
            tag: Tag::Atm,
            val: id as i64,
        }
    }

    /// A self-reference (unbound variable) cell for address `addr`.
    pub fn unbound(addr: i64) -> Word {
        Word {
            tag: Tag::Ref,
            val: addr,
        }
    }

    /// A reference to `addr`.
    pub fn reference(addr: i64) -> Word {
        Word {
            tag: Tag::Ref,
            val: addr,
        }
    }

    /// A code-label word.
    pub fn code(label: u32) -> Word {
        Word {
            tag: Tag::Cod,
            val: label as i64,
        }
    }
}

impl fmt::Display for Word {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{}:{}>", self.tag, self.val)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_tags() {
        assert_eq!(Word::int(5).tag, Tag::Int);
        assert_eq!(Word::atom(3).tag, Tag::Atm);
        assert_eq!(Word::unbound(10).tag, Tag::Ref);
        assert_eq!(Word::code(2).tag, Tag::Cod);
    }

    #[test]
    fn unbound_points_at_itself_by_construction() {
        let w = Word::unbound(42);
        assert_eq!(w.val, 42);
    }

    #[test]
    fn display_round_trip_shape() {
        assert_eq!(Word::int(-3).to_string(), "<int:-3>");
    }
}
