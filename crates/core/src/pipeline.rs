//! The evaluation-system pipeline (paper Figure 1): Prolog source →
//! BAM → IntCode → sequential emulation, producing the compiled
//! artifacts and statistics every experiment consumes.

use std::error::Error;
use std::fmt;

use symbol_bam::BamProgram;
use symbol_intcode::decode::{DecodedEmulator, DecodedProgram};
use symbol_intcode::emu::{Emulator, ExecConfig, Outcome, RunResult};
use symbol_intcode::layout::Layout;
use symbol_intcode::program::IciProgram;
use symbol_intcode::translate::{self, TranslateError};
use symbol_obs::Registry;
use symbol_prolog::{ParseError, PredId, Program};

/// Any error the pipeline can produce.
#[derive(Debug)]
pub enum PipelineError {
    /// Front-end syntax error.
    Parse(ParseError),
    /// BAM compilation error.
    Compile(symbol_bam::CompileError),
    /// ICI translation error.
    Translate(TranslateError),
    /// The program has no `main/0`.
    NoMain,
    /// The emulator hit a machine error.
    Exec(symbol_intcode::emu::ExecError),
    /// The VLIW simulator hit a machine-model violation or fault.
    Sim(symbol_vliw::SimError),
    /// The compactor produced a schedule that failed static
    /// verification. On the serving tier this must surface as an error
    /// value — the legacy `compact` panic is unreachable from here.
    Schedule(symbol_compactor::Violation),
    /// A rebuilt program failed [`IciProgram::try_new`] validation.
    Program(symbol_intcode::ProgramError),
    /// A compiled artifact was truncated, corrupt, or inconsistent.
    Artifact(symbol_intcode::WireError),
    /// The query failed or produced a wrong (self-checked) answer.
    WrongAnswer,
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Parse(e) => write!(f, "parse: {e}"),
            PipelineError::Compile(e) => write!(f, "compile: {e}"),
            PipelineError::Translate(e) => write!(f, "translate: {e}"),
            PipelineError::NoMain => write!(f, "program defines no main/0"),
            PipelineError::Exec(e) => write!(f, "execution: {e}"),
            PipelineError::Sim(e) => write!(f, "simulation: {e}"),
            PipelineError::Schedule(v) => write!(f, "schedule verification: {v}"),
            PipelineError::Program(e) => write!(f, "program validation: {e}"),
            PipelineError::Artifact(e) => write!(f, "artifact: {e}"),
            PipelineError::WrongAnswer => {
                write!(f, "query failed its self-check (wrong answer)")
            }
        }
    }
}

impl Error for PipelineError {}

impl From<ParseError> for PipelineError {
    fn from(e: ParseError) -> Self {
        PipelineError::Parse(e)
    }
}

impl From<symbol_bam::CompileError> for PipelineError {
    fn from(e: symbol_bam::CompileError) -> Self {
        PipelineError::Compile(e)
    }
}

impl From<TranslateError> for PipelineError {
    fn from(e: TranslateError) -> Self {
        PipelineError::Translate(e)
    }
}

impl From<symbol_intcode::emu::ExecError> for PipelineError {
    fn from(e: symbol_intcode::emu::ExecError) -> Self {
        PipelineError::Exec(e)
    }
}

impl From<symbol_vliw::SimError> for PipelineError {
    fn from(e: symbol_vliw::SimError) -> Self {
        PipelineError::Sim(e)
    }
}

impl From<symbol_compactor::Violation> for PipelineError {
    fn from(v: symbol_compactor::Violation) -> Self {
        PipelineError::Schedule(v)
    }
}

impl From<symbol_intcode::ProgramError> for PipelineError {
    fn from(e: symbol_intcode::ProgramError) -> Self {
        PipelineError::Program(e)
    }
}

impl From<symbol_intcode::WireError> for PipelineError {
    fn from(e: symbol_intcode::WireError) -> Self {
        PipelineError::Artifact(e)
    }
}

/// The front-end representations of a compilation: only produced when
/// the pipeline actually ran from source. A [`Compiled`] restored from
/// a serialized artifact has none — the whole point of the artifact
/// path is skipping the front end.
#[derive(Debug)]
pub struct FrontEnd {
    /// The normalized source program.
    pub program: Program,
    /// BAM code.
    pub bam: BamProgram,
}

/// A fully compiled benchmark: the executable representations plus —
/// when compiled from source — the front-end forms kept for
/// inspection.
#[derive(Debug)]
pub struct Compiled {
    /// Front-end representations (`None` on the artifact cold path,
    /// see [`Compiled::from_artifact`]).
    pub front: Option<FrontEnd>,
    /// Executable IntCode.
    pub ici: IciProgram,
    /// The IntCode pre-decoded into the flat micro-op form — the
    /// default execution engine of [`Compiled::run_sequential`].
    pub decoded: DecodedProgram,
    /// Memory layout the code was generated for.
    pub layout: Layout,
}

impl Compiled {
    /// Compiles Prolog source down to IntCode with the default layout.
    ///
    /// # Errors
    ///
    /// Returns a [`PipelineError`] for syntax errors, unsupported
    /// goals, undefined predicates or a missing `main/0`.
    pub fn from_source(src: &str) -> Result<Self, PipelineError> {
        Self::from_source_with_layout(src, Layout::default())
    }

    /// Compiles with an explicit memory layout.
    ///
    /// # Errors
    ///
    /// See [`Compiled::from_source`].
    pub fn from_source_with_layout(src: &str, layout: Layout) -> Result<Self, PipelineError> {
        Self::from_source_obs(src, layout, &Registry::disabled(), "")
    }

    /// [`Compiled::from_source_with_layout`] with every compilation
    /// stage observed through `obs`: RAII spans (`parse`, `compile`,
    /// `translate`, `decode`) labelled with `bench`, and the front-end
    /// crates' diagnostics routed to the registry's event sink. With
    /// [`Registry::disabled`] this is exactly the plain path.
    ///
    /// # Errors
    ///
    /// See [`Compiled::from_source`].
    pub fn from_source_obs(
        src: &str,
        layout: Layout,
        obs: &Registry,
        bench: &str,
    ) -> Result<Self, PipelineError> {
        let labels: &[(&str, &str)] = &[("bench", bench)];
        let events = obs.events();
        let program = {
            let _span = obs.span("parse", labels);
            symbol_prolog::parse_program_with_events(src, &events)?
        };
        let bam = {
            let _span = obs.span("compile", labels);
            symbol_bam::compile_with_events(&program, &events)?
        };
        let main_atom = program
            .symbols()
            .lookup("main")
            .ok_or(PipelineError::NoMain)?;
        let main = PredId::new(main_atom, 0);
        if program.predicate(main).is_none() {
            return Err(PipelineError::NoMain);
        }
        let ici = {
            let _span = obs.span("translate", labels);
            translate::translate_with_events(&bam, main, &layout, &events)?
        };
        let decoded = {
            let _span = obs.span("decode", labels);
            DecodedProgram::new(&ici)
        };
        Ok(Compiled {
            front: Some(FrontEnd { program, bam }),
            ici,
            decoded,
            layout,
        })
    }

    /// Assembles a [`Compiled`] from deserialized artifact parts,
    /// skipping the whole front end (parse → compile → translate →
    /// decode). This is the cold-start path of the `symbol-serve`
    /// artifact cache: the caller deserializes the IntCode and its
    /// pre-decoded form from disk, and this constructor only
    /// cross-checks that the two are consistent.
    ///
    /// # Errors
    ///
    /// [`PipelineError::Artifact`] when the decoded program is not
    /// parallel to the IntCode (a corrupt or mismatched artifact).
    pub fn from_artifact(
        ici: IciProgram,
        decoded: DecodedProgram,
        layout: Layout,
    ) -> Result<Self, PipelineError> {
        if decoded.len() != ici.len() {
            return Err(PipelineError::Artifact(
                symbol_intcode::WireError::Corrupt {
                    what: "decoded/intcode consistency",
                },
            ));
        }
        Ok(Compiled {
            front: None,
            ici,
            decoded,
            layout,
        })
    }

    /// Runs the sequential emulation on the pre-decoded micro-op
    /// engine (the default path), requiring the query's self-check to
    /// succeed.
    ///
    /// # Errors
    ///
    /// [`PipelineError::WrongAnswer`] if the query fails;
    /// [`PipelineError::Exec`] on machine errors or step-limit
    /// exhaustion.
    pub fn run_sequential(&self) -> Result<RunResult, PipelineError> {
        let result =
            DecodedEmulator::new(&self.decoded, &self.layout).run(&ExecConfig::default())?;
        if result.outcome != Outcome::Success {
            return Err(PipelineError::WrongAnswer);
        }
        Ok(result)
    }

    /// [`Compiled::run_sequential`] wrapped in an `emulate` span and
    /// step/op accounting on `obs`. The run itself is the identical
    /// unprofiled engine — observability changes nothing about the
    /// result.
    ///
    /// # Errors
    ///
    /// See [`Compiled::run_sequential`].
    pub fn run_sequential_obs(
        &self,
        obs: &Registry,
        bench: &str,
    ) -> Result<RunResult, PipelineError> {
        let labels: &[(&str, &str)] = &[("bench", bench)];
        let result = {
            let _span = obs.span("emulate", labels);
            self.run_sequential()?
        };
        obs.counter("emulator.steps", labels).add(result.steps);
        Ok(result)
    }

    /// [`Compiled::run_sequential`] on the legacy op-at-a-time
    /// interpreter — kept for differential testing against the decoded
    /// engine.
    ///
    /// # Errors
    ///
    /// See [`Compiled::run_sequential`].
    pub fn run_sequential_legacy(&self) -> Result<RunResult, PipelineError> {
        let result = Emulator::new(&self.ici, &self.layout).run(&ExecConfig::default())?;
        if result.outcome != Outcome::Success {
            return Err(PipelineError::WrongAnswer);
        }
        Ok(result)
    }
}

/// A compiled benchmark together with its sequential profiling run.
///
/// The sequential emulation is the single most expensive shared input
/// of the evaluation system: every compaction mode and machine
/// configuration consumes the same [`RunResult`] (its `ExecStats`
/// drive trace picking and branch statistics). Building it once here
/// and sharing it immutably lets all simulation workers run
/// concurrently without recomputing the profile per configuration.
#[derive(Debug)]
pub struct CompiledCache<'a> {
    /// The compiled artifacts, borrowed immutably for the cache's
    /// lifetime so workers on other threads can share them.
    pub compiled: &'a Compiled,
    /// The sequential profiling run (self-check already enforced).
    pub run: RunResult,
}

impl<'a> CompiledCache<'a> {
    /// Performs the sequential profiling run once for `compiled`.
    ///
    /// # Errors
    ///
    /// See [`Compiled::run_sequential`].
    pub fn new(compiled: &'a Compiled) -> Result<Self, PipelineError> {
        let run = compiled.run_sequential()?;
        Ok(CompiledCache { compiled, run })
    }

    /// [`CompiledCache::new`] with the profiling run observed through
    /// `obs` (see [`Compiled::run_sequential_obs`]).
    ///
    /// # Errors
    ///
    /// See [`Compiled::run_sequential`].
    pub fn new_obs(
        compiled: &'a Compiled,
        obs: &Registry,
        bench: &str,
    ) -> Result<Self, PipelineError> {
        let run = compiled.run_sequential_obs(obs, bench)?;
        Ok(CompiledCache { compiled, run })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_profile_matches_a_direct_run() -> Result<(), PipelineError> {
        let c = Compiled::from_source("main :- X is 5 * 5, X = 25.")?;
        let cache = CompiledCache::new(&c)?;
        let direct = c.run_sequential()?;
        assert_eq!(cache.run.steps, direct.steps);
        assert_eq!(cache.run.stats.expect, direct.stats.expect);
        assert_eq!(cache.run.stats.taken, direct.stats.taken);
        Ok(())
    }

    #[test]
    fn artifact_round_trip_reconstructs_a_runnable_compiled() -> Result<(), PipelineError> {
        let c = Compiled::from_source("main :- X is 5 * 5, X = 25.")?;
        let ici = IciProgram::from_wire_bytes(&c.ici.to_wire_bytes())?;
        let decoded = DecodedProgram::from_wire_bytes(&c.decoded.to_wire_bytes())?;
        let restored = Compiled::from_artifact(ici, decoded, c.layout)?;
        assert!(restored.front.is_none(), "artifact path has no front end");
        let a = c.run_sequential()?;
        let b = restored.run_sequential()?;
        assert_eq!(a.steps, b.steps);
        assert_eq!(a.stats.expect, b.stats.expect);
        assert_eq!(a.stats.taken, b.stats.taken);
        Ok(())
    }

    #[test]
    fn mismatched_artifact_parts_are_rejected() {
        let c = Compiled::from_source("main :- X is 5 * 5, X = 25.").expect("compiles");
        let other = Compiled::from_source("main :- 2 = 2.").expect("compiles");
        let err = Compiled::from_artifact(other.ici, c.decoded.clone(), c.layout).unwrap_err();
        assert!(matches!(err, PipelineError::Artifact(_)), "{err}");
    }

    #[test]
    fn decoded_default_engine_matches_legacy() {
        let c = Compiled::from_source("main :- X is 5 * 5, X = 25.").unwrap();
        let d = c.run_sequential().unwrap();
        let l = c.run_sequential_legacy().unwrap();
        assert_eq!(d.outcome, l.outcome);
        assert_eq!(d.steps, l.steps);
        assert_eq!(d.stats.expect, l.stats.expect);
        assert_eq!(d.stats.taken, l.stats.taken);
    }

    #[test]
    fn compiles_and_runs_trivial_program() {
        let c = Compiled::from_source("main :- X is 1 + 1, X = 2.").unwrap();
        let r = c.run_sequential().unwrap();
        assert!(r.steps > 0);
    }

    #[test]
    fn missing_main_is_reported() {
        let e = Compiled::from_source("foo.").unwrap_err();
        assert!(matches!(e, PipelineError::NoMain));
    }

    #[test]
    fn wrong_answer_is_reported() {
        let c = Compiled::from_source("main :- 1 = 2.").unwrap();
        assert!(matches!(
            c.run_sequential().unwrap_err(),
            PipelineError::WrongAnswer
        ));
    }
}
