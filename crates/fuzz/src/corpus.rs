//! The checked-in reproducer format.
//!
//! A corpus file is plain text: a `#`-comment header followed by the
//! case payload. Prolog payloads are the source verbatim; IntCode
//! payloads list one op per line in a tiny assembler syntax (labels are
//! the identity mapping, so line *k* is both op *k* and label *k*).
//!
//! ```text
//! # kind: intcode
//! # seed: 0x2a
//! # failure: seq-divergence
//! # expect: fail seq-divergence
//! mvi r32 int:7
//! alu mod r33 r32 #-3
//! halt true
//! ```
//!
//! `expect:` is what the replay test asserts: `pass` means the oracle
//! must accept the case (a regression test for a fixed bug), `fail
//! <tag>` means the oracle must still report exactly that finding (a
//! known-open reproducer). Fixing a bug therefore flips a file from
//! `fail` to `pass` — deleting it would lose the regression.

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

use symbol_intcode::{AluOp, Cond, Label, Op, Operand, Outcome, Tag, Word, R};

use crate::gen_intcode::IntFrag;
use crate::gen_prolog::PrologCase;
use crate::oracle::{Case, FailureKind};

/// What the replay suite asserts about a corpus case.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Expect {
    /// The oracle must accept the case.
    Pass,
    /// The oracle must report exactly this finding.
    Fail(FailureKind),
}

/// A parsed corpus file.
#[derive(Clone, Debug)]
pub struct CorpusCase {
    /// File stem, for diagnostics.
    pub name: String,
    /// The case itself.
    pub case: Case,
    /// The replay assertion.
    pub expect: Expect,
    /// Provenance: the run seed that found it, if recorded.
    pub seed: Option<u64>,
    /// Provenance: the finding it originally reproduced, if recorded.
    pub failure: Option<String>,
}

/// The checked-in corpus directory of this crate.
pub fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("corpus")
}

/// Renders a corpus file.
pub fn render(case: &Case, expect: &Expect, seed: Option<u64>, failure: Option<&str>) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# kind: {}", case.kind_name());
    if let Some(s) = seed {
        let _ = writeln!(out, "# seed: 0x{s:x}");
    }
    if let Some(f) = failure {
        let _ = writeln!(out, "# failure: {f}");
    }
    match expect {
        Expect::Pass => {
            let _ = writeln!(out, "# expect: pass");
        }
        Expect::Fail(k) => {
            let _ = writeln!(out, "# expect: fail {}", k.tag());
        }
    }
    match case {
        Case::Prolog(p) => {
            let _ = writeln!(
                out,
                "# expected-outcome: {}",
                match p.expected {
                    Outcome::Success => "success",
                    Outcome::Failure => "failure",
                }
            );
            out.push_str(&p.source);
            if !p.source.ends_with('\n') {
                out.push('\n');
            }
        }
        Case::IntCode(f) => {
            for op in &f.ops {
                let _ = writeln!(out, "{}", write_op(op));
            }
        }
    }
    out
}

/// Parses a corpus file.
///
/// # Errors
///
/// A description of the first malformed header line or op.
pub fn parse(name: &str, text: &str) -> Result<CorpusCase, String> {
    let mut kind = None;
    let mut seed = None;
    let mut failure = None;
    let mut expect = None;
    let mut expected_outcome = Outcome::Success;
    let mut payload = String::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim();
            if let Some(v) = rest.strip_prefix("kind:") {
                kind = Some(v.trim().to_string());
            } else if let Some(v) = rest.strip_prefix("seed:") {
                seed = Some(crate::rng::parse_seed(v.trim()));
            } else if let Some(v) = rest.strip_prefix("failure:") {
                failure = Some(v.trim().to_string());
            } else if let Some(v) = rest.strip_prefix("expected-outcome:") {
                expected_outcome = match v.trim() {
                    "success" => Outcome::Success,
                    "failure" => Outcome::Failure,
                    other => return Err(format!("{name}: bad expected-outcome {other:?}")),
                };
            } else if let Some(v) = rest.strip_prefix("expect:") {
                let v = v.trim();
                expect = Some(if v == "pass" {
                    Expect::Pass
                } else if let Some(tag) = v.strip_prefix("fail") {
                    let tag = tag.trim();
                    Expect::Fail(
                        FailureKind::from_tag(tag)
                            .ok_or_else(|| format!("{name}: unknown failure tag {tag:?}"))?,
                    )
                } else {
                    return Err(format!("{name}: bad expect line {v:?}"));
                });
            }
            // Unknown comment lines are allowed (notes for humans).
        } else {
            payload.push_str(line);
            payload.push('\n');
        }
    }
    let kind = kind.ok_or_else(|| format!("{name}: missing '# kind:' header"))?;
    let expect = expect.ok_or_else(|| format!("{name}: missing '# expect:' header"))?;
    let case = match kind.as_str() {
        "prolog" => Case::Prolog(PrologCase {
            source: payload,
            expected: expected_outcome,
        }),
        "intcode" => {
            let mut ops = Vec::new();
            for (i, line) in payload.lines().enumerate() {
                let line = line.trim();
                if line.is_empty() {
                    continue;
                }
                ops.push(parse_op(line).map_err(|e| format!("{name}: op line {}: {e}", i + 1))?);
            }
            if ops.is_empty() {
                return Err(format!("{name}: empty intcode payload"));
            }
            Case::IntCode(IntFrag { ops })
        }
        other => return Err(format!("{name}: unknown kind {other:?}")),
    };
    Ok(CorpusCase {
        name: name.to_string(),
        case,
        expect,
        seed,
        failure,
    })
}

/// Loads every `.case` file in `dir`, sorted by name.
///
/// # Errors
///
/// The first unreadable or unparseable file.
pub fn load_dir(dir: &Path) -> Result<Vec<CorpusCase>, String> {
    let mut files: Vec<PathBuf> = Vec::new();
    let entries = fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    for entry in entries {
        let path = entry.map_err(|e| format!("{}: {e}", dir.display()))?.path();
        if path.extension().is_some_and(|e| e == "case") {
            files.push(path);
        }
    }
    files.sort();
    let mut out = Vec::new();
    for path in files {
        let name = path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("corpus")
            .to_string();
        let text = fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        out.push(parse(&name, &text)?);
    }
    Ok(out)
}

// ------------------------------------------------------ op serialization

fn tag_name(t: Tag) -> &'static str {
    match t {
        Tag::Ref => "ref",
        Tag::Int => "int",
        Tag::Atm => "atm",
        Tag::Lst => "lst",
        Tag::Str => "str",
        Tag::Fun => "fun",
        Tag::Cod => "cod",
    }
}

fn parse_tag(s: &str) -> Result<Tag, String> {
    Ok(match s {
        "ref" => Tag::Ref,
        "int" => Tag::Int,
        "atm" => Tag::Atm,
        "lst" => Tag::Lst,
        "str" => Tag::Str,
        "fun" => Tag::Fun,
        "cod" => Tag::Cod,
        _ => return Err(format!("unknown tag {s:?}")),
    })
}

fn write_word(w: &Word) -> String {
    format!("{}:{}", tag_name(w.tag), w.val)
}

fn parse_word(s: &str) -> Result<Word, String> {
    let (tag, val) = s.split_once(':').ok_or_else(|| format!("bad word {s:?}"))?;
    Ok(Word {
        tag: parse_tag(tag)?,
        val: val.parse().map_err(|_| format!("bad word value {val:?}"))?,
    })
}

fn write_operand(o: &Operand) -> String {
    match o {
        Operand::Reg(r) => format!("r{}", r.0),
        Operand::Imm(i) => format!("#{i}"),
    }
}

fn parse_reg(s: &str) -> Result<R, String> {
    s.strip_prefix('r')
        .and_then(|n| n.parse().ok())
        .map(R)
        .ok_or_else(|| format!("bad register {s:?}"))
}

fn parse_operand(s: &str) -> Result<Operand, String> {
    if let Some(i) = s.strip_prefix('#') {
        Ok(Operand::Imm(
            i.parse().map_err(|_| format!("bad immediate {s:?}"))?,
        ))
    } else {
        parse_reg(s).map(Operand::Reg)
    }
}

fn parse_label(s: &str) -> Result<Label, String> {
    s.strip_prefix('@')
        .and_then(|n| n.parse().ok())
        .map(Label)
        .ok_or_else(|| format!("bad label {s:?}"))
}

fn alu_name(op: AluOp) -> &'static str {
    match op {
        AluOp::Add => "add",
        AluOp::Sub => "sub",
        AluOp::Mul => "mul",
        AluOp::Div => "div",
        AluOp::Mod => "mod",
        AluOp::Rem => "rem",
        AluOp::And => "and",
        AluOp::Or => "or",
        AluOp::Xor => "xor",
        AluOp::Shl => "shl",
        AluOp::Shr => "shr",
        AluOp::Max => "max",
    }
}

fn parse_alu(s: &str) -> Result<AluOp, String> {
    Ok(match s {
        "add" => AluOp::Add,
        "sub" => AluOp::Sub,
        "mul" => AluOp::Mul,
        "div" => AluOp::Div,
        "mod" => AluOp::Mod,
        "rem" => AluOp::Rem,
        "and" => AluOp::And,
        "or" => AluOp::Or,
        "xor" => AluOp::Xor,
        "shl" => AluOp::Shl,
        "shr" => AluOp::Shr,
        "max" => AluOp::Max,
        _ => return Err(format!("unknown alu op {s:?}")),
    })
}

fn cond_name(c: Cond) -> &'static str {
    match c {
        Cond::Eq => "eq",
        Cond::Ne => "ne",
        Cond::Lt => "lt",
        Cond::Le => "le",
        Cond::Gt => "gt",
        Cond::Ge => "ge",
    }
}

fn parse_cond(s: &str) -> Result<Cond, String> {
    Ok(match s {
        "eq" => Cond::Eq,
        "ne" => Cond::Ne,
        "lt" => Cond::Lt,
        "le" => Cond::Le,
        "gt" => Cond::Gt,
        "ge" => Cond::Ge,
        _ => return Err(format!("unknown condition {s:?}")),
    })
}

fn eq_name(eq: bool) -> &'static str {
    if eq {
        "eq"
    } else {
        "ne"
    }
}

fn parse_eq(s: &str) -> Result<bool, String> {
    match s {
        "eq" => Ok(true),
        "ne" => Ok(false),
        _ => Err(format!("expected eq/ne, got {s:?}")),
    }
}

/// Serializes one op in the corpus assembler syntax.
pub fn write_op(op: &Op) -> String {
    match op {
        Op::Ld { d, base, off } => format!("ld r{} r{} {off}", d.0, base.0),
        Op::St { s, base, off } => format!("st r{} r{} {off}", s.0, base.0),
        Op::Mv { d, s } => format!("mv r{} r{}", d.0, s.0),
        Op::MvI { d, w } => format!("mvi r{} {}", d.0, write_word(w)),
        Op::Alu { op, d, a, b } => format!(
            "alu {} r{} r{} {}",
            alu_name(*op),
            d.0,
            a.0,
            write_operand(b)
        ),
        Op::AddA { d, a, b } => format!("adda r{} r{} {}", d.0, a.0, write_operand(b)),
        Op::MkTag { d, s, tag } => format!("mktag r{} r{} {}", d.0, s.0, tag_name(*tag)),
        Op::Br { cond, a, b, t } => format!(
            "br {} r{} {} @{}",
            cond_name(*cond),
            a.0,
            write_operand(b),
            t.0
        ),
        Op::BrTag { a, tag, eq, t } => format!(
            "brtag r{} {} {} @{}",
            a.0,
            tag_name(*tag),
            eq_name(*eq),
            t.0
        ),
        Op::BrWord { a, w, eq, t } => format!(
            "brword r{} {} {} @{}",
            a.0,
            write_word(w),
            eq_name(*eq),
            t.0
        ),
        Op::BrWEq { a, b, eq, t } => {
            format!("brweq r{} r{} {} @{}", a.0, b.0, eq_name(*eq), t.0)
        }
        Op::Jmp { t } => format!("jmp @{}", t.0),
        Op::JmpR { r } => format!("jmpr r{}", r.0),
        Op::Halt { success } => format!("halt {success}"),
    }
}

/// Parses one op in the corpus assembler syntax.
///
/// # Errors
///
/// A description of what is malformed.
pub fn parse_op(line: &str) -> Result<Op, String> {
    let parts: Vec<&str> = line.split_whitespace().collect();
    let arg = |i: usize| -> Result<&str, String> {
        parts
            .get(i)
            .copied()
            .ok_or_else(|| format!("missing operand {i} in {line:?}"))
    };
    match *parts.first().ok_or("empty op line")? {
        "ld" => Ok(Op::Ld {
            d: parse_reg(arg(1)?)?,
            base: parse_reg(arg(2)?)?,
            off: arg(3)?.parse().map_err(|_| "bad offset".to_string())?,
        }),
        "st" => Ok(Op::St {
            s: parse_reg(arg(1)?)?,
            base: parse_reg(arg(2)?)?,
            off: arg(3)?.parse().map_err(|_| "bad offset".to_string())?,
        }),
        "mv" => Ok(Op::Mv {
            d: parse_reg(arg(1)?)?,
            s: parse_reg(arg(2)?)?,
        }),
        "mvi" => Ok(Op::MvI {
            d: parse_reg(arg(1)?)?,
            w: parse_word(arg(2)?)?,
        }),
        "alu" => Ok(Op::Alu {
            op: parse_alu(arg(1)?)?,
            d: parse_reg(arg(2)?)?,
            a: parse_reg(arg(3)?)?,
            b: parse_operand(arg(4)?)?,
        }),
        "adda" => Ok(Op::AddA {
            d: parse_reg(arg(1)?)?,
            a: parse_reg(arg(2)?)?,
            b: parse_operand(arg(3)?)?,
        }),
        "mktag" => Ok(Op::MkTag {
            d: parse_reg(arg(1)?)?,
            s: parse_reg(arg(2)?)?,
            tag: parse_tag(arg(3)?)?,
        }),
        "br" => Ok(Op::Br {
            cond: parse_cond(arg(1)?)?,
            a: parse_reg(arg(2)?)?,
            b: parse_operand(arg(3)?)?,
            t: parse_label(arg(4)?)?,
        }),
        "brtag" => Ok(Op::BrTag {
            a: parse_reg(arg(1)?)?,
            tag: parse_tag(arg(2)?)?,
            eq: parse_eq(arg(3)?)?,
            t: parse_label(arg(4)?)?,
        }),
        "brword" => Ok(Op::BrWord {
            a: parse_reg(arg(1)?)?,
            w: parse_word(arg(2)?)?,
            eq: parse_eq(arg(3)?)?,
            t: parse_label(arg(4)?)?,
        }),
        "brweq" => Ok(Op::BrWEq {
            a: parse_reg(arg(1)?)?,
            b: parse_reg(arg(2)?)?,
            eq: parse_eq(arg(3)?)?,
            t: parse_label(arg(4)?)?,
        }),
        "jmp" => Ok(Op::Jmp {
            t: parse_label(arg(1)?)?,
        }),
        "jmpr" => Ok(Op::JmpR {
            r: parse_reg(arg(1)?)?,
        }),
        "halt" => Ok(Op::Halt {
            success: match arg(1)? {
                "true" => true,
                "false" => false,
                other => return Err(format!("bad halt flag {other:?}")),
            },
        }),
        other => Err(format!("unknown op {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn ops_round_trip_through_the_assembler_syntax() {
        for seed in 0..100u64 {
            let frag = crate::gen_intcode::generate(&mut Rng::new(seed));
            for op in &frag.ops {
                let text = write_op(op);
                let back = parse_op(&text).unwrap_or_else(|e| panic!("seed {seed}: {text:?}: {e}"));
                assert_eq!(&back, op, "{text:?}");
            }
        }
    }

    #[test]
    fn corpus_files_round_trip() {
        let frag = crate::gen_intcode::generate(&mut Rng::new(7));
        let case = Case::IntCode(frag);
        let text = render(&case, &Expect::Pass, Some(0x2a), Some("seq-divergence"));
        let parsed = parse("round-trip", &text).unwrap();
        assert_eq!(parsed.case, case);
        assert_eq!(parsed.expect, Expect::Pass);
        assert_eq!(parsed.seed, Some(0x2a));
        assert_eq!(parsed.failure.as_deref(), Some("seq-divergence"));
    }

    #[test]
    fn prolog_corpus_files_round_trip() {
        let case = Case::Prolog(crate::gen_prolog::generate(&mut Rng::new(3)));
        let text = render(
            &case,
            &Expect::Fail(crate::oracle::FailureKind::Expectation),
            None,
            None,
        );
        let parsed = parse("round-trip", &text).unwrap();
        assert_eq!(parsed.case, case);
        assert_eq!(
            parsed.expect,
            Expect::Fail(crate::oracle::FailureKind::Expectation)
        );
    }

    #[test]
    fn malformed_headers_are_rejected() {
        assert!(parse("x", "mvi r32 int:0\n").is_err(), "missing headers");
        assert!(parse("x", "# kind: intcode\n# expect: fail nonsense\nhalt true\n").is_err());
        assert!(
            parse("x", "# kind: intcode\n# expect: pass\n").is_err(),
            "empty payload"
        );
    }
}
