//! The parallel experiment drivers must be *bit-identical* to their
//! sequential counterparts: every `f64` statistic, every cycle count,
//! every histogram bin. Results are collected by work-list index, so
//! thread scheduling can reorder completion but never output — this
//! suite asserts exactly that.

use symbol_core::benchmarks;
use symbol_core::experiments::{measure, measure_cached};
use symbol_core::{Compiled, CompiledCache};

/// Benchmarks small enough to measure repeatedly in debug builds.
const SUBSET: [&str; 4] = ["conc30", "nreverse", "qsort", "serialise"];

#[test]
fn parallel_simulations_are_bit_identical_to_sequential() {
    for name in SUBSET {
        let b = benchmarks::by_name(name).expect("known benchmark");
        let compiled = Compiled::from_source(b.source).expect("compiles");
        let cache = CompiledCache::new(&compiled).expect("profiles");
        let sequential = measure_cached(b.name, &cache, 1).expect("measures");
        // Oversubscribe relative to the 8-entry work list so workers
        // genuinely contend for jobs.
        for threads in [2, 8, 32] {
            let parallel = measure_cached(b.name, &cache, threads).expect("measures");
            assert_eq!(
                sequential, parallel,
                "{name}: {threads}-thread driver diverged from sequential"
            );
        }
    }
}

#[test]
fn cached_profile_reproduces_the_standalone_driver() {
    // measure() compiles and profiles internally; going through an
    // explicitly shared CompiledCache must change nothing.
    let b = benchmarks::by_name("nreverse").expect("known benchmark");
    let standalone = measure(b).expect("measures");
    let compiled = Compiled::from_source(b.source).expect("compiles");
    let cache = CompiledCache::new(&compiled).expect("profiles");
    let cached = measure_cached(b.name, &cache, 4).expect("measures");
    assert_eq!(standalone, cached);
}

#[test]
fn repeated_parallel_runs_agree_with_each_other() {
    let b = benchmarks::by_name("qsort").expect("known benchmark");
    let compiled = Compiled::from_source(b.source).expect("compiles");
    let cache = CompiledCache::new(&compiled).expect("profiles");
    let first = measure_cached(b.name, &cache, 8).expect("measures");
    let second = measure_cached(b.name, &cache, 8).expect("measures");
    assert_eq!(first, second);
}

/// The batched serving path must be bit-identical to sequential
/// execution for every (worker count) × (batch size) combination —
/// including worker counts past the physical core count, where work
/// stealing genuinely shuffles which worker runs which request. A
/// panic probe rides in the middle of every stream: containment must
/// not perturb any neighbouring answer.
#[test]
fn batched_serving_is_bit_identical_for_every_worker_and_batch_size() {
    use std::sync::Arc;
    use symbol_serve::server::{QueryServer, ServerConfig};

    const QUERIES: usize = 12;
    for name in SUBSET {
        let b = benchmarks::by_name(name).expect("known benchmark");
        let compiled = Arc::new(Compiled::from_source(b.source).expect("compiles"));
        let reference = compiled.run_sequential().expect("sequential run").steps;
        for workers in [1usize, 2, 4, 8] {
            for batch in [1usize, 3, 8] {
                let obs = symbol_obs::Registry::disabled();
                let server = QueryServer::start(
                    Arc::clone(&compiled),
                    &ServerConfig {
                        workers,
                        queue_capacity: 8,
                        max_batch: 2,
                        flight_capacity: 0,
                        ..ServerConfig::default()
                    },
                    &obs,
                );
                let mut id = 0u64;
                let mut remaining = QUERIES;
                while remaining > 0 {
                    let n = remaining.min(batch);
                    server.submit_batch(id, n);
                    id += 1;
                    remaining -= n;
                    if id == 2 {
                        // A contained panic mid-stream.
                        server.submit_panic_probe(1000);
                    }
                }
                let results = server.finish();
                assert_eq!(results.len(), id as usize + 1);
                let mut answered = 0;
                for r in &results {
                    if r.id == 1000 {
                        assert!(r.outcome.is_err(), "{name}: probe panics, contained");
                        continue;
                    }
                    let steps = r
                        .outcome
                        .as_ref()
                        .expect("batch request succeeds")
                        .batch()
                        .expect("batch answer");
                    assert!(
                        steps.iter().all(|&s| s == reference),
                        "{name}: workers={workers} batch={batch}: {steps:?} != \
                         sequential {reference}"
                    );
                    answered += steps.len();
                }
                assert_eq!(
                    answered, QUERIES,
                    "{name}: workers={workers} batch={batch}: wrong sub-query count"
                );
                // Results are sorted by id: index order, independent
                // of which worker or steal path answered.
                assert!(results.windows(2).all(|w| w[0].id < w[1].id));
            }
        }
    }
}

/// The in-process batch executor under mixed per-query step limits:
/// seeded pseudo-random limits make some queries abort mid-run, and
/// every (worker count, seed) combination must reproduce the
/// sequential batch bit for bit — aborted queries included.
#[test]
fn parallel_batches_with_mixed_step_limits_match_sequential() {
    use symbol_intcode::ExecConfig;

    let b = benchmarks::by_name("nreverse").expect("known benchmark");
    let compiled = Compiled::from_source(b.source).expect("compiles");
    let full = compiled.run_sequential().expect("runs").steps;
    for seed in [3u64, 17, 1999] {
        // xorshift-mixed limits: below, around, and above the full
        // step count, plus degenerate 0- and 1-step queries.
        let mut state = seed;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let queries: Vec<ExecConfig> = (0..17)
            .map(|i| ExecConfig {
                max_steps: match i % 5 {
                    0 => 0,
                    1 => 1,
                    2 => next() % full.max(1),
                    3 => full,
                    _ => full + next() % 64,
                },
            })
            .collect();
        let mut pool = symbol_intcode::ArenaPool::new();
        let sequential = compiled.run_batch(&queries, &mut pool);
        for workers in [1usize, 2, 4, 8] {
            let parallel = compiled.run_batch_parallel(&queries, workers);
            assert_eq!(
                sequential, parallel,
                "seed {seed}: {workers}-worker batch diverged from sequential"
            );
        }
    }
}

/// serialize → deserialize → run must be bit-identical to
/// compile → run, for every benchmark in the suite — the correctness
/// contract of the `symbol-serve` artifact path.
#[test]
fn artifact_round_trip_runs_are_bit_identical_for_every_benchmark() {
    use symbol_intcode::decode::DecodedProgram;
    use symbol_intcode::program::IciProgram;
    for b in benchmarks::ALL {
        let compiled = Compiled::from_source(b.source).expect("compiles");
        let ici_bytes = compiled.ici.to_wire_bytes();
        let dec_bytes = compiled.decoded.to_wire_bytes();
        let ici = IciProgram::from_wire_bytes(&ici_bytes)
            .unwrap_or_else(|e| panic!("{}: intcode decode: {e}", b.name));
        let decoded = DecodedProgram::from_wire_bytes(&dec_bytes)
            .unwrap_or_else(|e| panic!("{}: decoded decode: {e}", b.name));
        // Byte-exact: re-encoding the deserialized forms reproduces
        // the original encodings bit for bit.
        assert_eq!(ici.to_wire_bytes(), ici_bytes, "{}: intcode bytes", b.name);
        assert_eq!(
            decoded.to_wire_bytes(),
            dec_bytes,
            "{}: decoded bytes",
            b.name
        );
        let restored = Compiled::from_artifact(ici, decoded, compiled.layout)
            .unwrap_or_else(|e| panic!("{}: from_artifact: {e}", b.name));
        let direct = compiled.run_sequential().expect("direct run");
        let served = restored.run_sequential().expect("artifact run");
        assert_eq!(direct.steps, served.steps, "{}: steps", b.name);
        assert_eq!(direct.outcome, served.outcome, "{}: outcome", b.name);
        assert_eq!(
            direct.stats.expect, served.stats.expect,
            "{}: expect profile",
            b.name
        );
        assert_eq!(
            direct.stats.taken, served.stats.taken,
            "{}: taken profile",
            b.name
        );
    }
}

/// Corrupt on-disk artifacts — truncations, a flipped version byte, an
/// artifact filed under the wrong key — must never panic or serve
/// wrong code: the cache recompiles from source every time.
#[test]
fn corrupt_artifacts_recompile_cleanly() {
    use symbol_intcode::Layout;
    use symbol_serve::artifact::{ArtifactKey, PayloadKind};
    use symbol_serve::cache::ArtifactCache;

    let b = benchmarks::by_name("nreverse").expect("known benchmark");
    let dir = std::env::temp_dir().join(format!("symbol-determinism-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let obs = symbol_obs::Registry::new();
    let cache = ArtifactCache::new(&dir, obs.clone()).expect("open cache");
    let layout = Layout::default();
    let key = ArtifactKey::emulator(b.source, &layout);
    let path = cache.path_for(&key, PayloadKind::Emulator);

    // Seed a good artifact and keep its bytes and reference run.
    let cold = cache.load_compiled(b.source, layout).expect("cold compile");
    let reference = cold.run_sequential().expect("runs");
    let good = std::fs::read(&path).expect("artifact exists");

    let corruptions: Vec<(&str, Vec<u8>)> = vec![
        ("empty file", Vec::new()),
        ("half the file", good[..good.len() / 2].to_vec()),
        ("missing checksum", good[..good.len() - 8].to_vec()),
        ("flipped version byte", {
            let mut v = good.clone();
            v[8] ^= 0x01;
            v
        }),
        ("flipped source-hash byte (wrong key)", {
            let mut v = good.clone();
            v[12] ^= 0x01;
            v
        }),
        ("flipped payload byte", {
            let mut v = good.clone();
            let mid = v.len() / 2;
            v[mid] ^= 0x80;
            v
        }),
    ];
    for (what, bytes) in corruptions {
        std::fs::write(&path, &bytes).expect("plant corruption");
        let c = cache
            .load_compiled(b.source, layout)
            .unwrap_or_else(|e| panic!("{what}: recompile failed: {e}"));
        assert!(c.front.is_some(), "{what}: must recompile, not deserialize");
        let run = c.run_sequential().expect("recompiled program runs");
        assert_eq!(run.steps, reference.steps, "{what}: divergent run");
        // The recompile healed the cache: the next load is warm again.
        let warm = cache.load_compiled(b.source, layout).expect("warm");
        assert!(warm.front.is_none(), "{what}: cache not healed");
    }
    assert_eq!(
        obs.counter("serve.cache.corrupt", &[("kind", "emu")]).get(),
        6,
        "every planted corruption was detected"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
