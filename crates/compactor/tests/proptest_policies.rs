//! Property test: for *any* trace policy and machine configuration the
//! compactor produces code that the validating simulator accepts and
//! that computes the same answer as sequential execution.
//!
//! Policies are drawn from a seeded xorshift PRNG (no external
//! crates), so every run exercises the same deterministic case set.

use symbol_compactor::{compact, CompactMode, TracePolicy};
use symbol_intcode::{Emulator, ExecConfig, Layout, Outcome};
use symbol_prolog::PredId;
use symbol_vliw::{MachineConfig, SimConfig, SimOutcome, VliwSim};

/// Deterministic xorshift64* PRNG.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform value in `0..n`.
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

const PROGRAM: &str = "
    main :- perm([1,2,3,4], P), check(P), fail. main.
    perm([], []).
    perm(L, [X|P]) :- sel(X, L, R), perm(R, P).
    sel(X, [X|T], T).
    sel(X, [Y|T], [Y|R]) :- sel(X, T, R).
    check([A,B|T]) :- A < B, check([B|T]).
    check([_]).
";

fn prepared() -> (
    symbol_intcode::IciProgram,
    symbol_intcode::ExecStats,
    Layout,
    Outcome,
) {
    let program = symbol_prolog::parse_program(PROGRAM).expect("parse");
    let bam = symbol_bam::compile(&program).expect("compile");
    let main = PredId::new(program.symbols().lookup("main").expect("main"), 0);
    let layout = Layout {
        heap_size: 1 << 16,
        env_size: 1 << 14,
        cp_size: 1 << 14,
        trail_size: 1 << 14,
        pdl_size: 1 << 12,
    };
    let ici = symbol_intcode::translate(&bam, main, &layout).expect("translate");
    let run = Emulator::new(&ici, &layout)
        .run(&ExecConfig::default())
        .expect("sequential");
    (ici, run.stats, layout, run.outcome)
}

#[test]
fn any_policy_and_machine_preserve_semantics() {
    let (ici, stats, layout, seq_outcome) = prepared();
    let mut rng = Rng(0x0123_4567_89ab_cdef);
    for _ in 0..40 {
        let units = 1 + rng.below(5) as usize;
        let machine = MachineConfig {
            mem_ports: 1 + rng.below(3) as usize,
            multiway_branch: rng.below(2) == 0,
            taken_branch_penalty: rng.below(3) as u32,
            ..MachineConfig::units(units)
        };
        let policy = TracePolicy {
            tail_dup_ops: rng.below(64) as usize,
            max_blocks: 2 + rng.below(46) as usize,
            speculate: rng.below(2) == 0,
            ..TracePolicy::default()
        };
        let mode = [
            CompactMode::TraceSchedule,
            CompactMode::BasicBlock,
            CompactMode::BamGroups,
        ][rng.below(3) as usize];
        let compacted = compact(&ici, &stats, &machine, mode, &policy);
        let result = VliwSim::new(&compacted.program, machine, &layout)
            .run(&SimConfig::default())
            .expect("simulator accepts the schedule");
        let want = match seq_outcome {
            Outcome::Success => SimOutcome::Success,
            Outcome::Failure => SimOutcome::Failure,
        };
        assert_eq!(result.outcome, want, "{machine:?} {policy:?} {mode:?}");
        // more resources never slow things past a 1-unit machine by
        // construction, but at minimum the schedule terminates with a
        // plausible cycle count
        assert!(result.cycles > 0);
    }
}
