//! Programs: clauses grouped into predicates.

use crate::ast::Clause;
use crate::symbols::{Atom, SymbolTable};
use std::collections::HashMap;
use std::fmt;

/// Predicate identifier: name and arity.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct PredId {
    /// Interned predicate name.
    pub name: Atom,
    /// Number of arguments.
    pub arity: usize,
}

impl PredId {
    /// Creates a predicate id.
    pub fn new(name: Atom, arity: usize) -> Self {
        PredId { name, arity }
    }

    /// Renders as `name/arity` using `symbols`.
    pub fn display<'a>(&self, symbols: &'a SymbolTable) -> PredIdDisplay<'a> {
        PredIdDisplay { id: *self, symbols }
    }
}

/// Helper returned by [`PredId::display`].
#[derive(Debug)]
pub struct PredIdDisplay<'a> {
    id: PredId,
    symbols: &'a SymbolTable,
}

impl fmt::Display for PredIdDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.symbols.name(self.id.name), self.id.arity)
    }
}

/// A predicate: an ordered collection of clauses.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Predicate {
    /// Name/arity.
    pub id: PredId,
    /// Clauses in source order.
    pub clauses: Vec<Clause>,
}

/// A normalized Prolog program: predicates in first-definition order
/// plus the symbol table that owns every atom id in it.
#[derive(Clone, Debug)]
pub struct Program {
    symbols: SymbolTable,
    order: Vec<PredId>,
    preds: HashMap<PredId, Predicate>,
}

impl Program {
    /// Groups normalized clauses into predicates.
    pub fn from_clauses(clauses: Vec<Clause>, symbols: SymbolTable) -> Self {
        let mut order = Vec::new();
        let mut preds: HashMap<PredId, Predicate> = HashMap::new();
        for clause in clauses {
            let (name, arity) = clause.pred();
            let id = PredId::new(name, arity);
            preds
                .entry(id)
                .or_insert_with(|| {
                    order.push(id);
                    Predicate {
                        id,
                        clauses: Vec::new(),
                    }
                })
                .clauses
                .push(clause);
        }
        Program {
            symbols,
            order,
            preds,
        }
    }

    /// The symbol table owning all atom ids of the program.
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    /// Iterates over predicates in first-definition order.
    pub fn predicates(&self) -> impl Iterator<Item = &Predicate> {
        self.order.iter().map(move |id| &self.preds[id])
    }

    /// Looks up a predicate by id.
    pub fn predicate(&self, id: PredId) -> Option<&Predicate> {
        self.preds.get(&id)
    }

    /// Looks up a predicate by source name and arity.
    pub fn predicate_named(&self, name: &str, arity: usize) -> Option<&Predicate> {
        let atom = self.symbols.lookup(name)?;
        self.predicate(PredId::new(atom, arity))
    }

    /// Total number of clauses across all predicates.
    pub fn num_clauses(&self) -> usize {
        self.preds.values().map(|p| p.clauses.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use crate::parse_program;

    #[test]
    fn groups_clauses_in_order() {
        let p = parse_program("a(1). b. a(2). a(3).").unwrap();
        let names: Vec<_> = p
            .predicates()
            .map(|pr| p.symbols().name(pr.id.name).to_owned())
            .collect();
        assert_eq!(names, vec!["a", "b"]);
        assert_eq!(p.predicate_named("a", 1).unwrap().clauses.len(), 3);
        assert_eq!(p.num_clauses(), 4);
    }

    #[test]
    fn same_name_different_arity_are_distinct() {
        let p = parse_program("f(1). f(1,2).").unwrap();
        assert_eq!(p.predicates().count(), 2);
    }

    #[test]
    fn pred_display() {
        let p = parse_program("foo(1,2).").unwrap();
        let pred = p.predicate_named("foo", 2).unwrap();
        assert_eq!(format!("{}", pred.id.display(p.symbols())), "foo/2");
    }
}
