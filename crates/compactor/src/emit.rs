//! Whole-program compaction: traces → schedules → a laid-out
//! [`VliwProgram`].

use std::collections::HashMap;

use symbol_intcode::{ExecStats, IciProgram, Label};
use symbol_vliw::{MachineConfig, VliwInstr, VliwProgram};

use crate::cfg::Cfg;
use crate::liveness::{LiveAtLabel, Liveness};
use crate::schedule::{
    rewrite_trace, schedule_comp_block, schedule_trace, LabelAlloc, ScheduleOptions,
};
use crate::trace::{average_trace_length, pick_traces, single_block_traces, Trace, TracePolicy};

/// Which compaction strategy to apply.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum CompactMode {
    /// Global compaction: trace scheduling with compensation code.
    TraceSchedule,
    /// Baseline: compaction within basic blocks only.
    BasicBlock,
    /// The BAM cost model: basic blocks with compaction barriers at
    /// BAM-instruction boundaries (run on a 1-unit machine).
    BamGroups,
}

/// Statistics about one compaction run.
#[derive(Clone, Debug)]
pub struct CompactStats {
    /// Number of scheduling regions (traces or blocks).
    pub regions: usize,
    /// Execution-weighted average region length in ops (Table 1's
    /// "Average Length").
    pub avg_region_len: f64,
    /// Number of compensation blocks emitted.
    pub comp_blocks: usize,
    /// Static op count before compaction.
    pub ops_in: usize,
    /// Static op count after (compensation copies included).
    pub ops_out: usize,
}

impl CompactStats {
    /// Static code growth factor due to compensation copies.
    pub fn code_growth(&self) -> f64 {
        if self.ops_in == 0 {
            1.0
        } else {
            self.ops_out as f64 / self.ops_in as f64
        }
    }
}

/// The result of compaction.
#[derive(Clone, Debug)]
pub struct Compacted {
    /// The scheduled program.
    pub program: VliwProgram,
    /// Compaction statistics.
    pub stats: CompactStats,
}

/// Compacts `program` for `machine` according to `mode`, guided by the
/// sequential-execution statistics.
///
/// # Panics
///
/// Panics if the produced schedule fails static verification — on the
/// compiler pipeline that is an internal bug. Fuzzing drives
/// [`try_compact`] instead, where an illegal schedule is a reportable
/// finding rather than a crash.
pub fn compact(
    program: &IciProgram,
    exec: &ExecStats,
    machine: &MachineConfig,
    mode: CompactMode,
    policy: &TracePolicy,
) -> Compacted {
    match try_compact(program, exec, machine, mode, policy) {
        Ok(c) => c,
        Err(v) => panic!("compactor produced an illegal schedule: {v}"),
    }
}

/// [`compact`] returning the static-verification [`Violation`](crate::verify::Violation) instead
/// of panicking when the produced schedule is illegal.
///
/// Every schedule — including cold code the profile never executes —
/// is checked against the machine by [`crate::verify::verify_program`]
/// before it is returned, so a buggy scheduling pass cannot hand the
/// simulator an impossible program.
///
/// # Errors
///
/// The first [`Violation`](crate::verify::Violation) found in the emitted schedule.
pub fn try_compact(
    program: &IciProgram,
    exec: &ExecStats,
    machine: &MachineConfig,
    mode: CompactMode,
    policy: &TracePolicy,
) -> Result<Compacted, crate::verify::Violation> {
    let cfg = Cfg::build(program, exec);
    let live = Liveness::compute(program, &cfg);
    let live_at = LiveAtLabel::new(&cfg, &live);
    let mut labels = LabelAlloc::new(program.label_table().len());

    // Basic-block compaction still benefits from a hot-path-first
    // layout (the paper's code generator laid clauses out that way):
    // blocks are placed along traces (without tail duplication), but
    // barriers keep all code motion inside each block.
    let traces: Vec<Trace> = match mode {
        CompactMode::TraceSchedule => pick_traces(&cfg, policy),
        CompactMode::BasicBlock => {
            let bb_policy = TracePolicy {
                tail_dup_ops: 0,
                ..*policy
            };
            pick_traces(&cfg, &bb_policy)
        }
        CompactMode::BamGroups => single_block_traces(&cfg),
    };
    let opts = ScheduleOptions {
        speculate: policy.speculate && mode == CompactMode::TraceSchedule,
        group_barriers: mode == CompactMode::BamGroups,
        block_barriers: mode == CompactMode::BasicBlock,
    };

    // Labels for blocks that need one but have none in the source
    // program (fall-through targets).
    let mut extra_label: HashMap<usize, Label> = HashMap::new();
    // Any label already bound at a block's start?
    let mut first_label_of_block: HashMap<usize, Vec<Label>> = HashMap::new();
    for (l, &b) in &cfg.label_block {
        first_label_of_block.entry(b).or_default().push(*l);
    }

    // Schedule every trace.
    let mut scheduled = Vec::new();
    let mut all_comps = Vec::new();
    for t in &traces {
        let t_ops = rewrite_trace(program, &cfg, t, |block| {
            if let Some(ls) = first_label_of_block.get(&block) {
                ls[0]
            } else {
                *extra_label.entry(block).or_insert_with(|| labels.fresh())
            }
        });
        let st = schedule_trace(&t_ops, machine, &live_at, &mut labels, &opts);
        all_comps.extend(st.comps.clone());
        scheduled.push(st);
    }

    // Layout: traces in pick order, then compensation blocks.
    let mut instrs: Vec<VliwInstr> = Vec::new();
    let mut label_at: HashMap<Label, usize> = HashMap::new();
    for (t, st) in traces.iter().zip(&scheduled) {
        let head = t.blocks[0];
        let at = instrs.len();
        if let Some(ls) = first_label_of_block.get(&head) {
            for &l in ls {
                label_at.insert(l, at);
            }
        }
        if let Some(&l) = extra_label.get(&head) {
            label_at.insert(l, at);
        }
        instrs.extend(st.words.iter().cloned());
    }
    for comp in &all_comps {
        let words = schedule_comp_block(comp, machine, &live_at, &mut labels);
        label_at.insert(comp.label, instrs.len());
        instrs.extend(words);
    }

    let ops_in = program.ops().len();
    let ops_out: usize = instrs.iter().map(VliwInstr::len).sum();
    let avg_region_len = match mode {
        CompactMode::TraceSchedule => average_trace_length(&cfg, &traces),
        _ => cfg.average_block_length(),
    };
    let stats = CompactStats {
        regions: traces.len(),
        avg_region_len,
        comp_blocks: all_comps.len(),
        ops_in,
        ops_out,
    };

    let program = VliwProgram::new(instrs, label_at, labels.total(), program.entry());
    // Every schedule — including cold code the profile never executes —
    // must satisfy the machine statically.
    crate::verify::verify_program(&program, machine)?;
    Ok(Compacted { program, stats })
}
