//! Temporary-register liveness.
//!
//! The speculation safety rules only ever ask about *renamed
//! temporaries* (fixed machine registers are always live, so writes to
//! them are never speculated). This keeps the dataflow sets small.

use std::collections::{HashMap, HashSet};

use symbol_intcode::layout::reg;
use symbol_intcode::{IciProgram, R};

use crate::cfg::Cfg;

fn is_temp(r: R) -> bool {
    r.0 >= reg::FIRST_TEMP
}

/// Per-block live-in sets of temporary registers.
#[derive(Clone, Debug)]
pub struct Liveness {
    live_in: Vec<HashSet<R>>,
}

impl Liveness {
    /// Computes liveness over `cfg` by backward iteration. Indirect
    /// control transfers conservatively make the live-ins of every
    /// address-taken block live.
    pub fn compute(program: &IciProgram, cfg: &Cfg) -> Liveness {
        let ops = program.ops();
        let nb = cfg.blocks.len();

        // Per-block use/def (temps only).
        let mut use_b: Vec<HashSet<R>> = Vec::with_capacity(nb);
        let mut def_b: Vec<HashSet<R>> = Vec::with_capacity(nb);
        let mut has_indirect: Vec<bool> = Vec::with_capacity(nb);
        for b in &cfg.blocks {
            let mut uses = HashSet::new();
            let mut defs: HashSet<R> = HashSet::new();
            for op in &ops[b.start..b.end] {
                for u in op.uses() {
                    if is_temp(u) && !defs.contains(&u) {
                        uses.insert(u);
                    }
                }
                if let Some(d) = op.def() {
                    if is_temp(d) {
                        defs.insert(d);
                    }
                }
            }
            has_indirect.push(matches!(ops[b.end - 1], symbol_intcode::Op::JmpR { .. }));
            use_b.push(uses);
            def_b.push(defs);
        }

        let entry_blocks: Vec<usize> = program
            .address_taken()
            .iter()
            .filter_map(|l| cfg.label_block.get(l).copied())
            .collect();

        let mut live_in: Vec<HashSet<R>> = vec![HashSet::new(); nb];
        let mut changed = true;
        while changed {
            changed = false;
            // The conservative "indirect" out-set: union of live-ins of
            // all address-taken blocks (recomputed per pass).
            let mut indirect_out: HashSet<R> = HashSet::new();
            for &e in &entry_blocks {
                indirect_out.extend(live_in[e].iter().copied());
            }
            for id in (0..nb).rev() {
                let mut out: HashSet<R> = HashSet::new();
                for e in &cfg.blocks[id].succs {
                    out.extend(live_in[e.dest()].iter().copied());
                }
                if has_indirect[id] {
                    out.extend(indirect_out.iter().copied());
                }
                // in = use ∪ (out - def)
                let mut inn = use_b[id].clone();
                for r in out {
                    if !def_b[id].contains(&r) {
                        inn.insert(r);
                    }
                }
                if inn != live_in[id] {
                    live_in[id] = inn;
                    changed = true;
                }
            }
        }
        Liveness { live_in }
    }

    /// Whether temp `r` is live at the entry of `block`. Fixed machine
    /// registers are reported live unconditionally.
    pub fn live_at_entry(&self, block: usize, r: R) -> bool {
        !is_temp(r) || self.live_in[block].contains(&r)
    }

    /// The raw live-in set (temps only) of `block`.
    pub fn live_in(&self, block: usize) -> &HashSet<R> {
        &self.live_in[block]
    }
}

/// Convenience: map each label to its block's live-in check.
#[derive(Clone, Debug, Default)]
pub struct LiveAtLabel {
    map: HashMap<symbol_intcode::Label, HashSet<R>>,
}

impl LiveAtLabel {
    /// Builds the label-indexed view used by the scheduler.
    pub fn new(cfg: &Cfg, live: &Liveness) -> Self {
        let mut map = HashMap::new();
        for (l, &b) in &cfg.label_block {
            map.insert(*l, live.live_in(b).clone());
        }
        LiveAtLabel { map }
    }

    /// Whether `r` must be treated as live at `label`'s target.
    pub fn live(&self, label: symbol_intcode::Label, r: R) -> bool {
        if !is_temp(r) {
            return true;
        }
        match self.map.get(&label) {
            Some(s) => s.contains(&r),
            None => true, // unknown label: be conservative
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symbol_intcode::{Asm, Cond, Op, Operand, Word};

    #[test]
    fn temp_live_across_branch_edge() {
        // t written, branch to L (uses t there), fall-through halt.
        let mut a = Asm::new();
        let entry = a.fresh_label();
        let l = a.fresh_label();
        let t = a.fresh_reg();
        let u = a.fresh_reg();
        a.bind(entry);
        a.emit(Op::MvI {
            d: t,
            w: Word::int(1),
        });
        a.emit(Op::MvI {
            d: u,
            w: Word::int(2),
        });
        a.emit(Op::Br {
            cond: Cond::Eq,
            a: t,
            b: Operand::Imm(1),
            t: l,
        });
        a.emit(Op::Halt { success: false });
        a.bind(l);
        a.emit(Op::Br {
            cond: Cond::Eq,
            a: u,
            b: Operand::Imm(3),
            t: entry,
        });
        a.emit(Op::Halt { success: true });
        let p = a.finish(entry);
        let layout = symbol_intcode::Layout {
            heap_size: 16,
            env_size: 16,
            cp_size: 16,
            trail_size: 16,
            pdl_size: 16,
        };
        let stats = symbol_intcode::Emulator::new(&p, &layout)
            .run(&symbol_intcode::ExecConfig::default())
            .unwrap()
            .stats;
        let cfg = Cfg::build(&p, &stats);
        let live = Liveness::compute(&p, &cfg);
        let lbl = LiveAtLabel::new(&cfg, &live);
        // u is live at the branch target, t is not (dead after branch)
        assert!(lbl.live(l, u));
        assert!(!lbl.live(l, t));
        // fixed registers always live
        assert!(lbl.live(l, symbol_intcode::layout::reg::H));
    }
}
