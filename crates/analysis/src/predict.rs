//! Branch predictability (paper §4.4, Table 2 and Figure 4).
//!
//! For a conditional branch with taken-probability `p`, the probability
//! of a faulty prediction is `min(p, 1-p)`: a static predictor (trace
//! picking) follows the usual direction and is wrong the rest of the
//! time. The paper's striking result is that Prolog branches are very
//! predictable (average ≈ 0.1), refuting the "90/50 branch-taken rule"
//! for symbolic code.

use symbol_intcode::{ExecStats, IciProgram};

/// Probability of faulty prediction of one branch.
pub fn faulty_prediction(taken_probability: f64) -> f64 {
    taken_probability.min(1.0 - taken_probability)
}

/// Predictability statistics of one profiled run.
#[derive(Clone, Debug)]
pub struct PredictStats {
    /// Per-branch (execution count, faulty-prediction probability).
    pub branches: Vec<(u64, f64)>,
}

impl PredictStats {
    /// Collects every executed conditional branch of a run.
    /// [`ExecStats::taken_probability`] itself rejects non-branch ops
    /// and unexecuted or out-of-range indices, so every op index is
    /// simply offered to it.
    pub fn measure(program: &IciProgram, stats: &ExecStats) -> PredictStats {
        let mut branches = Vec::new();
        for i in 0..program.ops().len() {
            if let Some(p) = stats.taken_probability(program, i) {
                branches.push((stats.expect[i], faulty_prediction(p)));
            }
        }
        PredictStats { branches }
    }

    /// Execution-weighted average probability of faulty prediction
    /// (the paper's Table 2 metric).
    pub fn average(&self) -> f64 {
        let weight: u64 = self.branches.iter().map(|(w, _)| w).sum();
        if weight == 0 {
            return 0.0;
        }
        self.branches
            .iter()
            .map(|&(w, p)| w as f64 * p)
            .sum::<f64>()
            / weight as f64
    }

    /// Execution-weighted histogram of P_fp over [0, 0.5] with
    /// `bins` buckets (Figure 4).
    pub fn histogram(&self, bins: usize) -> Histogram {
        let mut counts = vec![0f64; bins];
        let mut total = 0f64;
        for &(w, p) in &self.branches {
            let idx = ((p / 0.5) * bins as f64).min(bins as f64 - 1.0) as usize;
            counts[idx] += w as f64;
            total += w as f64;
        }
        if total > 0.0 {
            for c in &mut counts {
                *c /= total;
            }
        }
        Histogram { counts }
    }
}

/// A normalized histogram over [0, 0.5].
#[derive(Clone, Debug)]
pub struct Histogram {
    /// Fraction of weight per bucket; sums to 1 when nonempty.
    pub counts: Vec<f64>,
}

impl Histogram {
    /// The bucket range `(lo, hi)` of bin `i`.
    pub fn range(&self, i: usize) -> (f64, f64) {
        let w = 0.5 / self.counts.len() as f64;
        (i as f64 * w, (i + 1) as f64 * w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faulty_prediction_folds_at_half() {
        assert!((faulty_prediction(0.9) - 0.1).abs() < 1e-12);
        assert!((faulty_prediction(0.1) - 0.1).abs() < 1e-12);
        assert!((faulty_prediction(0.5) - 0.5).abs() < 1e-12);
        assert!((faulty_prediction(0.0) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_average() {
        let s = PredictStats {
            branches: vec![(90, 0.0), (10, 0.5)],
        };
        assert!((s.average() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn histogram_is_normalized() {
        let s = PredictStats {
            branches: vec![(50, 0.05), (30, 0.45), (20, 0.2)],
        };
        let h = s.histogram(20);
        let sum: f64 = h.counts.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        // 0.05 falls in bin 2 of 20 (width 0.025)
        assert!(h.counts[2] > 0.0);
        assert_eq!(h.range(0), (0.0, 0.025));
    }
}
