//! Operator-precedence (Pratt) parser producing raw clause terms.

use crate::ast::Term;
use crate::error::ParseError;
use crate::lexer::{tokenize, Tok, Token};
use crate::ops::{self, InfixKind, PrefixKind, ARG_PRIORITY, MAX_PRIORITY};
use crate::symbols::SymbolTable;
use std::collections::HashMap;

/// A parsed clause before normalization: the whole clause term
/// (`:-/2` structure for rules, plain callable for facts) plus the
/// source names of its variables in index order.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RawClause {
    /// The clause term.
    pub term: Term,
    /// Variable names, indexed by `Term::Var` id.
    pub var_names: Vec<String>,
}

/// Parses all clauses in `src`.
///
/// # Errors
///
/// Returns the first tokenizer or parser error encountered.
pub fn parse_clauses(src: &str, symbols: &mut SymbolTable) -> Result<Vec<RawClause>, ParseError> {
    let toks = tokenize(src)?;
    let mut clauses = Vec::new();
    let mut pos = 0;
    while pos < toks.len() {
        let mut parser = Parser {
            toks: &toks,
            pos,
            symbols,
            vars: HashMap::new(),
            var_names: Vec::new(),
        };
        let term = parser.parse(MAX_PRIORITY)?;
        parser.expect_end()?;
        pos = parser.pos;
        clauses.push(RawClause {
            term,
            var_names: parser.var_names,
        });
    }
    Ok(clauses)
}

/// Parses a single term (for tests and tools); trailing `.` optional.
///
/// # Errors
///
/// Returns the first tokenizer or parser error encountered.
pub fn parse_term(src: &str, symbols: &mut SymbolTable) -> Result<RawClause, ParseError> {
    let toks = tokenize(src)?;
    let mut parser = Parser {
        toks: &toks,
        pos: 0,
        symbols,
        vars: HashMap::new(),
        var_names: Vec::new(),
    };
    let term = parser.parse(MAX_PRIORITY)?;
    Ok(RawClause {
        term,
        var_names: parser.var_names,
    })
}

struct Parser<'a> {
    toks: &'a [Token],
    pos: usize,
    symbols: &'a mut SymbolTable,
    vars: HashMap<String, usize>,
    var_names: Vec<String>,
}

impl Parser<'_> {
    fn peek(&self) -> Option<&Token> {
        self.toks.get(self.pos)
    }

    fn bump(&mut self) -> Option<&Token> {
        let t = self.toks.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err_here(&self, msg: impl Into<String>) -> ParseError {
        match self.peek() {
            Some(t) => ParseError::new(t.line, t.col, msg),
            None => ParseError::new(0, 0, format!("{} (at end of input)", msg.into())),
        }
    }

    fn expect_end(&mut self) -> Result<(), ParseError> {
        match self.bump() {
            Some(Token { kind: Tok::End, .. }) => Ok(()),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.err_here("expected '.' at end of clause"))
            }
        }
    }

    fn fresh_var(&mut self, name: &str) -> Term {
        if name == "_" {
            let idx = self.var_names.len();
            self.var_names.push("_".into());
            return Term::Var(idx);
        }
        if let Some(&idx) = self.vars.get(name) {
            return Term::Var(idx);
        }
        let idx = self.var_names.len();
        self.var_names.push(name.to_owned());
        self.vars.insert(name.to_owned(), idx);
        Term::Var(idx)
    }

    /// Parses a term of priority at most `max_prec`.
    fn parse(&mut self, max_prec: u32) -> Result<Term, ParseError> {
        let (mut left, mut left_prec) = self.parse_primary(max_prec)?;
        loop {
            let (name, op_prec, kind) = match self.peek() {
                Some(Token {
                    kind: Tok::Comma, ..
                }) => match ops::infix(",") {
                    Some((p, k)) => (",".to_owned(), p, k),
                    None => break,
                },
                Some(Token {
                    kind: Tok::Atom(a), ..
                }) => match ops::infix(a) {
                    Some((p, k)) => (a.clone(), p, k),
                    None => break,
                },
                _ => break,
            };
            if op_prec > max_prec {
                break;
            }
            let left_max = match kind {
                InfixKind::Yfx => op_prec,
                InfixKind::Xfx | InfixKind::Xfy => op_prec - 1,
            };
            if left_prec > left_max {
                break;
            }
            self.bump();
            let right_max = match kind {
                InfixKind::Xfy => op_prec,
                InfixKind::Xfx | InfixKind::Yfx => op_prec - 1,
            };
            let right = self.parse(right_max)?;
            let f = self.symbols.intern(&name);
            left = Term::Struct(f, vec![left, right]);
            left_prec = op_prec;
        }
        Ok((left, left_prec).0)
    }

    /// Parses a primary term (possibly a prefix-operator application).
    /// Returns the term and its priority.
    fn parse_primary(&mut self, max_prec: u32) -> Result<(Term, u32), ParseError> {
        let tok = match self.bump() {
            Some(t) => t.clone(),
            None => return Err(self.err_here("unexpected end of input")),
        };
        match tok.kind {
            Tok::Int(i) => Ok((Term::Int(i), 0)),
            Tok::Var(v) => Ok((self.fresh_var(&v), 0)),
            Tok::Atom(a) => self.parse_atom_or_prefix(a, max_prec),
            Tok::LParen | Tok::FunctorParen => {
                let t = self.parse(MAX_PRIORITY)?;
                self.expect(Tok::RParen)?;
                Ok((t, 0))
            }
            Tok::LBracket => self.parse_list(),
            Tok::LBrace => {
                if matches!(
                    self.peek(),
                    Some(Token {
                        kind: Tok::RBrace,
                        ..
                    })
                ) {
                    self.bump();
                    let f = self.symbols.intern("{}");
                    return Ok((Term::Atom(f), 0));
                }
                let t = self.parse(MAX_PRIORITY)?;
                self.expect(Tok::RBrace)?;
                let f = self.symbols.intern("{}");
                Ok((Term::Struct(f, vec![t]), 0))
            }
            other => Err(ParseError::new(
                tok.line,
                tok.col,
                format!("unexpected token '{other}'"),
            )),
        }
    }

    fn parse_atom_or_prefix(
        &mut self,
        a: String,
        max_prec: u32,
    ) -> Result<(Term, u32), ParseError> {
        // Functor application: f(...)
        if matches!(
            self.peek(),
            Some(Token {
                kind: Tok::FunctorParen,
                ..
            })
        ) {
            self.bump();
            let mut args = vec![self.parse(ARG_PRIORITY)?];
            loop {
                match self.bump() {
                    Some(Token {
                        kind: Tok::Comma, ..
                    }) => args.push(self.parse(ARG_PRIORITY)?),
                    Some(Token {
                        kind: Tok::RParen, ..
                    }) => break,
                    _ => {
                        self.pos = self.pos.saturating_sub(1);
                        return Err(self.err_here("expected ',' or ')' in argument list"));
                    }
                }
            }
            let f = self.symbols.intern(&a);
            return Ok((Term::Struct(f, args), 0));
        }
        // Prefix operator, if one fits and a term follows.
        if let Some((p, kind)) = ops::prefix(&a) {
            if p <= max_prec && self.starts_term() {
                // `- 3` folds to a negative literal.
                if a == "-" {
                    if let Some(Token {
                        kind: Tok::Int(i), ..
                    }) = self.peek()
                    {
                        let i = *i;
                        self.bump();
                        return Ok((Term::Int(-i), 0));
                    }
                }
                let arg_max = match kind {
                    PrefixKind::Fy => p,
                    PrefixKind::Fx => p - 1,
                };
                let arg = self.parse(arg_max)?;
                let f = self.symbols.intern(&a);
                return Ok((Term::Struct(f, vec![arg]), p));
            }
        }
        let f = self.symbols.intern(&a);
        Ok((Term::Atom(f), 0))
    }

    /// Whether the next token can begin a term (used to decide whether a
    /// prefix operator actually applies).
    fn starts_term(&self) -> bool {
        match self.peek() {
            Some(Token { kind, .. }) => {
                matches!(
                    kind,
                    Tok::Int(_)
                        | Tok::Var(_)
                        | Tok::LParen
                        | Tok::FunctorParen
                        | Tok::LBracket
                        | Tok::LBrace
                ) || matches!(kind, Tok::Atom(a) if ops::infix(a).is_none() || ops::prefix(a).is_some())
            }
            None => false,
        }
    }

    fn parse_list(&mut self) -> Result<(Term, u32), ParseError> {
        if matches!(
            self.peek(),
            Some(Token {
                kind: Tok::RBracket,
                ..
            })
        ) {
            self.bump();
            return Ok((Term::nil(), 0));
        }
        let mut items = vec![self.parse(ARG_PRIORITY)?];
        let mut tail = Term::nil();
        loop {
            match self.bump() {
                Some(Token {
                    kind: Tok::Comma, ..
                }) => items.push(self.parse(ARG_PRIORITY)?),
                Some(Token { kind: Tok::Bar, .. }) => {
                    tail = self.parse(ARG_PRIORITY)?;
                    self.expect(Tok::RBracket)?;
                    break;
                }
                Some(Token {
                    kind: Tok::RBracket,
                    ..
                }) => break,
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err_here("expected ',', '|' or ']' in list"));
                }
            }
        }
        let list = items.into_iter().rev().fold(tail, |t, h| Term::cons(h, t));
        Ok((list, 0))
    }

    fn expect(&mut self, want: Tok) -> Result<(), ParseError> {
        match self.bump() {
            Some(t) if t.kind == want => Ok(()),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.err_here(format!("expected '{want}'")))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::wk;

    fn parse_one(src: &str) -> (Term, SymbolTable) {
        let mut s = SymbolTable::new();
        let t = parse_term(src, &mut s).unwrap().term;
        (t, s)
    }

    fn show(src: &str) -> String {
        let (t, s) = parse_one(src);
        format!("{}", t.display(&s))
    }

    #[test]
    fn parses_fact() {
        let (t, s) = parse_one("foo(a, B)");
        let foo = s.lookup("foo").unwrap();
        let a = s.lookup("a").unwrap();
        assert_eq!(t, Term::Struct(foo, vec![Term::Atom(a), Term::Var(0)]));
    }

    #[test]
    fn arithmetic_precedence() {
        // 1+2*3 = +(1, *(2,3))
        let (t, s) = parse_one("1+2*3");
        let plus = s.lookup("+").unwrap();
        let times = s.lookup("*").unwrap();
        assert_eq!(
            t,
            Term::Struct(
                plus,
                vec![
                    Term::Int(1),
                    Term::Struct(times, vec![Term::Int(2), Term::Int(3)])
                ]
            )
        );
    }

    #[test]
    fn left_associative_minus() {
        // 1-2-3 = -(-(1,2),3)
        assert_eq!(show("1-2-3"), "-(-(1,2),3)");
    }

    #[test]
    fn right_associative_conjunction() {
        // (a,b,c) = ','(a, ','(b,c))
        assert_eq!(show("(a , b , c)"), ",(a,,(b,c))");
    }

    #[test]
    fn clause_neck() {
        let (t, s) = parse_one("h(X) :- b(X)");
        let neck = s.lookup(":-").unwrap();
        assert_eq!(neck, wk::NECK);
        assert!(matches!(t, Term::Struct(f, _) if f == neck));
    }

    #[test]
    fn list_sugar() {
        assert_eq!(show("[1,2|T]"), "[1,2|_V0]");
        assert_eq!(show("[]"), "[]");
    }

    #[test]
    fn negative_literal() {
        assert_eq!(parse_one("-42").0, Term::Int(-42));
    }

    #[test]
    fn prefix_minus_on_var() {
        assert_eq!(show("-X"), "-(_V0)");
    }

    #[test]
    fn underscore_vars_are_distinct() {
        let (t, _) = parse_one("f(_, _)");
        match t {
            Term::Struct(_, args) => assert_ne!(args[0], args[1]),
            _ => panic!("expected struct"),
        }
    }

    #[test]
    fn named_vars_are_shared() {
        let (t, _) = parse_one("f(X, X)");
        match t {
            Term::Struct(_, args) => assert_eq!(args[0], args[1]),
            _ => panic!("expected struct"),
        }
    }

    #[test]
    fn multiple_clauses() {
        let mut s = SymbolTable::new();
        let cs = parse_clauses("a. b. c :- a, b.", &mut s).unwrap();
        assert_eq!(cs.len(), 3);
    }

    #[test]
    fn missing_end_is_error() {
        let mut s = SymbolTable::new();
        assert!(parse_clauses("a :- b", &mut s).is_err());
    }

    #[test]
    fn comma_in_args_is_separator() {
        let (t, _) = parse_one("f(a, b)");
        match t {
            Term::Struct(_, args) => assert_eq!(args.len(), 2),
            _ => panic!("expected struct"),
        }
    }

    #[test]
    fn xfx_rejects_chained_comparison() {
        let mut s = SymbolTable::new();
        assert!(parse_clauses("t :- 1 < 2 < 3.", &mut s).is_err());
    }

    #[test]
    fn if_then_else_shape() {
        // (c -> t ; e) = ;( ->(c,t), e)
        assert_eq!(show("(c -> t ; e)"), ";(->(c,t),e)");
    }

    #[test]
    fn negation_parses() {
        assert_eq!(show("\\+ foo(X)"), "\\+(foo(_V0))");
    }
}
