//! Seeded generator for raw IntCode fragments.
//!
//! Fragments exercise the engines below the compiler: every register is
//! a renamed temporary, every branch target is an in-range label, and
//! control flow is a forward DAG plus bounded counted loops, so every
//! fragment terminates (or halts on a machine fault — which is itself a
//! comparable outcome). Two deliberate exclusions keep the differential
//! oracle sound:
//!
//! * no `MkTag` to [`Tag::Cod`] — manufactured code words would let
//!   `JmpR` jump to data-dependent addresses the VLIW schedule has no
//!   obligation to preserve;
//! * code words enter registers only via `MvI` with a bound label, the
//!   same invariant the real translator maintains.

use std::collections::HashMap;

use symbol_intcode::layout::reg;
use symbol_intcode::{
    AluOp, Cond, IciProgram, Label, Layout, Op, Operand, ProgramError, Tag, Word, R,
};

use crate::rng::Rng;

/// The tiny memory layout fragments execute under. Loads and stores are
/// generated against the low heap addresses, so most are in bounds
/// while wild pointers still fault quickly in both machines.
pub fn frag_layout() -> Layout {
    Layout {
        heap_size: 64,
        env_size: 64,
        cp_size: 64,
        trail_size: 64,
        pdl_size: 32,
    }
}

/// A raw IntCode fragment with *identity labels*: label `i` is bound at
/// op index `i`, so the ops vector alone determines the program and the
/// shrinker can delete ops by remapping indices.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct IntFrag {
    /// The ops; entry is op 0.
    pub ops: Vec<Op>,
}

impl IntFrag {
    /// Assembles the fragment into an executable program.
    ///
    /// # Errors
    ///
    /// Whatever [`IciProgram::try_new`] diagnoses — for generated
    /// fragments this cannot happen by construction, but corpus files
    /// and shrink candidates go through the same validation.
    pub fn build(&self) -> Result<IciProgram, ProgramError> {
        let n = self.ops.len();
        let mut label_at = HashMap::new();
        for i in 0..n {
            label_at.insert(Label(i as u32), i);
        }
        // Each op is its own BAM group: under the BAM cost model a
        // fragment degenerates to near-sequential issue, which is the
        // honest reading of code that never came from BAM.
        let groups = (0..n as u32).collect();
        IciProgram::try_new(
            self.ops.clone(),
            groups,
            label_at,
            n.max(1) as u32,
            Label(0),
        )
    }
}

/// Everything the generator needs to know mid-stream.
struct Gen<'a> {
    rng: &'a mut Rng,
    ops: Vec<Op>,
    regs: Vec<R>,
    /// Indices of branches whose forward target is fixed up at the end.
    fwd_fix: Vec<usize>,
    /// `(mvi index, jmpr index)` pairs: the `MvI` gets a code word for a
    /// label past the `JmpR`, chosen once the length is known.
    cod_fix: Vec<(usize, usize)>,
}

impl Gen<'_> {
    fn reg(&mut self) -> R {
        *self.rng.pick(&self.regs)
    }

    /// A register different from `avoid` (loop counters must survive
    /// their body).
    fn reg_not(&mut self, avoid: R) -> R {
        loop {
            let r = self.reg();
            if r != avoid {
                return r;
            }
        }
    }

    fn operand(&mut self) -> Operand {
        if self.rng.chance(1, 2) {
            Operand::Reg(self.reg())
        } else {
            Operand::Imm(self.rng.range_i64(-8, 8))
        }
    }

    fn data_word(&mut self) -> Word {
        match self.rng.below(5) {
            0 => Word {
                tag: Tag::Ref,
                val: self.rng.range_i64(0, 60),
            },
            1 => Word::atom(self.rng.below(6) as u32),
            2 => Word {
                tag: Tag::Lst,
                val: self.rng.range_i64(0, 60),
            },
            _ => Word::int(self.rng.range_i64(-8, 60)),
        }
    }

    fn cond(&mut self) -> Cond {
        *self
            .rng
            .pick(&[Cond::Eq, Cond::Ne, Cond::Lt, Cond::Le, Cond::Gt, Cond::Ge])
    }

    fn alu_op(&mut self) -> AluOp {
        *self.rng.pick(&[
            AluOp::Add,
            AluOp::Sub,
            AluOp::Mul,
            AluOp::Div,
            AluOp::Mod,
            AluOp::Rem,
            AluOp::And,
            AluOp::Or,
            AluOp::Xor,
            AluOp::Shl,
            AluOp::Shr,
            AluOp::Max,
        ])
    }

    fn data_tag(&mut self) -> Tag {
        // Never Cod: see the module doc.
        *self
            .rng
            .pick(&[Tag::Ref, Tag::Int, Tag::Atm, Tag::Lst, Tag::Str, Tag::Fun])
    }

    /// One straight-line data op (no control flow), with destinations
    /// restricted away from `avoid` when given.
    fn data_op(&mut self, avoid: Option<R>) {
        let d = match avoid {
            Some(a) => self.reg_not(a),
            None => self.reg(),
        };
        let op = match self.rng.below(7) {
            0 => Op::Mv { d, s: self.reg() },
            1 => {
                let w = self.data_word();
                Op::MvI { d, w }
            }
            2 => {
                let (a, b, op) = (self.reg(), self.operand(), self.alu_op());
                Op::Alu { op, d, a, b }
            }
            3 => {
                let (a, b) = (self.reg(), self.operand());
                Op::AddA { d, a, b }
            }
            4 => {
                let (s, tag) = (self.reg(), self.data_tag());
                Op::MkTag { d, s, tag }
            }
            5 => {
                let (base, off) = (self.reg(), self.rng.range_i64(-2, 2) as i32);
                Op::Ld { d, base, off }
            }
            _ => {
                let (s, base, off) = (self.reg(), self.reg(), self.rng.range_i64(-2, 2) as i32);
                Op::St { s, base, off }
            }
        };
        self.ops.push(op);
    }

    /// A conditional branch with a forward target fixed up later.
    fn fwd_branch(&mut self) {
        let op = match self.rng.below(4) {
            0 => Op::Br {
                cond: self.cond(),
                a: self.reg(),
                b: self.operand(),
                t: Label(0),
            },
            1 => Op::BrTag {
                a: self.reg(),
                tag: self.data_tag(),
                eq: self.rng.chance(1, 2),
                t: Label(0),
            },
            2 => Op::BrWord {
                a: self.reg(),
                w: self.data_word(),
                eq: self.rng.chance(1, 2),
                t: Label(0),
            },
            _ => Op::BrWEq {
                a: self.reg(),
                b: self.reg(),
                eq: self.rng.chance(1, 2),
                t: Label(0),
            },
        };
        self.fwd_fix.push(self.ops.len());
        self.ops.push(op);
    }

    /// A bounded counted loop: `c = k; { body; c -= 1 } while c > 0`.
    /// The backward branch is the only one in the grammar, and the
    /// counter guarantees it retires.
    fn counted_loop(&mut self) {
        let c = self.reg();
        let k = self.rng.range_i64(1, 4);
        self.ops.push(Op::MvI {
            d: c,
            w: Word::int(k),
        });
        let start = self.ops.len();
        let body = self.rng.below(3) + 1;
        for _ in 0..body {
            self.data_op(Some(c));
        }
        self.ops.push(Op::Alu {
            op: AluOp::Sub,
            d: c,
            a: c,
            b: Operand::Imm(1),
        });
        self.ops.push(Op::Br {
            cond: Cond::Gt,
            a: c,
            b: Operand::Imm(0),
            t: Label(start as u32),
        });
    }

    /// The translator's continuation idiom: a code word materialized by
    /// `MvI` and consumed by an indirect `JmpR`, with the label resolved
    /// to a point past the jump once the length is known.
    fn jmpr_pair(&mut self) {
        let r = self.reg();
        let mvi = self.ops.len();
        self.ops.push(Op::MvI {
            d: r,
            w: Word::code(0),
        });
        if self.rng.chance(1, 2) {
            self.data_op(Some(r));
        }
        let jmpr = self.ops.len();
        self.ops.push(Op::JmpR { r });
        self.cod_fix.push((mvi, jmpr));
    }
}

/// Generates one fragment from `rng`. Deterministic: the same stream
/// yields the same fragment.
pub fn generate(rng: &mut Rng) -> IntFrag {
    let nregs = rng.below(5) as usize + 4;
    let regs: Vec<R> = (0..nregs as u32).map(|j| R(reg::FIRST_TEMP + j)).collect();
    let mut g = Gen {
        rng,
        ops: Vec::new(),
        regs,
        fwd_fix: Vec::new(),
        cod_fix: Vec::new(),
    };

    // Initialize every register so reads are never of unconstrained
    // zero-state only.
    for i in 0..nregs {
        let w = g.data_word();
        g.ops.push(Op::MvI { d: g.regs[i], w });
    }

    let budget = g.rng.below(40) as usize + 8;
    while g.ops.len() < budget {
        match g.rng.below(16) {
            0..=6 => g.data_op(None),
            7..=10 => g.fwd_branch(),
            11 | 12 => g.counted_loop(),
            13 => g.jmpr_pair(),
            14 => g.ops.push(Op::Jmp { t: Label(0) }), // fixed up forward
            _ => g.ops.push(Op::Halt {
                success: g.rng.chance(1, 2),
            }),
        }
        if matches!(g.ops.last(), Some(Op::Jmp { .. })) {
            let at = g.ops.len() - 1;
            g.fwd_fix.push(at);
        }
    }
    g.ops.push(Op::Halt {
        success: g.rng.chance(1, 2),
    });

    // Resolve forward targets now that the length is known.
    let len = g.ops.len();
    for idx in g.fwd_fix.clone() {
        let t = g.rng.range_i64(idx as i64 + 1, len as i64 - 1) as u32;
        g.ops[idx].set_target(Label(t));
    }
    for (mvi, jmpr) in g.cod_fix.clone() {
        let t = g
            .rng
            .range_i64(jmpr as i64 + 1, len as i64 - 1)
            .min(len as i64 - 1);
        if let Op::MvI { w, .. } = &mut g.ops[mvi] {
            *w = Word::code(t as u32);
        }
    }

    IntFrag { ops: g.ops }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_fragments_always_assemble() {
        for seed in 0..300u64 {
            let mut rng = Rng::new(seed);
            let frag = generate(&mut rng);
            assert!(!frag.ops.is_empty());
            frag.build().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&mut Rng::new(99));
        let b = generate(&mut Rng::new(99));
        assert_eq!(a, b);
    }

    #[test]
    fn fragments_never_manufacture_code_tags() {
        for seed in 0..300u64 {
            let frag = generate(&mut Rng::new(seed));
            for op in &frag.ops {
                if let Op::MkTag { tag, .. } = op {
                    assert_ne!(*tag, Tag::Cod, "seed {seed}");
                }
            }
        }
    }

    #[test]
    fn fragments_end_in_halt() {
        for seed in 0..100u64 {
            let frag = generate(&mut Rng::new(seed));
            assert!(matches!(frag.ops.last(), Some(Op::Halt { .. })));
        }
    }
}
