//! Copy propagation must preserve semantics end to end: optimized
//! IntCode computes the same answers sequentially AND after trace
//! scheduling, while removing a measurable share of the moves.

use symbol_compactor::{compact, copy_propagate, CompactMode, TracePolicy};
use symbol_intcode::{Emulator, ExecConfig, Layout};
use symbol_prolog::PredId;
use symbol_vliw::{MachineConfig, SimConfig, SimOutcome, VliwSim};

fn layout() -> Layout {
    Layout {
        heap_size: 1 << 16,
        env_size: 1 << 14,
        cp_size: 1 << 14,
        trail_size: 1 << 14,
        pdl_size: 1 << 12,
    }
}

fn check(src: &str) -> (u64, u64) {
    let program = symbol_prolog::parse_program(src).expect("parse");
    let bam = symbol_bam::compile(&program).expect("compile");
    let main = PredId::new(program.symbols().lookup("main").expect("main"), 0);
    let layout = layout();
    let ici = symbol_intcode::translate(&bam, main, &layout).expect("translate");
    let before = Emulator::new(&ici, &layout)
        .run(&ExecConfig::default())
        .expect("original runs");

    let opt = copy_propagate(&ici, &before.stats);
    let after = Emulator::new(&opt.program, &layout)
        .run(&ExecConfig::default())
        .expect("optimized runs");
    assert_eq!(before.outcome, after.outcome, "sequential semantics");
    assert!(after.steps <= before.steps);

    // the optimized profile drives trace scheduling; the scheduled code
    // must still agree
    let machine = MachineConfig::units(3);
    let compacted = compact(
        &opt.program,
        &opt.stats,
        &machine,
        CompactMode::TraceSchedule,
        &TracePolicy::default(),
    );
    let sim = VliwSim::new(&compacted.program, machine, &layout)
        .run(&SimConfig::default())
        .expect("scheduled optimized code runs");
    let want = match before.outcome {
        symbol_intcode::Outcome::Success => SimOutcome::Success,
        symbol_intcode::Outcome::Failure => SimOutcome::Failure,
    };
    assert_eq!(sim.outcome, want);
    (before.steps, after.steps)
}

#[test]
fn nreverse_keeps_its_answer_and_sheds_moves() {
    let (before, after) = check(
        "main :- nrev([1,2,3,4,5,6,7,8], R), R = [8,7,6,5,4,3,2,1].
         nrev([], []).
         nrev([H|T], R) :- nrev(T, RT), app(RT, [H], R).
         app([], L, L).
         app([X|T], L, [X|R]) :- app(T, L, R).",
    );
    let saved = before - after;
    // Most moves are calling convention (argument registers, routine
    // linkage) or dereference-loop state and cannot be removed; the
    // local pass reliably sheds the remaining pure copies (~2-4%).
    assert!(
        saved as f64 >= before as f64 * 0.02,
        "expected >=2% dynamic op reduction, got {saved} of {before}"
    );
}

#[test]
fn backtracking_search_is_preserved() {
    check(
        "main :- perm([1,2,3,4], P), P = [4,3,2,1].
         perm([], []).
         perm(L, [X|P]) :- sel(X, L, R), perm(R, P).
         sel(X, [X|T], T).
         sel(X, [Y|T], [Y|R]) :- sel(X, T, R).",
    );
}

#[test]
fn cut_and_arithmetic_are_preserved() {
    check(
        "main :- gcd(252, 105, G), G = 21.
         gcd(A, 0, A) :- !.
         gcd(A, B, G) :- B > 0, R is A mod B, gcd(B, R, G).",
    );
}

#[test]
fn failing_query_stays_failing() {
    check("main :- a(1), a(2). a(1).");
}

#[test]
fn structures_survive_optimization() {
    check(
        "main :- d(x * x + x, x, D), size(D, N), N = 9.
         d(U + V, X, DU + DV) :- !, d(U, X, DU), d(V, X, DV).
         d(U * V, X, DU * V + U * DV) :- !, d(U, X, DU), d(V, X, DV).
         d(X, X, 1) :- !.
         d(_, _, 0).
         size(X + Y, S) :- !, size(X, A), size(Y, B), S is A + B + 1.
         size(X * Y, S) :- !, size(X, A), size(Y, B), S is A + B + 1.
         size(_, 1).",
    );
}
