//! Structural tests of the BAM → IntCode expansion: instruction shapes
//! that the cost models and the compactor rely on.

use symbol_intcode::{translate, Layout, Op, Tag};
use symbol_prolog::PredId;

fn ici_for(src: &str) -> symbol_intcode::IciProgram {
    let p = symbol_prolog::parse_program(src).unwrap();
    let bam = symbol_bam::compile(&p).unwrap();
    let main = PredId::new(p.symbols().lookup("main").unwrap(), 0);
    translate(&bam, main, &Layout::default()).unwrap()
}

#[test]
fn every_branch_target_is_bound() {
    // IciProgram::new validates this; construction succeeding is the test.
    let ici = ici_for("main :- app([1],[2],[1,2]). app([],L,L). app([X|T],L,[X|R]) :- app(T,L,R).");
    assert!(ici.len() > 100);
}

#[test]
fn groups_are_monotone_within_expansion() {
    let ici = ici_for("main :- 1 = 1.");
    // group ids never decrease along the static layout of one
    // predicate body; the driver and routines each restart groups,
    // so just check the program has multiple distinct groups
    let distinct: std::collections::HashSet<u32> = ici.groups().iter().copied().collect();
    assert!(distinct.len() > 3, "expected several BAM groups");
}

#[test]
fn code_words_mark_address_taken_labels() {
    let ici = ici_for("main :- p, q. p. q.");
    // at least: program entry, the call return point, the sentinel
    // retry and done labels
    assert!(ici.address_taken().len() >= 4);
    for l in ici.address_taken() {
        let addr = ici.label_addr(*l);
        assert!(addr < ici.len());
    }
}

#[test]
fn large_constant_table_uses_binary_search() {
    // 12 facts with distinct first-argument constants: the dispatch
    // must use value comparisons (Br) rather than 12 word-equality
    // branches in a row.
    let src = "
        main :- f(k06, X), X = 6.
        f(k01, 1). f(k02, 2). f(k03, 3). f(k04, 4).
        f(k05, 5). f(k06, 6). f(k07, 7). f(k08, 8).
        f(k09, 9). f(k10, 10). f(k11, 11). f(k12, 12).
        f(k13, 13). f(k14, 14). f(k15, 15). f(k16, 16).
        f(k17, 17). f(k18, 18). f(k19, 19). f(k20, 20).
    ";
    let ici = ici_for(src);
    let lt_branches = ici
        .ops()
        .iter()
        .filter(|o| {
            matches!(
                o,
                Op::Br {
                    cond: symbol_intcode::Cond::Gt,
                    ..
                }
            )
        })
        .count();
    assert!(
        lt_branches >= 2,
        "expected binary-search pivot comparisons, found {lt_branches}"
    );
    // and it still runs correctly
    let layout = Layout::default();
    let r = symbol_intcode::Emulator::new(&ici, &layout)
        .run(&symbol_intcode::ExecConfig::default())
        .unwrap();
    assert_eq!(r.outcome, symbol_intcode::Outcome::Success);
}

#[test]
fn small_constant_table_stays_linear() {
    let src = "main :- f(b, X), X = 2. f(a, 1). f(b, 2). f(c, 3).";
    let ici = ici_for(src);
    let pivots = ici
        .ops()
        .iter()
        .filter(|o| {
            matches!(
                o,
                Op::Br {
                    cond: symbol_intcode::Cond::Gt,
                    ..
                }
            )
        })
        .count();
    assert_eq!(pivots, 0, "small tables use word-equality chains");
}

#[test]
fn branch_on_tag_is_emitted_for_type_dispatch() {
    let ici = ici_for(
        "main :- app([], [], []).
         app([], L, L).
         app([X|T], L, [X|R]) :- app(T, L, R).",
    );
    let tag_branches = ici
        .ops()
        .iter()
        .filter(|o| matches!(o, Op::BrTag { .. }))
        .count();
    assert!(
        tag_branches > 5,
        "tag branches are the Prolog-specific support; found {tag_branches}"
    );
}

#[test]
fn heap_pushes_pair_store_with_increment() {
    let ici = ici_for("main :- X = [1], X = [1].");
    // every store through H is followed (somewhere) by an H increment;
    // count both and require them to be plausibly matched
    let h = symbol_intcode::layout::reg::H;
    let stores_via_h = ici
        .ops()
        .iter()
        .filter(|o| matches!(o, Op::St { base, .. } if *base == h))
        .count();
    let h_incs = ici
        .ops()
        .iter()
        .filter(|o| {
            matches!(o, Op::Alu { op: symbol_intcode::AluOp::Add, d, a, .. }
                if *d == h && *a == h)
        })
        .count();
    assert!(stores_via_h > 0);
    assert_eq!(stores_via_h, h_incs, "unbalanced heap pushes");
}

#[test]
fn trail_checks_guard_every_binding() {
    let ici = ici_for("main :- p(X), X = 2. p(1). p(2).");
    // every conditional-trail sequence compares against HB
    let hb = symbol_intcode::layout::reg::HB;
    let hb_compares = ici
        .ops()
        .iter()
        .filter(|o| matches!(o, Op::Br { b: symbol_intcode::Operand::Reg(r), .. } if *r == hb))
        .count();
    assert!(hb_compares > 0, "bindings must be trail-checked");
}

#[test]
fn proceed_is_an_indirect_jump_through_cp() {
    let ici = ici_for("main :- p. p.");
    let cp = symbol_intcode::layout::reg::CP;
    assert!(ici
        .ops()
        .iter()
        .any(|o| matches!(o, Op::JmpR { r } if *r == cp)));
}

#[test]
fn functor_words_encode_name_and_arity() {
    let ici = ici_for("main :- X = f(1, 2), X = f(1, 2).");
    let fun_words: Vec<i64> = ici
        .ops()
        .iter()
        .filter_map(|o| match o {
            Op::MvI { w, .. } if w.tag == Tag::Fun => Some(w.val),
            _ => None,
        })
        .collect();
    assert!(!fun_words.is_empty());
    for v in fun_words {
        assert_eq!(v & 0xff, 2, "arity lives in the low byte");
    }
}

#[test]
fn binary_search_handles_negative_keys() {
    let src = "
        main :- f(-3, X), X = ok3, f(7, Y), Y = ok7.
        f(-9, ok9). f(-3, ok3). f(-1, ok1). f(0, ok0).
        f(2, ok2). f(7, ok7). f(11, ok11). f(23, ok23).
        f(31, ok31). f(47, ok47).
    ";
    let ici = ici_for(src);
    let layout = Layout::default();
    let r = symbol_intcode::Emulator::new(&ici, &layout)
        .run(&symbol_intcode::ExecConfig::default())
        .unwrap();
    assert_eq!(r.outcome, symbol_intcode::Outcome::Success);
}

#[test]
fn mixed_int_and_atom_keys_dispatch_correctly() {
    let src = "
        main :- f(a, 1), f(3, 30), f(k, 110), \\+ f(zz, _), \\+ f(99, _).
        f(a, 1). f(b, 2). f(c, 3). f(1, 10). f(2, 20).
        f(3, 30). f(d, 4). f(e, 5). f(g, 7). f(h, 8).
        f(i, 9). f(j, 10). f(k, 110). f(4, 40). f(5, 50).
    ";
    let ici = ici_for(src);
    let layout = Layout::default();
    let r = symbol_intcode::Emulator::new(&ici, &layout)
        .run(&symbol_intcode::ExecConfig::default())
        .unwrap();
    assert_eq!(r.outcome, symbol_intcode::Outcome::Success);
}
