//! Design-space sweep harness timing: grid expansion throughput, the
//! per-point compact-and-simulate kernel, and the parallel sweep
//! driver at 1 thread vs the machine's full width (the fan-out the
//! `sweep` binary rides). Prints the paper-grid frontier report for
//! the timing subset.
//!
//! With `--check`, exits nonzero if the timed sweep violates its own
//! invariant gates or is not bit-identical across thread counts —
//! the same gates the `sweep-smoke` CI job asserts on the reduced
//! grid, kept here so the timing run cannot silently drift.

use std::hint::black_box;

use symbol_bench::timing::Harness;
use symbol_core::benchmarks;
use symbol_core::experiments::sweep::{run_sweep, GridSpec, SweepOptions};
use symbol_obs::Registry;

fn bench(h: &mut Harness) {
    let full = GridSpec::full();
    h.bench_function("sweep/expand_full_grid", |b| {
        b.iter(|| black_box(&full).expand().len())
    });

    let paper = GridSpec::paper();
    let bench = *benchmarks::by_name("nreverse").expect("nreverse exists");
    for threads in [1usize, num_threads()] {
        h.bench_function(&format!("sweep/paper_grid/nreverse/{threads}t"), |b| {
            let opts = SweepOptions {
                threads,
                budget: None,
            };
            b.iter(|| {
                run_sweep(black_box(&paper), &[bench], &opts, &Registry::disabled())
                    .expect("sweep runs")
                    .benches[0]
                    .cycles
                    .clone()
            })
        });
    }
}

fn num_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// The correctness side of the timing run: paper grid over the timing
/// subset, gates on, reports printed.
fn check_and_report(check: bool) {
    let grid = GridSpec::paper();
    let benches: Vec<_> = symbol_bench::TIMING_SUBSET
        .iter()
        .map(|n| *benchmarks::by_name(n).expect("subset benchmark exists"))
        .collect();
    let opts = SweepOptions {
        threads: num_threads(),
        budget: None,
    };
    let report = run_sweep(&grid, &benches, &opts, &Registry::disabled()).expect("sweep runs");
    println!("\n{}", report.render());

    if check {
        let violations = report.check_invariants();
        for v in &violations {
            eprintln!("sweep_grid: invariant: {v}");
        }
        let seq = run_sweep(
            &grid,
            &benches,
            &SweepOptions {
                threads: 1,
                budget: None,
            },
            &Registry::disabled(),
        )
        .expect("sequential sweep runs");
        let deterministic = seq.to_json() == report.to_json();
        if !deterministic {
            eprintln!("sweep_grid: parallel and sequential sweeps disagree");
        }
        if !violations.is_empty() || !deterministic {
            std::process::exit(1);
        }
        println!("sweep_grid: invariants hold and the sweep is thread-count independent");
    }
}

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    let mut h = Harness::new();
    bench(&mut h);
    h.final_summary();
    check_and_report(check);
}
