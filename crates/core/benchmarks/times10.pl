% times10 -- symbolic differentiation of x*x*x*x*x*x*x*x*x*x with
% respect to x (Warren's DERIV family, Aquarius "times10").
% The result term's size is checked (127 nodes for the 10-fold product).

main :-
    d(x*x*x*x*x*x*x*x*x*x, x, D),
    size(D, N),
    N = 127.

d(U + V, X, DU + DV) :- !, d(U, X, DU), d(V, X, DV).
d(U - V, X, DU - DV) :- !, d(U, X, DU), d(V, X, DV).
d(U * V, X, DU * V + U * DV) :- !, d(U, X, DU), d(V, X, DV).
d(U / V, X, (DU * V - U * DV) / (V * V)) :- !, d(U, X, DU), d(V, X, DV).
d(log(U), X, DU / U) :- !, d(U, X, DU).
d(X, X, 1) :- !.
d(_, _, 0).

size(X + Y, S) :- !, size(X, A), size(Y, B), S is A + B + 1.
size(X - Y, S) :- !, size(X, A), size(Y, B), S is A + B + 1.
size(X * Y, S) :- !, size(X, A), size(Y, B), S is A + B + 1.
size(X / Y, S) :- !, size(X, A), size(Y, B), S is A + B + 1.
size(log(X), S) :- !, size(X, A), S is A + 1.
size(_, 1).
