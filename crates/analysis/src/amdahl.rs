//! Amdahl-law speed-up ceilings for the shared-memory model
//! (paper §4.2, Figure 3).
//!
//! With memory operations taking fraction `m` of sequential execution
//! and everything else enhanced by a factor `k`:
//!
//! * if memory executes *separately* from computation (the dotted curve
//!   of Figure 3): `time = m + (1-m)/k`;
//! * if memory can be *completely overlapped* with computation (the
//!   continuous curve): `time = max(m, (1-m)/k)` — which saturates at
//!   `1/m ≈ 3` for the measured `m ≈ 0.32`, the paper's headline limit.

/// Speed-up when memory runs separately from enhanced computation.
pub fn amdahl_separate(mem_fraction: f64, enhancement: f64) -> f64 {
    1.0 / (mem_fraction + (1.0 - mem_fraction) / enhancement)
}

/// Speed-up when memory fully overlaps enhanced computation.
pub fn amdahl_overlapped(mem_fraction: f64, enhancement: f64) -> f64 {
    1.0 / f64::max(mem_fraction, (1.0 - mem_fraction) / enhancement)
}

/// A sampled speed-up curve over enhancement factors.
#[derive(Clone, Debug)]
pub struct AmdahlCurve {
    /// (enhancement factor, speed-up) samples.
    pub points: Vec<(f64, f64)>,
}

impl AmdahlCurve {
    /// Samples `f` at the given enhancement factors.
    pub fn sample(mem_fraction: f64, factors: &[f64], f: fn(f64, f64) -> f64) -> AmdahlCurve {
        AmdahlCurve {
            points: factors.iter().map(|&k| (k, f(mem_fraction, k))).collect(),
        }
    }

    /// The asymptotic limit of the curve (its last sample).
    pub fn limit(&self) -> f64 {
        self.points.last().map(|&(_, s)| s).unwrap_or(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_headline_limit() {
        // memory 32% => asymptotic speed-up 1/0.32 = 3.125 ≈ 3
        let s = amdahl_overlapped(0.32, 1e9);
        assert!((s - 3.125).abs() < 1e-6);
    }

    #[test]
    fn separate_is_never_faster_than_overlapped() {
        for k in [1.0, 2.0, 4.0, 16.0] {
            assert!(amdahl_separate(0.32, k) <= amdahl_overlapped(0.32, k) + 1e-12);
        }
    }

    #[test]
    fn no_enhancement_means_no_speedup_when_separate() {
        assert!((amdahl_separate(0.32, 1.0) - 1.0).abs() < 1e-12);
        // overlapping memory with computation already helps at k=1:
        // time = max(m, 1-m) = 0.68
        assert!((amdahl_overlapped(0.32, 1.0) - 1.0 / 0.68).abs() < 1e-9);
    }

    #[test]
    fn curve_is_monotone() {
        let c = AmdahlCurve::sample(0.32, &[1.0, 2.0, 3.0, 4.0, 8.0, 16.0], amdahl_overlapped);
        for w in c.points.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
        assert!(c.limit() > 3.0);
    }
}
