//! Compiler explorer: show every intermediate representation the
//! evaluation system produces for a small program — BAM code, IntCode,
//! and the scheduled VLIW words of the hottest region.
//!
//! ```sh
//! cargo run --release -p symbol-core --example inspect_compilation
//! ```

use symbol_compactor::{try_compact, CompactMode, TracePolicy};
use symbol_core::pipeline::Compiled;
use symbol_vliw::MachineConfig;

const PROGRAM: &str = "
    main :- app([1,2], [3], R), R = [1,2,3].
    app([], L, L).
    app([X|T], L, [X|R]) :- app(T, L, R).
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let compiled = Compiled::from_source(PROGRAM)?;
    let front = compiled.front.as_ref().expect("compiled from source");

    println!("================ BAM code ================\n");
    print!(
        "{}",
        symbol_bam::pretty::program(&front.bam, front.program.symbols())
    );

    println!("=============== IntCode (first 60 ops) ===============\n");
    for line in compiled.ici.to_string().lines().take(60) {
        println!("{line}");
    }

    let run = compiled.run_sequential()?;
    let machine = MachineConfig::units(3);
    let compacted = try_compact(
        &compiled.ici,
        &run.stats,
        &machine,
        CompactMode::TraceSchedule,
        &TracePolicy::default(),
    )?;

    println!("\n=============== VLIW schedule (first 40 words) ===============\n");
    for line in compacted.program.to_string().lines().take(40) {
        println!("{line}");
    }
    println!(
        "\n{} traces, {} compensation blocks, code growth {:.2}x",
        compacted.stats.regions,
        compacted.stats.comp_blocks,
        compacted.stats.code_growth()
    );
    Ok(())
}
