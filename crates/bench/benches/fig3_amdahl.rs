//! Figure 3 — Amdahl speed-up ceilings of the shared-memory model.
//! Times the curve computation, then prints the figure from the
//! measured suite-average memory fraction.

use std::hint::black_box;

use symbol_analysis::amdahl::{amdahl_overlapped, amdahl_separate, AmdahlCurve};
use symbol_bench::timing::Harness;
use symbol_core::experiments::{measure_all, reports};

fn bench(h: &mut Harness) {
    h.bench_function("fig3_amdahl/curves", |b| {
        b.iter(|| {
            let ks: Vec<f64> = (1..=64).map(f64::from).collect();
            let a = AmdahlCurve::sample(black_box(0.32), &ks, amdahl_separate);
            let o = AmdahlCurve::sample(black_box(0.32), &ks, amdahl_overlapped);
            (a.limit(), o.limit())
        })
    });
}

fn print_report() {
    let results = measure_all().expect("suite measures");
    println!("\n{}", reports::fig3_amdahl(&results));
}

fn main() {
    let mut h = Harness::new();
    bench(&mut h);
    h.final_summary();
    print_report();
}
