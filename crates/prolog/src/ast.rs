//! Abstract syntax: terms and clauses.

use crate::symbols::{wk, Atom, SymbolTable};
use std::fmt;

/// A Prolog term.
///
/// Variables are clause-local indices assigned by the parser in order of
/// first occurrence; their source names are kept in [`Clause::var_names`]
/// for diagnostics. Lists are ordinary structures built from the `.`/2
/// functor and the `[]` atom.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Term {
    /// A variable, identified by its clause-local index.
    Var(usize),
    /// An integer constant.
    Int(i64),
    /// An atom (including `[]`).
    Atom(Atom),
    /// A compound term `f(t1, ..., tn)` with `n >= 1`.
    Struct(Atom, Vec<Term>),
}

impl Term {
    /// Builds a list cell `[head | tail]`.
    pub fn cons(head: Term, tail: Term) -> Term {
        Term::Struct(wk::DOT, vec![head, tail])
    }

    /// The empty list `[]`.
    pub fn nil() -> Term {
        Term::Atom(wk::NIL)
    }

    /// Builds a proper list from `items`.
    pub fn list(items: Vec<Term>) -> Term {
        items
            .into_iter()
            .rev()
            .fold(Term::nil(), |tail, head| Term::cons(head, tail))
    }

    /// Functor name and arity, treating atoms as arity-0 functors.
    /// Returns `None` for variables and integers.
    pub fn functor(&self) -> Option<(Atom, usize)> {
        match self {
            Term::Atom(a) => Some((*a, 0)),
            Term::Struct(f, args) => Some((*f, args.len())),
            _ => None,
        }
    }

    /// Whether the term is a variable.
    pub fn is_var(&self) -> bool {
        matches!(self, Term::Var(_))
    }

    /// Whether the term contains no variables.
    pub fn is_ground(&self) -> bool {
        match self {
            Term::Var(_) => false,
            Term::Int(_) | Term::Atom(_) => true,
            Term::Struct(_, args) => args.iter().all(Term::is_ground),
        }
    }

    /// All variable indices occurring in the term, in first-occurrence
    /// order, appended to `out` (duplicates skipped).
    pub fn collect_vars(&self, out: &mut Vec<usize>) {
        match self {
            Term::Var(v) => {
                if !out.contains(v) {
                    out.push(*v);
                }
            }
            Term::Int(_) | Term::Atom(_) => {}
            Term::Struct(_, args) => {
                for a in args {
                    a.collect_vars(out);
                }
            }
        }
    }

    /// The largest variable index occurring in the term, if any.
    pub fn max_var(&self) -> Option<usize> {
        match self {
            Term::Var(v) => Some(*v),
            Term::Int(_) | Term::Atom(_) => None,
            Term::Struct(_, args) => args.iter().filter_map(Term::max_var).max(),
        }
    }

    /// Renders the term for diagnostics using `symbols` for atom names.
    pub fn display<'a>(&'a self, symbols: &'a SymbolTable) -> TermDisplay<'a> {
        TermDisplay {
            term: self,
            symbols,
        }
    }
}

/// Helper returned by [`Term::display`].
#[derive(Debug)]
pub struct TermDisplay<'a> {
    term: &'a Term,
    symbols: &'a SymbolTable,
}

impl fmt::Display for TermDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_term(f, self.term, self.symbols)
    }
}

fn write_term(f: &mut fmt::Formatter<'_>, t: &Term, s: &SymbolTable) -> fmt::Result {
    match t {
        Term::Var(v) => write!(f, "_V{v}"),
        Term::Int(i) => write!(f, "{i}"),
        Term::Atom(a) => write!(f, "{}", s.name(*a)),
        Term::Struct(func, args) if *func == wk::DOT && args.len() == 2 => {
            // list syntax
            write!(f, "[")?;
            write_term(f, &args[0], s)?;
            let mut tail = &args[1];
            loop {
                match tail {
                    Term::Atom(a) if *a == wk::NIL => break,
                    Term::Struct(func, args) if *func == wk::DOT && args.len() == 2 => {
                        write!(f, ",")?;
                        write_term(f, &args[0], s)?;
                        tail = &args[1];
                    }
                    other => {
                        write!(f, "|")?;
                        write_term(f, other, s)?;
                        break;
                    }
                }
            }
            write!(f, "]")
        }
        Term::Struct(func, args) => {
            write!(f, "{}(", s.name(*func))?;
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write_term(f, a, s)?;
            }
            write!(f, ")")
        }
    }
}

/// A clause `Head :- Body.` in flattened form.
///
/// The body is a sequence of goals; facts have an empty body. Control
/// constructs have already been removed by the normalizer, so every goal
/// is a plain call, a builtin, or a cut.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Clause {
    /// Clause head (atom or structure; never a variable or integer).
    pub head: Term,
    /// Body goals in execution order.
    pub body: Vec<Term>,
    /// Source names of the clause-local variables, indexed by `Var` id.
    pub var_names: Vec<String>,
}

impl Clause {
    /// Creates a clause, validating that the head is callable.
    ///
    /// # Panics
    ///
    /// Panics if the head is a variable or integer (callers parse heads
    /// and can never produce one).
    pub fn new(head: Term, body: Vec<Term>, var_names: Vec<String>) -> Self {
        assert!(
            head.functor().is_some(),
            "clause head must be an atom or structure"
        );
        Clause {
            head,
            body,
            var_names,
        }
    }

    /// The number of distinct variables in the clause.
    pub fn num_vars(&self) -> usize {
        self.var_names.len()
    }

    /// Name/arity of the predicate this clause belongs to.
    pub fn pred(&self) -> (Atom, usize) {
        self.head.functor().expect("validated in new")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn list_builder_round_trips() {
        let l = Term::list(vec![Term::Int(1), Term::Int(2)]);
        assert_eq!(
            l,
            Term::cons(Term::Int(1), Term::cons(Term::Int(2), Term::nil()))
        );
    }

    #[test]
    fn functor_of_atom_and_struct() {
        let mut s = SymbolTable::new();
        let foo = s.intern("foo");
        assert_eq!(Term::Atom(foo).functor(), Some((foo, 0)));
        assert_eq!(
            Term::Struct(foo, vec![Term::Int(1)]).functor(),
            Some((foo, 1))
        );
        assert_eq!(Term::Var(0).functor(), None);
        assert_eq!(Term::Int(3).functor(), None);
    }

    #[test]
    fn groundness() {
        let mut s = SymbolTable::new();
        let f = s.intern("f");
        assert!(Term::Struct(f, vec![Term::Int(1)]).is_ground());
        assert!(!Term::Struct(f, vec![Term::Var(0)]).is_ground());
    }

    #[test]
    fn collect_vars_dedups_in_order() {
        let mut s = SymbolTable::new();
        let f = s.intern("f");
        let t = Term::Struct(f, vec![Term::Var(2), Term::Var(0), Term::Var(2)]);
        let mut vars = Vec::new();
        t.collect_vars(&mut vars);
        assert_eq!(vars, vec![2, 0]);
    }

    #[test]
    fn display_list_syntax() {
        let s = SymbolTable::new();
        let l = Term::list(vec![Term::Int(1), Term::Int(2)]);
        assert_eq!(format!("{}", l.display(&s)), "[1,2]");
        let partial = Term::cons(Term::Int(1), Term::Var(0));
        assert_eq!(format!("{}", partial.display(&s)), "[1|_V0]");
    }

    #[test]
    #[should_panic(expected = "clause head")]
    fn clause_head_must_be_callable() {
        Clause::new(Term::Var(0), vec![], vec!["X".into()]);
    }
}
