//! Atomic metric cells and their public handles.
//!
//! Every metric is an atomics-only cell shared between the registry
//! (which snapshots it) and any number of handle clones (which update
//! it). Updates are single `fetch_add`/`store` operations — no locks on
//! the hot path — and a handle obtained from a disabled registry is a
//! no-op, so instrumented code never branches on "is observability on"
//! beyond the null check the compiler folds away.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// Number of histogram buckets: one for zero plus one per power of two
/// up to `2^63..`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// The identity of a metric: its name plus a sorted label set.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub(crate) struct MetricId {
    pub name: String,
    /// Sorted by key (then value); sorted at construction so snapshot
    /// output is canonical.
    pub labels: Vec<(String, String)>,
}

impl MetricId {
    pub fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        MetricId {
            name: name.to_string(),
            labels,
        }
    }
}

#[derive(Debug)]
pub(crate) struct CounterCell {
    pub id: MetricId,
    pub value: AtomicU64,
}

#[derive(Debug)]
pub(crate) struct GaugeCell {
    pub id: MetricId,
    pub value: AtomicI64,
}

#[derive(Debug)]
pub(crate) struct HistogramCell {
    pub id: MetricId,
    pub count: AtomicU64,
    pub sum: AtomicU64,
    pub buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl HistogramCell {
    pub fn new(id: MetricId) -> Self {
        HistogramCell {
            id,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// Bucket index of a recorded value: `0` for zero, else
/// `floor(log2(v)) + 1`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive `[lo, hi]` value range of bucket `i`.
///
/// # Panics
///
/// Panics if `i >= HISTOGRAM_BUCKETS`.
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    assert!(i < HISTOGRAM_BUCKETS, "bucket index out of range");
    if i == 0 {
        (0, 0)
    } else if i == 64 {
        (1 << 63, u64::MAX)
    } else {
        (1 << (i - 1), (1 << i) - 1)
    }
}

/// A monotonically increasing counter. Cloneable; a handle from a
/// disabled registry ignores updates.
#[derive(Clone, Debug, Default)]
pub struct Counter(pub(crate) Option<Arc<CounterCell>>);

impl Counter {
    /// A no-op counter (what disabled registries hand out).
    pub fn noop() -> Self {
        Counter(None)
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value (0 for a no-op handle).
    pub fn get(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |c| c.value.load(Ordering::Relaxed))
    }
}

/// A gauge holding the last `set` value (or a running signed sum).
#[derive(Clone, Debug, Default)]
pub struct Gauge(pub(crate) Option<Arc<GaugeCell>>);

impl Gauge {
    /// A no-op gauge.
    pub fn noop() -> Self {
        Gauge(None)
    }

    /// Sets the value.
    #[inline]
    pub fn set(&self, v: i64) {
        if let Some(g) = &self.0 {
            g.value.store(v, Ordering::Relaxed);
        }
    }

    /// Adds a (possibly negative) delta.
    #[inline]
    pub fn add(&self, d: i64) {
        if let Some(g) = &self.0 {
            g.value.fetch_add(d, Ordering::Relaxed);
        }
    }

    /// Current value (0 for a no-op handle).
    pub fn get(&self) -> i64 {
        self.0
            .as_ref()
            .map_or(0, |g| g.value.load(Ordering::Relaxed))
    }
}

/// A log2-bucketed histogram of `u64` samples (typically nanoseconds
/// or counts). Bucket `0` holds zeros; bucket `i ≥ 1` holds values in
/// `[2^(i-1), 2^i)`.
#[derive(Clone, Debug, Default)]
pub struct Histogram(pub(crate) Option<Arc<HistogramCell>>);

impl Histogram {
    /// A no-op histogram.
    pub fn noop() -> Self {
        Histogram(None)
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        if let Some(h) = &self.0 {
            h.count.fetch_add(1, Ordering::Relaxed);
            h.sum.fetch_add(v, Ordering::Relaxed);
            h.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |h| h.count.load(Ordering::Relaxed))
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> u64 {
        self.0.as_ref().map_or(0, |h| h.sum.load(Ordering::Relaxed))
    }

    /// Mean sample, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn bucket_bounds_partition_the_u64_range() {
        assert_eq!(bucket_bounds(0), (0, 0));
        assert_eq!(bucket_bounds(1), (1, 1));
        assert_eq!(bucket_bounds(2), (2, 3));
        assert_eq!(bucket_bounds(64), (1 << 63, u64::MAX));
        // Every bucket's hi + 1 is the next bucket's lo, and every value
        // lands in the bucket whose bounds contain it.
        for i in 0..HISTOGRAM_BUCKETS - 1 {
            let (_, hi) = bucket_bounds(i);
            let (lo_next, _) = bucket_bounds(i + 1);
            assert_eq!(hi + 1, lo_next, "bucket {i} does not abut bucket {}", i + 1);
        }
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1000, 1 << 40, u64::MAX] {
            let (lo, hi) = bucket_bounds(bucket_index(v));
            assert!(lo <= v && v <= hi, "value {v} outside its bucket");
        }
    }

    #[test]
    fn noop_handles_swallow_updates() {
        let c = Counter::noop();
        c.add(5);
        assert_eq!(c.get(), 0);
        let g = Gauge::noop();
        g.set(9);
        assert_eq!(g.get(), 0);
        let h = Histogram::noop();
        h.record(1);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn metric_ids_sort_their_labels() {
        let id = MetricId::new("m", &[("z", "1"), ("a", "2")]);
        assert_eq!(id.labels[0].0, "a");
        assert_eq!(id.labels[1].0, "z");
    }
}
