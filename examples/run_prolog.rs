//! Run an arbitrary Prolog file on the SYMBOL evaluation system.
//!
//! The file must define `main/0`; the query's success/failure is
//! reported together with cycle counts for the sequential machine and
//! a chosen VLIW width.
//!
//! ```sh
//! cargo run --release -p symbol-core --example run_prolog -- path/to/file.pl 3
//! ```

use symbol_compactor::{compact, sequential_cycles, CompactMode, SeqDurations, TracePolicy};
use symbol_core::pipeline::{Compiled, PipelineError};
use symbol_vliw::{MachineConfig, SimConfig, SimOutcome, VliwSim};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let path = args.next().ok_or("usage: run_prolog <file.pl> [units]")?;
    let units: usize = args.next().map(|u| u.parse()).transpose()?.unwrap_or(3);

    let src = std::fs::read_to_string(&path)?;
    let compiled = Compiled::from_source(&src)?;

    match compiled.run_sequential() {
        Ok(run) => {
            let seq = sequential_cycles(&compiled.ici, &run.stats, &SeqDurations::default());
            println!("main/0 succeeded; sequential: {seq} cycles");

            let machine = MachineConfig::units(units);
            let compacted = compact(
                &compiled.ici,
                &run.stats,
                &machine,
                CompactMode::TraceSchedule,
                &TracePolicy::default(),
            );
            let result = VliwSim::new(&compacted.program, machine, &compiled.layout)
                .run(&SimConfig::default())?;
            assert_eq!(
                result.outcome,
                SimOutcome::Success,
                "the scheduled code must agree with sequential execution"
            );
            println!(
                "{units}-unit VLIW: {} cycles, speed-up {:.2}",
                result.cycles,
                seq as f64 / result.cycles as f64
            );
        }
        Err(PipelineError::WrongAnswer) => {
            println!("main/0 failed (no solution)");
        }
        Err(e) => return Err(e.into()),
    }
    Ok(())
}
