//! Property test: for *any* trace policy and machine configuration the
//! compactor produces code that the validating simulator accepts and
//! that computes the same answer as sequential execution.

use proptest::prelude::*;

use symbol_compactor::{compact, CompactMode, TracePolicy};
use symbol_intcode::{Emulator, ExecConfig, Layout, Outcome};
use symbol_prolog::PredId;
use symbol_vliw::{MachineConfig, SimConfig, SimOutcome, VliwSim};

const PROGRAM: &str = "
    main :- perm([1,2,3,4], P), check(P), fail. main.
    perm([], []).
    perm(L, [X|P]) :- sel(X, L, R), perm(R, P).
    sel(X, [X|T], T).
    sel(X, [Y|T], [Y|R]) :- sel(X, T, R).
    check([A,B|T]) :- A < B, check([B|T]).
    check([_]).
";

fn prepared() -> (
    symbol_intcode::IciProgram,
    symbol_intcode::ExecStats,
    Layout,
    Outcome,
) {
    let program = symbol_prolog::parse_program(PROGRAM).expect("parse");
    let bam = symbol_bam::compile(&program).expect("compile");
    let main = PredId::new(program.symbols().lookup("main").expect("main"), 0);
    let layout = Layout {
        heap_size: 1 << 16,
        env_size: 1 << 14,
        cp_size: 1 << 14,
        trail_size: 1 << 14,
        pdl_size: 1 << 12,
    };
    let ici = symbol_intcode::translate(&bam, main, &layout).expect("translate");
    let run = Emulator::new(&ici, &layout)
        .run(&ExecConfig::default())
        .expect("sequential");
    (ici, run.stats, layout, run.outcome)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn any_policy_and_machine_preserve_semantics(
        units in 1usize..6,
        mem_ports in 1usize..4,
        multiway in any::<bool>(),
        speculate in any::<bool>(),
        tail_dup_ops in 0usize..64,
        max_blocks in 2usize..48,
        penalty in 0u32..3,
        mode_sel in 0usize..3,
    ) {
        let (ici, stats, layout, seq_outcome) = prepared();
        let machine = MachineConfig {
            mem_ports,
            multiway_branch: multiway,
            taken_branch_penalty: penalty,
            ..MachineConfig::units(units)
        };
        let policy = TracePolicy {
            tail_dup_ops,
            max_blocks,
            speculate,
            ..TracePolicy::default()
        };
        let mode = [
            CompactMode::TraceSchedule,
            CompactMode::BasicBlock,
            CompactMode::BamGroups,
        ][mode_sel];
        let compacted = compact(&ici, &stats, &machine, mode, &policy);
        let result = VliwSim::new(&compacted.program, machine, &layout)
            .run(&SimConfig::default())
            .expect("simulator accepts the schedule");
        let want = match seq_outcome {
            Outcome::Success => SimOutcome::Success,
            Outcome::Failure => SimOutcome::Failure,
        };
        prop_assert_eq!(result.outcome, want);
        // more resources never slow things past a 1-unit machine by
        // construction, but at minimum the schedule terminates with a
        // plausible cycle count
        prop_assert!(result.cycles > 0);
    }
}
