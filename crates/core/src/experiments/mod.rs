//! Experiment drivers: everything needed to regenerate the paper's
//! tables and figures (see DESIGN.md's experiment index).
//!
//! [`measure`] runs one benchmark through the full evaluation system —
//! sequential emulation, the BAM cost model, basic-block and trace
//! compaction, and the 1–5 unit sweep — and returns every number the
//! reports consume. [`measure_all`] does it for the whole suite.

pub mod ablation;
pub mod reports;

use symbol_analysis::{ClassMix, PredictStats};
use symbol_compactor::{
    compact, equal_duration_cycles, sequential_cycles, CompactMode, SeqDurations, TracePolicy,
};
use symbol_vliw::{MachineConfig, SimConfig, SimOutcome, VliwSim};

use crate::benchmarks::Benchmark;
use crate::pipeline::{Compiled, PipelineError};

/// Unit counts of the Table 3 sweep.
pub const UNIT_SWEEP: [usize; 5] = [1, 2, 3, 4, 5];

/// Everything measured for one benchmark.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Benchmark name.
    pub name: &'static str,
    /// Executed ops under the equal-duration hypothesis (Figure 2).
    pub ops: u64,
    /// Sequential-machine cycles (mem/ctrl = 2, rest 1).
    pub seq_cycles: u64,
    /// Dynamic instruction-class mix.
    pub mix: ClassMix,
    /// Execution-weighted average probability of faulty prediction.
    pub pfp_average: f64,
    /// Histogram of P_fp over [0, 0.5] (20 bins, Figure 4).
    pub pfp_histogram: Vec<f64>,
    /// BAM cost-model cycles.
    pub bam_cycles: u64,
    /// Trace-scheduled cycles for 1..=5 units.
    pub unit_cycles: Vec<u64>,
    /// Basic-block compaction on the unbounded machine (Table 1).
    pub bb_unbounded_cycles: u64,
    /// Trace scheduling on the unbounded machine (Table 1).
    pub trace_unbounded_cycles: u64,
    /// Execution-weighted average trace length in ops.
    pub trace_length: f64,
    /// Execution-weighted average basic-block length in ops.
    pub block_length: f64,
    /// Static code growth of trace scheduling (compensation +
    /// duplication copies).
    pub code_growth: f64,
    /// Resource utilization on the 3-unit machine: fraction of
    /// memory / ALU / move / control slot-cycles used (paper §3.2's
    /// simulator statistics).
    pub utilization3: [f64; 4],
    /// Operations issued per cycle on the 3-unit machine.
    pub issue_rate3: f64,
}

impl BenchResult {
    /// Speed-up of the `units`-unit VLIW over the sequential machine.
    pub fn unit_speedup(&self, units: usize) -> f64 {
        self.seq_cycles as f64 / self.unit_cycles[units - 1] as f64
    }

    /// Speed-up of the BAM model over the sequential machine.
    pub fn bam_speedup(&self) -> f64 {
        self.seq_cycles as f64 / self.bam_cycles as f64
    }

    /// Table 1 speed-ups: (trace, basic-block) on the unbounded
    /// shared-memory machine.
    pub fn unbounded_speedups(&self) -> (f64, f64) {
        (
            self.seq_cycles as f64 / self.trace_unbounded_cycles as f64,
            self.seq_cycles as f64 / self.bb_unbounded_cycles as f64,
        )
    }

    /// SYMBOL-3 absolute time in milliseconds (3 units at 30 MHz).
    pub fn symbol3_ms(&self) -> f64 {
        self.unit_cycles[2] as f64 / crate::benchmarks::paper::SYMBOL3_CLOCK_HZ * 1e3
    }
}

/// Measures one benchmark through every machine configuration.
///
/// Each simulated configuration re-checks the program's answer; a
/// mismatch is reported as [`PipelineError::WrongAnswer`].
///
/// # Errors
///
/// Propagates compilation and execution errors.
pub fn measure(bench: &Benchmark) -> Result<BenchResult, PipelineError> {
    let compiled = Compiled::from_source(bench.source)?;
    measure_compiled(bench.name, &compiled)
}

/// [`measure`] for an already-compiled program.
///
/// # Errors
///
/// Propagates execution errors; see [`measure`].
pub fn measure_compiled(
    name: &'static str,
    compiled: &Compiled,
) -> Result<BenchResult, PipelineError> {
    let run = compiled.run_sequential()?;
    let seq_cycles = sequential_cycles(&compiled.ici, &run.stats, &SeqDurations::default());
    let mix = ClassMix::measure(&compiled.ici, &run.stats);
    let predict = PredictStats::measure(&compiled.ici, &run.stats);
    let policy = TracePolicy::default();

    let simulate = |mode: CompactMode,
                    machine: MachineConfig|
     -> Result<(symbol_vliw::SimResult, f64, f64), PipelineError> {
        let compacted = compact(&compiled.ici, &run.stats, &machine, mode, &policy);
        let result = VliwSim::new(&compacted.program, machine, &compiled.layout)
            .run(&SimConfig::default())?;
        if result.outcome != SimOutcome::Success {
            return Err(PipelineError::WrongAnswer);
        }
        Ok((
            result,
            compacted.stats.avg_region_len,
            compacted.stats.code_growth(),
        ))
    };

    let (bam_result, block_length, _) = simulate(CompactMode::BamGroups, MachineConfig::bam())?;
    let (bb_unbounded, _, _) = simulate(CompactMode::BasicBlock, MachineConfig::unbounded())?;
    let (trace_unbounded, trace_length, code_growth) =
        simulate(CompactMode::TraceSchedule, MachineConfig::unbounded())?;
    let mut unit_cycles = Vec::new();
    let mut utilization3 = [0.0; 4];
    let mut issue_rate3 = 0.0;
    for units in UNIT_SWEEP {
        let machine = MachineConfig::units(units);
        let (r, _, _) = simulate(CompactMode::TraceSchedule, machine)?;
        if units == 3 {
            use symbol_intcode::OpClass::*;
            utilization3 = [
                r.utilization(&machine, Memory),
                r.utilization(&machine, Alu),
                r.utilization(&machine, Move),
                r.utilization(&machine, Control),
            ];
            issue_rate3 = r.issue_rate();
        }
        unit_cycles.push(r.cycles);
    }

    Ok(BenchResult {
        name,
        ops: equal_duration_cycles(&run.stats),
        seq_cycles,
        mix,
        pfp_average: predict.average(),
        pfp_histogram: predict.histogram(20).counts,
        bam_cycles: bam_result.cycles,
        unit_cycles,
        bb_unbounded_cycles: bb_unbounded.cycles,
        trace_unbounded_cycles: trace_unbounded.cycles,
        trace_length,
        block_length,
        code_growth,
        utilization3,
        issue_rate3,
    })
}

/// Measures the entire benchmark suite (in table order). Benchmarks
/// are measured on parallel threads — each measurement is independent
/// (own compilation, own simulator state).
///
/// # Errors
///
/// Fails if any benchmark does not compile, run and re-verify under
/// every configuration.
pub fn measure_all() -> Result<Vec<BenchResult>, PipelineError> {
    let handles: Vec<_> = crate::benchmarks::ALL
        .iter()
        .map(|b| std::thread::spawn(move || measure(b)))
        .collect();
    handles
        .into_iter()
        .map(|h| h.join().expect("measurement thread panicked"))
        .collect()
}
