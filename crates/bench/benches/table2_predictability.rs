//! Table 2 — probability of faulty branch prediction. Times the
//! predictability measurement, then regenerates the table.

use criterion::{criterion_group, Criterion};
use std::hint::black_box;

use symbol_analysis::PredictStats;
use symbol_bench::{compiled, TIMING_SUBSET};
use symbol_core::experiments::{measure_all, reports};

fn bench(c: &mut Criterion) {
    for name in TIMING_SUBSET {
        let (cc, run) = compiled(name);
        c.bench_function(&format!("table2_pfp/{name}"), |b| {
            b.iter(|| {
                PredictStats::measure(black_box(&cc.ici), black_box(&run.stats)).average()
            })
        });
    }
}

fn print_report() {
    let results = measure_all().expect("suite measures");
    println!("\n{}", reports::table2_predictability(&results));
}

criterion_group!(benches, bench);
fn main() {
    benches();
    criterion::Criterion::default().final_summary();
    print_report();
}
