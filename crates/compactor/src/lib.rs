//! # symbol-compactor
//!
//! The back-end parallelizing compiler of the SYMBOL evaluation system
//! (paper §3.2): control-flow graph construction, liveness analysis,
//! trace selection driven by the sequential profile, a list scheduler
//! with speculation and compensation code, and the sequential/BAM cost
//! models the experiments compare against.
//!
//! The one-call entry point is [`compact`], which turns a profiled
//! IntCode program into a scheduled [`symbol_vliw::VliwProgram`] for a
//! given [`symbol_vliw::MachineConfig`].

pub mod cfg;
pub mod copyprop;
pub mod emit;
pub mod liveness;
pub mod pressure;
pub mod regalloc;
pub mod schedule;
pub mod seqcost;
pub mod trace;
pub mod verify;

pub use cfg::{Block, Cfg, Edge};
pub use copyprop::{copy_propagate, try_copy_propagate};
pub use emit::{compact, try_compact, CompactMode, CompactStats, Compacted};
pub use pressure::{measure as measure_pressure, Pressure};
pub use regalloc::{allocate as allocate_registers, OutOfRegisters};
pub use schedule::{ScheduleOptions, ScheduledTrace};
pub use seqcost::{equal_duration_cycles, sequential_cycles, SeqDurations};
pub use trace::{Trace, TracePolicy};
pub use verify::{verify_program, Violation};
