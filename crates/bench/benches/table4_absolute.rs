//! Table 4 — absolute execution times against the paper's published
//! machine measurements. Times the SYMBOL-3 simulation, then
//! regenerates the table.

use std::hint::black_box;

use symbol_bench::compiled;
use symbol_bench::timing::Harness;
use symbol_compactor::{compact, CompactMode, TracePolicy};
use symbol_core::experiments::{measure_all, reports};
use symbol_vliw::{MachineConfig, SimConfig, VliwSim};

fn bench(h: &mut Harness) {
    let (cc, run) = compiled("serialise");
    let machine = MachineConfig::units(3);
    let compacted = compact(
        &cc.ici,
        &run.stats,
        &machine,
        CompactMode::TraceSchedule,
        &TracePolicy::default(),
    );
    h.bench_function("table4/symbol3_simulation/serialise", |b| {
        b.iter(|| {
            VliwSim::new(black_box(&compacted.program), machine, &cc.layout)
                .run(&SimConfig::default())
                .expect("simulates")
                .cycles
        })
    });
}

fn print_report() {
    let results = measure_all().expect("suite measures");
    println!("\n{}", reports::table4_absolute(&results));
}

fn main() {
    let mut h = Harness::new();
    bench(&mut h);
    h.final_summary();
    print_report();
}
