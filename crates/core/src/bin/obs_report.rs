//! Run the benchmark suite under full observability and emit the run
//! report: a human summary table, the per-PC hot-block report, the
//! stable `metrics.json`, the timeline ndjson, and a Chrome Trace
//! Format JSON for Perfetto.
//!
//! ```sh
//! cargo run --release -p symbol-core --bin obs_report -- --out report/
//! cargo run --release -p symbol-core --bin obs_report -- --check-schema
//! cargo run --release -p symbol-core --bin obs_report -- --print-schema
//! cargo run --release -p symbol-core --bin obs_report -- --flight dump.ndjson
//! ```
//!
//! `--check-schema` exits non-zero when the metric schema drifted from
//! the checked-in `OBS_SCHEMA.json` — or when the freshly produced
//! `metrics.json` / timeline dumps fail deep validation (missing or
//! non-finite quantiles, malformed timeline lines). `--print-schema`
//! prints the current schema (redirect it over `OBS_SCHEMA.json` to
//! re-pin). `--flight FILE` and `--timeline FILE` render an existing
//! incident dump without running the suite.

use std::path::PathBuf;
use std::process::ExitCode;

use symbol_core::obs_report::{
    collect, render_flight_dump, render_sweep_report, render_timeline, validate_dump,
    validate_timeline, ReportOptions,
};

fn usage() -> ! {
    eprintln!(
        "usage: obs_report [--out DIR] [--threads N] [--hot N] \
         [--quick] [--check-schema] [--print-schema] \
         [--flight FILE] [--timeline FILE] [--sweep FILE]"
    );
    std::process::exit(2);
}

/// Renders a dump file with `render` and prints it; shared by the
/// `--flight` and `--timeline` modes.
fn render_file(path: &PathBuf, render: fn(&str) -> Result<String, String>) -> ExitCode {
    let contents = match std::fs::read_to_string(path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("obs_report: {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    match render(&contents) {
        Ok(rendered) => {
            print!("{rendered}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("obs_report: {}: {e}", path.display());
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let mut opts = ReportOptions::default();
    let mut out_dir: Option<PathBuf> = None;
    let mut check_schema = false;
    let mut print_schema = false;
    let mut flight_file: Option<PathBuf> = None;
    let mut timeline_file: Option<PathBuf> = None;
    let mut sweep_file: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_dir = Some(PathBuf::from(args.next().unwrap_or_else(|| usage()))),
            "--threads" => {
                opts.threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--hot" => {
                opts.hot_pcs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--quick" => opts.benches = &symbol_core::benchmarks::ALL[..1],
            "--check-schema" => check_schema = true,
            "--print-schema" => print_schema = true,
            "--flight" => {
                flight_file = Some(PathBuf::from(args.next().unwrap_or_else(|| usage())));
            }
            "--timeline" => {
                timeline_file = Some(PathBuf::from(args.next().unwrap_or_else(|| usage())));
            }
            "--sweep" => {
                sweep_file = Some(PathBuf::from(args.next().unwrap_or_else(|| usage())));
            }
            _ => usage(),
        }
    }

    // Render-only modes: no suite run.
    if let Some(path) = &flight_file {
        return render_file(path, render_flight_dump);
    }
    if let Some(path) = &timeline_file {
        return render_file(path, render_timeline);
    }
    if let Some(path) = &sweep_file {
        return render_file(path, render_sweep_report);
    }

    let report = match collect(&opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("obs_report: {e}");
            return ExitCode::FAILURE;
        }
    };

    if print_schema {
        print!("{}", report.schema_json);
        return ExitCode::SUCCESS;
    }

    println!("{}", report.human_table());
    println!("{}", report.hot_block_report());
    println!(
        "{} counters, {} gauges, {} histograms in the metric snapshot",
        report.snapshot.counters.len(),
        report.snapshot.gauges.len(),
        report.snapshot.histograms.len()
    );

    if let Some(dir) = out_dir {
        if let Err(e) = std::fs::create_dir_all(&dir)
            .and_then(|()| std::fs::write(dir.join("metrics.json"), &report.metrics_json))
            .and_then(|()| std::fs::write(dir.join("trace.json"), &report.trace_json))
            .and_then(|()| std::fs::write(dir.join("timeline.ndjson"), &report.timeline_ndjson))
        {
            eprintln!("obs_report: writing report: {e}");
            return ExitCode::FAILURE;
        }
        println!(
            "wrote {}, {} and {} (load trace.json in Perfetto)",
            dir.join("metrics.json").display(),
            dir.join("trace.json").display(),
            dir.join("timeline.ndjson").display()
        );
    }

    if check_schema {
        if let Some(drift) = report.schema_drift() {
            eprintln!("{drift}");
            return ExitCode::FAILURE;
        }
        // The line diff proves the shape; the deep checks prove the
        // v2 payloads (quantiles, timeline ticks) are really there.
        if let Err(e) = validate_dump(&report.metrics_json) {
            eprintln!("obs_report: dump validation failed: {e}");
            return ExitCode::FAILURE;
        }
        if let Err(e) = validate_timeline(&report.timeline_ndjson) {
            eprintln!("obs_report: timeline validation failed: {e}");
            return ExitCode::FAILURE;
        }
        println!("metrics.json schema matches OBS_SCHEMA.json; dump and timeline validate");
    }
    ExitCode::SUCCESS
}
