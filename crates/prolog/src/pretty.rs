//! Rendering programs back to parseable source text.
//!
//! The fuzzing subsystem shrinks failing cases *structurally* — it
//! deletes clauses and goals from the parsed [`Program`] — and then
//! needs the mutated program as ordinary source text again, both to
//! re-run the whole pipeline (which starts from text) and to check the
//! minimal reproducer into the corpus. This module is that inverse of
//! the parser: for every program the front end can produce,
//! [`program_to_source`] emits text that re-parses to a structurally
//! identical program.
//!
//! Rendering rules:
//!
//! * variables print as `_V<i>` (always a valid variable token, stable
//!   under re-parsing regardless of the original source names),
//! * known infix operators print infix and **fully parenthesized**, so
//!   no priority reasoning is needed: `(1 + (2 * 3))`,
//! * negative integers parenthesize so prefix-minus folding re-reads
//!   them as literals,
//! * lists print in `[a,b|T]` syntax, `!` and `true`/`fail` print
//!   bare, and
//! * atoms that are not valid unquoted tokens (e.g. the normalizer's
//!   `$ite_0` auxiliaries) print single-quoted with escapes.

use crate::ast::Term;
use crate::ops;
use crate::program::Program;
use crate::symbols::{wk, SymbolTable};
use std::fmt::Write as _;

/// Renders a whole program as parseable source text, one clause per
/// line, predicates in first-definition order.
pub fn program_to_source(program: &Program) -> String {
    let mut out = String::new();
    for pred in program.predicates() {
        for clause in &pred.clauses {
            write_term(&mut out, &clause.head, program.symbols());
            if !clause.body.is_empty() {
                out.push_str(" :- ");
                for (i, goal) in clause.body.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    write_term(&mut out, goal, program.symbols());
                }
            }
            out.push_str(".\n");
        }
    }
    out
}

/// Renders one term as parseable source text.
pub fn term_to_source(term: &Term, symbols: &SymbolTable) -> String {
    let mut out = String::new();
    write_term(&mut out, term, symbols);
    out
}

/// Whether `name` lexes back as a single unquoted atom token: a
/// lower-case alphanumeric word, a run of symbolic characters, or one
/// of the solo atoms.
fn is_plain_atom(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        None => false,
        Some(c) if c.is_ascii_lowercase() => {
            name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
        }
        _ => {
            matches!(name, "!" | ";" | "[]" | "{}")
                || name.chars().all(|c| "+-*/\\^<>=~:.?@#&".contains(c))
        }
    }
}

fn write_atom(out: &mut String, name: &str) {
    if is_plain_atom(name) {
        out.push_str(name);
    } else {
        out.push('\'');
        for c in name.chars() {
            match c {
                '\'' => out.push_str("\\'"),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('\'');
    }
}

fn write_term(out: &mut String, t: &Term, s: &SymbolTable) {
    match t {
        Term::Var(v) => {
            let _ = write!(out, "_V{v}");
        }
        Term::Int(i) if *i < 0 => {
            let _ = write!(out, "({i})");
        }
        Term::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Term::Atom(a) => write_atom(out, s.name(*a)),
        Term::Struct(f, args) if *f == wk::DOT && args.len() == 2 => {
            out.push('[');
            write_term(out, &args[0], s);
            let mut tail = &args[1];
            loop {
                match tail {
                    Term::Atom(a) if *a == wk::NIL => break,
                    Term::Struct(f, args) if *f == wk::DOT && args.len() == 2 => {
                        out.push(',');
                        write_term(out, &args[0], s);
                        tail = &args[1];
                    }
                    other => {
                        out.push('|');
                        write_term(out, other, s);
                        break;
                    }
                }
            }
            out.push(']');
        }
        Term::Struct(f, args) => {
            let name = s.name(*f);
            if args.len() == 2 && ops::infix(name).is_some() {
                out.push('(');
                write_term(out, &args[0], s);
                out.push(' ');
                out.push_str(name);
                out.push(' ');
                write_term(out, &args[1], s);
                out.push(')');
            } else if args.len() == 1 && ops::prefix(name).is_some() {
                out.push('(');
                out.push_str(name);
                out.push(' ');
                write_term(out, &args[0], s);
                out.push(')');
            } else {
                write_atom(out, name);
                out.push('(');
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_term(out, a, s);
                }
                out.push(')');
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_program;

    /// Structural equality of two programs modulo variable names: same
    /// predicates in the same order, clause for clause and term for
    /// term (atom ids compared through their names).
    fn same_shape(a: &Program, b: &Program) -> bool {
        let pa: Vec<_> = a.predicates().collect();
        let pb: Vec<_> = b.predicates().collect();
        if pa.len() != pb.len() {
            return false;
        }
        pa.iter().zip(&pb).all(|(x, y)| {
            a.symbols().name(x.id.name) == b.symbols().name(y.id.name)
                && x.id.arity == y.id.arity
                && x.clauses.len() == y.clauses.len()
                && x.clauses.iter().zip(&y.clauses).all(|(c, d)| {
                    same_term(&c.head, a.symbols(), &d.head, b.symbols())
                        && c.body.len() == d.body.len()
                        && c.body
                            .iter()
                            .zip(&d.body)
                            .all(|(t, u)| same_term(t, a.symbols(), u, b.symbols()))
                })
        })
    }

    fn same_term(t: &Term, ts: &SymbolTable, u: &Term, us: &SymbolTable) -> bool {
        match (t, u) {
            (Term::Var(a), Term::Var(b)) => a == b,
            (Term::Int(a), Term::Int(b)) => a == b,
            (Term::Atom(a), Term::Atom(b)) => ts.name(*a) == us.name(*b),
            (Term::Struct(f, fa), Term::Struct(g, ga)) => {
                ts.name(*f) == us.name(*g)
                    && fa.len() == ga.len()
                    && fa.iter().zip(ga).all(|(x, y)| same_term(x, ts, y, us))
            }
            _ => false,
        }
    }

    fn round_trips(src: &str) {
        let p1 = parse_program(src).expect("original parses");
        let text = program_to_source(&p1);
        let p2 = parse_program(&text).unwrap_or_else(|e| {
            panic!("rendered text does not parse: {e}\n--- rendered ---\n{text}")
        });
        assert!(
            same_shape(&p1, &p2),
            "round trip changed the program\n--- rendered ---\n{text}"
        );
        // Rendering is a fixpoint: pretty(parse(pretty(p))) == pretty(p).
        assert_eq!(text, program_to_source(&p2), "rendering is not stable");
    }

    #[test]
    fn facts_and_rules_round_trip() {
        round_trips(
            "app([], L, L). app([X|T], L, [X|R]) :- app(T, L, R). main :- app([1,2],[3],[1,2,3]).",
        );
    }

    #[test]
    fn arithmetic_and_comparisons_round_trip() {
        round_trips("main :- X is 1 + 2 * 3 - (-4), X =:= 11, X > 0, X =< 11.");
    }

    #[test]
    fn cut_true_fail_round_trip() {
        round_trips("max(X, Y, X) :- X >= Y, !. max(_, Y, Y). main :- max(3, 2, 3), true.");
    }

    #[test]
    fn normalized_auxiliaries_round_trip() {
        // `;` and `->` expand to `$or_k`/`$ite_k` auxiliaries whose
        // names need quoting to re-parse.
        round_trips("p(X) :- (X = 1 ; X = 2). q(X, R) :- (X > 0 -> R = pos ; R = neg). main :- p(2), q(3, pos).");
    }

    #[test]
    fn partial_lists_and_nested_structs_round_trip() {
        round_trips("f([H|T], s(g(H), [])) :- g(T). g([1,2|X]) :- X = []. main :- f([1,2,3], _).");
    }

    #[test]
    fn negative_literals_round_trip() {
        round_trips("main :- X is -3 + -4, X =:= -7.");
    }

    #[test]
    fn quoting_rules() {
        assert!(is_plain_atom("foo"));
        assert!(is_plain_atom("fooBar_9"));
        assert!(is_plain_atom("!"));
        assert!(is_plain_atom("=.."));
        assert!(!is_plain_atom("$or_0"));
        assert!(!is_plain_atom("Foo"));
        assert!(!is_plain_atom(""));
        assert!(!is_plain_atom("has space"));
    }
}
