//! Property tests for the front end: any term the AST can express is
//! re-parsed from its own display form to an alpha-equivalent term.

use proptest::prelude::*;
use symbol_prolog::{parser, SymbolTable, Term};

/// A strategy over terms whose atoms come from a safe alphabet.
fn term_strategy() -> impl Strategy<Value = TermSpec> {
    let leaf = prop_oneof![
        (0usize..4).prop_map(TermSpec::Var),
        (-999i64..999).prop_map(TermSpec::Int),
        prop::sample::select(vec!["a", "bc", "foo", "bar_1", "quux"])
            .prop_map(|s| TermSpec::Atom(s.to_owned())),
    ];
    leaf.prop_recursive(4, 24, 4, |inner| {
        prop_oneof![
            (
                prop::sample::select(vec!["f", "g", "point", "wrap"]),
                prop::collection::vec(inner.clone(), 1..4)
            )
                .prop_map(|(f, args)| TermSpec::Struct(f.to_owned(), args)),
            prop::collection::vec(inner, 0..4).prop_map(TermSpec::List),
        ]
    })
}

/// A symbol-table-independent term description.
#[derive(Clone, Debug)]
enum TermSpec {
    Var(usize),
    Int(i64),
    Atom(String),
    Struct(String, Vec<TermSpec>),
    List(Vec<TermSpec>),
}

impl TermSpec {
    fn build(&self, symbols: &mut SymbolTable) -> Term {
        match self {
            TermSpec::Var(v) => Term::Var(*v),
            TermSpec::Int(i) => Term::Int(*i),
            TermSpec::Atom(a) => Term::Atom(symbols.intern(a)),
            TermSpec::Struct(f, args) => {
                let fa = symbols.intern(f);
                Term::Struct(fa, args.iter().map(|a| a.build(symbols)).collect())
            }
            TermSpec::List(items) => {
                Term::list(items.iter().map(|i| i.build(symbols)).collect())
            }
        }
    }
}

/// Structural equality modulo a consistent renaming of variables.
fn alpha_eq(a: &Term, b: &Term, map: &mut std::collections::HashMap<usize, usize>) -> bool {
    match (a, b) {
        (Term::Var(x), Term::Var(y)) => match map.get(x) {
            Some(&m) => m == *y,
            None => {
                map.insert(*x, *y);
                true
            }
        },
        (Term::Int(x), Term::Int(y)) => x == y,
        (Term::Atom(x), Term::Atom(y)) => x == y,
        (Term::Struct(f, xs), Term::Struct(g, ys)) => {
            f == g
                && xs.len() == ys.len()
                && xs.iter().zip(ys).all(|(x, y)| alpha_eq(x, y, map))
        }
        _ => false,
    }
}

proptest! {
    #[test]
    fn display_then_parse_is_alpha_identity(spec in term_strategy()) {
        let mut symbols = SymbolTable::new();
        let term = spec.build(&mut symbols);
        let text = format!("{}", term.display(&symbols));
        let reparsed = parser::parse_term(&text, &mut symbols)
            .unwrap_or_else(|e| panic!("reparse of {text:?} failed: {e}"))
            .term;
        let mut map = std::collections::HashMap::new();
        prop_assert!(
            alpha_eq(&term, &reparsed, &mut map),
            "{} reparsed as {}",
            term.display(&symbols),
            reparsed.display(&symbols)
        );
    }

    #[test]
    fn ground_terms_have_no_vars(spec in term_strategy()) {
        let mut symbols = SymbolTable::new();
        let term = spec.build(&mut symbols);
        let mut vars = Vec::new();
        term.collect_vars(&mut vars);
        prop_assert_eq!(term.is_ground(), vars.is_empty());
    }

    #[test]
    fn max_var_bounds_collected_vars(spec in term_strategy()) {
        let mut symbols = SymbolTable::new();
        let term = spec.build(&mut symbols);
        let mut vars = Vec::new();
        term.collect_vars(&mut vars);
        prop_assert_eq!(term.max_var(), vars.iter().copied().max());
    }
}
