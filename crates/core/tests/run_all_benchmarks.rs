//! Runs every shipped benchmark through the full pipeline on the
//! sequential emulator, requiring each program's self-check to pass.
//! This is the ground-truth correctness gate for the whole tool chain.

use symbol_core::{benchmarks, pipeline::Compiled};

fn run(name: &str) -> u64 {
    let b = benchmarks::by_name(name).unwrap_or_else(|| panic!("unknown benchmark {name}"));
    let compiled =
        Compiled::from_source(b.source).unwrap_or_else(|e| panic!("{name}: compile failed: {e}"));
    let result = compiled
        .run_sequential()
        .unwrap_or_else(|e| panic!("{name}: run failed: {e}"));
    result.steps
}

macro_rules! bench_test {
    ($fn_name:ident, $name:literal) => {
        #[test]
        fn $fn_name() {
            let steps = run($name);
            assert!(steps > 0);
            eprintln!("{}: {} sequential ops", $name, steps);
        }
    };
}

bench_test!(conc30_runs, "conc30");
bench_test!(crypt_runs, "crypt");
bench_test!(divide10_runs, "divide10");
bench_test!(log10_runs, "log10");
bench_test!(mu_runs, "mu");
bench_test!(nreverse_runs, "nreverse");
bench_test!(ops8_runs, "ops8");
bench_test!(prover_runs, "prover");
bench_test!(qsort_runs, "qsort");
bench_test!(queens_8_runs, "queens_8");
bench_test!(query_runs, "query");
bench_test!(sendmore_runs, "sendmore");
bench_test!(serialise_runs, "serialise");
bench_test!(tak_runs, "tak");
bench_test!(times10_runs, "times10");
bench_test!(zebra_runs, "zebra");
