//! The IntCode sequential emulator.
//!
//! Executes an [`IciProgram`] one op at a time, validating the program
//! and collecting the statistics the back-end compiler needs (paper
//! §3.1): the *Expect* of every op (execution count) and, for every
//! conditional branch, the probability of being taken.

use std::collections::VecDeque;
use std::error::Error;
use std::fmt;

use crate::layout::Layout;
use crate::op::{Label, Op, OpClass, Operand, R};
use crate::program::IciProgram;
use crate::word::{Tag, Word};

/// Execution limits.
#[derive(Copy, Clone, Debug)]
pub struct ExecConfig {
    /// Abort after this many executed ops.
    pub max_steps: u64,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            max_steps: 2_000_000_000,
        }
    }
}

/// Why execution stopped.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Outcome {
    /// `Halt { success: true }` was reached: the query succeeded.
    Success,
    /// `Halt { success: false }`: the query exhausted all choices.
    Failure,
}

/// Run-time error (a malformed program or exhausted resources).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ExecError {
    /// Memory access outside the data space.
    BadAddress {
        /// The offending address.
        addr: i64,
        /// Op index.
        at: usize,
    },
    /// Division or remainder by zero.
    DivideByZero {
        /// Op index.
        at: usize,
    },
    /// Indirect jump through a non-code word.
    BadCodeWord {
        /// The word jumped through.
        word: Word,
        /// Op index.
        at: usize,
    },
    /// Indirect jump through a code word whose label id has no
    /// address in this program.
    UnmappedLabel {
        /// The unresolvable label.
        label: Label,
        /// Op index.
        at: usize,
    },
    /// The step limit was exceeded.
    StepLimit {
        /// The limit that was hit.
        limit: u64,
    },
    /// Execution ran off the end of the program.
    RanOffEnd,
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::BadAddress { addr, at } => {
                write!(f, "bad memory address {addr} at op {at}")
            }
            ExecError::DivideByZero { at } => write!(f, "division by zero at op {at}"),
            ExecError::BadCodeWord { word, at } => {
                write!(f, "indirect jump through non-code word {word} at op {at}")
            }
            ExecError::UnmappedLabel { label, at } => {
                write!(f, "indirect jump to unmapped label {label} at op {at}")
            }
            ExecError::StepLimit { limit } => write!(f, "step limit {limit} exceeded"),
            ExecError::RanOffEnd => write!(f, "execution ran off the end of the program"),
        }
    }
}

impl Error for ExecError {}

/// Per-op execution statistics.
#[derive(Clone, Debug)]
pub struct ExecStats {
    /// Execution count of each op (the paper's *Expect*).
    pub expect: Vec<u64>,
    /// For conditional branches: times the branch was taken.
    pub taken: Vec<u64>,
}

impl ExecStats {
    /// Total executed ops.
    pub fn total(&self) -> u64 {
        self.expect.iter().sum()
    }

    /// Dynamic op count per class.
    pub fn class_counts(&self, program: &IciProgram) -> [(OpClass, u64); OpClass::COUNT] {
        let mut counts = OpClass::ALL.map(|c| (c, 0));
        for (i, op) in program.ops().iter().enumerate() {
            counts[op.class().index()].1 += self.expect[i];
        }
        counts
    }

    /// The `n` most-executed op indices with their counts, descending
    /// by count (ties broken by op index). Never-executed ops are
    /// omitted — the basis of the hot-block report.
    pub fn hot_pcs(&self, n: usize) -> Vec<(usize, u64)> {
        let mut v: Vec<(usize, u64)> = self
            .expect
            .iter()
            .copied()
            .enumerate()
            .filter(|&(_, c)| c > 0)
            .collect();
        v.sort_by_key(|&(i, c)| (std::cmp::Reverse(c), i));
        v.truncate(n);
        v
    }

    /// Probability that branch op `i` of `program` is taken.
    ///
    /// Returns `None` when `i` is out of range, when op `i` is not a
    /// conditional branch (unconditional jumps, indirect jumps and
    /// halts have no taken-probability), or when the op was never
    /// executed.
    pub fn taken_probability(&self, program: &IciProgram, i: usize) -> Option<f64> {
        let op = program.ops().get(i)?;
        if !op.is_conditional_branch() || i >= self.expect.len() || self.expect[i] == 0 {
            None
        } else {
            Some(self.taken[i] as f64 / self.expect[i] as f64)
        }
    }
}

/// Result of a completed run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Success or failure of the query.
    pub outcome: Outcome,
    /// Total executed ops.
    pub steps: u64,
    /// Per-op statistics.
    pub stats: ExecStats,
}

/// The sequential machine state.
#[derive(Debug)]
pub struct Emulator<'a> {
    program: &'a IciProgram,
    /// Pre-decoded direct branch target of each op: every `Label`
    /// operand resolved to its instruction index at program-load time
    /// (`usize::MAX` for ops without an explicit target), so the step
    /// loop never consults the label table on a control transfer.
    target_pc: Vec<usize>,
    regs: Vec<Word>,
    mem: Vec<Word>,
    pc: usize,
    trace: VecDeque<usize>,
    trace_cap: usize,
}

impl<'a> Emulator<'a> {
    /// Creates an emulator with zeroed registers and memory.
    pub fn new(program: &'a IciProgram, layout: &Layout) -> Self {
        let max_reg = program
            .ops()
            .iter()
            .flat_map(|o| {
                o.uses()
                    .into_iter()
                    .chain(o.def())
                    .map(|R(r)| r)
                    .collect::<Vec<_>>()
            })
            .max()
            .unwrap_or(0);
        let target_pc = program
            .ops()
            .iter()
            .map(|o| o.target().map_or(usize::MAX, |t| program.label_addr(t)))
            .collect();
        Emulator {
            program,
            target_pc,
            regs: vec![Word::int(0); max_reg as usize + 1],
            mem: vec![Word::int(0); layout.total()],
            pc: program.label_addr(program.entry()),
            trace: VecDeque::new(),
            trace_cap: 0,
        }
    }

    /// Enables a circular trace of the last `cap` executed op indices
    /// (for diagnosing runaway programs).
    pub fn set_trace(&mut self, cap: usize) {
        self.trace_cap = cap;
        self.trace = VecDeque::with_capacity(cap.min(1 << 20));
    }

    /// The traced op indices, oldest first.
    pub fn trace(&self) -> Vec<usize> {
        self.trace.iter().copied().collect()
    }

    /// Runs to completion.
    ///
    /// # Errors
    ///
    /// Returns an [`ExecError`] on malformed programs or exhausted
    /// limits — never for ordinary Prolog failure (that is a normal
    /// [`Outcome::Failure`]).
    pub fn run(&mut self, cfg: &ExecConfig) -> Result<RunResult, ExecError> {
        let (outcome, stats, steps) = self.run_with_stats(cfg);
        outcome.map(|outcome| RunResult {
            outcome,
            steps,
            stats,
        })
    }

    /// Like [`Emulator::run`] but returns the statistics gathered so
    /// far even when execution ends in an error — useful for
    /// diagnosing runaway programs.
    pub fn run_with_stats(
        &mut self,
        cfg: &ExecConfig,
    ) -> (Result<Outcome, ExecError>, ExecStats, u64) {
        let n = self.program.ops().len();
        let mut expect = vec![0u64; n];
        let mut taken = vec![0u64; n];
        let mut steps: u64 = 0;
        let res = self.step_loop(cfg, &mut expect, &mut taken, &mut steps);
        (res, ExecStats { expect, taken }, steps)
    }

    fn step_loop(
        &mut self,
        cfg: &ExecConfig,
        expect: &mut [u64],
        taken: &mut [u64],
        steps: &mut u64,
    ) -> Result<Outcome, ExecError> {
        let ops = self.program.ops();
        let n = ops.len();
        loop {
            if self.pc >= n {
                return Err(ExecError::RanOffEnd);
            }
            if *steps >= cfg.max_steps {
                return Err(ExecError::StepLimit {
                    limit: cfg.max_steps,
                });
            }
            *steps += 1;
            let at = self.pc;
            expect[at] += 1;
            if self.trace_cap > 0 {
                if self.trace.len() == self.trace_cap {
                    self.trace.pop_front();
                }
                self.trace.push_back(at);
            }
            match &ops[at] {
                Op::Ld { d, base, off } => {
                    let addr = self.regs[base.0 as usize].val + *off as i64;
                    let w = self.load(addr, at)?;
                    self.regs[d.0 as usize] = w;
                    self.pc += 1;
                }
                Op::St { s, base, off } => {
                    let addr = self.regs[base.0 as usize].val + *off as i64;
                    let w = self.regs[s.0 as usize];
                    self.store(addr, w, at)?;
                    self.pc += 1;
                }
                Op::Mv { d, s } => {
                    self.regs[d.0 as usize] = self.regs[s.0 as usize];
                    self.pc += 1;
                }
                Op::MvI { d, w } => {
                    self.regs[d.0 as usize] = *w;
                    self.pc += 1;
                }
                Op::Alu { op, d, a, b } => {
                    let av = self.regs[a.0 as usize].val;
                    let bv = self.operand(b);
                    let v = op.eval(av, bv).ok_or(ExecError::DivideByZero { at })?;
                    self.regs[d.0 as usize] = Word::int(v);
                    self.pc += 1;
                }
                Op::AddA { d, a, b } => {
                    let aw = self.regs[a.0 as usize];
                    let bv = self.operand(b);
                    self.regs[d.0 as usize] = Word {
                        tag: aw.tag,
                        val: aw.val.wrapping_add(bv),
                    };
                    self.pc += 1;
                }
                Op::MkTag { d, s, tag } => {
                    let v = self.regs[s.0 as usize].val;
                    self.regs[d.0 as usize] = Word { tag: *tag, val: v };
                    self.pc += 1;
                }
                Op::Br { cond, a, b, .. } => {
                    let av = self.regs[a.0 as usize].val;
                    let bv = self.operand(b);
                    self.branch(cond.eval(av, bv), at, taken);
                }
                Op::BrTag { a, tag, eq, .. } => {
                    let cond = (self.regs[a.0 as usize].tag == *tag) == *eq;
                    self.branch(cond, at, taken);
                }
                Op::BrWord { a, w, eq, .. } => {
                    let cond = (self.regs[a.0 as usize] == *w) == *eq;
                    self.branch(cond, at, taken);
                }
                Op::BrWEq { a, b, eq, .. } => {
                    let cond = (self.regs[a.0 as usize] == self.regs[b.0 as usize]) == *eq;
                    self.branch(cond, at, taken);
                }
                Op::Jmp { .. } => {
                    self.pc = self.target_pc[at];
                }
                Op::JmpR { r } => {
                    let w = self.regs[r.0 as usize];
                    if w.tag != Tag::Cod {
                        return Err(ExecError::BadCodeWord { word: w, at });
                    }
                    // Dense label → pc table; an unmapped id is a
                    // run-time error, not a panic (code words can hold
                    // arbitrary values by the time they are jumped
                    // through).
                    let id = w.val as u32;
                    match self.program.label_table().get(id as usize) {
                        Some(&a) if a != usize::MAX => self.pc = a,
                        _ => {
                            return Err(ExecError::UnmappedLabel {
                                label: Label(id),
                                at,
                            })
                        }
                    }
                }
                Op::Halt { success } => {
                    return Ok(if *success {
                        Outcome::Success
                    } else {
                        Outcome::Failure
                    });
                }
            }
        }
    }

    fn branch(&mut self, cond: bool, at: usize, taken: &mut [u64]) {
        if cond {
            taken[at] += 1;
            self.pc = self.target_pc[at];
        } else {
            self.pc = at + 1;
        }
    }

    fn operand(&self, o: &Operand) -> i64 {
        match o {
            Operand::Reg(r) => self.regs[r.0 as usize].val,
            Operand::Imm(i) => *i,
        }
    }

    fn load(&self, addr: i64, at: usize) -> Result<Word, ExecError> {
        self.mem
            .get(usize::try_from(addr).map_err(|_| ExecError::BadAddress { addr, at })?)
            .copied()
            .ok_or(ExecError::BadAddress { addr, at })
    }

    fn store(&mut self, addr: i64, w: Word, at: usize) -> Result<(), ExecError> {
        let i = usize::try_from(addr).map_err(|_| ExecError::BadAddress { addr, at })?;
        match self.mem.get_mut(i) {
            Some(slot) => {
                *slot = w;
                Ok(())
            }
            None => Err(ExecError::BadAddress { addr, at }),
        }
    }

    /// Read access to a memory word (for tests and answer inspection).
    pub fn peek(&self, addr: i64) -> Option<Word> {
        usize::try_from(addr)
            .ok()
            .and_then(|i| self.mem.get(i))
            .copied()
    }

    /// Read access to a register (for tests and answer inspection).
    pub fn reg(&self, r: R) -> Word {
        self.regs[r.0 as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;
    use crate::op::AluOp;

    fn run_program(build: impl FnOnce(&mut Asm) -> Label) -> (RunResult, IciProgram) {
        let mut a = Asm::new();
        let entry = build(&mut a);
        let p = a.finish(entry);
        let layout = Layout {
            heap_size: 64,
            env_size: 64,
            cp_size: 64,
            trail_size: 64,
            pdl_size: 64,
        };
        let r = Emulator::new(&p, &layout)
            .run(&ExecConfig::default())
            .expect("clean run");
        (r, p)
    }

    fn run_ops(build: impl FnOnce(&mut Asm) -> Label) -> RunResult {
        run_program(build).0
    }

    #[test]
    fn hot_pcs_ordering_is_deterministic_with_tied_counts() {
        // Equal counts must tie-break on ascending pc, so a
        // profile-guided re-decode sees the same ranking every run.
        let stats = ExecStats {
            expect: vec![5, 0, 7, 5, 7, 1, 5],
            taken: vec![0; 7],
        };
        assert_eq!(
            stats.hot_pcs(7),
            vec![(2, 7), (4, 7), (0, 5), (3, 5), (6, 5), (5, 1)],
            "count descending, pc ascending on ties, zero counts omitted"
        );
        assert_eq!(stats.hot_pcs(3), vec![(2, 7), (4, 7), (0, 5)]);
        assert_eq!(stats.hot_pcs(0), vec![]);
    }

    #[test]
    fn halt_success() {
        let r = run_ops(|a| {
            let e = a.fresh_label();
            a.bind(e);
            a.emit(Op::Halt { success: true });
            e
        });
        assert_eq!(r.outcome, Outcome::Success);
        assert_eq!(r.steps, 1);
    }

    #[test]
    fn alu_and_branch() {
        let r = run_ops(|a| {
            let e = a.fresh_label();
            let yes = a.fresh_label();
            let t = a.fresh_reg();
            a.bind(e);
            a.emit(Op::MvI {
                d: t,
                w: Word::int(2),
            });
            a.emit(Op::Alu {
                op: AluOp::Add,
                d: t,
                a: t,
                b: Operand::Imm(3),
            });
            a.emit(Op::Br {
                cond: crate::op::Cond::Eq,
                a: t,
                b: Operand::Imm(5),
                t: yes,
            });
            a.emit(Op::Halt { success: false });
            a.bind(yes);
            a.emit(Op::Halt { success: true });
            e
        });
        assert_eq!(r.outcome, Outcome::Success);
    }

    #[test]
    fn memory_round_trip() {
        let r = run_ops(|a| {
            let e = a.fresh_label();
            let base = a.fresh_reg();
            let v = a.fresh_reg();
            let v2 = a.fresh_reg();
            let ok = a.fresh_label();
            a.bind(e);
            a.emit(Op::MvI {
                d: base,
                w: Word::int(10),
            });
            a.emit(Op::MvI {
                d: v,
                w: Word::atom(7),
            });
            a.emit(Op::St { s: v, base, off: 2 });
            a.emit(Op::Ld {
                d: v2,
                base,
                off: 2,
            });
            a.emit(Op::BrWEq {
                a: v,
                b: v2,
                eq: true,
                t: ok,
            });
            a.emit(Op::Halt { success: false });
            a.bind(ok);
            a.emit(Op::Halt { success: true });
            e
        });
        assert_eq!(r.outcome, Outcome::Success);
    }

    #[test]
    fn taken_statistics() {
        let (r, p) = run_program(|a| {
            let e = a.fresh_label();
            let lp = a.fresh_label();
            let i = a.fresh_reg();
            a.bind(e);
            a.emit(Op::MvI {
                d: i,
                w: Word::int(0),
            });
            a.bind(lp);
            a.emit(Op::Alu {
                op: AluOp::Add,
                d: i,
                a: i,
                b: Operand::Imm(1),
            });
            a.emit(Op::Br {
                cond: crate::op::Cond::Lt,
                a: i,
                b: Operand::Imm(10),
                t: lp,
            });
            a.emit(Op::Halt { success: true });
            e
        });
        // branch executed 10 times, taken 9
        let br_idx = 2;
        assert_eq!(r.stats.expect[br_idx], 10);
        assert_eq!(r.stats.taken[br_idx], 9);
        let prob = r.stats.taken_probability(&p, br_idx).unwrap();
        assert!((prob - 0.9).abs() < 1e-9);
        // non-branch ops and out-of-range indices have no probability
        assert_eq!(
            r.stats.taken_probability(&p, 0),
            None,
            "MvI is not a branch"
        );
        assert_eq!(
            r.stats.taken_probability(&p, 1),
            None,
            "Alu is not a branch"
        );
        assert_eq!(
            r.stats.taken_probability(&p, 3),
            None,
            "Halt is not a branch"
        );
        assert_eq!(r.stats.taken_probability(&p, 999), None, "out of range");
    }

    #[test]
    fn taken_probability_none_for_unexecuted_branch() {
        let (r, p) = run_program(|a| {
            let e = a.fresh_label();
            let dead = a.fresh_label();
            let end = a.fresh_label();
            let t = a.fresh_reg();
            a.bind(e);
            a.emit(Op::MvI {
                d: t,
                w: Word::int(1),
            });
            a.emit(Op::Jmp { t: end });
            a.bind(dead);
            a.emit(Op::Br {
                cond: crate::op::Cond::Eq,
                a: t,
                b: Operand::Imm(1),
                t: end,
            });
            a.bind(end);
            a.emit(Op::Halt { success: true });
            e
        });
        assert_eq!(r.stats.taken_probability(&p, 2), None, "never executed");
    }

    #[test]
    fn alu_mod_is_floored_and_rem_is_truncated() {
        // X = -7 mod 3 must be 2; Y = -7 rem 3 must be -1.
        let r = run_ops(|a| {
            let e = a.fresh_label();
            let ok1 = a.fresh_label();
            let ok2 = a.fresh_label();
            let x = a.fresh_reg();
            let y = a.fresh_reg();
            a.bind(e);
            a.emit(Op::MvI {
                d: x,
                w: Word::int(-7),
            });
            a.emit(Op::Mv { d: y, s: x });
            a.emit(Op::Alu {
                op: AluOp::Mod,
                d: x,
                a: x,
                b: Operand::Imm(3),
            });
            a.emit(Op::Br {
                cond: crate::op::Cond::Eq,
                a: x,
                b: Operand::Imm(2),
                t: ok1,
            });
            a.emit(Op::Halt { success: false });
            a.bind(ok1);
            a.emit(Op::Alu {
                op: AluOp::Rem,
                d: y,
                a: y,
                b: Operand::Imm(3),
            });
            a.emit(Op::Br {
                cond: crate::op::Cond::Eq,
                a: y,
                b: Operand::Imm(-1),
                t: ok2,
            });
            a.emit(Op::Halt { success: false });
            a.bind(ok2);
            a.emit(Op::Halt { success: true });
            e
        });
        assert_eq!(r.outcome, Outcome::Success);
    }

    #[test]
    fn traced_run_is_not_quadratic_in_the_trace_capacity() {
        // A long counted loop, traced with a large circular buffer: the
        // ring buffer must keep per-step cost O(1). The old
        // Vec::remove(0) implementation made this take minutes.
        let mut a = Asm::new();
        let e = a.fresh_label();
        let lp = a.fresh_label();
        let i = a.fresh_reg();
        a.bind(e);
        a.emit(Op::MvI {
            d: i,
            w: Word::int(0),
        });
        a.bind(lp);
        a.emit(Op::Alu {
            op: AluOp::Add,
            d: i,
            a: i,
            b: Operand::Imm(1),
        });
        a.emit(Op::Br {
            cond: crate::op::Cond::Lt,
            a: i,
            b: Operand::Imm(500_000),
            t: lp,
        });
        a.emit(Op::Halt { success: true });
        let p = a.finish(e);
        let layout = Layout {
            heap_size: 16,
            env_size: 16,
            cp_size: 16,
            trail_size: 16,
            pdl_size: 16,
        };
        let cap = 1 << 16;
        let mut emu = Emulator::new(&p, &layout);
        emu.set_trace(cap);
        let started = std::time::Instant::now();
        let r = emu
            .run(&ExecConfig {
                max_steps: 2_000_000,
            })
            .expect("completes within the step budget");
        assert_eq!(r.outcome, Outcome::Success);
        assert!(
            started.elapsed() < std::time::Duration::from_secs(20),
            "traced run took {:?} — trace bookkeeping is not O(1)",
            started.elapsed()
        );
        let trace = emu.trace();
        assert_eq!(trace.len(), cap, "trace keeps exactly the last cap ops");
        // Oldest-first: the final entry is the Halt, preceded by the
        // loop body ops in execution order.
        assert_eq!(*trace.last().unwrap(), 3, "last traced op is the halt");
        assert_eq!(trace[trace.len() - 2], 2, "preceded by the exit branch");
        assert_eq!(trace[trace.len() - 3], 1, "preceded by the add");
    }

    #[test]
    fn bad_address_is_reported() {
        let mut a = Asm::new();
        let e = a.fresh_label();
        let base = a.fresh_reg();
        a.bind(e);
        a.emit(Op::MvI {
            d: base,
            w: Word::int(-5),
        });
        a.emit(Op::Ld {
            d: base,
            base,
            off: 0,
        });
        a.emit(Op::Halt { success: true });
        let p = a.finish(e);
        let layout = Layout {
            heap_size: 16,
            env_size: 16,
            cp_size: 16,
            trail_size: 16,
            pdl_size: 16,
        };
        let err = Emulator::new(&p, &layout)
            .run(&ExecConfig::default())
            .unwrap_err();
        assert!(matches!(err, ExecError::BadAddress { .. }));
    }

    #[test]
    fn step_limit_enforced() {
        let mut a = Asm::new();
        let e = a.fresh_label();
        a.bind(e);
        a.emit(Op::Jmp { t: e });
        let p = a.finish(e);
        let layout = Layout {
            heap_size: 16,
            env_size: 16,
            cp_size: 16,
            trail_size: 16,
            pdl_size: 16,
        };
        let err = Emulator::new(&p, &layout)
            .run(&ExecConfig { max_steps: 100 })
            .unwrap_err();
        assert!(matches!(err, ExecError::StepLimit { .. }));
    }
}
