//! Figure 4 — distribution of the probability of faulty prediction.
//! Times histogram construction, then regenerates the figure.

use std::hint::black_box;

use symbol_analysis::PredictStats;
use symbol_bench::timing::Harness;
use symbol_bench::{compiled, TIMING_SUBSET};
use symbol_core::experiments::{measure_all, reports};

fn bench(h: &mut Harness) {
    for name in TIMING_SUBSET {
        let (cc, run) = compiled(name);
        let stats = PredictStats::measure(&cc.ici, &run.stats);
        h.bench_function(&format!("fig4_histogram/{name}"), |b| {
            b.iter(|| black_box(&stats).histogram(20))
        });
    }
}

fn print_report() {
    let results = measure_all().expect("suite measures");
    println!("\n{}", reports::fig4_histogram(&results));
}

fn main() {
    let mut h = Harness::new();
    bench(&mut h);
    h.final_summary();
    print_report();
}
