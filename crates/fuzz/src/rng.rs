//! Deterministic seeded randomness for the fuzzer.
//!
//! A SplitMix64 generator: tiny, fast, and — crucially — stable, so a
//! `(seed, case index)` pair names the same generated case on every
//! machine and every run. No external crates, per the workspace's
//! zero-dependency policy.

/// A deterministic pseudo-random generator (SplitMix64).
#[derive(Clone, Debug)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// A generator for case `index` of a run seeded with `seed`:
    /// every case gets an independent stream, so cases can be replayed
    /// individually without replaying the whole run.
    pub fn for_case(seed: u64, index: u64) -> Self {
        let mut r = Rng::new(seed ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        // Burn a step so adjacent indices decorrelate.
        r.next_u64();
        r
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty range");
        // Multiply-shift reduction; the tiny modulo bias is irrelevant
        // for fuzzing but the determinism is not, so keep it simple.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform index in `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        self.below(n as u64) as usize
    }

    /// Uniform value in the inclusive range `lo..=hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "empty range");
        let span = (hi - lo) as u64 + 1;
        lo + self.below(span) as i64
    }

    /// True with probability `num / den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }

    /// A uniformly chosen element of `xs`.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.index(xs.len())]
    }
}

/// Parses a seed argument: decimal (`123`), hexadecimal (`0x1f`), or —
/// for anything that is neither — a stable FNV-1a hash of the text, so
/// mnemonic seeds like `0xSYMBOL5` are accepted and reproducible.
pub fn parse_seed(s: &str) -> u64 {
    if let Ok(v) = s.parse::<u64>() {
        return v;
    }
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        if let Ok(v) = u64::from_str_radix(hex, 16) {
            return v;
        }
    }
    // FNV-1a over the raw bytes.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn case_streams_differ() {
        let a = Rng::for_case(1, 0).next_u64();
        let b = Rng::for_case(1, 1).next_u64();
        assert_ne!(a, b);
    }

    #[test]
    fn below_stays_in_range() {
        let mut r = Rng::new(42);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
            let v = r.range_i64(-3, 3);
            assert!((-3..=3).contains(&v));
        }
    }

    #[test]
    fn seed_parsing_accepts_all_three_forms() {
        assert_eq!(parse_seed("123"), 123);
        assert_eq!(parse_seed("0x10"), 16);
        // Not valid hex: falls back to a hash, deterministically.
        let h = parse_seed("0xSYMBOL5");
        assert_eq!(h, parse_seed("0xSYMBOL5"));
        assert_ne!(h, parse_seed("0xSYMBOL6"));
    }
}
