//! Design-space exploration driver: expand a grid spec, sweep it over
//! the benchmark suite, and emit the Pareto/winner reports.
//!
//! ```sh
//! cargo run --release -p symbol-core --bin sweep -- --grid reduced --check
//! cargo run --release -p symbol-core --bin sweep -- --grid 'units=1..5;ports=1,2' \
//!     --benches nreverse,qsort --json BENCH_sweep.json --table sweep.txt
//! cargo run --release -p symbol-core --bin sweep -- --grid full --budget-secs 3600
//! ```
//!
//! `--check` is the CI gate: it runs the invariant gates (unit
//! monotonicity, memory-port floor), cross-checks the paper points
//! against the Table 3 driver, re-runs the sweep single-threaded and
//! asserts the JSON report is byte-identical — then exits non-zero on
//! any violation. `--check-invariants` runs only the in-report gates
//! (no re-run), which is what the budgeted nightly sweep uses; a
//! budgeted run cannot combine with `--check` because its truncation
//! point is wall-clock dependent.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use symbol_core::benchmarks::{self, Benchmark};
use symbol_core::experiments::sweep::{
    check_paper_points, run_sweep, GridSpec, SweepOptions, SweepReport,
};
use symbol_obs::Registry;

fn usage() -> ! {
    eprintln!(
        "usage: sweep [--grid SPEC|paper|reduced|full] [--benches a,b,c] \
         [--jobs N] [--json FILE] [--table FILE] [--metrics FILE] \
         [--budget-secs N] [--check | --check-invariants]"
    );
    std::process::exit(2);
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("sweep: {msg}");
    ExitCode::FAILURE
}

/// Prints gate violations and reports whether any fired.
fn report_violations(gate: &str, violations: &[String]) -> bool {
    for v in violations {
        eprintln!("sweep: {gate}: {v}");
    }
    !violations.is_empty()
}

fn main() -> ExitCode {
    let mut grid_spec = String::from("paper");
    let mut bench_names: Option<String> = None;
    let mut opts = SweepOptions::default();
    let mut json_path: Option<PathBuf> = None;
    let mut table_path: Option<PathBuf> = None;
    let mut metrics_path: Option<PathBuf> = None;
    let mut check = false;
    let mut check_invariants = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--grid" => grid_spec = args.next().unwrap_or_else(|| usage()),
            "--benches" => bench_names = Some(args.next().unwrap_or_else(|| usage())),
            "--jobs" => {
                opts.threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage());
            }
            "--json" => json_path = Some(PathBuf::from(args.next().unwrap_or_else(|| usage()))),
            "--table" => table_path = Some(PathBuf::from(args.next().unwrap_or_else(|| usage()))),
            "--metrics" => {
                metrics_path = Some(PathBuf::from(args.next().unwrap_or_else(|| usage())));
            }
            "--budget-secs" => {
                let secs: u64 = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                opts.budget = Some(Duration::from_secs(secs));
            }
            "--check" => check = true,
            "--check-invariants" => check_invariants = true,
            _ => usage(),
        }
    }

    if check && opts.budget.is_some() {
        return fail(
            "--check cannot combine with --budget-secs: a budgeted run \
             truncates at a wall-clock-dependent point, so its report is \
             not reproducible",
        );
    }

    let grid = match GridSpec::parse(&grid_spec) {
        Ok(g) => g,
        Err(e) => return fail(&e),
    };

    let benches: Vec<Benchmark> = match &bench_names {
        None => benchmarks::ALL.to_vec(),
        Some(names) => {
            let mut list = Vec::new();
            for name in names.split(',') {
                let name = name.trim();
                match benchmarks::by_name(name) {
                    Some(b) => list.push(*b),
                    None => return fail(&format!("unknown benchmark `{name}`")),
                }
            }
            list
        }
    };

    eprintln!(
        "sweep: {} configs x {} benchmarks on {} threads",
        grid.len(),
        benches.len(),
        opts.threads
    );

    let obs = Registry::new();
    let report = match run_sweep(&grid, &benches, &opts, &obs) {
        Ok(r) => r,
        Err(e) => return fail(&e.to_string()),
    };

    let json = report.to_json();
    let table = report.render();
    println!("{table}");

    if let Some(path) = &json_path {
        if let Err(e) = std::fs::write(path, &json) {
            return fail(&format!("writing {}: {e}", path.display()));
        }
        eprintln!("sweep: wrote {}", path.display());
    }
    if let Some(path) = &table_path {
        if let Err(e) = std::fs::write(path, &table) {
            return fail(&format!("writing {}: {e}", path.display()));
        }
        eprintln!("sweep: wrote {}", path.display());
    }
    if let Some(path) = &metrics_path {
        if let Err(e) = std::fs::write(path, obs.snapshot().to_json()) {
            return fail(&format!("writing {}: {e}", path.display()));
        }
        eprintln!("sweep: wrote {}", path.display());
    }

    let mut failed = false;
    if check || check_invariants {
        failed |= report_violations("invariant", &report.check_invariants());
    }
    if check {
        if let Err(violations) = check_paper_points(&report, &benches, opts.threads) {
            failed |= report_violations("paper-point", &violations);
        }
        // Jobs-independence: the whole sweep again on one thread must
        // serialize byte-identically.
        let seq_opts = SweepOptions {
            threads: 1,
            budget: None,
        };
        match run_sweep(&grid, &benches, &seq_opts, &Registry::disabled()) {
            Ok(seq) => {
                if seq.to_json() != json {
                    eprintln!(
                        "sweep: determinism: single-threaded re-run produced a \
                         different report than --jobs {}",
                        opts.threads
                    );
                    failed = true;
                }
            }
            Err(e) => {
                eprintln!("sweep: determinism re-run failed: {e}");
                failed = true;
            }
        }
    }

    if failed {
        return fail("checks failed");
    }
    if check || check_invariants {
        let gates = if check {
            "invariants, paper points and jobs-independence"
        } else {
            "invariants"
        };
        summary_line(&report, &format!("all gates hold ({gates})"));
    } else {
        summary_line(&report, "done");
    }
    ExitCode::SUCCESS
}

/// One stable stdout summary line for CI logs.
fn summary_line(report: &SweepReport, tail: &str) {
    println!(
        "sweep: {} configs x {} benchmarks: {tail}",
        report.points.len(),
        report.benches.len(),
    );
}
