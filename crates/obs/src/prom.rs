//! Prometheus text-format exposition of a [`Snapshot`].
//!
//! Renders the standard `text/plain; version=0.0.4` exposition a
//! Prometheus scraper (or a human with `curl`) expects: one `# TYPE`
//! comment per metric family, counters and gauges as plain samples,
//! histograms as cumulative `_bucket{le="..."}` series plus `_sum`
//! and `_count`. Metric names are sanitized to the Prometheus charset
//! (dots become underscores); label values are escaped per the spec.

use std::fmt::Write as _;

use crate::export::Snapshot;

/// `metric.name` → `metric_name` (Prometheus allows `[a-zA-Z0-9_:]`,
/// with a non-digit first character).
fn sanitize(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

/// Label-value escaping per the exposition format: backslash, quote
/// and newline.
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// `{k="v",...}` (empty string for no labels); `extra` appends one
/// more pair (used for `le`).
fn label_block(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut pairs: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{}=\"{}\"", sanitize(k), escape_label(v)))
        .collect();
    if let Some((k, v)) = extra {
        pairs.push(format!("{k}=\"{v}\""));
    }
    if pairs.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", pairs.join(","))
    }
}

/// Renders the snapshot in the Prometheus text exposition format.
pub fn to_prometheus(snap: &Snapshot) -> String {
    let mut out = String::new();
    let mut last_family = String::new();
    let mut type_line = |out: &mut String, family: &str, kind: &str| {
        if family != last_family {
            let _ = writeln!(out, "# TYPE {family} {kind}");
            last_family = family.to_string();
        }
    };
    for c in &snap.counters {
        let family = sanitize(&c.name);
        type_line(&mut out, &family, "counter");
        let _ = writeln!(out, "{family}{} {}", label_block(&c.labels, None), c.value);
    }
    for g in &snap.gauges {
        let family = sanitize(&g.name);
        type_line(&mut out, &family, "gauge");
        let _ = writeln!(out, "{family}{} {}", label_block(&g.labels, None), g.value);
    }
    for h in &snap.histograms {
        let family = sanitize(&h.name);
        type_line(&mut out, &family, "histogram");
        let mut cumulative = 0u64;
        for b in &h.buckets {
            cumulative += b.count;
            let _ = writeln!(
                out,
                "{family}_bucket{} {cumulative}",
                label_block(&h.labels, Some(("le", &b.hi.to_string())))
            );
        }
        let _ = writeln!(
            out,
            "{family}_bucket{} {}",
            label_block(&h.labels, Some(("le", "+Inf"))),
            h.count
        );
        let _ = writeln!(
            out,
            "{family}_sum{} {}",
            label_block(&h.labels, None),
            h.sum
        );
        let _ = writeln!(
            out,
            "{family}_count{} {}",
            label_block(&h.labels, None),
            h.count
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    #[test]
    fn exposition_covers_all_three_kinds() {
        let r = Registry::new();
        r.counter("serve.queries.ok", &[("tier", "fused")]).add(3);
        r.gauge("serve.queue.depth", &[]).set(-2);
        r.histogram("serve.execute.ns", &[("tier", "fused")])
            .record(1000);
        let text = to_prometheus(&r.snapshot());
        assert!(text.contains("# TYPE serve_queries_ok counter"));
        assert!(text.contains("serve_queries_ok{tier=\"fused\"} 3"));
        assert!(text.contains("# TYPE serve_queue_depth gauge"));
        assert!(text.contains("serve_queue_depth -2"));
        assert!(text.contains("# TYPE serve_execute_ns histogram"));
        assert!(text.contains("serve_execute_ns_bucket{tier=\"fused\",le=\"1023\"} 1"));
        assert!(text.contains("serve_execute_ns_bucket{tier=\"fused\",le=\"+Inf\"} 1"));
        assert!(text.contains("serve_execute_ns_sum{tier=\"fused\"} 1000"));
        assert!(text.contains("serve_execute_ns_count{tier=\"fused\"} 1"));
    }

    #[test]
    fn buckets_are_cumulative() {
        let r = Registry::new();
        let h = r.histogram("lat", &[]);
        h.record(1); // bucket hi=1
        h.record(1);
        h.record(100); // bucket hi=127
        let text = to_prometheus(&r.snapshot());
        assert!(text.contains("lat_bucket{le=\"1\"} 2"));
        assert!(text.contains("lat_bucket{le=\"127\"} 3"), "{text}");
        assert!(text.contains("lat_bucket{le=\"+Inf\"} 3"));
    }

    #[test]
    fn names_and_label_values_are_sanitized() {
        let r = Registry::new();
        r.counter("span.serve.query.ns", &[("src", "a\"b\\c\nd")])
            .inc();
        let text = to_prometheus(&r.snapshot());
        assert!(text.contains("span_serve_query_ns{src=\"a\\\"b\\\\c\\nd\"} 1"));
        assert_eq!(sanitize("2fast"), "_2fast");
    }

    #[test]
    fn one_type_line_per_family() {
        let r = Registry::new();
        r.counter("m", &[("a", "1")]).inc();
        r.counter("m", &[("a", "2")]).inc();
        let text = to_prometheus(&r.snapshot());
        assert_eq!(text.matches("# TYPE m counter").count(), 1);
    }
}
