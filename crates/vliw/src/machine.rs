//! Machine configurations.
//!
//! The paper's target (§4.5, Figure 5) is a *parallel synchronous
//! non-homogeneous architecture*: N identical units, each able to start
//! one memory access, one ALU operation, one control operation and one
//! local move per cycle, sharing one data memory and one control flow.
//! The shared-memory model admits one memory access per cycle in total
//! — that is what makes Amdahl's ≈3× ceiling bind (§4.2).

/// Resource and timing description of one target configuration.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct MachineConfig {
    /// Number of units. Each unit contributes one slot per class per
    /// cycle.
    pub units: usize,
    /// Total operations the machine can issue per cycle. The paper's
    /// Table 3 sweep behaves like one operation per unit per cycle
    /// (that is what makes the shared memory port bind at 3–4 units,
    /// as Amdahl's law predicts); the `wide_units` ablation lifts this
    /// to the four-slots-per-unit reading of Figure 5.
    pub issue_width: usize,
    /// Total memory accesses the shared data memory accepts per cycle
    /// (1 in the paper's shared-memory model).
    pub mem_ports: usize,
    /// Whether several branches may issue in one instruction as a
    /// prioritized multi-way branch.
    pub multiway_branch: bool,
    /// Result latency of a memory load, cycles (pipelined).
    pub mem_latency: u32,
    /// Taken-branch bubble, cycles (control ops are 2-cycle pipelined:
    /// fall-through is free, a taken transfer costs one extra cycle).
    pub taken_branch_penalty: u32,
    /// Result latency of ALU ops.
    pub alu_latency: u32,
    /// Prototype restriction (§5.1): an instruction has either the
    /// ALU/move format or the control/immediate format, so an ALU op
    /// and a control op cannot issue on the same unit in one cycle.
    pub split_formats: bool,
}

impl MachineConfig {
    /// The paper's evaluation machine with `n` units (Table 3).
    pub fn units(n: usize) -> Self {
        MachineConfig {
            units: n,
            issue_width: n,
            mem_ports: 1,
            multiway_branch: true,
            mem_latency: 2,
            taken_branch_penalty: 1,
            alu_latency: 1,
            split_formats: false,
        }
    }

    /// Ablation: `n` units each with a full memory/ALU/move/control
    /// slot set per cycle (the widest reading of Figure 5).
    pub fn wide_units(n: usize) -> Self {
        MachineConfig {
            issue_width: 4 * n,
            ..Self::units(n)
        }
    }

    /// The BAM-processor cost model: one horizontal (4-slot) unit,
    /// compaction barriers at BAM-instruction boundaries (supplied by
    /// the `BamGroups` compaction mode), and no taken-branch bubble —
    /// Holmer's BAM used 2-cycle pipelined control with a single delay
    /// slot that its compiler filled, which we model as a free taken
    /// transfer (see DESIGN.md).
    pub fn bam() -> Self {
        MachineConfig {
            taken_branch_penalty: 0,
            ..Self::wide_units(1)
        }
    }

    /// "Available concurrency" machine for Table 1: unbounded function
    /// units, shared single-ported memory.
    pub fn unbounded() -> Self {
        MachineConfig {
            units: 64,
            issue_width: 256,
            ..Self::units(1)
        }
    }

    /// The SYMBOL prototype (§5): three units with the two-format
    /// instruction restriction.
    pub fn prototype() -> Self {
        MachineConfig {
            split_formats: true,
            ..Self::units(3)
        }
    }

    /// Per-cycle slot budget for a class on the whole machine.
    pub fn slots(&self, class: symbol_intcode::OpClass) -> usize {
        use symbol_intcode::OpClass::*;
        match class {
            Memory => self.mem_ports.min(self.units),
            Alu => self.units,
            Move => self.units,
            Control => {
                if self.multiway_branch {
                    self.units
                } else {
                    1
                }
            }
        }
    }

    /// Result latency for an op.
    pub fn latency(&self, op: &symbol_intcode::Op) -> u32 {
        use symbol_intcode::OpClass::*;
        match op.class() {
            Memory => self.mem_latency,
            Alu => self.alu_latency,
            Move => 1,
            Control => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symbol_intcode::OpClass;

    #[test]
    fn shared_memory_is_single_ported() {
        let m = MachineConfig::units(4);
        assert_eq!(m.slots(OpClass::Memory), 1);
        assert_eq!(m.slots(OpClass::Alu), 4);
    }

    #[test]
    fn unbounded_still_respects_memory() {
        let m = MachineConfig::unbounded();
        assert_eq!(m.slots(OpClass::Memory), 1);
        assert!(m.slots(OpClass::Alu) >= 64);
    }

    #[test]
    fn prototype_has_split_formats() {
        assert!(MachineConfig::prototype().split_formats);
        assert!(!MachineConfig::units(3).split_formats);
    }
}
