//! Workspace-level integration: the scheduled VLIW code must be
//! semantically equivalent to sequential execution for every
//! compaction mode, machine shape and scheduling policy — exercised
//! over programs that stress each part of the Prolog machinery.

use symbol_compactor::{compact, CompactMode, TracePolicy};
use symbol_core::pipeline::Compiled;
use symbol_intcode::{Emulator, ExecConfig, Outcome};
use symbol_vliw::{MachineConfig, SimConfig, SimOutcome, VliwSim};

fn outcomes_agree(src: &str) {
    let compiled = Compiled::from_source(src).expect("compiles");
    let run = Emulator::new(&compiled.ici, &compiled.layout)
        .run(&ExecConfig::default())
        .expect("sequential run");
    let want = match run.outcome {
        Outcome::Success => SimOutcome::Success,
        Outcome::Failure => SimOutcome::Failure,
    };

    let machines = [
        MachineConfig::units(1),
        MachineConfig::units(2),
        MachineConfig::units(4),
        MachineConfig::wide_units(2),
        MachineConfig::prototype(),
        MachineConfig::unbounded(),
        MachineConfig::bam(),
        MachineConfig {
            mem_ports: 2,
            ..MachineConfig::units(3)
        },
        MachineConfig {
            multiway_branch: false,
            ..MachineConfig::units(3)
        },
    ];
    let policies = [
        TracePolicy::default(),
        TracePolicy {
            tail_dup_ops: 0,
            ..TracePolicy::default()
        },
        TracePolicy {
            speculate: false,
            max_blocks: 4,
            ..TracePolicy::default()
        },
    ];
    for machine in machines {
        for policy in &policies {
            for mode in [
                CompactMode::TraceSchedule,
                CompactMode::BasicBlock,
                CompactMode::BamGroups,
            ] {
                let compacted = compact(&compiled.ici, &run.stats, &machine, mode, policy);
                let result = VliwSim::new(&compacted.program, machine, &compiled.layout)
                    .run(&SimConfig::default())
                    .unwrap_or_else(|e| panic!("{mode:?}/{machine:?}: {e}"));
                assert_eq!(result.outcome, want, "{mode:?} on {machine:?} diverged");
            }
        }
    }
}

#[test]
fn deterministic_recursion() {
    outcomes_agree(
        "main :- sum(25, S), S = 325.
         sum(0, 0).
         sum(N, S) :- N > 0, M is N - 1, sum(M, T), S is T + N.",
    );
}

#[test]
fn shallow_backtracking() {
    outcomes_agree(
        "main :- pick(X), sq(X, 16).
         pick(2). pick(3). pick(4). pick(5).
         sq(X, Y) :- Y is X * X.",
    );
}

#[test]
fn deep_backtracking_with_trail() {
    outcomes_agree(
        "main :- perm([1,2,3,4], P), P = [4,3,2,1].
         perm([], []).
         perm(L, [X|P]) :- sel(X, L, R), perm(R, P).
         sel(X, [X|T], T).
         sel(X, [Y|T], [Y|R]) :- sel(X, T, R).",
    );
}

#[test]
fn cut_and_negation() {
    outcomes_agree(
        "main :- best(7, B), B = small, \\+ best(20, small).
         best(X, small) :- X < 10, !.
         best(_, large).",
    );
}

#[test]
fn structure_building_and_matching() {
    outcomes_agree(
        "main :- tree(3, T), count(T, N), N = 7.
         tree(0, leaf).
         tree(D, node(L, R)) :- D > 0, D1 is D - 1, tree(D1, L), tree(D1, R).
         count(leaf, 1).
         count(node(L, R), N) :-
             count(L, NL), count(R, NR), N is NL + NR + 1.",
    );
}

#[test]
fn failure_propagates_identically() {
    outcomes_agree(
        "main :- perm([1,2,3], P), sorted_desc(P), P = [1,2,3].
         perm([], []).
         perm(L, [X|P]) :- sel(X, L, R), perm(R, P).
         sel(X, [X|T], T).
         sel(X, [Y|T], [Y|R]) :- sel(X, T, R).
         sorted_desc([]).
         sorted_desc([_]).
         sorted_desc([A,B|T]) :- A >= B, sorted_desc([B|T]).",
    );
}

#[test]
fn arithmetic_heavy() {
    outcomes_agree(
        "main :- gcd(252, 105, G), G = 21,
                 pow(3, 5, P), P = 243.
         gcd(A, 0, A) :- !.
         gcd(A, B, G) :- B > 0, R is A mod B, gcd(B, R, G).
         pow(_, 0, 1) :- !.
         pow(B, E, R) :- E > 0, E1 is E - 1, pow(B, E1, R1), R is R1 * B.",
    );
}

#[test]
fn aquarius_conc30_everywhere() {
    outcomes_agree(symbol_core::benchmarks::by_name("conc30").unwrap().source);
}

#[test]
fn aquarius_serialise_everywhere() {
    outcomes_agree(
        symbol_core::benchmarks::by_name("serialise")
            .unwrap()
            .source,
    );
}

#[test]
fn aquarius_ops8_everywhere() {
    outcomes_agree(symbol_core::benchmarks::by_name("ops8").unwrap().source);
}

#[test]
fn extra_programs_compact_correctly() {
    for b in symbol_core::extras::EXTRAS {
        outcomes_agree(b.source);
    }
}
