//! Table 3 / Figure 6 — the unit sweep: compaction plus validated
//! VLIW simulation per machine width. Times the full
//! compact-and-simulate kernel, then regenerates the table and chart.

use std::hint::black_box;

use symbol_bench::compiled;
use symbol_bench::timing::Harness;
use symbol_compactor::{compact, CompactMode, TracePolicy};
use symbol_core::experiments::{measure_all, reports};
use symbol_vliw::{MachineConfig, SimConfig, VliwSim};

fn bench(h: &mut Harness) {
    let (cc, run) = compiled("nreverse");
    for units in [1usize, 3, 5] {
        let machine = MachineConfig::units(units);
        h.bench_function(&format!("table3/compact_and_simulate/{units}u"), |b| {
            b.iter(|| {
                let compacted = compact(
                    black_box(&cc.ici),
                    &run.stats,
                    &machine,
                    CompactMode::TraceSchedule,
                    &TracePolicy::default(),
                );
                VliwSim::new(&compacted.program, machine, &cc.layout)
                    .run(&SimConfig::default())
                    .expect("simulates")
                    .cycles
            })
        });
    }
}

fn print_report() {
    let results = measure_all().expect("suite measures");
    println!("\n{}", reports::table3_units(&results));
    println!("\n{}", reports::fig6_chart(&results));
}

fn main() {
    let mut h = Harness::new();
    bench(&mut h);
    h.final_summary();
    print_report();
}
