% sendmore -- the SEND + MORE = MONEY cryptarithmetic puzzle solved by
% column-wise digit selection with carries (Aquarius "sendmore").
% The unique solution is S=9 E=5 N=6 D=7 M=1 O=0 R=8 Y=2.

main :-
    send([S,E,N,D,M,O,R,Y]),
    [S,E,N,D,M,O,R,Y] = [9,5,6,7,1,0,8,2].

send([S,E,N,D,M,O,R,Y]) :-
    M = 1,
    digits(Ds0),
    sel(D, Ds0, Ds1),
    sel(E, Ds1, Ds2),
    Y0 is D + E, Y is Y0 mod 10, C1 is Y0 // 10,
    sel(Y, Ds2, Ds3),
    sel(N, Ds3, Ds4),
    carry(C2),
    R is E + 10 * C2 - N - C1, R >= 0, R =< 9,
    sel(R, Ds4, Ds5),
    carry(C3),
    O is N + 10 * C3 - E - C2, O >= 0, O =< 9,
    sel(O, Ds5, Ds6),
    sel(M, Ds6, Ds7),
    S is O + 9 - C3, S >= 1,
    sel(S, Ds7, _).

digits([0,1,2,3,4,5,6,7,8,9]).

carry(0).
carry(1).

sel(X, [X|T], T).
sel(X, [Y|T], [Y|R]) :- sel(X, T, R).
