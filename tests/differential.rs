//! Differential suite for the pre-decoded execution engines: every
//! built-in benchmark runs through both the legacy op-at-a-time
//! interpreters and the decoded micro-op engines, and the results must
//! be **bit-identical** — same `Outcome`, step counts and branch
//! statistics for the emulator; same `SimResult` down to every counter
//! for the VLIW simulator. The decoded engines are the default
//! production path (`Compiled::run_sequential`, the experiment
//! drivers), so any divergence here is a correctness bug, not a perf
//! regression.

use std::sync::atomic::{AtomicU64, Ordering};
use std::thread;

use symbol_compactor::{compact, CompactMode, TracePolicy};
use symbol_core::benchmarks;
use symbol_core::experiments::{measure_cached, measure_cached_obs};
use symbol_core::pipeline::{Compiled, CompiledCache};
use symbol_intcode::fuse::{fuse, FuseConfig};
use symbol_intcode::{DecodedEmulator, Emulator, ExecConfig};
use symbol_obs::Registry;
use symbol_vliw::{DecodedVliw, DecodedVliwSim, MachineConfig, SimConfig, VliwSim};

/// Runs `f` once per benchmark, in parallel, propagating panics with
/// the benchmark name attached.
fn for_each_benchmark(f: impl Fn(&benchmarks::Benchmark) + Sync) {
    thread::scope(|s| {
        let handles: Vec<_> = benchmarks::ALL
            .iter()
            .map(|b| (b.name, s.spawn(|| f(b))))
            .collect();
        for (name, h) in handles {
            if h.join().is_err() {
                panic!("differential check failed for benchmark `{name}`");
            }
        }
    });
}

#[test]
fn emulator_decoded_matches_legacy_on_every_benchmark() {
    for_each_benchmark(|b| {
        let compiled = Compiled::from_source(b.source).expect("compiles");
        let cfg = ExecConfig::default();
        let legacy = Emulator::new(&compiled.ici, &compiled.layout)
            .run(&cfg)
            .expect("legacy run");
        let decoded = DecodedEmulator::new(&compiled.decoded, &compiled.layout)
            .run(&cfg)
            .expect("decoded run");
        assert_eq!(decoded.outcome, legacy.outcome, "{}: outcome", b.name);
        assert_eq!(decoded.steps, legacy.steps, "{}: steps", b.name);
        assert_eq!(
            decoded.stats.expect, legacy.stats.expect,
            "{}: per-op expect counts",
            b.name
        );
        assert_eq!(
            decoded.stats.taken, legacy.stats.taken,
            "{}: per-op taken counts",
            b.name
        );
    });
}

/// Three-way check for the profile-guided superinstruction tier: the
/// fused program produced from each benchmark's own execution profile
/// must be bit-identical to *both* scalar engines — outcome, step
/// count, per-op Expect / taken statistics, and the per-constituent
/// execution trace. Fusion is a pure dispatch optimisation; any
/// architectural difference it introduces is a bug.
#[test]
fn emulator_fused_matches_decoded_and_legacy_on_every_benchmark() {
    let total_pairs = AtomicU64::new(0);
    for_each_benchmark(|b| {
        let compiled = Compiled::from_source(b.source).expect("compiles");
        let cfg = ExecConfig::default();
        let legacy = Emulator::new(&compiled.ici, &compiled.layout)
            .run(&cfg)
            .expect("legacy run");
        let (dres, dstats, dsteps, dprof) =
            DecodedEmulator::new(&compiled.decoded, &compiled.layout).run_with_profile(&cfg);
        let doutcome = dres.expect("decoded run");
        let (fused, report) = fuse(&compiled.decoded, &dstats, &dprof, &FuseConfig::default());
        total_pairs.fetch_add(report.pairs, Ordering::Relaxed);

        let (fres, fstats, fsteps) =
            DecodedEmulator::new(&fused, &compiled.layout).run_with_stats(&cfg);
        let foutcome = fres.expect("fused run");
        assert_eq!(foutcome, legacy.outcome, "{}: outcome vs legacy", b.name);
        assert_eq!(foutcome, doutcome, "{}: outcome vs decoded", b.name);
        assert_eq!(fsteps, legacy.steps, "{}: steps vs legacy", b.name);
        assert_eq!(fsteps, dsteps, "{}: steps vs decoded", b.name);
        assert_eq!(
            fstats.expect, legacy.stats.expect,
            "{}: per-op expect counts",
            b.name
        );
        assert_eq!(
            fstats.taken, legacy.stats.taken,
            "{}: per-op taken counts",
            b.name
        );

        // Per-constituent trace parity: a fused pair must leave the
        // same footprint in the circular op trace as its two halves.
        let mut traced_decoded = DecodedEmulator::new(&compiled.decoded, &compiled.layout);
        traced_decoded.set_trace(64);
        let _ = traced_decoded.run_with_stats(&cfg);
        let mut traced_fused = DecodedEmulator::new(&fused, &compiled.layout);
        traced_fused.set_trace(64);
        let _ = traced_fused.run_with_stats(&cfg);
        assert_eq!(
            traced_fused.trace(),
            traced_decoded.trace(),
            "{}: execution trace",
            b.name
        );
    });
    assert!(
        total_pairs.load(Ordering::Relaxed) > 0,
        "the fusion pass found no hot pairs across the whole suite — \
         the tier is not being exercised"
    );
}

/// Observability must never change a result: the fully instrumented
/// pipeline (live registry, spans, counters, events) and the profiled
/// engine monomorphizations must produce bit-identical outcomes,
/// per-op statistics and simulation counters versus the plain path.
#[test]
fn instrumentation_on_and_off_are_bit_identical_on_every_benchmark() {
    for_each_benchmark(|b| {
        let obs = Registry::new();

        // Compilation + sequential run, plain vs observed.
        let plain = Compiled::from_source(b.source).expect("compiles");
        let observed = Compiled::from_source_obs(b.source, Default::default(), &obs, b.name)
            .expect("compiles");
        let plain_run = plain.run_sequential().expect("plain run");
        let observed_run = observed
            .run_sequential_obs(&obs, b.name)
            .expect("observed run");
        assert_eq!(
            observed_run.outcome, plain_run.outcome,
            "{}: outcome",
            b.name
        );
        assert_eq!(observed_run.steps, plain_run.steps, "{}: steps", b.name);
        assert_eq!(
            observed_run.stats.expect, plain_run.stats.expect,
            "{}: per-op expect counts",
            b.name
        );
        assert_eq!(
            observed_run.stats.taken, plain_run.stats.taken,
            "{}: per-op taken counts",
            b.name
        );

        // PROFILE = true emulator monomorphization vs the plain engine.
        let (outcome, stats, steps, _profile) = DecodedEmulator::new(&plain.decoded, &plain.layout)
            .run_with_profile(&ExecConfig::default());
        assert_eq!(outcome.expect("profiled run"), plain_run.outcome);
        assert_eq!(steps, plain_run.steps, "{}: profiled steps", b.name);
        assert_eq!(
            stats.expect, plain_run.stats.expect,
            "{}: profiled expect",
            b.name
        );

        // PROFILE = true VLIW monomorphization vs the plain simulator.
        let machine = MachineConfig::units(3);
        let compacted = compact(
            &plain.ici,
            &plain_run.stats,
            &machine,
            CompactMode::TraceSchedule,
            &TracePolicy::default(),
        );
        let lowered = DecodedVliw::new(&compacted.program, machine);
        let cfg = SimConfig::default();
        let plain_sim = DecodedVliwSim::new(&lowered, &plain.layout)
            .run(&cfg)
            .expect("plain sim");
        let (profiled_sim, _) = DecodedVliwSim::new(&lowered, &plain.layout).run_profiled(&cfg);
        let profiled_sim = profiled_sim.expect("profiled sim");
        assert_eq!(profiled_sim, plain_sim, "{}: SimResult", b.name);

        // The whole experiment driver, observed vs not.
        let cache = CompiledCache::new(&plain).expect("cache");
        let silent = measure_cached(b.name, &cache, 1).expect("silent measure");
        let loud = measure_cached_obs(b.name, &cache, 1, &obs).expect("observed measure");
        assert_eq!(loud, silent, "{}: BenchResult", b.name);
    });
}

#[test]
fn vliw_decoded_matches_legacy_on_every_benchmark() {
    let combos = [
        (CompactMode::TraceSchedule, MachineConfig::units(3)),
        (CompactMode::BasicBlock, MachineConfig::prototype()),
        (CompactMode::TraceSchedule, MachineConfig::unbounded()),
    ];
    for_each_benchmark(|b| {
        let compiled = Compiled::from_source(b.source).expect("compiles");
        let run = compiled.run_sequential().expect("profiling run");
        for (mode, machine) in combos {
            let compacted = compact(
                &compiled.ici,
                &run.stats,
                &machine,
                mode,
                &TracePolicy::default(),
            );
            let cfg = SimConfig::default();
            let legacy = VliwSim::new(&compacted.program, machine, &compiled.layout)
                .run(&cfg)
                .unwrap_or_else(|e| panic!("{}: legacy {mode:?} sim: {e}", b.name));
            let lowered = DecodedVliw::new(&compacted.program, machine);
            let fast = DecodedVliwSim::new(&lowered, &compiled.layout)
                .run(&cfg)
                .unwrap_or_else(|e| panic!("{}: decoded {mode:?} sim: {e}", b.name));
            assert_eq!(fast.outcome, legacy.outcome, "{}/{mode:?}: outcome", b.name);
            assert_eq!(fast.cycles, legacy.cycles, "{}/{mode:?}: cycles", b.name);
            assert_eq!(
                fast.instructions, legacy.instructions,
                "{}/{mode:?}: instructions",
                b.name
            );
            assert_eq!(fast.ops, legacy.ops, "{}/{mode:?}: ops", b.name);
            assert_eq!(
                fast.taken_branches, legacy.taken_branches,
                "{}/{mode:?}: taken branches",
                b.name
            );
            assert_eq!(
                fast.class_ops, legacy.class_ops,
                "{}/{mode:?}: per-class op counts",
                b.name
            );
        }
    });
}
