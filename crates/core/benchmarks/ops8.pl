% ops8 -- symbolic differentiation of the 8-operator expression
% (x+1) * ((x*x+2) * (x*x*x+3)) (Warren's DERIV family, "ops8").
% The expected result size is checked (63 nodes).

main :-
    d((x + 1) * ((x * x + 2) * (x * x * x + 3)), x, D),
    size(D, N),
    N = 63.

d(U + V, X, DU + DV) :- !, d(U, X, DU), d(V, X, DV).
d(U - V, X, DU - DV) :- !, d(U, X, DU), d(V, X, DV).
d(U * V, X, DU * V + U * DV) :- !, d(U, X, DU), d(V, X, DV).
d(U / V, X, (DU * V - U * DV) / (V * V)) :- !, d(U, X, DU), d(V, X, DV).
d(log(U), X, DU / U) :- !, d(U, X, DU).
d(X, X, 1) :- !.
d(_, _, 0).

size(X + Y, S) :- !, size(X, A), size(Y, B), S is A + B + 1.
size(X - Y, S) :- !, size(X, A), size(Y, B), S is A + B + 1.
size(X * Y, S) :- !, size(X, A), size(Y, B), S is A + B + 1.
size(X / Y, S) :- !, size(X, A), size(Y, B), S is A + B + 1.
size(log(X), S) :- !, size(X, A), S is A + 1.
size(_, 1).
