//! # symbol-prolog
//!
//! Prolog front end of the SYMBOL evaluation system: tokenizer,
//! operator-precedence parser, clause normalizer and program loader.
//!
//! This crate turns Prolog source text into a [`Program`]: predicates
//! grouped by name/arity, with clause bodies flattened into plain goal
//! sequences (control constructs `;`, `->` and `\+` are expanded into
//! auxiliary predicates by [`normalize`]), ready for compilation to the
//! Berkeley-Abstract-Machine-style code of `symbol-bam`.
//!
//! ```
//! use symbol_prolog::parse_program;
//!
//! # fn main() -> Result<(), symbol_prolog::ParseError> {
//! let program = parse_program("app([], L, L). app([X|T], L, [X|R]) :- app(T, L, R).")?;
//! assert_eq!(program.predicates().count(), 1);
//! # Ok(())
//! # }
//! ```

pub mod ast;
pub mod error;
pub mod lexer;
pub mod normalize;
pub mod ops;
pub mod parser;
pub mod pretty;
pub mod program;
pub mod symbols;

pub use ast::{Clause, Term};
pub use error::ParseError;
pub use pretty::{program_to_source, term_to_source};
pub use program::{PredId, Predicate, Program};
pub use symbols::{Atom, SymbolTable};

/// Parses Prolog source text into a fully normalized [`Program`].
///
/// This is the one-stop entry point: it tokenizes, parses every clause,
/// expands control constructs and groups clauses into predicates.
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first syntax error found.
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    parse_program_with_events(src, &symbol_obs::Events::silent())
}

/// [`parse_program`] with front-end diagnostics emitted to `events`
/// instead of any output stream — the library never prints; the caller
/// decides whether events are collected, echoed or dropped.
///
/// # Errors
///
/// See [`parse_program`].
pub fn parse_program_with_events(
    src: &str,
    events: &symbol_obs::Events,
) -> Result<Program, ParseError> {
    let mut symbols = SymbolTable::new();
    let clauses = match parser::parse_clauses(src, &mut symbols) {
        Ok(c) => c,
        Err(e) => {
            events.emit_with(symbol_obs::Level::Error, "prolog::parse", || {
                format!("syntax error: {e}")
            });
            return Err(e);
        }
    };
    let parsed = clauses.len();
    let clauses = normalize::normalize_clauses(clauses, &mut symbols);
    if clauses.len() != parsed {
        events.emit_with(symbol_obs::Level::Debug, "prolog::normalize", || {
            format!(
                "control expansion grew {parsed} clauses to {}",
                clauses.len()
            )
        });
    }
    let program = Program::from_clauses(clauses, symbols);
    events.emit_with(symbol_obs::Level::Info, "prolog::parse", || {
        format!(
            "parsed {parsed} clauses into {} predicates",
            program.predicates().count()
        )
    });
    Ok(program)
}
