//! Replays the differential-fuzz corpus through the serving tier's
//! entry points. The contract under test is narrow but absolute: no
//! corpus input — well-formed Prolog, failing Prolog, or raw case
//! bytes misread as an artifact — may panic the server. Errors are
//! fine; panics are not.

use std::sync::Arc;

use symbol_intcode::Layout;
use symbol_obs::Registry;
use symbol_serve::artifact;
use symbol_serve::cache::ArtifactCache;
use symbol_serve::server::{QueryServer, ServerConfig};

fn corpus_files() -> Vec<std::path::PathBuf> {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../fuzz/corpus");
    let mut files: Vec<_> = std::fs::read_dir(&dir)
        .expect("fuzz corpus directory exists")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "case"))
        .collect();
    files.sort();
    assert!(!files.is_empty(), "fuzz corpus is not empty");
    files
}

/// The non-comment body of a case file (its Prolog source or IntCode
/// fragment text).
fn body(text: &str) -> String {
    text.lines()
        .filter(|l| !l.trim_start().starts_with('#'))
        .collect::<Vec<_>>()
        .join("\n")
}

struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("symbol-serve-corpus-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[test]
fn corpus_bytes_never_panic_the_artifact_decoder() {
    for path in corpus_files() {
        let bytes = std::fs::read(&path).expect("read case");
        // Case files are not artifacts; decoding must reject, never
        // panic. Also stress the decoder with every prefix.
        assert!(artifact::decode(&bytes).is_err(), "{path:?}");
        for len in (0..bytes.len()).step_by(7) {
            assert!(artifact::decode(&bytes[..len]).is_err(), "{path:?}@{len}");
        }
    }
}

#[test]
fn corpus_sources_flow_through_cache_and_server_without_panicking() {
    let t = TempDir::new("flow");
    let obs = Registry::new();
    let cache = ArtifactCache::new(&t.0, obs.clone()).expect("open cache");
    for path in corpus_files() {
        let text = std::fs::read_to_string(&path).expect("read case");
        let kind_prolog = text.contains("# kind: prolog");
        let src = body(&text);
        // Cold, then warm: both paths must be panic-free whatever the
        // case contains. Non-Prolog cases fail to compile — also fine.
        for _ in 0..2 {
            match cache.load_compiled(&src, Layout::default()) {
                Ok(compiled) => {
                    let server =
                        QueryServer::start(Arc::new(compiled), &ServerConfig::default(), &obs);
                    for id in 0..4 {
                        server.submit(id);
                    }
                    let results = server.finish();
                    assert_eq!(results.len(), 4, "{path:?}");
                }
                Err(e) => {
                    // Non-Prolog fragments may fail to compile, but a
                    // `# expect: pass` Prolog case must at least reach
                    // the server (its *query* may still fail there).
                    assert!(
                        !(kind_prolog && text.contains("# expect: pass")),
                        "{path:?}: expected to serve, got {e}"
                    );
                }
            }
        }
    }
}
