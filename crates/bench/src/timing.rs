//! A small, dependency-free timing harness for the `benches/` targets.
//!
//! Each kernel is warmed up, calibrated to a fixed wall-clock budget,
//! then timed over a batch of iterations; the harness reports the mean
//! time per iteration. Results are best-effort wall-clock numbers for
//! spotting regressions in the regeneration kernels, not a statistical
//! benchmarking framework.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Wall-clock budget for one timed kernel (after warm-up).
const MEASURE_BUDGET: Duration = Duration::from_millis(200);
/// Wall-clock budget for the calibration warm-up.
const WARMUP_BUDGET: Duration = Duration::from_millis(50);
/// Iteration-count clamp, so pathological kernels neither spin
/// forever nor report a single noisy sample.
const MAX_ITERS: u64 = 100_000;

/// One recorded kernel timing.
#[derive(Clone, Debug)]
pub struct Sample {
    /// Kernel name as passed to [`Harness::bench_function`].
    pub name: String,
    /// Mean wall-clock time per iteration.
    pub mean: Duration,
    /// Iterations in the measured batch.
    pub iters: u64,
}

/// Collects and prints kernel timings; the drop-in stand-in for the
/// previous external benchmarking dependency.
#[derive(Default, Debug)]
pub struct Harness {
    samples: Vec<Sample>,
}

/// Passed to the kernel closure; [`Bencher::iter`] runs and times the
/// measured batch.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f` over the calibrated batch, preventing the optimizer
    /// from discarding its result.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

impl Harness {
    /// An empty harness.
    pub fn new() -> Self {
        Harness::default()
    }

    /// Warm-up, calibrate, and time one kernel, printing its mean
    /// time per iteration immediately.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        // Warm-up: run single iterations until the budget elapses,
        // which also yields the per-iteration estimate.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < WARMUP_BUDGET && warm_iters < MAX_ITERS {
            let mut b = Bencher {
                iters: 1,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        let iters =
            ((MEASURE_BUDGET.as_secs_f64() / per_iter.max(1e-9)) as u64).clamp(1, MAX_ITERS);

        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let mean = b.elapsed.div_f64(iters.max(1) as f64);
        println!(
            "{name:<40} {:>12} /iter  ({iters} iters)",
            fmt_duration(mean)
        );
        self.samples.push(Sample {
            name: name.to_owned(),
            mean,
            iters,
        });
    }

    /// All samples recorded so far.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Prints the closing one-line summary.
    pub fn final_summary(&self) {
        println!("timed {} kernel(s)", self.samples.len());
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_one_sample_per_kernel() {
        let mut h = Harness::new();
        h.bench_function("noop", |b| b.iter(|| 0u64));
        h.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        assert_eq!(h.samples().len(), 2);
        assert_eq!(h.samples()[0].name, "noop");
        assert!(h.samples().iter().all(|s| s.iters >= 1));
    }
}
