//! Batched serving throughput: queries/sec through the sharded
//! [`symbol_serve::server::QueryServer`] versus worker count, over the
//! full benchmark suite on the fused serving tier. Writes the
//! per-benchmark numbers to `BENCH_serve.json` at the workspace root.
//!
//! Two things are measured and gated:
//!
//! * **Scaling** — each benchmark is served twice, with 1 worker and
//!   with `min(4, cores)` workers, as batched run requests executed
//!   back-to-back on pooled engine state. With `--check`, the run
//!   exits nonzero if the geomean multi-worker speedup falls below
//!   [`required_scaling`]: `0.625 × workers` (2.5× at the 4 workers CI
//!   provides), degrading to a 0.75× no-pathological-overhead floor on
//!   boxes with fewer cores, where parallel speedup is physically
//!   unavailable and only the scheduler's overhead can be checked.
//!   The JSON records `cores` and the applied requirement, so a
//!   number from a small machine is never misread as a scaling claim.
//! * **Determinism** — for every benchmark of
//!   [`symbol_bench::TIMING_SUBSET`], every (worker count ∈ {1,2,4,8})
//!   × (batch size ∈ {1,3,8}) serving combination must answer every
//!   sub-query with exactly the sequential engine's step count, in
//!   index order. This always runs (it is cheap) and any divergence
//!   aborts the bench, `--check` or not: a fast scheduler that
//!   reorders answers or perturbs execution is wrong, not fast.

use std::fmt::Write as _;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

use symbol_bench::TIMING_SUBSET;
use symbol_core::benchmarks;
use symbol_core::pipeline::Compiled;
use symbol_intcode::Layout;
use symbol_obs::Registry;
use symbol_serve::server::{QueryServer, ServerConfig};

/// Sub-queries per batched run request on the measured path.
const BATCH: usize = 8;

/// Per-benchmark work target: enough total steps that a measurement
/// is queue-scheduling-dominated rather than startup-dominated.
const TARGET_STEPS: u64 = 20_000_000;

/// Batch sizes the determinism stage crosses with worker counts.
const DET_BATCHES: [usize; 3] = [1, 3, 8];

/// Worker counts the determinism stage exercises (deliberately past
/// the physical core count: oversubscription shuffles steal order).
const DET_WORKERS: [usize; 4] = [1, 2, 4, 8];

/// The scaling the `--check` gate demands of `workers` workers:
/// 62.5% parallel efficiency (2.5× at 4 workers), floored at 0.75×
/// so a single-core box still gates on gross scheduler overhead.
fn required_scaling(workers: usize) -> f64 {
    (workers as f64 * 0.625).max(0.75)
}

fn cores() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Same small arenas as the `emulator_decode` bench: the serving loop
/// re-zeroes pooled buffers per query, and the default ~3.6M-word
/// layout would make that memset the whole measurement.
fn layout_for(name: &str) -> Layout {
    if name == "tak" {
        Layout {
            heap_size: 1 << 17,
            env_size: 1 << 19,
            cp_size: 1 << 18,
            trail_size: 1 << 19,
            pdl_size: 1 << 14,
        }
    } else {
        Layout {
            heap_size: 1 << 16,
            env_size: 1 << 14,
            cp_size: 1 << 14,
            trail_size: 1 << 14,
            pdl_size: 1 << 10,
        }
    }
}

struct Row {
    name: &'static str,
    steps: u64,
    queries: usize,
    qps_one: f64,
    qps_many: f64,
}

impl Row {
    fn scaling(&self) -> f64 {
        self.qps_many / self.qps_one
    }
}

fn compile(b: &benchmarks::Benchmark) -> Arc<Compiled> {
    let mut c = Compiled::from_source_with_layout(b.source, layout_for(b.name)).expect("compiles");
    c.build_fused_tier().expect("fuses");
    Arc::new(c)
}

/// Serves `queries` executions of `compiled` as size-[`BATCH`] batch
/// requests through a `workers`-worker server and returns (queries
/// per second, per-query steps of the first answer) after verifying
/// every answer arrived and none erred.
fn throughput(compiled: &Arc<Compiled>, workers: usize, queries: usize) -> (f64, u64) {
    let obs = Registry::disabled();
    let server = QueryServer::start(
        Arc::clone(compiled),
        &ServerConfig {
            workers,
            queue_capacity: 1024,
            max_batch: 4,
            flight_capacity: 0,
            ..ServerConfig::default()
        },
        &obs,
    );
    let t = Instant::now();
    let mut id = 0u64;
    let mut remaining = queries;
    while remaining > 0 {
        let n = remaining.min(BATCH);
        server.submit_batch(id, n);
        id += 1;
        remaining -= n;
    }
    let results = server.finish();
    let secs = t.elapsed().as_secs_f64();
    let mut answered = 0usize;
    let mut steps = 0u64;
    for r in &results {
        let batch = r
            .outcome
            .as_ref()
            .expect("batch request succeeds")
            .batch()
            .expect("batch answer");
        if steps == 0 {
            steps = batch[0];
        }
        assert!(
            batch.iter().all(|&s| s == steps),
            "batched answers diverged on the measured path"
        );
        answered += batch.len();
    }
    assert_eq!(answered, queries, "every submitted query was answered");
    (queries as f64 / secs, steps)
}

/// The concurrent-determinism sweep: serve each subset benchmark
/// under every worker-count × batch-size combination and demand
/// bit-identical, index-ordered answers against the sequential
/// reference. Returns the number of (bench, workers, batch) cells
/// checked.
fn determinism_sweep() -> usize {
    let mut cells = 0;
    for name in TIMING_SUBSET {
        let b = benchmarks::ALL
            .iter()
            .find(|b| b.name == *name)
            .expect("subset benchmark exists");
        let compiled = compile(b);
        let reference = compiled
            .run_sequential_fast()
            .expect("sequential reference")
            .steps;
        for &workers in &DET_WORKERS {
            for &batch in &DET_BATCHES {
                let obs = Registry::disabled();
                let server = QueryServer::start(
                    Arc::clone(&compiled),
                    &ServerConfig {
                        workers,
                        queue_capacity: 16,
                        max_batch: 2,
                        flight_capacity: 0,
                        ..ServerConfig::default()
                    },
                    &obs,
                );
                let requests = 12usize.div_ceil(batch);
                for id in 0..requests {
                    server.submit_batch(id as u64, batch.min(12 - id * batch));
                }
                let results = server.finish();
                assert_eq!(results.len(), requests);
                let mut total = 0;
                for (i, r) in results.iter().enumerate() {
                    assert_eq!(r.id, i as u64, "answers are index-ordered");
                    let answers = r
                        .outcome
                        .as_ref()
                        .expect("request succeeds")
                        .batch()
                        .expect("batch answer");
                    assert!(
                        answers.iter().all(|&s| s == reference),
                        "{name}: workers={workers} batch={batch}: served steps \
                         {answers:?} != sequential {reference}"
                    );
                    total += answers.len();
                }
                assert_eq!(total, 12, "{name}: every sub-query answered exactly once");
                cells += 1;
            }
        }
    }
    cells
}

fn geomean(ratios: impl Iterator<Item = f64>) -> f64 {
    let (log_sum, n) = ratios.fold((0.0f64, 0usize), |(s, n), r| (s + r.ln(), n + 1));
    (log_sum / n.max(1) as f64).exp()
}

fn write_report(rows: &[Row], workers_many: usize, scaling_geomean: f64, required: f64) {
    let mut out = String::from("{\n  \"serve\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"name\": \"{}\", \"steps\": {}, \"queries\": {}, \
             \"qps_1_worker\": {:.1}, \"qps_{workers_many}_workers\": {:.1}, \
             \"scaling\": {:.3}}}{sep}",
            r.name,
            r.steps,
            r.queries,
            r.qps_one,
            r.qps_many,
            r.scaling(),
        );
    }
    let _ = write!(
        out,
        "  ],\n  \"cores\": {},\n  \"workers_measured\": [1, {workers_many}],\n  \
         \"batch_size\": {BATCH},\n  \"scaling_geomean\": {scaling_geomean:.3},\n  \
         \"required_scaling\": {required:.3},\n  \"determinism_checked\": true\n}}\n",
        cores()
    );
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_serve.json");
    if let Err(e) = std::fs::write(&path, out) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        println!("wrote {}", path.display());
    }
}

fn main() {
    let check = std::env::args().any(|a| a == "--check");

    let cells = determinism_sweep();
    println!(
        "determinism: {cells} (bench x workers x batch) cells served bit-identically \
         to the sequential engine"
    );

    let workers_many = cores().clamp(1, 4);
    let mut rows = Vec::new();
    for b in benchmarks::ALL {
        let compiled = compile(b);
        let steps = compiled
            .run_sequential_fast()
            .expect("reference run")
            .steps
            .max(1);
        let queries = (TARGET_STEPS / steps).clamp(32, 512) as usize;
        let (qps_one, steps_one) = throughput(&compiled, 1, queries);
        let (qps_many, steps_many) = if workers_many > 1 {
            throughput(&compiled, workers_many, queries)
        } else {
            (qps_one, steps_one)
        };
        assert_eq!(
            steps_one, steps_many,
            "{}: step counts must not depend on worker count",
            b.name
        );
        assert_eq!(steps_one, steps, "{}: served != sequential steps", b.name);
        let row = Row {
            name: b.name,
            steps,
            queries,
            qps_one,
            qps_many,
        };
        println!(
            "{:<10} {:>9} steps x {:>3} queries   1 worker {:>9.1} q/s   \
             {workers_many} workers {:>9.1} q/s   {:>5.2}x",
            row.name,
            row.steps,
            row.queries,
            row.qps_one,
            row.qps_many,
            row.scaling()
        );
        rows.push(row);
    }

    let scaling_geomean = geomean(rows.iter().map(Row::scaling));
    let required = required_scaling(workers_many);
    write_report(&rows, workers_many, scaling_geomean, required);
    println!(
        "scaling geomean over {} benchmarks: {scaling_geomean:.3}x with {workers_many} \
         workers on {} core(s) (required {required:.3}x)",
        rows.len(),
        cores()
    );
    if check && scaling_geomean < required {
        eprintln!(
            "FAIL: batched serving scales {scaling_geomean:.3}x with {workers_many} workers \
             (required {required:.3}x)"
        );
        std::process::exit(1);
    }
}
