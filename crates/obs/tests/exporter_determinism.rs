//! Exporter determinism: two registries fed identical updates must
//! render byte-identical documents, whatever order the updates (and
//! registrations) arrived in — that is the property that makes
//! `metrics.json` diffable across runs and lets CI pin the schema.
//! Also proves the string escaper round-trips through the strict
//! parser, including astral-plane and control characters.

use symbol_obs::{json, to_prometheus, Registry, Timeline};

type Update = Box<dyn Fn(&Registry)>;

/// Applies the same logical updates to `r`, registering metrics in
/// the given order.
fn populate(r: &Registry, reversed: bool) {
    let mut updates: Vec<Update> = vec![
        Box::new(|r: &Registry| r.counter("serve.queries.ok", &[("tier", "fused")]).add(5)),
        Box::new(|r: &Registry| r.counter("serve.queries.ok", &[("tier", "decoded")]).add(2)),
        Box::new(|r: &Registry| r.counter("cache.hit", &[]).add(9)),
        Box::new(|r: &Registry| r.gauge("serve.queue.depth", &[]).set(0)),
        Box::new(|r: &Registry| r.gauge("workers", &[]).set(4)),
        Box::new(|r: &Registry| {
            let h = r.histogram("serve.execute.ns", &[("tier", "fused")]);
            for v in [100, 1000, 10_000, 100_000] {
                h.record(v);
            }
        }),
        Box::new(|r: &Registry| {
            r.histogram("serve.queue_wait.ns", &[]).record(777);
        }),
    ];
    if reversed {
        updates.reverse();
    }
    for u in &updates {
        u(r);
    }
}

#[test]
fn identical_registries_render_byte_identical_metrics_json() {
    let a = Registry::new();
    let b = Registry::new();
    populate(&a, false);
    populate(&b, true);
    assert_eq!(
        a.snapshot().to_json(),
        b.snapshot().to_json(),
        "registration order must not leak into metrics.json"
    );
    assert_eq!(a.snapshot().schema_json(), b.snapshot().schema_json());
    assert_eq!(to_prometheus(&a.snapshot()), to_prometheus(&b.snapshot()));
}

#[test]
fn repeated_snapshots_of_a_quiescent_registry_are_stable() {
    let r = Registry::new();
    populate(&r, false);
    let first = r.snapshot().to_json();
    for _ in 0..3 {
        assert_eq!(r.snapshot().to_json(), first);
    }
}

#[test]
fn chrome_trace_render_is_deterministic_for_identical_spans() {
    // Spans on one thread with identical names/labels: the only
    // nondeterminism is wall-clock timing, so compare structure via
    // the parser rather than bytes.
    let make = || {
        let r = Registry::new();
        drop(r.span("compile", &[("bench", "tak")]));
        drop(r.span("emulate", &[("bench", "tak")]));
        r.chrome_trace_json()
    };
    let (ta, tb) = (make(), make());
    let va = json::parse(&ta).expect("trace a parses");
    let vb = json::parse(&tb).expect("trace b parses");
    let names = |v: &json::Value| -> Vec<String> {
        v.get("traceEvents")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .filter_map(|e| e.get("name").and_then(|n| n.as_str()).map(String::from))
            .collect()
    };
    assert_eq!(names(&va), names(&vb));
}

#[test]
fn snapshot_label_keys_are_sorted() {
    let r = Registry::new();
    r.counter("m", &[("zebra", "1"), ("alpha", "2"), ("mid", "3")])
        .inc();
    let snap = r.snapshot();
    let keys: Vec<&str> = snap.counters[0]
        .labels
        .iter()
        .map(|(k, _)| k.as_str())
        .collect();
    assert_eq!(keys, ["alpha", "mid", "zebra"]);
    // And the rendered form preserves that canonical order.
    assert!(snap
        .to_json()
        .contains("{\"alpha\": \"2\", \"mid\": \"3\", \"zebra\": \"1\"}"));
}

#[test]
fn escape_round_trips_astral_and_control_characters() {
    let nasty = "emoji \u{1F600} astral \u{10FFFF} quote \" slash \\ nl \n tab \t bell \u{7} nul \u{0} done";
    let encoded = json::string(nasty);
    let v = json::parse(&encoded).expect("escaped string parses");
    assert_eq!(v.as_str(), Some(nasty), "escape → parse is the identity");

    // The parser also accepts the \uXXXX surrogate-pair spelling of
    // the same astral characters.
    let v = json::parse("\"\\ud83d\\ude00\"").expect("surrogate pair");
    assert_eq!(v.as_str(), Some("\u{1F600}"));
    // And rejects the malformed variants.
    assert!(json::parse("\"\\ud83d\"").is_err(), "lone high surrogate");
    assert!(json::parse("\"\\ude00\"").is_err(), "lone low surrogate");
    assert!(json::parse("\"raw \u{1} control\"").is_err());
}

#[test]
fn strict_parser_rejects_trailing_garbage() {
    assert!(json::parse("{\"a\": 1} trailing").is_err());
    assert!(json::parse("[1, 2,]").is_err(), "trailing comma");
    assert!(json::parse("").is_err());
    assert!(json::parse("  {\"a\": [1, 2.5, -3e2, true, null]}  ").is_ok());
}

#[test]
fn timeline_render_is_deterministic_for_equal_snapshots() {
    let make = || {
        let r = Registry::new();
        populate(&r, false);
        let mut tl = Timeline::new();
        tl.tick(&r.snapshot(), 42)
    };
    assert_eq!(make(), make());
}
