//! Profile-guided superinstruction fusion: the second tier of the
//! decoded emulator.
//!
//! [`fuse`] consumes the execution profile of a
//! [`DecodedEmulator`](crate::decode::DecodedEmulator) run — the
//! per-pc Expect counts ([`ExecStats`], ranked through the
//! deterministic [`ExecStats::hot_pcs`] ordering) plus the 2-bit
//! branch-predictor misprediction counts ([`ExecProfile`]) — and
//! re-decodes hot straight-line pairs into fused micro-op
//! superinstructions, halving the dispatch count on the covered
//! dynamic ops.
//!
//! ## Legality
//!
//! A pair `(i, i + 1)` fuses only when
//!
//! 1. the interior pc `i + 1` is **not** a branch target (the
//!    [`DecodedProgram`] branch-target bitmap, built at decode time:
//!    direct branch/jump targets, every bound label reachable through
//!    `JmpR`, and the entry pc) — otherwise an incoming edge would
//!    skip the head constituent;
//! 2. both pcs are hot: their Expect counts reach
//!    [`FuseConfig::min_expect`] in the profile, so fusion never
//!    touches code the profiling run proved cold or unreachable;
//! 3. the opcode pair matches a fused record shape, with every folded
//!    immediate representable in the record's narrowed `i32` fields;
//! 4. the pair is *profitable*: its complete-pair execution count (the
//!    interior's Expect) reaches [`FuseConfig::min_pair_permille`]
//!    thousandths of the run's total dynamic ops, so a long tail of
//!    lukewarm sites cannot widen the step loop's dispatch footprint
//!    for sub-noise dispatch savings.
//!
//! Pairs are chosen greedily left to right and never overlap. The
//! interior slot keeps its original (now fall-through-unreachable)
//! record, so the fused program stays index-parallel to the source
//! ops: statistics vectors, error `at` fields, traces and the label
//! table keep their meaning unchanged, and the fused engine is
//! **bit-identical** to the unfused decoded engine and the legacy
//! interpreter — which the workspace differential suite and the fuzz
//! oracle's third engine pair both assert.
//!
//! ## Invalidation
//!
//! [`profile_hash`] condenses the whole profile into the cache key of
//! the serialized fused artifact: a source change, layout change or
//! any behavioral drift that alters the profile changes the hash, so a
//! stale specialized program can never be served.

use crate::decode::{DecodedProgram, ExecProfile, MicroOp};
use crate::emu::ExecStats;
use crate::wire::{fnv1a64, Reader, WireError, Writer};
use crate::word::Tag;

/// Fusion-pass knobs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FuseConfig {
    /// Minimum Expect count (per constituent pc) for a pair to fuse.
    /// The default of 1 fuses everything the profiling run actually
    /// executed and nothing it did not.
    pub min_expect: u64,
    /// Profitability threshold: the pair's dynamic contribution — its
    /// interior Expect count, i.e. complete pair executions — must
    /// reach this many thousandths of the profiled run's total dynamic
    /// ops. A pair below the threshold can recover at most ~0.1% × the
    /// threshold in dispatch cost, while every fused site widens the
    /// dispatch footprint of the step loop; on benchmarks dominated by
    /// a long tail of lukewarm pairs (`serialise`, `sendmore`, `tak`)
    /// that trade was a net regression. The default of 5‰ keeps only
    /// pairs whose savings are clearly above timing noise — on the
    /// benchmark suite it leaves tight recursive loops (`count`-style,
    /// `query`, `nreverse`) fused and prunes the fan-out-heavy
    /// programs (`tak`, `qsort`, `serialise`) down to zero pairs, where
    /// the fused program is bit-identical to the decoded one. 0
    /// disables the check.
    pub min_pair_permille: u64,
}

impl Default for FuseConfig {
    fn default() -> Self {
        FuseConfig {
            min_expect: 1,
            min_pair_permille: 5,
        }
    }
}

impl FuseConfig {
    /// Stable hash of the knob values, mixed into the fused artifact's
    /// cache key: a configuration change must invalidate cached fused
    /// programs exactly like a profile change does (they are still
    /// bit-identical, but the serving tier should never silently keep
    /// serving a program fused under retired knobs).
    pub fn cache_salt(&self) -> u64 {
        let mut w = Writer::new();
        w.u64(self.min_expect);
        w.u64(self.min_pair_permille);
        fnv1a64(&w.into_bytes())
    }
}

/// What the fusion pass did, statically and — projected through the
/// profile it consumed — dynamically.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct FusionReport {
    /// Fused pairs rewritten into the program.
    pub pairs: u64,
    /// Compare-and-branch pairs (`CmpBrRR` + `CmpBrRI`).
    pub cmp_br: u64,
    /// Tag-check + dereferencing-load pairs.
    pub tag_deref: u64,
    /// Move + store pairs.
    pub mv_st: u64,
    /// Load + move pairs.
    pub ld_mv: u64,
    /// Immediate-folded `MvI` + ALU pairs.
    pub mvi_alu: u64,
    /// Dynamic executions of a complete fused pair under the consumed
    /// profile — each one is a dispatch the fused engine no longer
    /// pays (the interior is only reachable through its head, so this
    /// is the interior's Expect count).
    pub dispatches_saved: u64,
    /// Dynamic ops covered by fused records under the consumed profile
    /// (head + interior Expect counts).
    pub ops_fused: u64,
    /// Total dynamic ops of the profiling run.
    pub total_ops: u64,
    /// Profiled 2-bit-predictor misses on the branch constituents of
    /// fused pairs — diagnostics for how predictable the fused
    /// compare-and-branch sites are.
    pub fused_branch_mispredicts: u64,
}

impl FusionReport {
    /// Fraction of the profiled dynamic ops covered by fused records.
    pub fn coverage(&self) -> f64 {
        if self.total_ops == 0 {
            0.0
        } else {
            self.ops_fused as f64 / self.total_ops as f64
        }
    }

    /// Serializes the report (a fixed block of `u64`s) into `w`.
    pub fn encode_into(&self, w: &mut Writer) {
        for v in [
            self.pairs,
            self.cmp_br,
            self.tag_deref,
            self.mv_st,
            self.ld_mv,
            self.mvi_alu,
            self.dispatches_saved,
            self.ops_fused,
            self.total_ops,
            self.fused_branch_mispredicts,
        ] {
            w.u64(v);
        }
    }

    /// Decodes a report written by [`FusionReport::encode_into`].
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] on short input.
    pub fn decode_from(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(FusionReport {
            pairs: r.u64()?,
            cmp_br: r.u64()?,
            tag_deref: r.u64()?,
            mv_st: r.u64()?,
            ld_mv: r.u64()?,
            mvi_alu: r.u64()?,
            dispatches_saved: r.u64()?,
            ops_fused: r.u64()?,
            total_ops: r.u64()?,
            fused_branch_mispredicts: r.u64()?,
        })
    }
}

/// Stable content hash of an execution profile (Expect counts, taken
/// counts and per-pc mispredictions), used in the fused artifact's
/// cache key so a profile change invalidates the specialized program.
pub fn profile_hash(stats: &ExecStats, profile: &ExecProfile) -> u64 {
    let mut w = Writer::new();
    w.count(stats.expect.len());
    for &v in &stats.expect {
        w.u64(v);
    }
    for &v in &stats.taken {
        w.u64(v);
    }
    w.count(profile.mispredict.len());
    for &v in &profile.mispredict {
        w.u64(v);
    }
    fnv1a64(&w.into_bytes())
}

/// Which fused shape a pair matched (report bookkeeping).
enum PairKind {
    CmpBr,
    TagDeref,
    MvSt,
    LdMv,
    MvIAlu,
}

/// Matches one adjacent micro-op pair against the fused record shapes.
fn fuse_pair(head: MicroOp, next: MicroOp) -> Option<(MicroOp, PairKind)> {
    let imm32 = |v: i64| i32::try_from(v).ok();
    match (head, next) {
        (
            MicroOp::AluRR { op, d, a, b },
            MicroOp::BrRR {
                cond,
                a: ba,
                b: bb,
                t,
            },
        ) => Some((
            MicroOp::CmpBrRR {
                op,
                cond,
                d,
                a,
                b,
                ba,
                bb,
                t,
            },
            PairKind::CmpBr,
        )),
        (
            MicroOp::AluRI { op, d, a, imm },
            MicroOp::BrRI {
                cond,
                a: ba,
                imm: bimm,
                t,
            },
        ) => Some((
            MicroOp::CmpBrRI {
                op,
                cond,
                d,
                a,
                imm: imm32(imm)?,
                ba,
                bimm: imm32(bimm)?,
                t,
            },
            PairKind::CmpBr,
        )),
        (MicroOp::BrTag { a, tag, eq, t }, MicroOp::Ld { d, base, off }) => Some((
            MicroOp::TagDeref {
                a,
                tag,
                eq,
                t,
                d,
                base,
                off,
            },
            PairKind::TagDeref,
        )),
        (MicroOp::Mv { d, s }, MicroOp::St { s: s2, base, off }) => Some((
            MicroOp::MvSt {
                d,
                s,
                s2,
                base,
                off,
            },
            PairKind::MvSt,
        )),
        (MicroOp::Ld { d, base, off }, MicroOp::Mv { d: d2, s }) => Some((
            MicroOp::LdMv {
                d,
                base,
                off,
                d2,
                s,
            },
            PairKind::LdMv,
        )),
        (MicroOp::MvI { d, w }, MicroOp::AluRR { op, d: d2, a, b })
            if w.tag == Tag::Int && (a == d || b == d) =>
        {
            Some((
                MicroOp::MvIAlu {
                    d,
                    imm: imm32(w.val)?,
                    op,
                    d2,
                    a,
                    b,
                },
                PairKind::MvIAlu,
            ))
        }
        _ => None,
    }
}

/// Re-decodes `program` under the execution profile `(stats, profile)`
/// into its fused second-tier form, returning the specialized program
/// and a [`FusionReport`] of what was done.
///
/// The returned program has the same length, label table, entry pc and
/// register-file size as the input; only fused head slots differ. It
/// is bit-identical in behavior (outcome, step count, [`ExecStats`],
/// trace, errors) to the input on *every* input state, not just the
/// profiled one — the profile only decides *which* legal pairs are
/// worth rewriting.
pub fn fuse(
    program: &DecodedProgram,
    stats: &ExecStats,
    profile: &ExecProfile,
    cfg: &FuseConfig,
) -> (DecodedProgram, FusionReport) {
    let n = program.len();
    let mut report = FusionReport {
        total_ops: stats.expect.iter().sum(),
        ..FusionReport::default()
    };
    // The hot set, through the deterministic hot_pcs ranking (count
    // descending, pc ascending on ties) so the same profile always
    // yields the same fused program.
    let mut hot = vec![false; n];
    for (pc, count) in stats.hot_pcs(n) {
        if count >= cfg.min_expect.max(1) {
            hot[pc] = true;
        }
    }
    let mut micro = program.micro.clone();
    let mut i = 0;
    while i + 1 < n {
        let interior = i + 1;
        if !hot[i] || !hot[interior] || program.is_branch_target(interior) {
            i += 1;
            continue;
        }
        // Profitability: the interior's Expect count is exactly the
        // number of complete pair executions (legality rule 1), so it
        // is the pair's whole dynamic upside. Skip pairs whose upside
        // is below `min_pair_permille` thousandths of the run.
        if stats.expect[interior].saturating_mul(1000)
            < report.total_ops.saturating_mul(cfg.min_pair_permille)
        {
            i += 1;
            continue;
        }
        let Some((fused, kind)) = fuse_pair(micro[i], micro[interior]) else {
            i += 1;
            continue;
        };
        micro[i] = fused;
        report.pairs += 1;
        match kind {
            PairKind::CmpBr => {
                report.cmp_br += 1;
                report.fused_branch_mispredicts +=
                    profile.mispredict.get(interior).copied().unwrap_or(0);
            }
            PairKind::TagDeref => {
                report.tag_deref += 1;
                report.fused_branch_mispredicts += profile.mispredict.get(i).copied().unwrap_or(0);
            }
            PairKind::MvSt => report.mv_st += 1,
            PairKind::LdMv => report.ld_mv += 1,
            PairKind::MvIAlu => report.mvi_alu += 1,
        }
        // The interior is only reachable by falling through its head
        // (legality rule 1), so its Expect count is exactly the number
        // of complete pair executions — each one a saved dispatch.
        report.dispatches_saved += stats.expect[interior];
        report.ops_fused += stats.expect[i] + stats.expect[interior];
        i += 2;
    }
    let fused = DecodedProgram::from_parts(
        micro,
        program.label_pc.clone(),
        program.entry_pc,
        program.num_regs,
    );
    (fused, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;
    use crate::decode::DecodedEmulator;
    use crate::emu::{Emulator, ExecConfig, ExecError};
    use crate::layout::Layout;
    use crate::op::{AluOp, Cond, Label, Op, Operand};
    use crate::program::IciProgram;
    use crate::word::Word;

    fn tiny_layout() -> Layout {
        Layout {
            heap_size: 64,
            env_size: 64,
            cp_size: 64,
            trail_size: 64,
            pdl_size: 64,
        }
    }

    fn assemble(build: impl FnOnce(&mut Asm) -> Label) -> IciProgram {
        let mut a = Asm::new();
        let entry = build(&mut a);
        a.finish(entry)
    }

    /// Profiles `p`, fuses, and asserts the fused engine bit-identical
    /// to both the unfused decoded engine and the legacy interpreter —
    /// trace included. Returns the report.
    fn fused_differential(p: &IciProgram, cfg: &ExecConfig) -> FusionReport {
        let layout = tiny_layout();
        let decoded = DecodedProgram::new(p);
        let (dr, dstats, dsteps, dprof) =
            DecodedEmulator::new(&decoded, &layout).run_with_profile(cfg);
        let (fused, report) = fuse(&decoded, &dstats, &dprof, &FuseConfig::default());
        assert_eq!(fused.len(), decoded.len(), "fusion must preserve length");

        let (lr, lstats, lsteps) = Emulator::new(p, &layout).run_with_stats(cfg);
        let (fr, fstats, fsteps) = DecodedEmulator::new(&fused, &layout).run_with_stats(cfg);
        assert_eq!(fr, lr, "outcome/error diverged (fused vs legacy)");
        assert_eq!(fr, dr, "outcome/error diverged (fused vs decoded)");
        assert_eq!(fsteps, lsteps, "step count diverged");
        assert_eq!(fsteps, dsteps);
        assert_eq!(fstats.expect, lstats.expect, "Expect counts diverged");
        assert_eq!(fstats.taken, lstats.taken, "taken counts diverged");
        assert_eq!(fstats.expect, dstats.expect);
        assert_eq!(fstats.taken, dstats.taken);

        // Trace parity: the fused engine must emit one trace entry per
        // constituent op, in the same order.
        let mut traced_dec = DecodedEmulator::new(&decoded, &layout);
        traced_dec.set_trace(32);
        let _ = traced_dec.run_with_stats(cfg);
        let mut traced_fused = DecodedEmulator::new(&fused, &layout);
        traced_fused.set_trace(32);
        let _ = traced_fused.run_with_stats(cfg);
        assert_eq!(traced_dec.trace(), traced_fused.trace(), "trace diverged");

        // And the profiled monomorphization of the fused engine agrees
        // with itself (predictor state is per-constituent-index).
        let (pr, pstats, psteps, _) = DecodedEmulator::new(&fused, &layout).run_with_profile(cfg);
        assert_eq!(pr, fr);
        assert_eq!(psteps, fsteps);
        assert_eq!(pstats.expect, fstats.expect);
        assert_eq!(pstats.taken, fstats.taken);
        report
    }

    fn counted_loop(bound: i64) -> IciProgram {
        assemble(|a| {
            let e = a.fresh_label();
            let lp = a.fresh_label();
            let i = a.fresh_reg();
            a.bind(e);
            a.emit(Op::MvI {
                d: i,
                w: Word::int(0),
            });
            a.bind(lp);
            a.emit(Op::Alu {
                op: AluOp::Add,
                d: i,
                a: i,
                b: Operand::Imm(1),
            });
            a.emit(Op::Br {
                cond: Cond::Lt,
                a: i,
                b: Operand::Imm(bound),
                t: lp,
            });
            a.emit(Op::Halt { success: true });
            e
        })
    }

    #[test]
    fn counted_loop_fuses_to_cmp_br_and_stays_bit_identical() {
        let p = counted_loop(100);
        let report = fused_differential(&p, &ExecConfig::default());
        assert_eq!(report.cmp_br, 1, "the add+branch pair must fuse");
        assert_eq!(report.dispatches_saved, 100);
        assert!(report.coverage() > 0.5, "coverage {}", report.coverage());
        assert_eq!(report.fused_branch_mispredicts, 2);
    }

    #[test]
    fn step_limit_between_constituents_is_bit_identical() {
        // Odd limits land the step boundary *inside* a fused pair; the
        // fused engine must stop at exactly the same step with exactly
        // the same partial statistics as the unfused engines.
        let p = counted_loop(1000);
        for limit in 0..30 {
            fused_differential(&p, &ExecConfig { max_steps: limit });
        }
    }

    #[test]
    fn errors_inside_fused_pairs_keep_their_constituent_index() {
        // Divide by zero in the *head* of a fused compare-and-branch.
        let p = assemble(|a| {
            let e = a.fresh_label();
            let x = a.fresh_reg();
            a.bind(e);
            a.emit(Op::MvI {
                d: x,
                w: Word::int(5),
            });
            a.emit(Op::Alu {
                op: AluOp::Div,
                d: x,
                a: x,
                b: Operand::Imm(0),
            });
            a.emit(Op::Br {
                cond: Cond::Lt,
                a: x,
                b: Operand::Imm(10),
                t: e,
            });
            a.emit(Op::Halt { success: true });
            e
        });
        // Run it twice so the divide site is hot on the profiling run:
        // with max_steps high the first execution already faults, which
        // is what the profile sees — the pair still fuses (expect >= 1).
        let layout = tiny_layout();
        let cfg = ExecConfig::default();
        let decoded = DecodedProgram::new(&p);
        let (dr, dstats, _, dprof) = DecodedEmulator::new(&decoded, &layout).run_with_profile(&cfg);
        assert_eq!(dr, Err(ExecError::DivideByZero { at: 1 }));
        let (fused, report) = fuse(&decoded, &dstats, &dprof, &FuseConfig::default());
        // The branch at pc 2 never executed, so the pair (1, 2) is not
        // hot and must NOT fuse — profile-guided means exactly that.
        assert_eq!(report.pairs, 0);
        let (fr, _, _) = DecodedEmulator::new(&fused, &layout).run_with_stats(&cfg);
        assert_eq!(fr, Err(ExecError::DivideByZero { at: 1 }));
    }

    #[test]
    fn bad_store_in_fused_mv_st_reports_the_interior_index() {
        let p = assemble(|a| {
            let e = a.fresh_label();
            let lp = a.fresh_label();
            let i = a.fresh_reg();
            let v = a.fresh_reg();
            let base = a.fresh_reg();
            a.bind(e);
            a.emit(Op::MvI {
                d: i,
                w: Word::int(0),
            });
            a.emit(Op::MvI {
                d: base,
                w: Word::int(0),
            });
            a.bind(lp);
            // Mv + St pair: store through `base`, which walks off the
            // end of memory after enough iterations... but here `base`
            // goes negative immediately on the second lap.
            a.emit(Op::Mv { d: v, s: i });
            a.emit(Op::St {
                s: v,
                base,
                off: -1,
            });
            a.emit(Op::Alu {
                op: AluOp::Add,
                d: i,
                a: i,
                b: Operand::Imm(1),
            });
            a.emit(Op::Br {
                cond: Cond::Lt,
                a: i,
                b: Operand::Imm(4),
                t: lp,
            });
            a.emit(Op::Halt { success: true });
            e
        });
        let report = fused_differential(&p, &ExecConfig::default());
        // The store faults on its very first execution (addr -1), so
        // the profiling run never sees the pair complete — but both
        // halves have expect >= 1?  The Mv ran once, the St ran once
        // (and faulted): the pair is hot and fuses.
        assert_eq!(report.mv_st, 1);
        let layout = tiny_layout();
        let decoded = DecodedProgram::new(&p);
        let (dr, dstats, _, dprof) =
            DecodedEmulator::new(&decoded, &layout).run_with_profile(&ExecConfig::default());
        let (fused, _) = fuse(&decoded, &dstats, &dprof, &FuseConfig::default());
        let (fr, _, _) =
            DecodedEmulator::new(&fused, &layout).run_with_stats(&ExecConfig::default());
        assert_eq!(fr, dr, "fault index must be the St constituent's own index");
        assert!(
            matches!(fr, Err(ExecError::BadAddress { at: 3, .. })),
            "{fr:?}"
        );
    }

    #[test]
    fn tag_deref_load_mviaiu_and_ld_mv_pairs_fuse_and_match() {
        let p = assemble(|a| {
            let e = a.fresh_label();
            let lp = a.fresh_label();
            let done = a.fresh_label();
            let i = a.fresh_reg();
            let base = a.fresh_reg();
            let v = a.fresh_reg();
            let w = a.fresh_reg();
            a.bind(e);
            // MvI + AluRR immediate-folding pair.
            a.emit(Op::MvI {
                d: i,
                w: Word::int(3),
            });
            a.emit(Op::Alu {
                op: AluOp::Mul,
                d: i,
                a: i,
                b: Operand::Reg(i),
            });
            a.emit(Op::MvI {
                d: base,
                w: Word::int(8),
            });
            // Seed a Ref-tagged word into memory.
            a.emit(Op::MkTag {
                d: v,
                s: base,
                tag: Tag::Ref,
            });
            a.emit(Op::St { s: v, base, off: 0 });
            a.bind(lp);
            // Ld + Mv pair.
            a.emit(Op::Ld { d: w, base, off: 0 });
            a.emit(Op::Mv { d: v, s: w });
            // BrTag + Ld pair: fall through into the deref load once
            // (the loaded word is Ref-tagged the first time).
            a.emit(Op::BrTag {
                a: v,
                tag: Tag::Ref,
                eq: false,
                t: done,
            });
            a.emit(Op::Ld { d: v, base, off: 0 });
            // Overwrite the cell with an Int so the loop terminates.
            a.emit(Op::MkTag {
                d: w,
                s: base,
                tag: Tag::Int,
            });
            a.emit(Op::St { s: w, base, off: 0 });
            a.emit(Op::Jmp { t: lp });
            a.bind(done);
            a.emit(Op::Halt { success: true });
            e
        });
        let report = fused_differential(&p, &ExecConfig::default());
        assert!(report.mvi_alu >= 1, "MvI+Alu folded: {report:?}");
        assert!(report.ld_mv >= 1, "Ld+Mv fused: {report:?}");
        assert!(report.tag_deref >= 1, "BrTag+Ld fused: {report:?}");
    }

    #[test]
    fn branch_target_interiors_are_never_fused() {
        // The Alu at pc 1 is the loop target: a pair (0, 1) would bury
        // a branch target as an interior and must be rejected even
        // though MvI+Alu matches the immediate-folding shape.
        let p = assemble(|a| {
            let e = a.fresh_label();
            let lp = a.fresh_label();
            let i = a.fresh_reg();
            a.bind(e);
            a.emit(Op::MvI {
                d: i,
                w: Word::int(0),
            });
            a.bind(lp);
            a.emit(Op::Alu {
                op: AluOp::Add,
                d: i,
                a: i,
                b: Operand::Reg(i),
            });
            a.emit(Op::Alu {
                op: AluOp::Add,
                d: i,
                a: i,
                b: Operand::Imm(1),
            });
            a.emit(Op::Br {
                cond: Cond::Lt,
                a: i,
                b: Operand::Imm(50),
                t: lp,
            });
            a.emit(Op::Halt { success: true });
            e
        });
        let layout = tiny_layout();
        let decoded = DecodedProgram::new(&p);
        assert!(decoded.is_branch_target(1), "loop head is a target");
        assert!(!decoded.is_branch_target(2));
        let (_, dstats, _, dprof) =
            DecodedEmulator::new(&decoded, &layout).run_with_profile(&ExecConfig::default());
        let (fused, report) = fuse(&decoded, &dstats, &dprof, &FuseConfig::default());
        assert_eq!(report.mvi_alu, 0, "pair (0,1) must not fuse");
        assert_eq!(report.cmp_br, 1, "pair (2,3) fuses fine");
        assert!(matches!(fused.micro[0], MicroOp::MvI { .. }));
        assert!(matches!(fused.micro[2], MicroOp::CmpBrRI { .. }));
        fused_differential(&p, &ExecConfig::default());
    }

    #[test]
    fn cold_code_is_left_alone() {
        // The add+branch pair behind the never-taken guard never runs;
        // with the default min_expect = 1 it must stay unfused.
        let p = assemble(|a| {
            let e = a.fresh_label();
            let skip = a.fresh_label();
            let i = a.fresh_reg();
            a.bind(e);
            a.emit(Op::MvI {
                d: i,
                w: Word::int(0),
            });
            a.emit(Op::Br {
                cond: Cond::Eq,
                a: i,
                b: Operand::Imm(0),
                t: skip,
            });
            a.emit(Op::Alu {
                op: AluOp::Add,
                d: i,
                a: i,
                b: Operand::Imm(1),
            });
            a.emit(Op::Br {
                cond: Cond::Lt,
                a: i,
                b: Operand::Imm(10),
                t: e,
            });
            a.bind(skip);
            a.emit(Op::Halt { success: true });
            e
        });
        let layout = tiny_layout();
        let decoded = DecodedProgram::new(&p);
        let (_, dstats, _, dprof) =
            DecodedEmulator::new(&decoded, &layout).run_with_profile(&ExecConfig::default());
        let (_, report) = fuse(&decoded, &dstats, &dprof, &FuseConfig::default());
        assert_eq!(report.pairs, 0, "cold pair must not fuse: {report:?}");
    }

    #[test]
    fn low_coverage_pairs_are_skipped_by_the_profitability_threshold() {
        // A once-executed straight-line MvI+Alu prologue in front of a
        // hot counted loop: the prologue pair matches a fused shape and
        // is "hot" under min_expect = 1, but its single execution is
        // ~0.3‰ of the run — below the default 5‰ profitability
        // threshold it must stay unfused, while the loop pair (~333‰)
        // fuses as before.
        let p = assemble(|a| {
            let e = a.fresh_label();
            let lp = a.fresh_label();
            let x = a.fresh_reg();
            let i = a.fresh_reg();
            a.bind(e);
            a.emit(Op::MvI {
                d: x,
                w: Word::int(3),
            });
            a.emit(Op::Alu {
                op: AluOp::Mul,
                d: x,
                a: x,
                b: Operand::Reg(x),
            });
            a.emit(Op::MvI {
                d: i,
                w: Word::int(0),
            });
            a.bind(lp);
            a.emit(Op::Alu {
                op: AluOp::Add,
                d: i,
                a: i,
                b: Operand::Imm(1),
            });
            a.emit(Op::Br {
                cond: Cond::Lt,
                a: i,
                b: Operand::Imm(1000),
                t: lp,
            });
            a.emit(Op::Halt { success: true });
            e
        });
        let layout = tiny_layout();
        let decoded = DecodedProgram::new(&p);
        let (_, dstats, _, dprof) =
            DecodedEmulator::new(&decoded, &layout).run_with_profile(&ExecConfig::default());
        let (_, report) = fuse(&decoded, &dstats, &dprof, &FuseConfig::default());
        assert_eq!(report.mvi_alu, 0, "cold prologue pair skipped: {report:?}");
        assert_eq!(report.cmp_br, 1, "hot loop pair still fuses");
        // Disabling the threshold restores the old greedy behavior.
        let permissive = FuseConfig {
            min_pair_permille: 0,
            ..FuseConfig::default()
        };
        let (_, all) = fuse(&decoded, &dstats, &dprof, &permissive);
        assert_eq!(all.mvi_alu, 1);
        assert_eq!(all.cmp_br, 1);
        // The threshold is part of the cache salt: a knob change must
        // invalidate cached fused artifacts.
        assert_ne!(
            FuseConfig::default().cache_salt(),
            permissive.cache_salt(),
            "knob change must change the salt"
        );
        assert_eq!(
            FuseConfig::default().cache_salt(),
            FuseConfig::default().cache_salt()
        );
        // And the skipped pair changes nothing behaviorally.
        fused_differential(&p, &ExecConfig::default());
    }

    #[test]
    fn oversized_immediates_are_not_folded() {
        let p = assemble(|a| {
            let e = a.fresh_label();
            let lp = a.fresh_label();
            let i = a.fresh_reg();
            a.bind(e);
            a.emit(Op::MvI {
                d: i,
                w: Word::int(0),
            });
            a.bind(lp);
            a.emit(Op::Alu {
                op: AluOp::Add,
                d: i,
                a: i,
                b: Operand::Imm(1 << 40),
            });
            a.emit(Op::Br {
                cond: Cond::Lt,
                a: i,
                b: Operand::Imm(1 << 42),
                t: lp,
            });
            a.emit(Op::Halt { success: true });
            e
        });
        let report = fused_differential(&p, &ExecConfig::default());
        assert_eq!(report.cmp_br, 0, "i64 immediates cannot narrow to i32");
    }

    #[test]
    fn fusion_is_deterministic_and_profile_hash_is_stable() {
        let p = counted_loop(64);
        let layout = tiny_layout();
        let decoded = DecodedProgram::new(&p);
        let cfg = ExecConfig::default();
        let (_, s1, _, p1) = DecodedEmulator::new(&decoded, &layout).run_with_profile(&cfg);
        let (_, s2, _, p2) = DecodedEmulator::new(&decoded, &layout).run_with_profile(&cfg);
        assert_eq!(profile_hash(&s1, &p1), profile_hash(&s2, &p2));
        let (f1, r1) = fuse(&decoded, &s1, &p1, &FuseConfig::default());
        let (f2, r2) = fuse(&decoded, &s2, &p2, &FuseConfig::default());
        assert_eq!(r1, r2);
        assert_eq!(f1.to_wire_bytes(), f2.to_wire_bytes());
        // A different profile (shorter loop) hashes differently.
        let q = counted_loop(65);
        let dq = DecodedProgram::new(&q);
        let (_, s3, _, p3) = DecodedEmulator::new(&dq, &layout).run_with_profile(&cfg);
        assert_ne!(profile_hash(&s1, &p1), profile_hash(&s3, &p3));
    }

    #[test]
    fn fusion_report_round_trips_on_the_wire() {
        let r = FusionReport {
            pairs: 3,
            cmp_br: 1,
            tag_deref: 1,
            mv_st: 0,
            ld_mv: 1,
            mvi_alu: 0,
            dispatches_saved: 1234,
            ops_fused: 2500,
            total_ops: 9000,
            fused_branch_mispredicts: 7,
        };
        let mut w = Writer::new();
        r.encode_into(&mut w);
        let bytes = w.into_bytes();
        let mut rd = Reader::new(&bytes);
        let back = FusionReport::decode_from(&mut rd).expect("decodes");
        rd.finish().expect("fully consumed");
        assert_eq!(back, r);
    }
}
