//! Ablation study (experiment E9): times one ablation variant's
//! kernel, then prints the full ablation table over a benchmark
//! subset.

use std::hint::black_box;

use symbol_bench::compiled;
use symbol_bench::timing::Harness;
use symbol_compactor::{compact, CompactMode, TracePolicy};
use symbol_core::experiments::ablation;
use symbol_vliw::MachineConfig;

fn bench(h: &mut Harness) {
    let (cc, run) = compiled("qsort");
    let machine = MachineConfig::units(3);
    let no_spec = TracePolicy {
        speculate: false,
        ..TracePolicy::default()
    };
    h.bench_function("ablation/compact_no_speculation/qsort", |b| {
        b.iter(|| {
            compact(
                black_box(&cc.ici),
                &run.stats,
                &machine,
                CompactMode::TraceSchedule,
                &no_spec,
            )
        })
    });
}

fn print_report() {
    let rows = ablation::run(&[
        "conc30",
        "nreverse",
        "qsort",
        "serialise",
        "times10",
        "queens_8",
    ])
    .expect("ablation runs");
    println!("\n{}", ablation::render(&rows));
}

fn main() {
    let mut h = Harness::new();
    bench(&mut h);
    h.final_summary();
    print_report();
}
