//! Compilation errors.

use std::error::Error;
use std::fmt;

/// Error raised while compiling Prolog to BAM code.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CompileError {
    /// A goal calls a predicate with no clauses in the program.
    UndefinedPredicate {
        /// `name/arity` rendered for the message.
        pred: String,
    },
    /// A goal form the compiler does not support (e.g. `write/1`).
    UnsupportedGoal {
        /// Rendered goal.
        goal: String,
    },
    /// An arithmetic expression contains a non-evaluable term.
    BadArithmetic {
        /// Rendered expression.
        expr: String,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::UndefinedPredicate { pred } => {
                write!(f, "call to undefined predicate {pred}")
            }
            CompileError::UnsupportedGoal { goal } => {
                write!(f, "unsupported goal {goal}")
            }
            CompileError::BadArithmetic { expr } => {
                write!(f, "non-evaluable arithmetic expression {expr}")
            }
        }
    }
}

impl Error for CompileError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CompileError::UndefinedPredicate {
            pred: "foo/2".into(),
        };
        assert!(e.to_string().contains("foo/2"));
    }
}
