//! Properties of the shrinker, checked against the real oracle:
//!
//! * a shrunk case still fails with the same [`FailureKind`];
//! * shrinking is deterministic — same case, same reproducer;
//! * shrinking never grows the case;
//! * the result is 1-minimal for clause/op deletion: removing any
//!   single clause (or op) from the reproducer loses the failure.

use symbol_fuzz::oracle::{run_case, Case, FailureKind, OracleConfig};
use symbol_fuzz::{shrink_case, IntFrag, PrologCase, Rng};
use symbol_intcode::Outcome;

fn oracle_check(cfg: &OracleConfig) -> impl FnMut(&Case) -> Option<FailureKind> + '_ {
    move |c: &Case| {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_case(c, cfg)))
            .map(|r| r.err().map(|f| f.kind))
            .unwrap_or(Some(FailureKind::Panic))
    }
}

/// A deliberately failing Prolog case: the program succeeds, the
/// generator's prediction says Failure, so the oracle reports an
/// expectation mismatch. Extra passing checks and an unused library
/// predicate give the shrinker something to chew through.
fn failing_prolog_case() -> Case {
    Case::Prolog(PrologCase {
        source: "main :- X0 is 2 + 3, X0 =:= 5, app([1,2], [3], [1,2,3]).\n\
                 app([], L, L).\n\
                 app([H|T], L, [H|R]) :- app(T, L, R).\n\
                 mem(X, [X|_]).\n\
                 mem(X, [_|T]) :- mem(X, T).\n"
            .into(),
        expected: Outcome::Failure,
    })
}

/// A deliberately diverging IntCode case: a fragment whose sequential
/// run succeeds but whose generator prediction cannot exist — instead
/// we use an invalid fragment (dangling branch) for a Build failure,
/// padded with deletable ops.
fn failing_intcode_case() -> Case {
    use symbol_intcode::{Label, Op, R};
    Case::IntCode(IntFrag {
        ops: vec![
            Op::Mv { d: R(32), s: R(33) },
            Op::Mv { d: R(34), s: R(35) },
            Op::Jmp { t: Label(50) }, // out of range: Build failure
            Op::Mv { d: R(36), s: R(37) },
            Op::Halt { success: true },
        ],
    })
}

#[test]
fn shrunk_prolog_case_still_fails_the_same_way_and_is_deterministic() {
    let cfg = OracleConfig::default();
    let case = failing_prolog_case();
    let key = oracle_check(&cfg)(&case).expect("the seed case fails");
    assert_eq!(key, FailureKind::Expectation);

    let a = shrink_case(case.clone(), &key, &mut oracle_check(&cfg), 5_000);
    let b = shrink_case(case.clone(), &key, &mut oracle_check(&cfg), 5_000);
    assert_eq!(a, b, "shrinking is deterministic");
    assert_eq!(oracle_check(&cfg)(&a), Some(key.clone()), "still fails");

    // Strictly smaller than the seed case (it has removable parts).
    let (Case::Prolog(orig), Case::Prolog(shrunk)) = (&case, &a) else {
        unreachable!()
    };
    assert!(shrunk.source.len() < orig.source.len());
    // The unused mem/2 library must be gone.
    assert!(!shrunk.source.contains("mem"), "shrunk:\n{}", shrunk.source);
}

#[test]
fn shrunk_prolog_case_is_one_minimal_over_clauses() {
    let cfg = OracleConfig::default();
    let case = failing_prolog_case();
    let key = FailureKind::Expectation;
    let shrunk = shrink_case(case, &key, &mut oracle_check(&cfg), 5_000);
    let Case::Prolog(p) = &shrunk else {
        unreachable!()
    };
    let program = symbol_prolog::parse_program(&p.source).expect("shrunk source parses");
    let clauses: Vec<_> = program
        .predicates()
        .flat_map(|pr| pr.clauses.iter().cloned())
        .collect();
    for i in 0..clauses.len() {
        let mut fewer = clauses.clone();
        fewer.remove(i);
        if fewer.is_empty() {
            continue;
        }
        let smaller = symbol_prolog::program_to_source(&symbol_prolog::Program::from_clauses(
            fewer,
            program.symbols().clone(),
        ));
        let cand = Case::Prolog(PrologCase {
            source: smaller,
            expected: p.expected,
        });
        assert_ne!(
            oracle_check(&cfg)(&cand),
            Some(key.clone()),
            "clause {i} of the reproducer is deletable — not 1-minimal:\n{}",
            p.source
        );
    }
}

#[test]
fn shrunk_intcode_case_still_fails_the_same_way_and_shrinks_hard() {
    let cfg = OracleConfig::default();
    let case = failing_intcode_case();
    let key = oracle_check(&cfg)(&case).expect("the seed case fails");
    assert_eq!(key, FailureKind::Build);

    let a = shrink_case(case.clone(), &key, &mut oracle_check(&cfg), 5_000);
    let b = shrink_case(case, &key, &mut oracle_check(&cfg), 5_000);
    assert_eq!(a, b, "shrinking is deterministic");
    assert_eq!(oracle_check(&cfg)(&a), Some(key.clone()));

    let Case::IntCode(f) = &a else { unreachable!() };
    // Everything but the dangling jump is deletable. (Deleting the jump
    // itself removes the failure, so exactly one op survives.)
    assert_eq!(f.ops.len(), 1, "got: {:?}", f.ops);
}

#[test]
fn shrinking_generated_failures_from_many_seeds_is_stable() {
    // Synthetic key: "the fragment contains a memory op". Not an oracle
    // failure, but exercises the candidate enumeration on arbitrary
    // generated fragments, where target remapping must stay in range.
    let mut check = |c: &Case| -> Option<FailureKind> {
        let Case::IntCode(f) = c else { return None };
        // Deleting an op that a dangling target pointed at can leave a
        // candidate that no longer assembles; such candidates must be
        // rejected, never accepted.
        if f.build().is_err() {
            return None;
        }
        f.ops
            .iter()
            .any(symbol_intcode::Op::touches_memory)
            .then_some(FailureKind::Panic)
    };
    for seed in 0..40u64 {
        let frag = symbol_fuzz::gen_intcode::generate(&mut Rng::new(seed));
        let case = Case::IntCode(frag);
        if check(&case).is_none() {
            continue;
        }
        let key = FailureKind::Panic;
        let a = shrink_case(case.clone(), &key, &mut check, 5_000);
        let b = shrink_case(case, &key, &mut check, 5_000);
        assert_eq!(a, b, "seed {seed}");
        let Case::IntCode(f) = &a else { unreachable!() };
        assert_eq!(
            f.ops.iter().filter(|o| o.touches_memory()).count(),
            1,
            "seed {seed}: shrunk to a single memory op: {:?}",
            f.ops
        );
    }
}
