//! Atom interning.
//!
//! Every atom and functor name in a program is interned once into a
//! [`SymbolTable`] and referred to by a compact [`Atom`] id thereafter.
//! The ids later become the `val` field of tagged atom/functor words in
//! the IntCode machine model, so interning is part of the ABI between
//! the front end and the simulators.

use std::collections::HashMap;
use std::fmt;

/// Interned atom identifier.
///
/// `Atom` is a plain index into the owning [`SymbolTable`]; it is only
/// meaningful together with the table that produced it.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Atom(pub u32);

impl Atom {
    /// Returns the raw table index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "atom#{}", self.0)
    }
}

/// Interner mapping atom names to dense [`Atom`] ids.
///
/// A fresh table pre-interns the handful of atoms the whole tool chain
/// relies on (`[]`, `.`, `true`, `fail`, ...) at fixed well-known ids so
/// downstream crates can refer to them without a lookup.
#[derive(Clone, Debug, Default)]
pub struct SymbolTable {
    names: Vec<String>,
    ids: HashMap<String, Atom>,
}

/// Well-known atoms pre-interned by [`SymbolTable::new`] at fixed ids.
pub mod wk {
    use super::Atom;
    /// `[]` — the empty list.
    pub const NIL: Atom = Atom(0);
    /// `.` — the list constructor functor.
    pub const DOT: Atom = Atom(1);
    /// `true`.
    pub const TRUE: Atom = Atom(2);
    /// `fail`.
    pub const FAIL: Atom = Atom(3);
    /// `,` — conjunction.
    pub const COMMA: Atom = Atom(4);
    /// `;` — disjunction.
    pub const SEMICOLON: Atom = Atom(5);
    /// `->` — if-then.
    pub const ARROW: Atom = Atom(6);
    /// `\+` — negation as failure.
    pub const NAF: Atom = Atom(7);
    /// `:-` — clause neck.
    pub const NECK: Atom = Atom(8);
    /// `!` — cut.
    pub const CUT: Atom = Atom(9);
    /// `=` — unification.
    pub const UNIFY: Atom = Atom(10);
    /// `is` — arithmetic evaluation.
    pub const IS: Atom = Atom(11);
    /// `main` — the conventional benchmark entry point.
    pub const MAIN: Atom = Atom(12);
}

const PREINTERNED: &[&str] = &[
    "[]", ".", "true", "fail", ",", ";", "->", "\\+", ":-", "!", "=", "is", "main",
];

impl SymbolTable {
    /// Creates a table with the [well-known atoms](wk) pre-interned.
    pub fn new() -> Self {
        let mut table = SymbolTable {
            names: Vec::new(),
            ids: HashMap::new(),
        };
        for name in PREINTERNED {
            table.intern(name);
        }
        table
    }

    /// Interns `name`, returning its id (existing or freshly assigned).
    pub fn intern(&mut self, name: &str) -> Atom {
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        let id = Atom(self.names.len() as u32);
        self.names.push(name.to_owned());
        self.ids.insert(name.to_owned(), id);
        id
    }

    /// Looks up an already-interned atom without inserting.
    pub fn lookup(&self, name: &str) -> Option<Atom> {
        self.ids.get(name).copied()
    }

    /// Returns the name of an interned atom.
    ///
    /// # Panics
    ///
    /// Panics if `atom` did not come from this table.
    pub fn name(&self, atom: Atom) -> &str {
        &self.names[atom.index()]
    }

    /// Number of interned atoms.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the table is empty (never true in practice: well-known
    /// atoms are always present).
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn well_known_atoms_have_fixed_ids() {
        let t = SymbolTable::new();
        assert_eq!(t.lookup("[]"), Some(wk::NIL));
        assert_eq!(t.lookup("."), Some(wk::DOT));
        assert_eq!(t.lookup("true"), Some(wk::TRUE));
        assert_eq!(t.lookup("fail"), Some(wk::FAIL));
        assert_eq!(t.lookup("!"), Some(wk::CUT));
        assert_eq!(t.lookup("is"), Some(wk::IS));
        assert_eq!(t.lookup("main"), Some(wk::MAIN));
    }

    #[test]
    fn intern_is_idempotent() {
        let mut t = SymbolTable::new();
        let a = t.intern("foo");
        let b = t.intern("foo");
        assert_eq!(a, b);
        assert_eq!(t.name(a), "foo");
    }

    #[test]
    fn distinct_names_get_distinct_ids() {
        let mut t = SymbolTable::new();
        let a = t.intern("foo");
        let b = t.intern("bar");
        assert_ne!(a, b);
    }

    #[test]
    fn len_counts_preinterned() {
        let t = SymbolTable::new();
        assert_eq!(t.len(), 13);
        assert!(!t.is_empty());
    }
}
