//! Extra Prolog programs beyond the paper's benchmark suite.
//!
//! These exist to demonstrate that the tool chain is a general Prolog
//! system, not a harness tuned to sixteen programs: classic workloads
//! with different shapes (deep deterministic recursion, exponential
//! call trees, generate-and-test, accumulator loops). They run through
//! the same pipeline and the same self-check discipline.

use crate::benchmarks::Benchmark;

/// Additional programs (not part of the paper's tables).
pub const EXTRAS: &[Benchmark] = &[
    Benchmark {
        name: "hanoi",
        description: "towers of Hanoi, 10 discs (counts moves)",
        source: "
            main :- hanoi(10, N), N = 1023.
            hanoi(D, N) :- moves(D, a, b, c, N).
            moves(0, _, _, _, 0).
            moves(D, From, To, Via, N) :-
                D > 0, D1 is D - 1,
                moves(D1, From, Via, To, N1),
                moves(D1, Via, To, From, N2),
                N is N1 + N2 + 1.
        ",
    },
    Benchmark {
        name: "fib",
        description: "naive Fibonacci, fib(17) = 1597",
        source: "
            main :- fib(17, F), F = 1597.
            fib(0, 0).
            fib(1, 1).
            fib(N, F) :- N > 1, A is N - 1, B is N - 2,
                         fib(A, FA), fib(B, FB), F is FA + FB.
        ",
    },
    Benchmark {
        name: "ackermann",
        description: "Ackermann function, ack(2, 4) = 11",
        source: "
            main :- ack(2, 4, A), A = 11.
            ack(0, N, R) :- !, R is N + 1.
            ack(M, 0, R) :- !, M1 is M - 1, ack(M1, 1, R).
            ack(M, N, R) :- M1 is M - 1, N1 is N - 1,
                            ack(M, N1, R1), ack(M1, R1, R).
        ",
    },
    Benchmark {
        name: "primes",
        description: "sieve of Eratosthenes up to 60 (17 primes)",
        source: "
            main :- range(2, 60, L), sieve(L, P), len(P, N), N = 17.
            range(N, N, [N]).
            range(M, N, [M|T]) :- M < N, M1 is M + 1, range(M1, N, T).
            sieve([], []).
            sieve([P|T], [P|R]) :- strike(P, T, T1), sieve(T1, R).
            strike(_, [], []).
            strike(P, [X|T], R) :-
                M is X mod P,
                keep(M, X, R, R1),
                strike(P, T, R1).
            keep(0, _, R, R).
            keep(M, X, [X|R], R) :- M > 0.
            len([], 0).
            len([_|T], N) :- len(T, M), N is M + 1.
        ",
    },
    Benchmark {
        name: "sumlist",
        description: "accumulator loop over a 100-element list",
        source: "
            main :- range(1, 100, L), suml(L, 0, S), S = 5050.
            range(N, N, [N]).
            range(M, N, [M|T]) :- M < N, M1 is M + 1, range(M1, N, T).
            suml([], A, A).
            suml([X|T], A, S) :- A1 is A + X, suml(T, A1, S).
        ",
    },
];

/// Looks an extra program up by name.
pub fn by_name(name: &str) -> Option<&'static Benchmark> {
    EXTRAS.iter().find(|b| b.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Compiled;

    #[test]
    fn all_extras_run_and_self_check() {
        for b in EXTRAS {
            let c = Compiled::from_source(b.source)
                .unwrap_or_else(|e| panic!("{}: compile failed: {e}", b.name));
            c.run_sequential()
                .unwrap_or_else(|e| panic!("{}: run failed: {e}", b.name));
        }
    }

    #[test]
    fn extras_do_not_shadow_benchmarks() {
        for b in EXTRAS {
            assert!(
                crate::benchmarks::by_name(b.name).is_none(),
                "{} collides with the paper suite",
                b.name
            );
        }
    }
}
