//! Branch predictability of Prolog code — the measurement behind the
//! paper's §4.4 claim that the "90/50 branch-taken rule" does not hold
//! for symbolic programs: most Prolog branches are almost always
//! resolved the same way, which is precisely what makes trace
//! scheduling applicable.
//!
//! ```sh
//! cargo run --release -p symbol-core --example branch_profile -- zebra
//! cargo run --release -p symbol-core --example branch_profile -- zebra --json
//! ```

use symbol_analysis::PredictStats;
use symbol_core::benchmarks;
use symbol_core::pipeline::Compiled;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    args.retain(|a| a != "--json");
    let name = args.first().cloned().unwrap_or_else(|| "zebra".into());
    let bench = benchmarks::by_name(&name).ok_or_else(|| format!("unknown benchmark {name}"))?;
    let compiled = Compiled::from_source(bench.source)?;
    let run = compiled.run_sequential()?;

    let stats = PredictStats::measure(&compiled.ici, &run.stats);
    let hist = stats.histogram(10);

    if json {
        let counts = hist
            .counts
            .iter()
            .map(|v| format!("{v:.6}"))
            .collect::<Vec<_>>()
            .join(", ");
        println!(
            "{{\"bench\": \"{name}\", \"branches\": {}, \"pfp_average\": {:.6}, \
             \"pfp_histogram\": [{counts}]}}",
            stats.branches.len(),
            stats.average()
        );
        return Ok(());
    }

    println!(
        "{name}: {} executed conditional branches, average P_fp = {:.4}",
        stats.branches.len(),
        stats.average()
    );

    println!("\ndistribution of the probability of faulty prediction:");
    for (i, v) in hist.counts.iter().enumerate() {
        let (lo, hi) = hist.range(i);
        let bar = "#".repeat((v * 120.0).round() as usize);
        println!("  [{lo:.2},{hi:.2}) |{bar} {:.1}%", v * 100.0);
    }
    println!(
        "\n(the mass near zero is what lets the compiler pick traces with\n\
         little risk; a uniform 50% distribution would make global\n\
         compaction useless)"
    );
    Ok(())
}
