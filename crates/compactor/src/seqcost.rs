//! The sequential-machine cost model.
//!
//! The paper's baseline (§4.3): one operation per cycle in program
//! order, every op paying its full duration — 1 cycle for ALU and
//! moves, 2 for memory and control — with nothing overlapped.

use symbol_intcode::{ExecStats, IciProgram, OpClass};

/// Per-class durations of the sequential machine.
#[derive(Copy, Clone, Debug)]
pub struct SeqDurations {
    /// Memory ops (2 in the paper).
    pub memory: u64,
    /// Control ops (2 in the paper).
    pub control: u64,
    /// ALU ops.
    pub alu: u64,
    /// Moves.
    pub mv: u64,
}

impl Default for SeqDurations {
    fn default() -> Self {
        SeqDurations {
            memory: 2,
            control: 2,
            alu: 1,
            mv: 1,
        }
    }
}

/// Total sequential cycles for a profiled run.
pub fn sequential_cycles(program: &IciProgram, stats: &ExecStats, d: &SeqDurations) -> u64 {
    program
        .ops()
        .iter()
        .zip(&stats.expect)
        .map(|(op, &e)| {
            e * match op.class() {
                OpClass::Memory => d.memory,
                OpClass::Control => d.control,
                OpClass::Alu => d.alu,
                OpClass::Move => d.mv,
            }
        })
        .sum()
}

/// Sequential cycles under the equal-duration hypothesis used for the
/// instruction-mix measurement (Figure 2): every op takes one cycle.
pub fn equal_duration_cycles(stats: &ExecStats) -> u64 {
    stats.expect.iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use symbol_intcode::{Asm, Op, Word, R};

    #[test]
    fn durations_weight_classes() {
        let mut a = Asm::new();
        let e = a.fresh_label();
        let base = a.fresh_reg();
        a.bind(e);
        a.emit(Op::MvI {
            d: base,
            w: Word::int(1),
        }); // move: 1
        a.emit(Op::Ld {
            d: R(40),
            base,
            off: 0,
        }); // memory: 2
        a.emit(Op::Halt { success: true }); // control: 2
        let p = a.finish(e);
        let layout = symbol_intcode::Layout {
            heap_size: 16,
            env_size: 16,
            cp_size: 16,
            trail_size: 16,
            pdl_size: 16,
        };
        let stats = symbol_intcode::Emulator::new(&p, &layout)
            .run(&symbol_intcode::ExecConfig::default())
            .unwrap()
            .stats;
        assert_eq!(sequential_cycles(&p, &stats, &SeqDurations::default()), 5);
        assert_eq!(equal_duration_cycles(&stats), 3);
    }
}
