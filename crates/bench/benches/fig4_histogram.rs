//! Figure 4 — distribution of the probability of faulty prediction.
//! Times histogram construction, then regenerates the figure.

use criterion::{criterion_group, Criterion};
use std::hint::black_box;

use symbol_analysis::PredictStats;
use symbol_bench::{compiled, TIMING_SUBSET};
use symbol_core::experiments::{measure_all, reports};

fn bench(c: &mut Criterion) {
    for name in TIMING_SUBSET {
        let (cc, run) = compiled(name);
        let stats = PredictStats::measure(&cc.ici, &run.stats);
        c.bench_function(&format!("fig4_histogram/{name}"), |b| {
            b.iter(|| black_box(&stats).histogram(20))
        });
    }
}

fn print_report() {
    let results = measure_all().expect("suite measures");
    println!("\n{}", reports::fig4_histogram(&results));
}

criterion_group!(benches, bench);
fn main() {
    benches();
    criterion::Criterion::default().final_summary();
    print_report();
}
