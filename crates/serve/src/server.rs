//! The long-running query server.
//!
//! One immutable [`Compiled`] image is shared (via `Arc`) by a bounded
//! pool of `std::thread` workers that answer independent queries
//! against it. The run queue is **sharded**: each worker owns one
//! lock-protected deque, submitters scatter requests round-robin
//! across the shards, and a worker that drains its own shard dry
//! steals a bounded batch (at most half the victim's queue, capped at
//! `max_batch`) from a sibling before sleeping. Workers contend on
//! their own shard's lock, not one global queue lock; a small
//! coordination mutex tracks only the global pending count for
//! backpressure (submitters block while `pending >= queue_capacity`)
//! and sleep/wake. Workers drain requests in small batches, paying
//! their shard lock once per batch rather than once per request, and
//! run batches back-to-back on the pinned image with per-query engine
//! state recycled through a per-worker arena pool
//! ([`symbol_intcode::batch::ArenaPool`]) — no per-query
//! register/heap allocation on the hot path.
//!
//! Shard assignment, steal order and worker count are invisible in
//! the results: every query is an independent deterministic execution
//! of the same image, and [`QueryServer::finish`] returns answers in
//! id order — bit-identical to a sequential run of the same queries,
//! which the workspace determinism suite asserts.
//!
//! The server is panic-free by construction: each query runs under
//! `catch_unwind`, so even a defect that would panic the emulator is
//! converted into a failed [`QueryResult`] (and counted) instead of
//! killing the worker.
//!
//! ## Request kinds
//!
//! Besides plain run queries ([`QueryServer::submit`]), the pool
//! answers live [`QueryServer::submit_stats`] requests from the same
//! queue: a stats request snapshots the shared registry, folds the
//! per-stage latency histograms into p50/p90/p99 quantile views, and
//! attaches the image's hottest program counters — so an operator can
//! interrogate a running server without stopping it.
//!
//! ## Observability
//!
//! All on the registry handed to [`QueryServer::start`]:
//!
//! * `serve.queries.ok` / `serve.queries.failed` /
//!   `serve.queries.panicked` counters,
//! * a `serve.tier` counter labelled `tier=fused` / `tier=decoded`
//!   with which execution tier answered each successful query,
//! * `serve.queue.depth` gauge, incremented on enqueue and
//!   decremented on dequeue (exactly zero once the queue drains),
//!   plus a per-shard `serve.queue.depth{shard=i}` gauge per worker,
//! * `serve.shard.steals{shard=i}` / `serve.shard.stolen{shard=i}`
//!   counters — steal sweeps worker `i` performed and requests it
//!   took from siblings,
//! * `serve.batch` histogram of batch sizes, with per-shard
//!   `serve.shard.batch{shard=i}` and `serve.shard.run.ns{shard=i}`
//!   (wall time of each claimed batch) breakdowns,
//! * `serve.batch.queries` counter of sub-queries answered through
//!   batched [`QueryServer::submit_batch`] requests,
//! * `serve.stage.ns` histograms labelled `stage=queue_wait` /
//!   `select` / `execute` and by `tier` — the per-stage latency split
//!   live stats queries report quantiles over,
//! * a per-request `serve.query` trace span carrying the request id
//!   (see [`Compiled::run_query_obs`]).
//!
//! And, independent of the registry, a lock-free
//! [`FlightRecorder`] ring capturing the last
//! `ServerConfig::flight_capacity` structured events (enqueue,
//! dequeue, query start/end, stats, dumps). When a query exceeds
//! `ServerConfig::slow_query_ns` or panics and
//! `ServerConfig::flight_dir` is set, the ring is dumped to an
//! ndjson file stamped with the offending request id.

use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Instant;

use symbol_core::pipeline::Compiled;
use symbol_intcode::batch::ArenaPool;
use symbol_obs::{FlightKind, FlightRecorder, Gauge, QuantileView, Registry, Snapshot};

/// Tuning knobs of a [`QueryServer`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Worker threads (clamped to at least 1).
    pub workers: usize,
    /// Maximum queued requests before [`QueryServer::submit`] blocks
    /// (clamped to at least 1).
    pub queue_capacity: usize,
    /// Maximum requests a worker takes per lock acquisition (clamped
    /// to at least 1).
    pub max_batch: usize,
    /// Flight-recorder ring capacity in records (0 disables the
    /// recorder entirely).
    pub flight_capacity: usize,
    /// Directory incident dumps are written to. `None` disables
    /// dumping; the directory is created on first dump.
    pub flight_dir: Option<PathBuf>,
    /// Execute-time threshold (nanoseconds) beyond which a query is
    /// considered slow and triggers a flight dump.
    pub slow_query_ns: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            queue_capacity: 64,
            max_batch: 8,
            flight_capacity: 1024,
            flight_dir: None,
            slow_query_ns: None,
        }
    }
}

/// What a request asks the pool to do.
#[derive(Clone, Debug)]
enum Request {
    /// Run the compiled query.
    Run(u64),
    /// Run `n` independent executions of the compiled query
    /// back-to-back on one worker, with engine state pooled between
    /// them ([`Compiled::run_query_batch_obs`]).
    RunBatch(u64, usize),
    /// Produce a live [`StatsReport`].
    Stats(u64),
    /// Panic inside the protected region — exercises the containment
    /// and panic-dump paths end to end (used by tests and smoke
    /// drills, never by normal serving).
    PanicProbe(u64),
}

impl Request {
    fn id(&self) -> u64 {
        match self {
            Request::Run(id)
            | Request::RunBatch(id, _)
            | Request::Stats(id)
            | Request::PanicProbe(id) => *id,
        }
    }
}

/// A queued request and when it entered the queue.
struct Pending {
    req: Request,
    enqueued: Instant,
}

/// The live statistics a stats query ([`QueryServer::submit_stats`])
/// answers with.
#[derive(Clone, Debug)]
pub struct StatsReport {
    /// The stats request's own id.
    pub request_id: u64,
    /// Quantiles of `serve.stage.ns{stage=queue_wait}`, merged across
    /// tiers (`None` until at least one query has been served).
    pub queue_wait: Option<QuantileView>,
    /// Quantiles of the tier-selection stage.
    pub select: Option<QuantileView>,
    /// Quantiles of the execute stage.
    pub execute: Option<QuantileView>,
    /// The image's hottest program counters `(pc, executions)` from a
    /// deterministic profiling run, hottest first.
    pub hot_pcs: Vec<(usize, u64)>,
    /// Full metric snapshot at answer time.
    pub snapshot: Snapshot,
}

impl StatsReport {
    /// Renders the report as one JSON document (`metrics` embeds the
    /// full `metrics.json` snapshot).
    pub fn to_json(&self) -> String {
        let quantiles = |v: &Option<QuantileView>| match v {
            Some(q) => format!(
                "{{\"count\": {}, \"p50\": {:.1}, \"p90\": {:.1}, \"p99\": {:.1}, \"max\": {}}}",
                q.count, q.p50, q.p90, q.p99, q.max
            ),
            None => "null".to_string(),
        };
        let hot: Vec<String> = self
            .hot_pcs
            .iter()
            .map(|(pc, n)| format!("{{\"pc\": {pc}, \"count\": {n}}}"))
            .collect();
        format!(
            "{{\"request_id\": {}, \"stages\": {{\"queue_wait\": {}, \"select\": {}, \
             \"execute\": {}}}, \"hot_pcs\": [{}], \"metrics\": {}}}",
            self.request_id,
            quantiles(&self.queue_wait),
            quantiles(&self.select),
            quantiles(&self.execute),
            hot.join(", "),
            self.snapshot.to_json()
        )
    }
}

/// What a successful request produced.
#[derive(Clone, Debug)]
pub enum QueryAnswer {
    /// Emulator steps of a successful run query.
    Steps(u64),
    /// Per-execution emulator steps of a successful batch request, in
    /// submission (index) order — position `i` is the `i`-th query of
    /// the batch, independent of which worker ran it.
    Batch(Vec<u64>),
    /// The report of a live stats query (boxed: the report carries a
    /// full metric snapshot and would otherwise dominate the enum).
    Stats(Box<StatsReport>),
}

impl QueryAnswer {
    /// The step count, if this answered a run query.
    pub fn steps(&self) -> Option<u64> {
        match self {
            QueryAnswer::Steps(s) => Some(*s),
            QueryAnswer::Batch(_) | QueryAnswer::Stats(_) => None,
        }
    }

    /// The per-query step counts, if this answered a batch request.
    pub fn batch(&self) -> Option<&[u64]> {
        match self {
            QueryAnswer::Batch(v) => Some(v),
            QueryAnswer::Steps(_) | QueryAnswer::Stats(_) => None,
        }
    }

    /// The report, if this answered a stats query.
    pub fn stats(&self) -> Option<&StatsReport> {
        match self {
            QueryAnswer::Stats(r) => Some(r),
            QueryAnswer::Steps(_) | QueryAnswer::Batch(_) => None,
        }
    }
}

/// The answer to one query.
#[derive(Clone, Debug)]
pub struct QueryResult {
    /// The id passed to [`QueryServer::submit`] (or
    /// [`QueryServer::submit_stats`]).
    pub id: u64,
    /// The answer on success; a rendered error otherwise. A worker
    /// panic surfaces here as an error string, never as a dead
    /// thread.
    pub outcome: Result<QueryAnswer, String>,
}

/// One worker's run queue. Submitters push round-robin; the owning
/// worker drains from the front; siblings steal bounded batches from
/// the front when their own shard runs dry. Each shard has its own
/// lock, so workers contend with at most one submitter (or one
/// thief), never with the whole pool.
struct Shard {
    queue: Mutex<VecDeque<Pending>>,
    /// `serve.queue.depth{shard=i}`.
    depth: Gauge,
}

/// The only pool-global mutable state: how many submitted requests no
/// worker has claimed yet, and whether the server is shutting down.
/// Guards backpressure and sleep/wake — never the request data itself.
struct Coord {
    /// Submitted requests not yet claimed by a worker. Zero implies
    /// every shard queue is empty (requests are counted until the
    /// moment they leave a shard).
    pending: usize,
    closed: bool,
}

struct Shared {
    shards: Vec<Shard>,
    coord: Mutex<Coord>,
    /// Signalled when requests arrive or the queue closes.
    work: Condvar,
    /// Signalled when a batch is claimed (space for submitters).
    space: Condvar,
    /// Round-robin submit cursor over the shards.
    rr: AtomicU64,
    results: Mutex<Vec<QueryResult>>,
    capacity: usize,
    max_batch: usize,
    /// `serve.queue.depth` (global): +1 on enqueue, -batch on dequeue.
    depth: Gauge,
    flight: Arc<FlightRecorder>,
    flight_dir: Option<PathBuf>,
    slow_query_ns: Option<u64>,
    /// Distinguishes dump files triggered by the same request id.
    dump_seq: AtomicU64,
    /// Hottest pcs of the shared image, profiled lazily on the first
    /// stats query (deterministic, so once is enough).
    hot_pcs: OnceLock<Vec<(usize, u64)>>,
}

/// A running worker pool answering queries against one shared
/// [`Compiled`] image. Dropping the server without calling
/// [`QueryServer::finish`] also shuts it down cleanly (results are
/// discarded).
pub struct QueryServer {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

/// Writes the flight ring to `flight_dir` with a header line naming
/// the triggering request. Never panics: dump failures are counted
/// and otherwise ignored — an incident dump must not take the server
/// down with it.
fn dump_flight(shared: &Shared, obs: &Registry, req_id: u64, reason: &str, elapsed_ns: u64) {
    let Some(dir) = &shared.flight_dir else {
        return;
    };
    if !shared.flight.enabled() {
        return;
    }
    shared.flight.record(FlightKind::Dump, req_id, 0);
    let n = shared.dump_seq.fetch_add(1, Ordering::Relaxed);
    let mut doc = format!(
        "{{\"request_id\": {req_id}, \"reason\": \"{reason}\", \"elapsed_ns\": {elapsed_ns}, \
         \"dropped\": {}}}\n",
        shared.flight.dropped()
    );
    doc.push_str(&shared.flight.dump_ndjson());
    let ok = std::fs::create_dir_all(dir).is_ok()
        && std::fs::write(dir.join(format!("flight-{req_id}-{n}.ndjson")), doc).is_ok();
    let status = if ok { "ok" } else { "write_failed" };
    obs.counter(
        "serve.flight.dumps",
        &[("reason", reason), ("status", status)],
    )
    .inc();
}

fn stats_report(compiled: &Compiled, obs: &Registry, shared: &Shared, id: u64) -> StatsReport {
    let hot_pcs = shared
        .hot_pcs
        .get_or_init(|| {
            compiled
                .profile()
                .map(|(stats, _, _)| stats.hot_pcs(8))
                .unwrap_or_default()
        })
        .clone();
    let snapshot = obs.snapshot();
    let stage = |name: &str| {
        QuantileView::from_samples(snapshot.histograms.iter().filter(|h| {
            h.name == "serve.stage.ns" && h.labels.iter().any(|(k, v)| k == "stage" && v == name)
        }))
    };
    StatsReport {
        request_id: id,
        queue_wait: stage("queue_wait"),
        select: stage("select"),
        execute: stage("execute"),
        hot_pcs,
        snapshot,
    }
}

fn run_one(
    compiled: &Compiled,
    req: &Request,
    waited_ns: u64,
    obs: &Registry,
    shared: &Shared,
    pool: &mut ArenaPool,
) -> QueryResult {
    let id = req.id();
    let flight = &shared.flight;
    // Tier selection is timed as its own stage: today it is one
    // branch, but it is where a multi-image server would route, and
    // the split keeps queue wait and execute honest.
    let t_select = Instant::now();
    let tier = if compiled.fused.is_some() {
        "fused"
    } else {
        "decoded"
    };
    let select_ns = t_select.elapsed().as_nanos() as u64;
    obs.histogram("serve.stage.ns", &[("stage", "queue_wait"), ("tier", tier)])
        .record(waited_ns);
    obs.histogram("serve.stage.ns", &[("stage", "select"), ("tier", tier)])
        .record(select_ns);

    if let Request::Stats(id) = req {
        flight.record(FlightKind::StatsQuery, *id, 0);
        let report = stats_report(compiled, obs, shared, *id);
        obs.counter("serve.queries.stats", &[]).inc();
        return QueryResult {
            id: *id,
            outcome: Ok(QueryAnswer::Stats(Box::new(report))),
        };
    }

    let start_payload = match req {
        Request::RunBatch(_, n) => *n as u64,
        _ => 0,
    };
    flight.record(FlightKind::QueryStart, id, start_payload);
    let t_exec = Instant::now();
    let ran = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match req {
        Request::PanicProbe(_) => panic!("panic probe"),
        Request::RunBatch(_, n) => {
            let answers = compiled.run_query_batch_obs(obs, id, *n, pool);
            let mut steps = Vec::with_capacity(answers.len());
            for (i, a) in answers.into_iter().enumerate() {
                match a {
                    Ok(s) => steps.push(s),
                    Err(e) => return Err(format!("batch sub-query {i} of {n}: {e}")),
                }
            }
            Ok(QueryAnswer::Batch(steps))
        }
        _ => compiled
            .run_query_obs(obs, id)
            .map(|run| QueryAnswer::Steps(run.steps))
            .map_err(|e| e.to_string()),
    }));
    let execute_ns = t_exec.elapsed().as_nanos() as u64;
    obs.histogram("serve.stage.ns", &[("stage", "execute"), ("tier", tier)])
        .record(execute_ns);
    let panicked = ran.is_err();
    let outcome = match ran {
        Ok(Ok(ans)) => {
            obs.counter("serve.queries.ok", &[]).inc();
            obs.counter("serve.tier", &[("tier", tier)]).inc();
            let payload = match &ans {
                QueryAnswer::Steps(s) => *s,
                QueryAnswer::Batch(v) => {
                    obs.counter("serve.batch.queries", &[]).add(v.len() as u64);
                    v.iter().sum()
                }
                QueryAnswer::Stats(_) => 0,
            };
            flight.record(FlightKind::QueryOk, id, payload);
            Ok(ans)
        }
        Ok(Err(e)) => {
            obs.counter("serve.queries.failed", &[]).inc();
            flight.record(FlightKind::QueryFail, id, 0);
            Err(e)
        }
        Err(_) => {
            obs.counter("serve.queries.panicked", &[]).inc();
            flight.record(FlightKind::QueryPanic, id, 0);
            dump_flight(shared, obs, id, "panic", execute_ns);
            Err("query panicked".to_string())
        }
    };
    if !panicked && shared.slow_query_ns.is_some_and(|t| execute_ns >= t) {
        dump_flight(shared, obs, id, "slow", execute_ns);
    }
    QueryResult { id, outcome }
}

fn worker_loop(shard_id: usize, shared: &Shared, compiled: &Compiled, obs: &Registry) {
    let shard_label = shard_id.to_string();
    let batch_sizes = obs.histogram("serve.batch", &[]);
    let shard_batch = obs.histogram("serve.shard.batch", &[("shard", &shard_label)]);
    let shard_run_ns = obs.histogram("serve.shard.run.ns", &[("shard", &shard_label)]);
    let steals = obs.counter("serve.shard.steals", &[("shard", &shard_label)]);
    let stolen = obs.counter("serve.shard.stolen", &[("shard", &shard_label)]);
    let mut pool = ArenaPool::new();
    let n_shards = shared.shards.len();
    loop {
        // 1. Drain the worker's own shard first (one lock, one batch).
        let mut batch: Vec<Pending> = {
            let own = &shared.shards[shard_id];
            let mut q = own.queue.lock().expect("shard lock");
            let n = q.len().min(shared.max_batch);
            let taken: Vec<Pending> = q.drain(..n).collect();
            drop(q);
            if n > 0 {
                own.depth.add(-(n as i64));
            }
            taken
        };
        // 2. Own shard dry: one bounded steal sweep over the siblings,
        //    taking at most half the first non-empty victim's queue
        //    (capped at max_batch) so the victim keeps local work.
        if batch.is_empty() && n_shards > 1 {
            for step in 1..n_shards {
                let victim = &shared.shards[(shard_id + step) % n_shards];
                let mut q = victim.queue.lock().expect("shard lock");
                if q.is_empty() {
                    continue;
                }
                let n = q.len().div_ceil(2).min(shared.max_batch);
                batch = q.drain(..n).collect();
                drop(q);
                victim.depth.add(-(n as i64));
                steals.inc();
                stolen.add(n as u64);
                break;
            }
        }
        if batch.is_empty() {
            // 3. Nothing visible anywhere: sleep or exit under the
            //    coordination lock. `pending > 0` here means a submit
            //    or a sibling's claim raced our scan — rescan rather
            //    than sleep, so no request is ever stranded.
            let coord = shared.coord.lock().expect("coord lock");
            if coord.pending > 0 {
                drop(coord);
                std::thread::yield_now();
                continue;
            }
            if coord.closed {
                return;
            }
            drop(shared.work.wait(coord).expect("coord lock"));
            continue;
        }
        // 4. Claimed a batch: release backpressure, then run it
        //    back-to-back on the pinned image.
        let n = batch.len();
        {
            let mut coord = shared.coord.lock().expect("coord lock");
            coord.pending -= n;
            shared.space.notify_all();
        }
        shared.depth.add(-(n as i64));
        shared
            .flight
            .record(FlightKind::Dequeue, batch[0].req.id(), n as u64);
        batch_sizes.record(n as u64);
        shard_batch.record(n as u64);
        let t_run = Instant::now();
        let answered: Vec<QueryResult> = batch
            .drain(..)
            .map(|p| {
                let waited_ns = p.enqueued.elapsed().as_nanos() as u64;
                run_one(compiled, &p.req, waited_ns, obs, shared, &mut pool)
            })
            .collect();
        shard_run_ns.record(t_run.elapsed().as_nanos() as u64);
        shared
            .results
            .lock()
            .expect("results lock")
            .extend(answered);
    }
}

impl QueryServer {
    /// Starts `cfg.workers` threads serving queries against
    /// `compiled`. The registry may be shared with the artifact cache
    /// so one `metrics.json` covers both tiers.
    pub fn start(compiled: Arc<Compiled>, cfg: &ServerConfig, obs: &Registry) -> Self {
        Self::start_with_flight(
            compiled,
            cfg,
            obs,
            Arc::new(FlightRecorder::new(cfg.flight_capacity)),
        )
    }

    /// [`QueryServer::start`] recording into a caller-supplied flight
    /// ring instead of a fresh one — share it with the
    /// [`crate::cache::ArtifactCache`] (and across restarts of the
    /// server) so one dump shows cache and query traffic interleaved.
    /// `cfg.flight_capacity` is ignored on this path.
    pub fn start_with_flight(
        compiled: Arc<Compiled>,
        cfg: &ServerConfig,
        obs: &Registry,
        flight: Arc<FlightRecorder>,
    ) -> Self {
        let n_workers = cfg.workers.max(1);
        let shards = obs
            .indexed_gauges("serve.queue.depth", "shard", n_workers)
            .into_iter()
            .map(|depth| Shard {
                queue: Mutex::new(VecDeque::new()),
                depth,
            })
            .collect();
        let shared = Arc::new(Shared {
            shards,
            coord: Mutex::new(Coord {
                pending: 0,
                closed: false,
            }),
            work: Condvar::new(),
            space: Condvar::new(),
            rr: AtomicU64::new(0),
            results: Mutex::new(Vec::new()),
            capacity: cfg.queue_capacity.max(1),
            max_batch: cfg.max_batch.max(1),
            depth: obs.gauge("serve.queue.depth", &[]),
            flight,
            flight_dir: cfg.flight_dir.clone(),
            slow_query_ns: cfg.slow_query_ns,
            dump_seq: AtomicU64::new(0),
            hot_pcs: OnceLock::new(),
        });
        let workers = (0..n_workers)
            .map(|shard_id| {
                let shared = Arc::clone(&shared);
                let compiled = Arc::clone(&compiled);
                let obs = obs.clone();
                std::thread::spawn(move || worker_loop(shard_id, &shared, &compiled, &obs))
            })
            .collect();
        QueryServer { shared, workers }
    }

    /// The server's flight recorder (disabled when
    /// `ServerConfig::flight_capacity` was 0). Snapshot or dump it at
    /// any time, including while queries are in flight.
    pub fn flight(&self) -> Arc<FlightRecorder> {
        Arc::clone(&self.shared.flight)
    }

    fn enqueue(&self, req: Request) {
        let id = req.id();
        let shared = &*self.shared;
        // Lock order is coord → shard (this is the only place both are
        // held); workers only ever take one lock at a time.
        let mut coord = shared.coord.lock().expect("coord lock");
        while coord.pending >= shared.capacity {
            coord = shared.space.wait(coord).expect("coord lock");
        }
        let ix = shared.rr.fetch_add(1, Ordering::Relaxed) as usize % shared.shards.len();
        let shard = &shared.shards[ix];
        shard.queue.lock().expect("shard lock").push_back(Pending {
            req,
            enqueued: Instant::now(),
        });
        shard.depth.add(1);
        coord.pending += 1;
        let depth = coord.pending as u64;
        shared.depth.add(1);
        shared.flight.record(FlightKind::Enqueue, id, depth);
        shared.work.notify_one();
    }

    /// Enqueues one run query, blocking while the queue is full.
    ///
    /// # Panics
    ///
    /// Panics if called after [`QueryServer::finish`] consumed the
    /// server (the borrow checker prevents this) or if a lock is
    /// poisoned, which only happens after a panic *outside* the
    /// `catch_unwind`-protected query path — an internal bug.
    pub fn submit(&self, id: u64) {
        self.enqueue(Request::Run(id));
    }

    /// Enqueues one batched run request: `n` independent executions of
    /// the compiled query, run back-to-back by whichever worker claims
    /// the request, with per-query engine state recycled through that
    /// worker's arena pool. Answers with [`QueryAnswer::Batch`] — one
    /// step count per execution, in index order.
    ///
    /// # Panics
    ///
    /// See [`QueryServer::submit`].
    pub fn submit_batch(&self, id: u64, n: usize) {
        self.enqueue(Request::RunBatch(id, n));
    }

    /// Enqueues a live stats query: the worker that dequeues it
    /// answers with a [`StatsReport`] over the shared registry instead
    /// of running the image.
    ///
    /// # Panics
    ///
    /// See [`QueryServer::submit`].
    pub fn submit_stats(&self, id: u64) {
        self.enqueue(Request::Stats(id));
    }

    /// Enqueues a request that panics inside the protected region —
    /// a containment drill for tests and smoke checks. The panic is
    /// caught, counted and (when a flight dir is configured) dumped,
    /// exactly like a real engine defect would be.
    ///
    /// # Panics
    ///
    /// See [`QueryServer::submit`] (the probe's own panic never
    /// escapes).
    pub fn submit_panic_probe(&self, id: u64) {
        self.enqueue(Request::PanicProbe(id));
    }

    /// Closes the queue, waits for every in-flight query, joins the
    /// workers and returns all results sorted by id.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread itself panicked — impossible through
    /// the query path, which is `catch_unwind`-protected.
    pub fn finish(mut self) -> Vec<QueryResult> {
        self.close();
        for th in self.workers.drain(..) {
            th.join().expect("worker thread exited cleanly");
        }
        let mut results = std::mem::take(&mut *self.shared.results.lock().expect("results lock"));
        results.sort_by_key(|r| r.id);
        results
    }

    fn close(&self) {
        let mut coord = self.shared.coord.lock().expect("coord lock");
        coord.closed = true;
        self.shared.work.notify_all();
    }
}

impl Drop for QueryServer {
    fn drop(&mut self) {
        self.close();
        for th in self.workers.drain(..) {
            let _ = th.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compiled() -> Arc<Compiled> {
        Arc::new(Compiled::from_source("main :- X is 2 + 2, X = 4.").expect("compiles"))
    }

    /// A unique, self-cleaning temp dir for dump tests.
    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> Self {
            let dir = std::env::temp_dir()
                .join(format!("symbol-serve-test-{tag}-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            TempDir(dir)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn steps_of(r: &QueryResult) -> u64 {
        r.outcome
            .as_ref()
            .expect("query succeeds")
            .steps()
            .expect("run answer")
    }

    #[test]
    fn serves_many_queries_against_one_image() {
        let obs = Registry::new();
        let server = QueryServer::start(
            compiled(),
            &ServerConfig {
                workers: 4,
                queue_capacity: 8,
                max_batch: 4,
                ..ServerConfig::default()
            },
            &obs,
        );
        for id in 0..100 {
            server.submit(id);
        }
        let results = server.finish();
        assert_eq!(results.len(), 100);
        let steps = steps_of(&results[0]);
        for r in &results {
            assert_eq!(steps_of(r), steps);
        }
        assert_eq!(
            results.iter().map(|r| r.id).collect::<Vec<_>>(),
            (0..100).collect::<Vec<_>>()
        );
        assert_eq!(obs.counter("serve.queries.ok", &[]).get(), 100);
        assert_eq!(obs.counter("serve.queries.failed", &[]).get(), 0);
        assert_eq!(obs.counter("serve.queries.panicked", &[]).get(), 0);
        assert_eq!(
            obs.counter("serve.tier", &[("tier", "decoded")]).get(),
            100,
            "no fused tier installed: every query ran decoded"
        );
        assert!(obs.histogram("serve.batch", &[]).count() > 0);
        assert_eq!(
            obs.gauge("serve.queue.depth", &[]).get(),
            0,
            "every enqueue was matched by a dequeue"
        );
        assert_eq!(
            obs.histogram(
                "serve.stage.ns",
                &[("stage", "execute"), ("tier", "decoded")]
            )
            .count(),
            100,
            "every query recorded its execute latency"
        );
    }

    #[test]
    fn batch_requests_answer_per_query_steps_in_index_order() {
        let obs = Registry::new();
        let server = QueryServer::start(compiled(), &ServerConfig::default(), &obs);
        server.submit(0);
        server.submit_batch(1, 5);
        server.submit_batch(2, 1);
        let results = server.finish();
        assert_eq!(results.len(), 3);
        let single = steps_of(&results[0]);
        let batch = results[1]
            .outcome
            .as_ref()
            .expect("batch succeeds")
            .batch()
            .expect("batch answer");
        assert_eq!(batch.len(), 5);
        assert!(
            batch.iter().all(|&s| s == single),
            "pooled batch executions are bit-identical to the single-query path: \
             {batch:?} vs {single}"
        );
        assert_eq!(
            results[2].outcome.as_ref().unwrap().batch().unwrap(),
            &[single]
        );
        assert_eq!(obs.counter("serve.batch.queries", &[]).get(), 6);
        assert_eq!(obs.counter("serve.queries.ok", &[]).get(), 3);
        assert_eq!(obs.gauge("serve.queue.depth", &[]).get(), 0);
    }

    #[test]
    fn failing_batch_reports_the_first_failing_sub_query() {
        let obs = Registry::new();
        let failing =
            Arc::new(Compiled::from_source("main :- 1 = 2.").expect("compiles (query fails)"));
        let server = QueryServer::start(failing, &ServerConfig::default(), &obs);
        server.submit_batch(9, 4);
        let results = server.finish();
        assert_eq!(results.len(), 1);
        let err = results[0].outcome.as_ref().expect_err("batch fails");
        assert!(err.starts_with("batch sub-query 0 of 4:"), "{err}");
        assert_eq!(obs.counter("serve.queries.failed", &[]).get(), 1);
        assert_eq!(obs.counter("serve.batch.queries", &[]).get(), 0);
    }

    #[test]
    fn a_worker_with_a_dry_shard_steals_bounded_batches_from_a_sibling() {
        let obs = Registry::new();
        let compiled = compiled();
        let shards: Vec<Shard> = obs
            .indexed_gauges("serve.queue.depth", "shard", 2)
            .into_iter()
            .map(|depth| Shard {
                queue: Mutex::new(VecDeque::new()),
                depth,
            })
            .collect();
        let shared = Shared {
            shards,
            coord: Mutex::new(Coord {
                pending: 5,
                closed: true,
            }),
            work: Condvar::new(),
            space: Condvar::new(),
            rr: AtomicU64::new(0),
            results: Mutex::new(Vec::new()),
            capacity: 64,
            max_batch: 8,
            depth: obs.gauge("serve.queue.depth", &[]),
            flight: Arc::new(FlightRecorder::new(64)),
            flight_dir: None,
            slow_query_ns: None,
            dump_seq: AtomicU64::new(0),
            hot_pcs: OnceLock::new(),
        };
        {
            let mut q = shared.shards[1].queue.lock().unwrap();
            for id in 0..5 {
                q.push_back(Pending {
                    req: Request::Run(id),
                    enqueued: Instant::now(),
                });
            }
        }
        shared.shards[1].depth.add(5);
        shared.depth.add(5);
        // Worker 0's own shard is empty and the pool is already
        // closed: every request it answers must come through the
        // steal path, deterministically.
        worker_loop(0, &shared, &compiled, &obs);
        let results = shared.results.into_inner().unwrap();
        assert_eq!(results.len(), 5);
        assert!(results.iter().all(|r| r.outcome.is_ok()));
        assert_eq!(
            obs.counter("serve.shard.steals", &[("shard", "0")]).get(),
            3,
            "ceil-half stealing drains 5 requests as 3 + 1 + 1"
        );
        assert_eq!(
            obs.counter("serve.shard.stolen", &[("shard", "0")]).get(),
            5
        );
        assert_eq!(obs.gauge("serve.queue.depth", &[("shard", "1")]).get(), 0);
        assert_eq!(obs.gauge("serve.queue.depth", &[]).get(), 0);
        assert_eq!(obs.counter("serve.queries.ok", &[]).get(), 5);
    }

    #[test]
    fn sharded_queues_account_depth_and_batches_per_worker() {
        let obs = Registry::new();
        let server = QueryServer::start(
            compiled(),
            &ServerConfig {
                workers: 3,
                ..ServerConfig::default()
            },
            &obs,
        );
        for id in 0..60 {
            server.submit(id);
        }
        let results = server.finish();
        assert_eq!(results.len(), 60);
        for i in 0..3usize {
            let label = i.to_string();
            assert_eq!(
                obs.gauge("serve.queue.depth", &[("shard", &label)]).get(),
                0,
                "shard {i} drained completely"
            );
        }
        let global_batches = obs.histogram("serve.batch", &[]).count();
        let per_shard = |name: &str| -> u64 {
            (0..3usize)
                .map(|i| obs.histogram(name, &[("shard", &i.to_string())]).count())
                .sum()
        };
        assert_eq!(
            per_shard("serve.shard.batch"),
            global_batches,
            "every claimed batch is attributed to exactly one shard"
        );
        assert_eq!(per_shard("serve.shard.run.ns"), global_batches);
    }

    #[test]
    fn fused_image_serves_queries_on_the_fused_tier() {
        let obs = Registry::new();
        let src = "main :- count(20). count(0). count(N) :- N > 0, M is N - 1, count(M).";
        let mut c = Compiled::from_source(src).expect("compiles");
        let decoded_steps = c.run_sequential().expect("decoded runs").steps;
        c.build_fused_tier().expect("fuses");
        let server = QueryServer::start(Arc::new(c), &ServerConfig::default(), &obs);
        for id in 0..25 {
            server.submit(id);
        }
        let results = server.finish();
        assert_eq!(results.len(), 25);
        for r in &results {
            assert_eq!(
                steps_of(r),
                decoded_steps,
                "fused tier is bit-identical to decoded"
            );
        }
        assert_eq!(obs.counter("serve.tier", &[("tier", "fused")]).get(), 25);
        assert_eq!(obs.counter("serve.tier", &[("tier", "decoded")]).get(), 0);
    }

    #[test]
    fn failing_queries_come_back_as_errors_not_panics() {
        let obs = Registry::new();
        let failing =
            Arc::new(Compiled::from_source("main :- 1 = 2.").expect("compiles (query fails)"));
        let server = QueryServer::start(failing, &ServerConfig::default(), &obs);
        for id in 0..10 {
            server.submit(id);
        }
        let results = server.finish();
        assert_eq!(results.len(), 10);
        for r in &results {
            assert!(r.outcome.is_err());
        }
        assert_eq!(obs.counter("serve.queries.failed", &[]).get(), 10);
        assert_eq!(obs.gauge("serve.queue.depth", &[]).get(), 0);
    }

    #[test]
    fn zero_worker_config_is_clamped() {
        let server = QueryServer::start(
            compiled(),
            &ServerConfig {
                workers: 0,
                queue_capacity: 0,
                max_batch: 0,
                flight_capacity: 0,
                ..ServerConfig::default()
            },
            &Registry::disabled(),
        );
        server.submit(1);
        let results = server.finish();
        assert_eq!(results.len(), 1);
        assert!(results[0].outcome.is_ok());
    }

    #[test]
    fn stats_query_answers_live_quantiles_and_hot_pcs() {
        let obs = Registry::new();
        let server = QueryServer::start(compiled(), &ServerConfig::default(), &obs);
        for id in 0..40 {
            server.submit(id);
        }
        server.submit_stats(1000);
        let results = server.finish();
        assert_eq!(results.len(), 41);
        let stats = results
            .iter()
            .find(|r| r.id == 1000)
            .expect("stats result present");
        let report = stats
            .outcome
            .as_ref()
            .expect("stats succeeds")
            .stats()
            .expect("stats answer");
        assert_eq!(report.request_id, 1000);
        let exec = report.execute.expect("execute quantiles after 40 queries");
        assert!(exec.count >= 1);
        assert!(exec.is_finite(), "p99 must be finite: {exec:?}");
        assert!(exec.p50 <= exec.p99);
        let wait = report.queue_wait.expect("queue-wait quantiles");
        assert!(wait.is_finite());
        assert!(!report.hot_pcs.is_empty(), "hot pcs from the lazy profile");
        assert!(
            report.hot_pcs.windows(2).all(|w| w[0].1 >= w[1].1),
            "hot pcs are hottest-first: {:?}",
            report.hot_pcs
        );
        assert!(
            report
                .snapshot
                .counters
                .iter()
                .any(|c| c.name == "serve.queries.ok"),
            "report embeds the live snapshot"
        );
        let json = report.to_json();
        assert!(json.contains("\"request_id\": 1000"));
        assert!(json.contains("\"hot_pcs\""));
        assert_eq!(obs.counter("serve.queries.stats", &[]).get(), 1);
    }

    #[test]
    fn panic_probe_is_contained_counted_and_dumped() {
        let tmp = TempDir::new("panic");
        let obs = Registry::new();
        let server = QueryServer::start(
            compiled(),
            &ServerConfig {
                flight_dir: Some(tmp.0.clone()),
                ..ServerConfig::default()
            },
            &obs,
        );
        for id in 0..10 {
            server.submit(id);
        }
        server.submit_panic_probe(77);
        let results = server.finish();
        assert_eq!(results.len(), 11);
        let probe = results.iter().find(|r| r.id == 77).expect("probe result");
        assert_eq!(probe.outcome.as_ref().unwrap_err(), "query panicked");
        assert_eq!(obs.counter("serve.queries.panicked", &[]).get(), 1);
        assert_eq!(obs.counter("serve.queries.ok", &[]).get(), 10);
        assert_eq!(
            obs.gauge("serve.queue.depth", &[]).get(),
            0,
            "depth returns to zero through the panic path too"
        );
        let dumps: Vec<_> = std::fs::read_dir(&tmp.0)
            .expect("dump dir exists")
            .map(|e| e.expect("entry").path())
            .collect();
        assert_eq!(dumps.len(), 1, "one panic dump: {dumps:?}");
        let body = std::fs::read_to_string(&dumps[0]).expect("dump readable");
        assert!(body.starts_with("{\"request_id\": 77, \"reason\": \"panic\""));
        assert!(body.contains("\"kind\": \"query_panic\""));
        assert_eq!(
            obs.counter(
                "serve.flight.dumps",
                &[("reason", "panic"), ("status", "ok")]
            )
            .get(),
            1
        );
    }

    #[test]
    fn slow_query_trigger_dumps_with_the_request_id() {
        let tmp = TempDir::new("slow");
        let obs = Registry::new();
        let server = QueryServer::start(
            compiled(),
            &ServerConfig {
                workers: 1,
                flight_dir: Some(tmp.0.clone()),
                slow_query_ns: Some(0),
                ..ServerConfig::default()
            },
            &obs,
        );
        server.submit(5);
        let results = server.finish();
        assert!(results[0].outcome.is_ok());
        let dumps: Vec<_> = std::fs::read_dir(&tmp.0)
            .expect("dump dir exists")
            .map(|e| e.expect("entry").path())
            .collect();
        assert_eq!(dumps.len(), 1);
        let body = std::fs::read_to_string(&dumps[0]).expect("dump readable");
        assert!(body.starts_with("{\"request_id\": 5, \"reason\": \"slow\""));
        assert!(body.contains("\"kind\": \"query_start\""));
        assert!(body.contains("\"kind\": \"enqueue\""));
    }

    #[test]
    fn flight_ring_traces_the_request_lifecycle() {
        let obs = Registry::new();
        let server = QueryServer::start(compiled(), &ServerConfig::default(), &obs);
        let flight = server.flight();
        assert!(flight.enabled());
        for id in 0..5 {
            server.submit(id);
        }
        server.finish();
        let kinds: Vec<&str> = flight.snapshot().iter().map(|r| r.kind_name()).collect();
        for kind in ["enqueue", "dequeue", "query_start", "query_ok"] {
            assert!(kinds.contains(&kind), "{kind} missing from {kinds:?}");
        }
        assert_eq!(
            kinds.iter().filter(|k| **k == "query_ok").count(),
            5,
            "every query left an ok record"
        );
    }
}
