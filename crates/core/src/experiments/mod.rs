//! Experiment drivers: everything needed to regenerate the paper's
//! tables and figures (see DESIGN.md's experiment index).
//!
//! [`measure`] runs one benchmark through the full evaluation system —
//! sequential emulation, the BAM cost model, basic-block and trace
//! compaction, and the 1–5 unit sweep — and returns every number the
//! reports consume. [`measure_all`] does it for the whole suite.

pub mod ablation;
pub mod reports;
pub mod sweep;

use std::sync::atomic::{AtomicUsize, Ordering};

use symbol_analysis::{ClassMix, PredictStats};
use symbol_compactor::{
    equal_duration_cycles, sequential_cycles, try_compact, CompactMode, SeqDurations, TracePolicy,
};
use symbol_intcode::Layout;
use symbol_obs::Registry;
use symbol_vliw::{DecodedVliw, DecodedVliwSim, MachineConfig, SimConfig, SimOutcome, SimResult};

use crate::benchmarks::Benchmark;
use crate::pipeline::{Compiled, CompiledCache, PipelineError};

/// Unit counts of the Table 3 sweep.
pub const UNIT_SWEEP: [usize; 5] = [1, 2, 3, 4, 5];

/// Runs `jobs` independent closures on a bounded pool of scoped worker
/// threads, returning the results **in job-index order**.
///
/// A shared atomic cursor hands out job indices; each worker keeps its
/// `(index, result)` pairs locally and the results are scattered into
/// an index-addressed table after all workers join. Output order is
/// therefore a function of the job list alone — never of thread
/// scheduling — which is what makes the parallel experiment drivers
/// bit-identical to their sequential counterparts.
pub(crate) fn run_indexed<T, F>(jobs: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = threads.max(1).min(jobs);
    if workers <= 1 {
        return (0..jobs).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = std::iter::repeat_with(|| None).take(jobs).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                let f = &f;
                scope.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= jobs {
                            break;
                        }
                        local.push((i, f(i)));
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            for (i, v) in h.join().expect("experiment worker panicked") {
                slots[i] = Some(v);
            }
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every job index produced a result"))
        .collect()
}

/// Number of worker threads to use when the caller has no preference.
fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Everything measured for one benchmark.
///
/// `PartialEq` compares every field exactly (including the `f64`
/// statistics): the parallel drivers are required to reproduce the
/// sequential results bit for bit, so approximate comparison would
/// hide real nondeterminism.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchResult {
    /// Benchmark name.
    pub name: &'static str,
    /// Executed ops under the equal-duration hypothesis (Figure 2).
    pub ops: u64,
    /// Sequential-machine cycles (mem/ctrl = 2, rest 1).
    pub seq_cycles: u64,
    /// Dynamic instruction-class mix.
    pub mix: ClassMix,
    /// Execution-weighted average probability of faulty prediction.
    pub pfp_average: f64,
    /// Histogram of P_fp over [0, 0.5] (20 bins, Figure 4).
    pub pfp_histogram: Vec<f64>,
    /// BAM cost-model cycles.
    pub bam_cycles: u64,
    /// Trace-scheduled cycles for 1..=5 units.
    pub unit_cycles: Vec<u64>,
    /// Basic-block compaction on the unbounded machine (Table 1).
    pub bb_unbounded_cycles: u64,
    /// Trace scheduling on the unbounded machine (Table 1).
    pub trace_unbounded_cycles: u64,
    /// Execution-weighted average trace length in ops.
    pub trace_length: f64,
    /// Execution-weighted average basic-block length in ops.
    pub block_length: f64,
    /// Static code growth of trace scheduling (compensation +
    /// duplication copies).
    pub code_growth: f64,
    /// Resource utilization on the 3-unit machine: fraction of
    /// memory / ALU / move / control slot-cycles used (paper §3.2's
    /// simulator statistics).
    pub utilization3: [f64; symbol_intcode::OpClass::COUNT],
    /// Operations issued per cycle on the 3-unit machine.
    pub issue_rate3: f64,
}

impl BenchResult {
    /// Speed-up of the `units`-unit VLIW over the sequential machine.
    pub fn unit_speedup(&self, units: usize) -> f64 {
        self.seq_cycles as f64 / self.unit_cycles[units - 1] as f64
    }

    /// Speed-up of the BAM model over the sequential machine.
    pub fn bam_speedup(&self) -> f64 {
        self.seq_cycles as f64 / self.bam_cycles as f64
    }

    /// Table 1 speed-ups: (trace, basic-block) on the unbounded
    /// shared-memory machine.
    pub fn unbounded_speedups(&self) -> (f64, f64) {
        (
            self.seq_cycles as f64 / self.trace_unbounded_cycles as f64,
            self.seq_cycles as f64 / self.bb_unbounded_cycles as f64,
        )
    }

    /// SYMBOL-3 absolute time in milliseconds (3 units at 30 MHz).
    pub fn symbol3_ms(&self) -> f64 {
        self.unit_cycles[2] as f64 / crate::benchmarks::paper::SYMBOL3_CLOCK_HZ * 1e3
    }
}

/// Measures one benchmark through every machine configuration.
///
/// Each simulated configuration re-checks the program's answer; a
/// mismatch is reported as [`PipelineError::WrongAnswer`].
///
/// # Errors
///
/// Propagates compilation and execution errors.
pub fn measure(bench: &Benchmark) -> Result<BenchResult, PipelineError> {
    let compiled = Compiled::from_source(bench.source)?;
    measure_compiled(bench.name, &compiled)
}

/// [`measure`] for an already-compiled program.
///
/// # Errors
///
/// Propagates execution errors; see [`measure`].
pub fn measure_compiled(
    name: &'static str,
    compiled: &Compiled,
) -> Result<BenchResult, PipelineError> {
    let cache = CompiledCache::new(compiled)?;
    measure_cached(name, &cache, default_threads())
}

/// The fixed per-benchmark simulation work list: every (compaction
/// mode, machine configuration) pair one [`BenchResult`] consumes, in
/// the order the result fields are assembled from.
const SIM_JOBS: [(CompactMode, usize); 8] = [
    (CompactMode::BamGroups, 0),     // MachineConfig::bam()
    (CompactMode::BasicBlock, 6),    // MachineConfig::unbounded()
    (CompactMode::TraceSchedule, 6), // MachineConfig::unbounded()
    (CompactMode::TraceSchedule, 1),
    (CompactMode::TraceSchedule, 2),
    (CompactMode::TraceSchedule, 3),
    (CompactMode::TraceSchedule, 4),
    (CompactMode::TraceSchedule, 5),
];

/// Decodes the machine column of [`SIM_JOBS`].
fn sim_machine(code: usize) -> MachineConfig {
    match code {
        0 => MachineConfig::bam(),
        6 => MachineConfig::unbounded(),
        n => MachineConfig::units(n),
    }
}

/// Stable metric-label name for the machine column of [`SIM_JOBS`].
fn machine_name(code: usize) -> &'static str {
    match code {
        0 => "bam",
        1 => "units1",
        2 => "units2",
        3 => "units3",
        4 => "units4",
        5 => "units5",
        _ => "unbounded",
    }
}

/// [`measure`] for a cached compilation + sequential profile, running
/// the per-(mode, machine) simulations on up to `threads` scoped
/// worker threads.
///
/// Every simulation consumes the cache's one shared [`CompiledCache::run`]
/// profile immutably; results are collected by work-list index, so the
/// returned [`BenchResult`] is bit-identical for every `threads`
/// value (asserted by the workspace determinism test).
///
/// # Errors
///
/// Propagates execution errors; see [`measure`]. When several
/// simulations fail, the error of the lowest work-list index wins, so
/// errors are deterministic too.
pub fn measure_cached(
    name: &'static str,
    cache: &CompiledCache<'_>,
    threads: usize,
) -> Result<BenchResult, PipelineError> {
    measure_cached_obs(name, cache, threads, &Registry::disabled())
}

/// [`measure_cached`] with every per-(mode, machine) simulation wrapped
/// in a `simulate` span on `obs` — labelled with the benchmark, the
/// compaction mode and the machine — plus cycle/op counters per
/// configuration. Spans carry the worker thread's id, so the exported
/// Chrome trace shows the simulation fan-out across the pool. With
/// [`Registry::disabled`] this is exactly [`measure_cached`].
///
/// # Errors
///
/// See [`measure_cached`].
pub fn measure_cached_obs(
    name: &'static str,
    cache: &CompiledCache<'_>,
    threads: usize,
    obs: &Registry,
) -> Result<BenchResult, PipelineError> {
    let compiled = cache.compiled;
    let run = &cache.run;
    let seq_cycles = sequential_cycles(&compiled.ici, &run.stats, &SeqDurations::default());
    let mix = ClassMix::measure(&compiled.ici, &run.stats);
    let predict = PredictStats::measure(&compiled.ici, &run.stats);
    let policy = TracePolicy::default();

    let simulate = |(mode, machine_code): (CompactMode, usize)| -> Result<
        (SimResult, f64, f64),
        PipelineError,
    > {
        let machine = sim_machine(machine_code);
        let mode_label = match mode {
            CompactMode::BamGroups => "bam",
            CompactMode::BasicBlock => "basic-block",
            CompactMode::TraceSchedule => "trace",
        };
        let machine_label = machine_name(machine_code);
        let labels: &[(&str, &str)] = &[
            ("bench", name),
            ("mode", mode_label),
            ("machine", machine_label),
        ];
        let _span = obs.span("simulate", labels);
        let compacted = try_compact(&compiled.ici, &run.stats, &machine, mode, &policy)?;
        // Default engine: pre-decode the schedule for this machine and
        // run the micro-op simulator (bit-identical to the legacy
        // `VliwSim`, asserted by the workspace differential suite).
        let decoded = DecodedVliw::new(&compacted.program, machine);
        let result = DecodedVliwSim::new(&decoded, &compiled.layout).run(&SimConfig::default())?;
        if result.outcome != SimOutcome::Success {
            return Err(PipelineError::WrongAnswer);
        }
        obs.counter("sim.cycles", labels).add(result.cycles);
        obs.counter("sim.ops", labels).add(result.ops);
        obs.counter("sim.taken_branches", labels)
            .add(result.taken_branches);
        Ok((
            result,
            compacted.stats.avg_region_len,
            compacted.stats.code_growth(),
        ))
    };

    let mut sims = run_indexed(SIM_JOBS.len(), threads, |i| simulate(SIM_JOBS[i]))
        .into_iter()
        .collect::<Result<Vec<_>, _>>()?
        .into_iter();

    let (bam_result, block_length, _) = sims.next().expect("bam job");
    let (bb_unbounded, _, _) = sims.next().expect("basic-block job");
    let (trace_unbounded, trace_length, code_growth) = sims.next().expect("trace job");
    let mut unit_cycles = Vec::new();
    let mut utilization3 = [0.0; symbol_intcode::OpClass::COUNT];
    let mut issue_rate3 = 0.0;
    for (units, (r, _, _)) in UNIT_SWEEP.into_iter().zip(sims) {
        if units == 3 {
            let machine = MachineConfig::units(units);
            utilization3 = symbol_intcode::OpClass::ALL.map(|c| r.utilization(&machine, c));
            issue_rate3 = r.issue_rate();
        }
        unit_cycles.push(r.cycles);
    }

    Ok(BenchResult {
        name,
        ops: equal_duration_cycles(&run.stats),
        seq_cycles,
        mix,
        pfp_average: predict.average(),
        pfp_histogram: predict.histogram(20).counts,
        bam_cycles: bam_result.cycles,
        unit_cycles,
        bb_unbounded_cycles: bb_unbounded.cycles,
        trace_unbounded_cycles: trace_unbounded.cycles,
        trace_length,
        block_length,
        code_growth,
        utilization3,
        issue_rate3,
    })
}

/// Measures the entire benchmark suite (in table order) on up to
/// `available_parallelism` worker threads; see [`measure_all_with`].
///
/// # Errors
///
/// Fails if any benchmark does not compile, run and re-verify under
/// every configuration.
pub fn measure_all() -> Result<Vec<BenchResult>, PipelineError> {
    measure_all_with(default_threads())
}

/// Measures the entire benchmark suite on a bounded pool of at most
/// `threads` worker threads.
///
/// Benchmarks are handed to workers through a shared atomic cursor and
/// the results are collected **by benchmark index**, never by
/// completion order, so the output is always in table order and
/// bit-identical to `measure_all_with(1)`. Each benchmark compiles
/// and profiles once ([`CompiledCache`]) and runs its simulations
/// sequentially within its worker — the suite fan-out is where the
/// parallelism budget goes.
///
/// # Errors
///
/// Fails if any benchmark does not compile, run and re-verify under
/// every configuration; when several fail, the error of the earliest
/// benchmark (table order) is returned.
pub fn measure_all_with(threads: usize) -> Result<Vec<BenchResult>, PipelineError> {
    measure_all_obs(threads, &Registry::disabled())
}

/// [`measure_all_with`] with the whole suite observed through `obs`:
/// per-benchmark compile/emulate/simulate spans (thread-aware — the
/// exported Chrome trace shows the suite fan-out across the worker
/// pool), front-end events, and per-configuration counters. With
/// [`Registry::disabled`] this is exactly [`measure_all_with`].
///
/// # Errors
///
/// See [`measure_all_with`].
pub fn measure_all_obs(threads: usize, obs: &Registry) -> Result<Vec<BenchResult>, PipelineError> {
    measure_suite_obs(crate::benchmarks::ALL, threads, obs)
}

/// [`measure_all_obs`] over an explicit benchmark subset — the
/// `obs_report` driver uses this to run the instrumented suite, and the
/// schema-pinning test uses a one-benchmark subset (the metric *schema*
/// is independent of which benchmarks run).
///
/// # Errors
///
/// See [`measure_all_with`].
pub fn measure_suite_obs(
    benches: &[Benchmark],
    threads: usize,
    obs: &Registry,
) -> Result<Vec<BenchResult>, PipelineError> {
    run_indexed(benches.len(), threads, |i| {
        let b = &benches[i];
        let labels: &[(&str, &str)] = &[("bench", b.name)];
        let _span = obs.span("measure", labels);
        let compiled = Compiled::from_source_obs(b.source, Layout::default(), obs, b.name)?;
        let cache = CompiledCache::new_obs(&compiled, obs, b.name)?;
        measure_cached_obs(b.name, &cache, 1, obs)
    })
    .into_iter()
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_indexed_results_are_in_job_order() {
        // Job i sleeps inversely to its index, so completion order is
        // roughly the reverse of job order on real threads.
        let out = run_indexed(8, 4, |i| {
            std::thread::sleep(std::time::Duration::from_millis(8 - i as u64));
            i * 10
        });
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn run_indexed_single_thread_runs_inline() {
        let out = run_indexed(3, 1, |i| i + 1);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn run_indexed_handles_empty_job_list() {
        let out: Vec<usize> = run_indexed(0, 4, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn sim_job_list_covers_the_unit_sweep_in_order() {
        for (k, units) in UNIT_SWEEP.into_iter().enumerate() {
            assert_eq!(SIM_JOBS[3 + k], (CompactMode::TraceSchedule, units));
        }
    }
}
