//! Machine configurations.
//!
//! The paper's target (§4.5, Figure 5) is a *parallel synchronous
//! non-homogeneous architecture*: N identical units, each able to start
//! one memory access, one ALU operation, one control operation and one
//! local move per cycle, sharing one data memory and one control flow.
//! The shared-memory model admits one memory access per cycle in total
//! — that is what makes Amdahl's ≈3× ceiling bind (§4.2).

/// Resource and timing description of one target configuration.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct MachineConfig {
    /// Number of units. Each unit contributes one slot per class per
    /// cycle.
    pub units: usize,
    /// Total operations the machine can issue per cycle. The paper's
    /// Table 3 sweep behaves like one operation per unit per cycle
    /// (that is what makes the shared memory port bind at 3–4 units,
    /// as Amdahl's law predicts); the `wide_units` ablation lifts this
    /// to the four-slots-per-unit reading of Figure 5.
    pub issue_width: usize,
    /// Total memory accesses the shared data memory accepts per cycle
    /// (1 in the paper's shared-memory model).
    pub mem_ports: usize,
    /// Whether several branches may issue in one instruction as a
    /// prioritized multi-way branch.
    pub multiway_branch: bool,
    /// Result latency of a memory load, cycles (pipelined).
    pub mem_latency: u32,
    /// Taken-branch bubble, cycles (control ops are 2-cycle pipelined:
    /// fall-through is free, a taken transfer costs one extra cycle).
    pub taken_branch_penalty: u32,
    /// Result latency of ALU ops.
    pub alu_latency: u32,
    /// Prototype restriction (§5.1): an instruction has either the
    /// ALU/move format or the control/immediate format, so an ALU op
    /// and a control op cannot issue on the same unit in one cycle.
    pub split_formats: bool,
}

impl MachineConfig {
    /// The paper's evaluation machine with `n` units (Table 3).
    pub fn units(n: usize) -> Self {
        MachineConfig {
            units: n,
            issue_width: n,
            mem_ports: 1,
            multiway_branch: true,
            mem_latency: 2,
            taken_branch_penalty: 1,
            alu_latency: 1,
            split_formats: false,
        }
    }

    /// Ablation: `n` units each with a full memory/ALU/move/control
    /// slot set per cycle (the widest reading of Figure 5).
    pub fn wide_units(n: usize) -> Self {
        MachineConfig {
            issue_width: 4 * n,
            ..Self::units(n)
        }
    }

    /// The BAM-processor cost model: one horizontal (4-slot) unit,
    /// compaction barriers at BAM-instruction boundaries (supplied by
    /// the `BamGroups` compaction mode), and no taken-branch bubble —
    /// Holmer's BAM used 2-cycle pipelined control with a single delay
    /// slot that its compiler filled, which we model as a free taken
    /// transfer (see DESIGN.md).
    pub fn bam() -> Self {
        MachineConfig {
            taken_branch_penalty: 0,
            ..Self::wide_units(1)
        }
    }

    /// "Available concurrency" machine for Table 1: unbounded function
    /// units, shared single-ported memory.
    pub fn unbounded() -> Self {
        MachineConfig {
            units: 64,
            issue_width: 256,
            ..Self::units(1)
        }
    }

    /// The SYMBOL prototype (§5): three units with the two-format
    /// instruction restriction.
    pub fn prototype() -> Self {
        MachineConfig {
            split_formats: true,
            ..Self::units(3)
        }
    }

    /// Per-cycle slot budget for a class on the whole machine.
    pub fn slots(&self, class: symbol_intcode::OpClass) -> usize {
        use symbol_intcode::OpClass::*;
        match class {
            Memory => self.mem_ports.min(self.units),
            Alu => self.units,
            Move => self.units,
            Control => {
                if self.multiway_branch {
                    self.units
                } else {
                    1
                }
            }
        }
    }

    /// Relative hardware cost of this configuration, the x-axis of the
    /// design-space sweep's Pareto frontier (cycles vs. cost).
    ///
    /// The model is a linear silicon-budget estimate in arbitrary
    /// "unit-equivalents"; the weights are documented in DESIGN.md and
    /// deliberately coarse — the frontier's *shape* is the result, not
    /// the absolute numbers:
    ///
    /// * `1.0` per unit (register ports, bypass, one ALU datapath),
    /// * `0.25` per issue slot (decode + dispatch width),
    /// * `2.0` per memory port — the shared data memory is the
    ///   expensive resource the paper's whole analysis revolves around,
    /// * `4.0 / (mem_latency + 1)`: faster memory costs more
    ///   (a 1-cycle port costs 2.0, the paper's 2-cycle port 1.33),
    /// * `2.0 / (taken_branch_penalty + 1)`: a zero-bubble front end
    ///   costs 2.0, the paper's 1-bubble front end 1.0,
    /// * `+0.5` per unit for prioritized multi-way branching (per-unit
    ///   branch resolution and the priority network),
    /// * `-0.25` per unit with the prototype's two-format restriction
    ///   (§5.1): the restriction exists precisely because it makes the
    ///   instruction fetch path cheaper.
    ///
    /// Deterministic: same configuration, same `f64`, bit for bit.
    pub fn hardware_cost(&self) -> f64 {
        let units = self.units as f64;
        let mut cost = units;
        cost += 0.25 * self.issue_width as f64;
        cost += 2.0 * self.mem_ports as f64;
        cost += 4.0 / (self.mem_latency as f64 + 1.0);
        cost += 2.0 / (self.taken_branch_penalty as f64 + 1.0);
        if self.multiway_branch {
            cost += 0.5 * units;
        }
        if self.split_formats {
            cost -= 0.25 * units;
        }
        cost
    }

    /// Compact, stable one-line description of the configuration, used
    /// as the row label of the sweep reports: e.g.
    /// `u3 w3 p1 ml2 bp1 mw` (units, issue width, memory ports, memory
    /// latency, branch penalty, then `mw`/`1w` for multi-way vs.
    /// single-branch issue and a trailing `sf` for split formats).
    pub fn describe(&self) -> String {
        format!(
            "u{} w{} p{} ml{} bp{} {}{}",
            self.units,
            self.issue_width,
            self.mem_ports,
            self.mem_latency,
            self.taken_branch_penalty,
            if self.multiway_branch { "mw" } else { "1w" },
            if self.split_formats { " sf" } else { "" },
        )
    }

    /// Result latency for an op.
    pub fn latency(&self, op: &symbol_intcode::Op) -> u32 {
        use symbol_intcode::OpClass::*;
        match op.class() {
            Memory => self.mem_latency,
            Alu => self.alu_latency,
            Move => 1,
            Control => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symbol_intcode::OpClass;

    #[test]
    fn shared_memory_is_single_ported() {
        let m = MachineConfig::units(4);
        assert_eq!(m.slots(OpClass::Memory), 1);
        assert_eq!(m.slots(OpClass::Alu), 4);
    }

    #[test]
    fn unbounded_still_respects_memory() {
        let m = MachineConfig::unbounded();
        assert_eq!(m.slots(OpClass::Memory), 1);
        assert!(m.slots(OpClass::Alu) >= 64);
    }

    #[test]
    fn prototype_has_split_formats() {
        assert!(MachineConfig::prototype().split_formats);
        assert!(!MachineConfig::units(3).split_formats);
    }

    #[test]
    fn hardware_cost_orders_machines_sensibly() {
        // More units cost more, all else equal.
        assert!(MachineConfig::units(5).hardware_cost() > MachineConfig::units(1).hardware_cost());
        // A second memory port is a real expense.
        let base = MachineConfig::units(3);
        let two_ports = MachineConfig {
            mem_ports: 2,
            ..base
        };
        assert!(two_ports.hardware_cost() > base.hardware_cost());
        // Faster memory costs more than slower memory.
        let fast = MachineConfig {
            mem_latency: 1,
            ..base
        };
        let slow = MachineConfig {
            mem_latency: 4,
            ..base
        };
        assert!(fast.hardware_cost() > slow.hardware_cost());
        // The prototype's format restriction is a discount.
        assert!(MachineConfig::prototype().hardware_cost() < base.hardware_cost());
        // Deterministic, bit for bit.
        assert_eq!(
            base.hardware_cost().to_bits(),
            MachineConfig::units(3).hardware_cost().to_bits()
        );
    }

    #[test]
    fn describe_is_stable_and_distinct() {
        assert_eq!(MachineConfig::units(3).describe(), "u3 w3 p1 ml2 bp1 mw");
        assert_eq!(
            MachineConfig::prototype().describe(),
            "u3 w3 p1 ml2 bp1 mw sf"
        );
        let narrow = MachineConfig {
            multiway_branch: false,
            mem_ports: 2,
            ..MachineConfig::wide_units(2)
        };
        assert_eq!(narrow.describe(), "u2 w8 p2 ml2 bp1 1w");
    }
}
