//! A minimal JSON writer and strict parser — just enough for the
//! exporters and report tooling, so the crate stays free of external
//! dependencies.
//!
//! Only object/array/string/integer shapes are produced; floats are
//! written with a fixed precision by the callers that need them. The
//! writer guarantees valid UTF-8 JSON output with correct string
//! escaping. [`parse`] is the matching strict reader: it accepts
//! exactly one JSON value (full escape handling including `\uXXXX`
//! surrogate pairs), rejects trailing garbage, and is what the
//! exporter-determinism tests round-trip the writer through.

use std::fmt::Write as _;

/// Escapes `s` as the *contents* of a JSON string (no surrounding
/// quotes).
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// `"s"` with escaping.
pub fn string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    escape_into(&mut out, s);
    out.push('"');
    out
}

/// Renders a label set as a JSON object with keys in the stored order
/// (callers keep labels sorted, making the output canonical).
pub fn label_object(labels: &[(String, String)]) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&string(k));
        out.push_str(": ");
        out.push_str(&string(v));
    }
    out.push('}');
    out
}

/// One parsed JSON value. Objects preserve key order so callers can
/// check canonical (sorted) rendering.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number with a fraction, exponent or sign.
    Num(f64),
    /// A bare non-negative integer, kept exact so 64-bit ids and hash
    /// payloads survive parsing without f64 rounding.
    Int(u64),
    /// A string, fully unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, keys in document order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member `key` of an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            Value::Int(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// The number as an unsigned integer (lossless for counts below
    /// 2^53).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            Value::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// The object members in document order, if this is an object.
    pub fn as_obj(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }
}

/// Parses exactly one JSON value from `s`, rejecting trailing
/// non-whitespace.
///
/// # Errors
///
/// A human-readable message with the byte offset of the first
/// problem.
pub fn parse(s: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("expected a value at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, String> {
        let end = self.pos + 4;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| format!("truncated \\u escape at byte {}", self.pos))?;
        let s = std::str::from_utf8(slice).map_err(|_| "non-ascii \\u escape".to_string())?;
        let v = u16::from_str_radix(s, 16)
            .map_err(|_| format!("invalid \\u escape at byte {}", self.pos))?;
        self.pos = end;
        Ok(v)
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // High surrogate: a low surrogate
                                // escape must follow (astral plane).
                                if self.peek() != Some(b'\\') {
                                    return Err("lone high surrogate".to_string());
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err("lone high surrogate".to_string());
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err("invalid low surrogate".to_string());
                                }
                                let code =
                                    0x10000 + ((hi as u32 - 0xD800) << 10) + (lo as u32 - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| "invalid surrogate pair".to_string())?
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err("lone low surrogate".to_string());
                            } else {
                                char::from_u32(hi as u32)
                                    .ok_or_else(|| "invalid \\u escape".to_string())?
                            };
                            out.push(c);
                            continue; // hex4 advanced past the escape
                        }
                        _ => return Err(format!("invalid escape at byte {start}")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => {
                    return Err(format!("unescaped control character at byte {start}"));
                }
                Some(_) => {
                    // Multi-byte UTF-8 is passed through; find the char
                    // boundary from the original str.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8".to_string())?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        // Bare non-negative integers stay exact; anything signed,
        // fractional or exponential goes through f64.
        if let Ok(n) = text.parse::<u64>() {
            return Ok(Value::Int(n));
        }
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("invalid number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_quotes_backslashes_and_controls() {
        assert_eq!(string("a\"b"), "\"a\\\"b\"");
        assert_eq!(string("a\\b"), "\"a\\\\b\"");
        assert_eq!(string("a\nb\tc"), "\"a\\nb\\tc\"");
        assert_eq!(string("\u{1}"), "\"\\u0001\"");
        assert_eq!(string("plain"), "\"plain\"");
    }

    #[test]
    fn bare_integers_parse_exactly() {
        // u64::MAX has no exact f64 representation; the Int variant
        // keeps hash payloads and ids bit-exact.
        let v = parse("18446744073709551615").expect("parses");
        assert_eq!(v.as_u64(), Some(u64::MAX));
        assert_eq!(
            parse("14327591388876404102").expect("parses").as_u64(),
            Some(14327591388876404102)
        );
        // Fractions, exponents and signs still go through f64.
        assert_eq!(parse("-2").expect("parses").as_f64(), Some(-2.0));
        assert_eq!(parse("1.5").expect("parses").as_f64(), Some(1.5));
        assert_eq!(parse("1e3").expect("parses").as_f64(), Some(1000.0));
        assert_eq!(parse("2.0").expect("parses").as_u64(), Some(2));
    }

    #[test]
    fn label_objects_are_canonical() {
        let labels = vec![
            ("bench".to_string(), "qsort".to_string()),
            ("mode".to_string(), "trace".to_string()),
        ];
        assert_eq!(
            label_object(&labels),
            "{\"bench\": \"qsort\", \"mode\": \"trace\"}"
        );
        assert_eq!(label_object(&[]), "{}");
    }
}
