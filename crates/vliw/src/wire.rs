//! Zero-dependency binary serialization for [`DecodedVliw`] issue
//! records — the VLIW half of the compiled-artifact format.
//!
//! Builds on the byte cursors and scalar codecs of
//! [`symbol_intcode::wire`]; everything this module adds is the
//! issue-record layer: decoded slots (with their pre-extracted use
//! lists), instruction words (with their pre-evaluated static resource
//! verdicts), the label→pc table and the [`MachineConfig`] the program
//! was decoded for.
//!
//! The same rules apply as on the sequential side: every read is
//! bounds-checked, every decoded structure is re-validated against the
//! invariants the issue loop's unchecked indexing relies on (register
//! ids below the register-file size, slot ranges inside the slot
//! vector, word lengths within the machine's issue width), and
//! `encode(decode(bytes)) == bytes` for every accepted input.

use symbol_intcode::wire::{
    fnv1a64, get_alu, get_cond, get_tag, get_word, put_alu, put_cond, put_tag, put_word, Reader,
    WireError, Writer, MAX_REGS,
};
use symbol_intcode::{Label, OpClass};

use crate::decode::{DecodedSlot, DecodedVliw, DecodedWord, SlotMicro, NONE};
use crate::machine::MachineConfig;
use crate::sim::SimError;

/// Upper bound accepted for a deserialized machine's `units`,
/// `issue_width` and `mem_ports`. The paper's widest configuration is
/// 256-wide; anything near this limit is a corrupt artifact and must
/// not size per-cycle profiling buffers.
pub const MAX_MACHINE_DIM: usize = 1 << 12;

/// Encodes a machine configuration. Also the byte string `symbol-serve`
/// hashes into its artifact cache key, so two configurations collide
/// exactly when every field is equal.
pub fn put_machine(w: &mut Writer, m: &MachineConfig) {
    w.u64(m.units as u64);
    w.u64(m.issue_width as u64);
    w.u64(m.mem_ports as u64);
    w.bool(m.multiway_branch);
    w.u32(m.mem_latency);
    w.u32(m.taken_branch_penalty);
    w.u32(m.alu_latency);
    w.bool(m.split_formats);
}

/// Decodes a machine configuration, bounding every dimension by
/// [`MAX_MACHINE_DIM`].
///
/// # Errors
///
/// [`WireError`] on truncation or an out-of-range dimension.
pub fn get_machine(r: &mut Reader<'_>) -> Result<MachineConfig, WireError> {
    let dim = |v: u64, what: &'static str| -> Result<usize, WireError> {
        match usize::try_from(v) {
            Ok(v) if v <= MAX_MACHINE_DIM => Ok(v),
            _ => Err(WireError::BadValue { what }),
        }
    };
    let units = dim(r.u64()?, "machine units")?;
    let issue_width = dim(r.u64()?, "machine issue width")?;
    let mem_ports = dim(r.u64()?, "machine memory ports")?;
    let multiway_branch = r.bool()?;
    let mem_latency = r.u32()?;
    let taken_branch_penalty = r.u32()?;
    let alu_latency = r.u32()?;
    let split_formats = r.bool()?;
    if units == 0 {
        return Err(WireError::BadValue {
            what: "machine units",
        });
    }
    Ok(MachineConfig {
        units,
        issue_width,
        mem_ports,
        multiway_branch,
        mem_latency,
        taken_branch_penalty,
        alu_latency,
        split_formats,
    })
}

fn put_class(w: &mut Writer, c: OpClass) {
    w.u8(match c {
        OpClass::Memory => 0,
        OpClass::Alu => 1,
        OpClass::Move => 2,
        OpClass::Control => 3,
    });
}

fn get_class(r: &mut Reader<'_>) -> Result<OpClass, WireError> {
    Ok(match r.u8()? {
        0 => OpClass::Memory,
        1 => OpClass::Alu,
        2 => OpClass::Move,
        3 => OpClass::Control,
        v => {
            return Err(WireError::BadTag {
                what: "OpClass",
                value: v as u32,
            })
        }
    })
}

fn put_sim_error(w: &mut Writer, e: &SimError) {
    match *e {
        SimError::SlotOverflow { at, class } => {
            w.u8(0);
            w.u64(at as u64);
            put_class(w, class);
        }
        SimError::WidthOverflow { at } => {
            w.u8(1);
            w.u64(at as u64);
        }
        SimError::DoubleWrite { at, reg } => {
            w.u8(2);
            w.u64(at as u64);
            w.u32(reg);
        }
        SimError::LatencyViolation { at, reg } => {
            w.u8(3);
            w.u64(at as u64);
            w.u32(reg);
        }
        SimError::FormatConflict { at, unit } => {
            w.u8(4);
            w.u64(at as u64);
            w.u64(unit as u64);
        }
        SimError::UnitConflict { at, unit } => {
            w.u8(5);
            w.u64(at as u64);
            w.u64(unit as u64);
        }
        SimError::BadAddress { at, addr } => {
            w.u8(6);
            w.u64(at as u64);
            w.i64(addr);
        }
        SimError::DivideByZero { at } => {
            w.u8(7);
            w.u64(at as u64);
        }
        SimError::BadCodeWord { at } => {
            w.u8(8);
            w.u64(at as u64);
        }
        SimError::UnmappedLabel { at, label } => {
            w.u8(9);
            w.u64(at as u64);
            w.u32(label.0);
        }
        SimError::CycleLimit { limit } => {
            w.u8(10);
            w.u64(limit);
        }
        SimError::RanOffEnd => w.u8(11),
    }
}

fn get_usize(r: &mut Reader<'_>, what: &'static str) -> Result<usize, WireError> {
    usize::try_from(r.u64()?).map_err(|_| WireError::BadValue { what })
}

fn get_sim_error(r: &mut Reader<'_>) -> Result<SimError, WireError> {
    Ok(match r.u8()? {
        0 => SimError::SlotOverflow {
            at: get_usize(r, "fault index")?,
            class: get_class(r)?,
        },
        1 => SimError::WidthOverflow {
            at: get_usize(r, "fault index")?,
        },
        2 => SimError::DoubleWrite {
            at: get_usize(r, "fault index")?,
            reg: r.u32()?,
        },
        3 => SimError::LatencyViolation {
            at: get_usize(r, "fault index")?,
            reg: r.u32()?,
        },
        4 => SimError::FormatConflict {
            at: get_usize(r, "fault index")?,
            unit: get_usize(r, "fault unit")?,
        },
        5 => SimError::UnitConflict {
            at: get_usize(r, "fault index")?,
            unit: get_usize(r, "fault unit")?,
        },
        6 => SimError::BadAddress {
            at: get_usize(r, "fault index")?,
            addr: r.i64()?,
        },
        7 => SimError::DivideByZero {
            at: get_usize(r, "fault index")?,
        },
        8 => SimError::BadCodeWord {
            at: get_usize(r, "fault index")?,
        },
        9 => SimError::UnmappedLabel {
            at: get_usize(r, "fault index")?,
            label: Label(r.u32()?),
        },
        10 => SimError::CycleLimit { limit: r.u64()? },
        11 => SimError::RanOffEnd,
        v => {
            return Err(WireError::BadTag {
                what: "SimError",
                value: v as u32,
            })
        }
    })
}

fn put_slot_micro(w: &mut Writer, m: SlotMicro) {
    match m {
        SlotMicro::Ld { d, base, off } => {
            w.u8(0);
            w.u32(d);
            w.u32(base);
            w.i32(off);
        }
        SlotMicro::St { s, base, off } => {
            w.u8(1);
            w.u32(s);
            w.u32(base);
            w.i32(off);
        }
        SlotMicro::Mv { d, s } => {
            w.u8(2);
            w.u32(d);
            w.u32(s);
        }
        SlotMicro::MvI { d, w: word } => {
            w.u8(3);
            w.u32(d);
            put_word(w, word);
        }
        SlotMicro::AluRR { op, d, a, b } => {
            w.u8(4);
            put_alu(w, op);
            w.u32(d);
            w.u32(a);
            w.u32(b);
        }
        SlotMicro::AluRI { op, d, a, imm } => {
            w.u8(5);
            put_alu(w, op);
            w.u32(d);
            w.u32(a);
            w.i64(imm);
        }
        SlotMicro::AddARR { d, a, b } => {
            w.u8(6);
            w.u32(d);
            w.u32(a);
            w.u32(b);
        }
        SlotMicro::AddARI { d, a, imm } => {
            w.u8(7);
            w.u32(d);
            w.u32(a);
            w.i64(imm);
        }
        SlotMicro::MkTag { d, s, tag } => {
            w.u8(8);
            w.u32(d);
            w.u32(s);
            put_tag(w, tag);
        }
        SlotMicro::BrRR { cond, a, b, t, l } => {
            w.u8(9);
            put_cond(w, cond);
            w.u32(a);
            w.u32(b);
            w.u32(t);
            w.u32(l);
        }
        SlotMicro::BrRI { cond, a, imm, t, l } => {
            w.u8(10);
            put_cond(w, cond);
            w.u32(a);
            w.i64(imm);
            w.u32(t);
            w.u32(l);
        }
        SlotMicro::BrTag { a, tag, eq, t, l } => {
            w.u8(11);
            w.u32(a);
            put_tag(w, tag);
            w.bool(eq);
            w.u32(t);
            w.u32(l);
        }
        SlotMicro::BrWord {
            a,
            w: word,
            eq,
            t,
            l,
        } => {
            w.u8(12);
            w.u32(a);
            put_word(w, word);
            w.bool(eq);
            w.u32(t);
            w.u32(l);
        }
        SlotMicro::BrWEq { a, b, eq, t, l } => {
            w.u8(13);
            w.u32(a);
            w.u32(b);
            w.bool(eq);
            w.u32(t);
            w.u32(l);
        }
        SlotMicro::Jmp { t, l } => {
            w.u8(14);
            w.u32(t);
            w.u32(l);
        }
        SlotMicro::JmpR { r } => {
            w.u8(15);
            w.u32(r);
        }
        SlotMicro::Halt { success } => {
            w.u8(16);
            w.bool(success);
        }
    }
}

fn get_slot_micro(r: &mut Reader<'_>) -> Result<SlotMicro, WireError> {
    Ok(match r.u8()? {
        0 => SlotMicro::Ld {
            d: r.u32()?,
            base: r.u32()?,
            off: r.i32()?,
        },
        1 => SlotMicro::St {
            s: r.u32()?,
            base: r.u32()?,
            off: r.i32()?,
        },
        2 => SlotMicro::Mv {
            d: r.u32()?,
            s: r.u32()?,
        },
        3 => SlotMicro::MvI {
            d: r.u32()?,
            w: get_word(r)?,
        },
        4 => SlotMicro::AluRR {
            op: get_alu(r)?,
            d: r.u32()?,
            a: r.u32()?,
            b: r.u32()?,
        },
        5 => SlotMicro::AluRI {
            op: get_alu(r)?,
            d: r.u32()?,
            a: r.u32()?,
            imm: r.i64()?,
        },
        6 => SlotMicro::AddARR {
            d: r.u32()?,
            a: r.u32()?,
            b: r.u32()?,
        },
        7 => SlotMicro::AddARI {
            d: r.u32()?,
            a: r.u32()?,
            imm: r.i64()?,
        },
        8 => SlotMicro::MkTag {
            d: r.u32()?,
            s: r.u32()?,
            tag: get_tag(r)?,
        },
        9 => SlotMicro::BrRR {
            cond: get_cond(r)?,
            a: r.u32()?,
            b: r.u32()?,
            t: r.u32()?,
            l: r.u32()?,
        },
        10 => SlotMicro::BrRI {
            cond: get_cond(r)?,
            a: r.u32()?,
            imm: r.i64()?,
            t: r.u32()?,
            l: r.u32()?,
        },
        11 => SlotMicro::BrTag {
            a: r.u32()?,
            tag: get_tag(r)?,
            eq: r.bool()?,
            t: r.u32()?,
            l: r.u32()?,
        },
        12 => SlotMicro::BrWord {
            a: r.u32()?,
            w: get_word(r)?,
            eq: r.bool()?,
            t: r.u32()?,
            l: r.u32()?,
        },
        13 => SlotMicro::BrWEq {
            a: r.u32()?,
            b: r.u32()?,
            eq: r.bool()?,
            t: r.u32()?,
            l: r.u32()?,
        },
        14 => SlotMicro::Jmp {
            t: r.u32()?,
            l: r.u32()?,
        },
        15 => SlotMicro::JmpR { r: r.u32()? },
        16 => SlotMicro::Halt { success: r.bool()? },
        v => {
            return Err(WireError::BadTag {
                what: "SlotMicro",
                value: v as u32,
            })
        }
    })
}

/// Registers an issue record indexes in the register file (besides its
/// pre-extracted use list) — the def plus every read operand.
fn slot_regs(m: SlotMicro) -> [u32; 3] {
    const NO: u32 = 0;
    match m {
        SlotMicro::Ld { d, base, .. } => [d, base, NO],
        SlotMicro::St { s, base, .. } => [s, base, NO],
        SlotMicro::Mv { d, s } => [d, s, NO],
        SlotMicro::MvI { d, .. } => [d, NO, NO],
        SlotMicro::AluRR { d, a, b, .. } => [d, a, b],
        SlotMicro::AluRI { d, a, .. } => [d, a, NO],
        SlotMicro::AddARR { d, a, b } => [d, a, b],
        SlotMicro::AddARI { d, a, .. } => [d, a, NO],
        SlotMicro::MkTag { d, s, .. } => [d, s, NO],
        SlotMicro::BrRR { a, b, .. } => [a, b, NO],
        SlotMicro::BrRI { a, .. } => [a, NO, NO],
        SlotMicro::BrTag { a, .. } => [a, NO, NO],
        SlotMicro::BrWord { a, .. } => [a, NO, NO],
        SlotMicro::BrWEq { a, b, .. } => [a, b, NO],
        SlotMicro::Jmp { .. } | SlotMicro::Halt { .. } => [NO, NO, NO],
        SlotMicro::JmpR { r } => [r, NO, NO],
    }
}

/// The op class an issue record occupies, mirroring
/// [`symbol_intcode::Op::class`] — used to recompute the per-word class
/// counts on decode instead of trusting serialized ones.
fn slot_class(m: SlotMicro) -> OpClass {
    match m {
        SlotMicro::Ld { .. } | SlotMicro::St { .. } => OpClass::Memory,
        SlotMicro::Mv { .. } | SlotMicro::MvI { .. } => OpClass::Move,
        SlotMicro::AluRR { .. }
        | SlotMicro::AluRI { .. }
        | SlotMicro::AddARR { .. }
        | SlotMicro::AddARI { .. }
        | SlotMicro::MkTag { .. } => OpClass::Alu,
        SlotMicro::BrRR { .. }
        | SlotMicro::BrRI { .. }
        | SlotMicro::BrTag { .. }
        | SlotMicro::BrWord { .. }
        | SlotMicro::BrWEq { .. }
        | SlotMicro::Jmp { .. }
        | SlotMicro::JmpR { .. }
        | SlotMicro::Halt { .. } => OpClass::Control,
    }
}

impl DecodedVliw {
    /// Encodes the issue records (machine configuration, flat slot
    /// vector, instruction words with their static resource verdicts,
    /// label→pc table, entry pc and register-file size) into `w`.
    ///
    /// Per-word class counts are *not* written — they are derived data,
    /// recomputed from the slots on decode.
    pub fn encode_into(&self, w: &mut Writer) {
        put_machine(w, &self.machine);
        w.count(self.slots.len());
        for s in &self.slots {
            w.u32(s.uses[0]);
            w.u32(s.uses[1]);
            w.bool(s.speculative);
            put_slot_micro(w, s.op);
        }
        w.count(self.words.len());
        for word in &self.words {
            w.u32(word.first);
            w.u32(word.len);
            match &word.fault {
                None => w.u8(0),
                Some(e) => {
                    w.u8(1);
                    put_sim_error(w, e);
                }
            }
        }
        w.count(self.label_pc.len());
        for &pc in &self.label_pc {
            w.u32(pc);
        }
        w.u64(self.entry_pc as u64);
        w.u64(self.num_regs as u64);
    }

    /// The issue records as a standalone byte vector.
    pub fn to_wire_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        self.encode_into(&mut w);
        w.into_bytes()
    }

    /// Decodes issue records from `r`, re-validating every invariant
    /// the issue loop relies on:
    ///
    /// * all register ids (operands and pre-extracted use lists) below
    ///   the register-file size, itself positive and bounded,
    /// * every word's slot range inside the slot vector and its length
    ///   within the machine's issue width unless the word carries a
    ///   pre-evaluated fault (an overfull word that faults on issue is
    ///   legitimate; one that would be *executed* is not),
    /// * entry pc, branch targets and bound labels within (or one past)
    ///   the program.
    ///
    /// # Errors
    ///
    /// Any [`WireError`] describing the first defect found.
    pub fn decode_from(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let machine = get_machine(r)?;
        let num_slots = r.count(10, "slot count")?;
        let mut slots = Vec::with_capacity(num_slots);
        for _ in 0..num_slots {
            let uses = [r.u32()?, r.u32()?];
            let speculative = r.bool()?;
            let op = get_slot_micro(r)?;
            slots.push(DecodedSlot {
                uses,
                speculative,
                op,
            });
        }
        let num_words = r.count(9, "word count")?;
        let mut words = Vec::with_capacity(num_words);
        for _ in 0..num_words {
            let first = r.u32()?;
            let len = r.u32()?;
            let fault = match r.u8()? {
                0 => None,
                1 => Some(get_sim_error(r)?),
                v => {
                    return Err(WireError::BadTag {
                        what: "word fault option",
                        value: v as u32,
                    })
                }
            };
            let (Some(end), true) = (first.checked_add(len), (first as usize) <= num_slots) else {
                return Err(WireError::BadValue { what: "slot range" });
            };
            if end as usize > num_slots {
                return Err(WireError::BadValue { what: "slot range" });
            }
            // A word wider than the machine must carry its precomputed
            // fault: the issue loop sizes profiling buffers by the
            // issue width and only consults the fault after accounting.
            if len as usize > machine.issue_width && fault.is_none() {
                return Err(WireError::BadValue {
                    what: "word length",
                });
            }
            let mut class_counts = [0u16; OpClass::COUNT];
            for s in &slots[first as usize..end as usize] {
                let c = &mut class_counts[slot_class(s.op).index()];
                *c = c.checked_add(1).ok_or(WireError::BadValue {
                    what: "class count",
                })?;
            }
            words.push(DecodedWord {
                first,
                len,
                class_counts,
                fault,
            });
        }
        let num_labels = r.count(4, "label count")?;
        let mut label_pc = Vec::with_capacity(num_labels);
        for _ in 0..num_labels {
            label_pc.push(r.u32()?);
        }
        let entry_pc = get_usize(r, "entry pc")?;
        let num_regs = get_usize(r, "register-file size")?;

        if num_regs == 0 || num_regs > MAX_REGS {
            return Err(WireError::BadValue {
                what: "register-file size",
            });
        }
        if entry_pc > num_words {
            return Err(WireError::BadValue { what: "entry pc" });
        }
        let in_prog = |t: u32| (t as usize) <= num_words;
        for s in &slots {
            for reg in slot_regs(s.op) {
                if reg as usize >= num_regs {
                    return Err(WireError::BadValue {
                        what: "register id",
                    });
                }
            }
            for u in s.uses {
                if u != NONE && u as usize >= num_regs {
                    return Err(WireError::BadValue {
                        what: "use-list register id",
                    });
                }
            }
            let target_ok = match s.op {
                SlotMicro::BrRR { t, .. }
                | SlotMicro::BrRI { t, .. }
                | SlotMicro::BrTag { t, .. }
                | SlotMicro::BrWord { t, .. }
                | SlotMicro::BrWEq { t, .. }
                | SlotMicro::Jmp { t, .. } => t == NONE || in_prog(t),
                _ => true,
            };
            if !target_ok {
                return Err(WireError::BadValue {
                    what: "branch target",
                });
            }
        }
        for &pc in &label_pc {
            if pc != NONE && !in_prog(pc) {
                return Err(WireError::BadValue {
                    what: "label target",
                });
            }
        }
        Ok(DecodedVliw {
            words,
            slots,
            label_pc,
            machine,
            entry_pc,
            num_regs,
        })
    }

    /// Decodes a standalone byte vector (the inverse of
    /// [`DecodedVliw::to_wire_bytes`]), requiring full consumption.
    ///
    /// # Errors
    ///
    /// See [`DecodedVliw::decode_from`].
    pub fn from_wire_bytes(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(bytes);
        let p = Self::decode_from(&mut r)?;
        r.finish()?;
        Ok(p)
    }

    /// Stable content hash of the encoded issue records (FNV-1a 64).
    pub fn wire_hash(&self) -> u64 {
        fnv1a64(&self.to_wire_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{SlotOp, VliwInstr, VliwProgram};
    use crate::sim::SimConfig;
    use std::collections::HashMap;
    use symbol_intcode::{Layout, Op, Operand, Word, R};

    fn sample_program() -> VliwProgram {
        let word = |ops: Vec<Op>| VliwInstr {
            slots: ops
                .into_iter()
                .enumerate()
                .map(|(u, op)| SlotOp {
                    unit: u,
                    op,
                    speculative: false,
                })
                .collect(),
        };
        let instrs = vec![
            word(vec![
                Op::MvI {
                    d: R(40),
                    w: Word::int(0),
                },
                Op::MvI {
                    d: R(41),
                    w: Word::int(10),
                },
            ]),
            word(vec![Op::Alu {
                op: symbol_intcode::AluOp::Add,
                d: R(40),
                a: R(40),
                b: Operand::Imm(1),
            }]),
            word(vec![Op::Br {
                cond: symbol_intcode::Cond::Lt,
                a: R(40),
                b: Operand::Reg(R(41)),
                t: symbol_intcode::Label(1),
            }]),
            word(vec![Op::Halt { success: true }]),
        ];
        let mut labels = HashMap::new();
        labels.insert(symbol_intcode::Label(0), 0);
        labels.insert(symbol_intcode::Label(1), 1);
        VliwProgram::new(instrs, labels, 2, symbol_intcode::Label(0))
    }

    fn tiny_layout() -> Layout {
        Layout {
            heap_size: 64,
            env_size: 64,
            cp_size: 64,
            trail_size: 64,
            pdl_size: 64,
        }
    }

    #[test]
    fn round_trip_is_byte_exact_and_runs_identically() {
        let machine = MachineConfig::units(4);
        let d = DecodedVliw::new(&sample_program(), machine);
        let bytes = d.to_wire_bytes();
        let d2 = DecodedVliw::from_wire_bytes(&bytes).expect("decodes");
        assert_eq!(bytes, d2.to_wire_bytes(), "re-encode must be byte-exact");
        assert_eq!(d.wire_hash(), d2.wire_hash());

        let layout = tiny_layout();
        let cfg = SimConfig::default();
        let r1 = crate::decode::DecodedVliwSim::new(&d, &layout).run(&cfg);
        let r2 = crate::decode::DecodedVliwSim::new(&d2, &layout).run(&cfg);
        match (r1, r2) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a.outcome, b.outcome);
                assert_eq!(a.cycles, b.cycles);
                assert_eq!(a.instructions, b.instructions);
                assert_eq!(a.ops, b.ops);
                assert_eq!(a.taken_branches, b.taken_branches);
                assert_eq!(a.class_ops, b.class_ops);
            }
            (a, b) => assert_eq!(a.err(), b.err()),
        }
    }

    #[test]
    fn faulty_word_round_trips() {
        // Two loads against one memory port: the word carries a
        // precomputed SlotOverflow fault, which must survive the trip.
        let instrs = vec![VliwInstr {
            slots: vec![
                SlotOp {
                    unit: 0,
                    op: Op::Ld {
                        d: R(40),
                        base: R(50),
                        off: 0,
                    },
                    speculative: false,
                },
                SlotOp {
                    unit: 1,
                    op: Op::Ld {
                        d: R(41),
                        base: R(50),
                        off: 1,
                    },
                    speculative: true,
                },
            ],
        }];
        let mut labels = HashMap::new();
        labels.insert(symbol_intcode::Label(0), 0);
        let p = VliwProgram::new(instrs, labels, 1, symbol_intcode::Label(0));
        let d = DecodedVliw::new(&p, MachineConfig::units(4));
        let bytes = d.to_wire_bytes();
        let d2 = DecodedVliw::from_wire_bytes(&bytes).expect("decodes");
        assert_eq!(bytes, d2.to_wire_bytes());
        let err = crate::decode::DecodedVliwSim::new(&d2, &tiny_layout())
            .run(&SimConfig::default())
            .unwrap_err();
        assert!(matches!(err, SimError::SlotOverflow { at: 0, .. }), "{err}");
    }

    #[test]
    fn truncation_at_every_prefix_is_an_error_not_a_panic() {
        let bytes = DecodedVliw::new(&sample_program(), MachineConfig::units(2)).to_wire_bytes();
        for cut in 0..bytes.len() {
            assert!(
                DecodedVliw::from_wire_bytes(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes decoded successfully"
            );
        }
    }

    #[test]
    fn single_byte_corruption_never_panics() {
        // Flip every byte through every value class; each mutation must
        // either decode to a valid program or fail cleanly.
        let bytes = DecodedVliw::new(&sample_program(), MachineConfig::units(2)).to_wire_bytes();
        for i in 0..bytes.len() {
            for delta in [1u8, 0x80, 0xff] {
                let mut m = bytes.clone();
                m[i] = m[i].wrapping_add(delta);
                let _ = DecodedVliw::from_wire_bytes(&m);
            }
        }
    }

    #[test]
    fn overfull_word_without_fault_is_rejected() {
        let d = DecodedVliw::new(&sample_program(), MachineConfig::units(4));
        let mut w = Writer::new();
        // Re-encode with a machine too narrow for the 2-op first word;
        // the stored faults (computed for the 4-unit machine) are None,
        // so decode must refuse the artifact.
        let narrow = MachineConfig {
            issue_width: 1,
            ..MachineConfig::units(4)
        };
        let fake = DecodedVliw {
            machine: narrow,
            ..d
        };
        fake.encode_into(&mut w);
        let err = DecodedVliw::from_wire_bytes(&w.into_bytes()).unwrap_err();
        assert!(
            matches!(err, WireError::BadValue { what } if what == "word length"),
            "{err}"
        );
    }

    #[test]
    fn exotic_sweep_machines_round_trip_exactly() {
        // The corners the design-space sweep generates: multi-ported
        // memory, an issue width below the unit count, zero-latency
        // edges, and every boolean knob flipped. Each must survive the
        // wire byte-exactly — a sweep config that silently changed in
        // the artifact cache would attribute results to the wrong
        // machine.
        let corners = [
            MachineConfig {
                mem_ports: 4,
                ..MachineConfig::units(2)
            },
            MachineConfig {
                issue_width: 2,
                ..MachineConfig::units(5)
            },
            MachineConfig {
                mem_latency: 0,
                alu_latency: 0,
                taken_branch_penalty: 0,
                ..MachineConfig::units(3)
            },
            MachineConfig {
                multiway_branch: false,
                split_formats: true,
                mem_ports: 2,
                ..MachineConfig::wide_units(4)
            },
        ];
        for m in corners {
            let mut w = Writer::new();
            put_machine(&mut w, &m);
            let bytes = w.into_bytes();
            let mut r = Reader::new(&bytes);
            let back = get_machine(&mut r).expect("decodes");
            r.finish().expect("fully consumed");
            assert_eq!(back, m, "round trip must preserve {}", m.describe());
            let mut w2 = Writer::new();
            put_machine(&mut w2, &back);
            assert_eq!(w2.into_bytes(), bytes, "re-encode must be byte-exact");
        }
    }

    #[test]
    fn machine_decode_rejects_degenerate_dimensions() {
        // Zero units is not a machine; oversized dimensions are
        // corrupt artifacts, not buffer sizes.
        let encode = |m: &MachineConfig| {
            let mut w = Writer::new();
            put_machine(&mut w, m);
            w.into_bytes()
        };
        let zero_units = MachineConfig {
            units: 0,
            ..MachineConfig::units(1)
        };
        assert!(get_machine(&mut Reader::new(&encode(&zero_units))).is_err());
        let huge = MachineConfig {
            mem_ports: MAX_MACHINE_DIM + 1,
            ..MachineConfig::units(1)
        };
        assert!(get_machine(&mut Reader::new(&encode(&huge))).is_err());
    }

    #[test]
    fn machine_config_hash_distinguishes_configs() {
        let mut a = Writer::new();
        put_machine(&mut a, &MachineConfig::units(2));
        let mut b = Writer::new();
        put_machine(&mut b, &MachineConfig::units(4));
        assert_ne!(fnv1a64(&a.into_bytes()), fnv1a64(&b.into_bytes()));
    }
}
