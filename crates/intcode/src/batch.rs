//! Batched multi-query execution against one shared [`DecodedProgram`].
//!
//! The serving tier answers many independent queries against the same
//! compiled image. Creating a fresh [`DecodedEmulator`] per query pays
//! two allocations (register file + data memory) and re-faults the
//! engine's working set every time; at serving rates that malloc
//! traffic is pure overhead. This module keeps per-query engine state
//! in a pooled, reusable arena instead:
//!
//! * [`EngineArena`] owns one query's register/memory buffers. Between
//!   queries the buffers are re-zeroed in place (`resize` over a
//!   cleared vector — a straight memset), never reallocated once they
//!   have grown to the image's shape.
//! * [`ArenaPool`] is a free list of arenas. A worker acquires one per
//!   batch, runs every query of the batch back-to-back on it (the
//!   decode tables stay hot in cache), and releases it.
//! * [`run_batch`] executes a slice of queries sequentially on one
//!   arena; [`run_batch_parallel`] fans contiguous chunks out across
//!   scoped threads, each with its own pool.
//!
//! ## Determinism
//!
//! Every query is an independent, deterministic execution of the same
//! image: results depend only on the program, layout and the query's
//! own [`ExecConfig`]. Both entry points return answers **in query
//! index order**, so the output is bit-identical to running each query
//! alone with [`DecodedEmulator::new`] + `run_with_stats` — regardless
//! of worker count, batch size, or which worker ran which chunk. The
//! workspace determinism suite and the fuzz oracle's concurrent stage
//! assert this against the sequential engines.

use crate::decode::{DecodedEmulator, DecodedProgram};
use crate::emu::{ExecConfig, ExecError, Outcome};
use crate::layout::Layout;
use crate::word::Word;

/// One query's worth of reusable engine state: the register file and
/// data memory buffers a [`DecodedEmulator`] runs on.
#[derive(Debug, Default)]
pub struct EngineArena {
    regs: Vec<Word>,
    mem: Vec<Word>,
}

impl EngineArena {
    /// An empty arena; buffers grow to the image's shape on first use
    /// and are reused in place afterwards.
    pub fn new() -> Self {
        EngineArena::default()
    }

    /// Combined buffer capacity in words (diagnostics only).
    pub fn capacity(&self) -> usize {
        self.regs.capacity() + self.mem.capacity()
    }
}

/// A free list of [`EngineArena`]s. Not thread-safe by design: each
/// worker owns its pool, so the hot path has no synchronization.
#[derive(Debug, Default)]
pub struct ArenaPool {
    free: Vec<EngineArena>,
}

impl ArenaPool {
    /// An empty pool.
    pub fn new() -> Self {
        ArenaPool::default()
    }

    /// Takes an arena from the free list, or creates an empty one.
    pub fn acquire(&mut self) -> EngineArena {
        self.free.pop().unwrap_or_default()
    }

    /// Returns an arena to the free list for reuse.
    pub fn release(&mut self, arena: EngineArena) {
        self.free.push(arena);
    }

    /// Arenas currently on the free list.
    pub fn len(&self) -> usize {
        self.free.len()
    }

    /// Whether the free list is empty.
    pub fn is_empty(&self) -> bool {
        self.free.is_empty()
    }
}

/// The answer to one query of a batch: what `run` would have returned,
/// plus the exact step count — bit-identical to a standalone
/// sequential execution of the same query.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BatchOutcome {
    /// `Ok(outcome)` on a completed run, the engine error otherwise
    /// (step limit, bad address, ... — exactly the sequential error).
    pub result: Result<Outcome, ExecError>,
    /// Steps executed (also exact on the error paths).
    pub steps: u64,
}

/// Runs `queries` back-to-back against `program`, reusing one pooled
/// arena for every query's engine state. Returns one [`BatchOutcome`]
/// per query, in query index order.
///
/// The hot path performs no per-query allocation once the pool's
/// buffers have grown to the image's shape: each query re-zeroes the
/// same register/memory buffers in place.
pub fn run_batch(
    program: &DecodedProgram,
    layout: &Layout,
    queries: &[ExecConfig],
    pool: &mut ArenaPool,
) -> Vec<BatchOutcome> {
    let mut arena = pool.acquire();
    let mut out = Vec::with_capacity(queries.len());
    for cfg in queries {
        let mut emu = DecodedEmulator::new_in(program, layout, arena.regs, arena.mem);
        let (result, steps) = emu.run_pooled(cfg);
        (arena.regs, arena.mem) = emu.into_buffers();
        out.push(BatchOutcome { result, steps });
    }
    pool.release(arena);
    out
}

/// [`run_batch`] fanned out over `workers` scoped threads: the query
/// slice is split into contiguous chunks, each worker runs its chunk
/// back-to-back on its own arena, and the answers are reassembled in
/// query index order — bit-identical to [`run_batch`] with any worker
/// count.
///
/// # Panics
///
/// Propagates a worker thread's panic (the emulator itself never
/// panics on any program; the serving tier additionally wraps batch
/// execution in `catch_unwind`).
pub fn run_batch_parallel(
    program: &DecodedProgram,
    layout: &Layout,
    queries: &[ExecConfig],
    workers: usize,
) -> Vec<BatchOutcome> {
    let workers = workers.max(1).min(queries.len().max(1));
    if workers == 1 {
        return run_batch(program, layout, queries, &mut ArenaPool::new());
    }
    let chunk = queries.len().div_ceil(workers);
    std::thread::scope(|s| {
        let handles: Vec<_> = queries
            .chunks(chunk)
            .map(|q| s.spawn(move || run_batch(program, layout, q, &mut ArenaPool::new())))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("batch worker panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;
    use crate::op::{AluOp, Cond, Op, Operand};
    use crate::program::IciProgram;

    fn tiny_layout() -> Layout {
        Layout {
            heap_size: 64,
            env_size: 64,
            cp_size: 64,
            trail_size: 64,
            pdl_size: 64,
        }
    }

    fn counted_loop(bound: i64) -> IciProgram {
        let mut a = Asm::new();
        let e = a.fresh_label();
        let lp = a.fresh_label();
        let i = a.fresh_reg();
        a.bind(e);
        a.emit(Op::MvI {
            d: i,
            w: Word::int(0),
        });
        a.bind(lp);
        a.emit(Op::Alu {
            op: AluOp::Add,
            d: i,
            a: i,
            b: Operand::Imm(1),
        });
        a.emit(Op::Br {
            cond: Cond::Lt,
            a: i,
            b: Operand::Imm(bound),
            t: lp,
        });
        a.emit(Op::Halt { success: true });
        a.finish(e)
    }

    fn sequential_reference(
        program: &DecodedProgram,
        layout: &Layout,
        cfg: &ExecConfig,
    ) -> BatchOutcome {
        let (result, _stats, steps) = DecodedEmulator::new(program, layout).run_with_stats(cfg);
        BatchOutcome { result, steps }
    }

    fn mixed_queries() -> Vec<ExecConfig> {
        // Successful runs interleaved with step-limited ones, including
        // limits landing mid-loop — the batch path must reproduce each
        // sequential result exactly, in order.
        vec![
            ExecConfig::default(),
            ExecConfig { max_steps: 7 },
            ExecConfig::default(),
            ExecConfig { max_steps: 0 },
            ExecConfig { max_steps: 100 },
            ExecConfig::default(),
            ExecConfig { max_steps: 13 },
        ]
    }

    #[test]
    fn batch_is_bit_identical_to_sequential_per_query() {
        let p = counted_loop(500);
        let layout = tiny_layout();
        let decoded = DecodedProgram::new(&p);
        let queries = mixed_queries();
        let want: Vec<BatchOutcome> = queries
            .iter()
            .map(|cfg| sequential_reference(&decoded, &layout, cfg))
            .collect();
        let mut pool = ArenaPool::new();
        let got = run_batch(&decoded, &layout, &queries, &mut pool);
        assert_eq!(got, want);
        assert_eq!(pool.len(), 1, "the batch's arena returned to the pool");
        // A second batch on the same pool reuses the buffers and stays
        // bit-identical (no state leaks between queries or batches).
        let again = run_batch(&decoded, &layout, &queries, &mut pool);
        assert_eq!(again, want);
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn parallel_batches_are_independent_of_worker_count() {
        let p = counted_loop(300);
        let layout = tiny_layout();
        let decoded = DecodedProgram::new(&p);
        let queries: Vec<ExecConfig> = (0..17)
            .map(|i| match i % 3 {
                0 => ExecConfig::default(),
                1 => ExecConfig { max_steps: i },
                _ => ExecConfig { max_steps: 50 },
            })
            .collect();
        let want = run_batch(&decoded, &layout, &queries, &mut ArenaPool::new());
        for workers in [1, 2, 4, 8, 32] {
            let got = run_batch_parallel(&decoded, &layout, &queries, workers);
            assert_eq!(got, want, "{workers}-worker batch diverged");
        }
    }

    #[test]
    fn empty_and_oversubscribed_batches_are_fine() {
        let p = counted_loop(10);
        let layout = tiny_layout();
        let decoded = DecodedProgram::new(&p);
        assert!(run_batch_parallel(&decoded, &layout, &[], 4).is_empty());
        let one = [ExecConfig::default()];
        let got = run_batch_parallel(&decoded, &layout, &one, 16);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].result, Ok(Outcome::Success));
    }

    #[test]
    fn arena_buffers_are_recycled_not_reallocated() {
        let p = counted_loop(10);
        let layout = tiny_layout();
        let decoded = DecodedProgram::new(&p);
        let mut pool = ArenaPool::new();
        run_batch(&decoded, &layout, &[ExecConfig::default()], &mut pool);
        let grown = pool.free[0].capacity();
        assert!(grown >= layout.total(), "buffers grew to the image shape");
        run_batch(&decoded, &layout, &mixed_queries(), &mut pool);
        assert_eq!(
            pool.free[0].capacity(),
            grown,
            "later batches reuse the same capacity"
        );
    }
}
