//! The on-disk artifact cache.
//!
//! One directory, one file per [`ArtifactKey`] and payload kind, named
//! `{source_hash}-{config_hash}-{kind}.art`. The cache is safe under
//! concurrent writers: every store writes to a process-unique
//! temporary name in the same directory and publishes it with an
//! atomic `rename`, so a reader sees either the old complete file or
//! the new complete file, never a partial write. Corrupt entries —
//! bad magic, wrong version, truncation, checksum or key mismatch —
//! are counted, removed (best effort) and treated as misses: the
//! serving tier recompiles and the next store repairs the cache. No
//! artifact content can make [`ArtifactCache`] panic.
//!
//! Observability (all under the shared [`Registry`]):
//!
//! * `serve.cache.hit` / `serve.cache.miss` / `serve.cache.corrupt`
//!   counters, labelled with the payload `kind`,
//! * `serve.cache.store` / `serve.cache.store_failed` counters,
//! * `serve.deserialize` and `serve.compile` spans (their duration
//!   histograms expose deserialize-vs-compile latency directly),
//! * when a flight recorder is attached
//!   ([`ArtifactCache::with_flight`]), every hit/miss/corrupt also
//!   leaves a flight record carrying the key's hashes, so incident
//!   dumps show the cache traffic around a slow query.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use symbol_core::pipeline::Compiled;
use symbol_core::PipelineError;
use symbol_intcode::Layout;
use symbol_obs::{FlightKind, FlightRecorder, Registry};

use crate::artifact::{self, Artifact, ArtifactKey, Payload, PayloadKind};

/// One in-flight load a single-flight leader publishes its image
/// through: followers wait on `done` and share the leader's
/// `Arc<Compiled>` instead of reading and decoding the file again.
#[derive(Default)]
struct InFlight {
    slot: Mutex<InFlightSlot>,
    done: Condvar,
}

#[derive(Default)]
struct InFlightSlot {
    done: bool,
    /// `None` after `done` means the leader failed — followers fall
    /// back to an independent load rather than sharing an error.
    image: Option<Arc<Compiled>>,
}

impl std::fmt::Debug for InFlight {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("InFlight")
    }
}

impl InFlight {
    /// Publishes `image` (or a failure when `None`) and wakes every
    /// waiting follower.
    fn publish(&self, image: Option<Arc<Compiled>>) {
        let mut slot = self.slot.lock().expect("inflight slot lock");
        slot.done = true;
        slot.image = image;
        self.done.notify_all();
    }

    /// Blocks until the leader publishes; returns its shared image, or
    /// `None` when the leader failed.
    fn wait(&self) -> Option<Arc<Compiled>> {
        let mut slot = self.slot.lock().expect("inflight slot lock");
        while !slot.done {
            slot = self.done.wait(slot).expect("inflight slot lock");
        }
        slot.image.clone()
    }
}

/// A directory of compiled artifacts plus the observability handle all
/// cache traffic is reported through.
#[derive(Debug)]
pub struct ArtifactCache {
    dir: PathBuf,
    obs: Registry,
    flight: Arc<FlightRecorder>,
    seq: AtomicU64,
    /// Single-flight table of loads currently being computed, keyed by
    /// artifact file name. N workers warming the same image read and
    /// decode it once; the rest share the leader's `Arc<Compiled>`.
    inflight: Mutex<HashMap<String, Arc<InFlight>>>,
}

impl ArtifactCache {
    /// Opens (creating if needed) the cache directory and reclaims
    /// stale `.tmp-{pid}-{seq}` files left behind by writers that
    /// crashed between write and rename: a temp whose writer pid is
    /// provably dead (no `/proc/{pid}` on Linux), or that is older
    /// than `STALE_TMP_AGE` (covers pid recycling and platforms
    /// without `/proc`), is removed. Temps of live writers — including
    /// this process — are left alone. Reclaimed files are counted
    /// under `serve.cache.tmp_reclaimed`.
    ///
    /// # Errors
    ///
    /// Any I/O error creating the directory. Reclaim itself is best
    /// effort and never fails the open.
    pub fn new(dir: impl Into<PathBuf>, obs: Registry) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        reclaim_stale_temps(&dir, &obs);
        Ok(ArtifactCache {
            dir,
            obs,
            flight: Arc::new(FlightRecorder::disabled()),
            seq: AtomicU64::new(0),
            inflight: Mutex::new(HashMap::new()),
        })
    }

    /// Attaches a flight recorder (typically the query server's, so
    /// one ring holds both cache and query events): hits, misses and
    /// corruption each leave a record with the key's source and
    /// config hashes as payload.
    #[must_use]
    pub fn with_flight(mut self, flight: Arc<FlightRecorder>) -> Self {
        self.flight = flight;
        self
    }

    /// The directory this cache lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path the artifact of `key`/`kind` is published under.
    pub fn path_for(&self, key: &ArtifactKey, kind: PayloadKind) -> PathBuf {
        self.dir.join(key.file_name(kind))
    }

    fn counter(&self, name: &str, kind: PayloadKind) -> symbol_obs::Counter {
        self.obs.counter(name, &[("kind", kind.name())])
    }

    /// Loads and fully validates the artifact of `key`/`kind`.
    ///
    /// Returns `None` — never an error, never a panic — when the entry
    /// is absent or fails any validation (magic, version, checksum,
    /// payload structure, or a stored key that does not match the
    /// requested one). Invalid entries are counted under
    /// `serve.cache.corrupt` and removed best-effort so the next store
    /// replaces them.
    pub fn load(&self, key: &ArtifactKey, kind: PayloadKind) -> Option<Artifact> {
        let path = self.path_for(key, kind);
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(_) => {
                self.counter("serve.cache.miss", kind).inc();
                self.flight
                    .record(FlightKind::CacheMiss, key.source_hash, key.config_hash);
                return None;
            }
        };
        let _span = self.obs.span("serve.deserialize", &[("kind", kind.name())]);
        let decoded = artifact::decode(&bytes).ok().filter(|a| {
            // A well-formed artifact under the wrong name serves the
            // wrong program: key and kind must match the request.
            a.key == *key && a.payload.kind() == kind
        });
        match decoded {
            Some(a) => {
                self.counter("serve.cache.hit", kind).inc();
                self.flight
                    .record(FlightKind::CacheHit, key.source_hash, key.config_hash);
                Some(a)
            }
            None => {
                self.counter("serve.cache.corrupt", kind).inc();
                self.flight
                    .record(FlightKind::CacheCorrupt, key.source_hash, key.config_hash);
                let _ = std::fs::remove_file(&path);
                None
            }
        }
    }

    /// Publishes `bytes` as the artifact of `key`/`kind` via
    /// write-to-temp + atomic rename. Concurrent stores of the same
    /// key race benignly: whichever rename lands last wins, and every
    /// published file is complete.
    ///
    /// # Errors
    ///
    /// Any I/O error writing or renaming (also counted under
    /// `serve.cache.store_failed`).
    pub fn store(&self, key: &ArtifactKey, kind: PayloadKind, bytes: &[u8]) -> std::io::Result<()> {
        let tmp = self.dir.join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            self.seq.fetch_add(1, Ordering::Relaxed)
        ));
        let publish = || -> std::io::Result<()> {
            std::fs::write(&tmp, bytes)?;
            std::fs::rename(&tmp, self.path_for(key, kind))
        };
        match publish() {
            Ok(()) => {
                self.counter("serve.cache.store", kind).inc();
                Ok(())
            }
            Err(e) => {
                self.counter("serve.cache.store_failed", kind).inc();
                let _ = std::fs::remove_file(&tmp);
                Err(e)
            }
        }
    }

    /// The warm/cold entry point of the serving tier: returns the
    /// [`Compiled`] image of `source` under `layout`, deserializing it
    /// from the cache when a valid artifact exists and compiling from
    /// source (then storing the artifact, best effort) otherwise.
    ///
    /// The two paths are distinguishable in the metrics: a warm hit
    /// runs under a `serve.deserialize` span and bumps
    /// `serve.cache.hit`; a cold start runs under `serve.compile` and
    /// bumps `serve.cache.miss` (or `serve.cache.corrupt`).
    ///
    /// # Errors
    ///
    /// Compilation errors from [`Compiled::from_source_with_layout`]
    /// on the cold path. A corrupt cache entry is never an error.
    pub fn load_compiled(&self, source: &str, layout: Layout) -> Result<Compiled, PipelineError> {
        let key = ArtifactKey::emulator(source, &layout);
        if let Some(art) = self.load(&key, PayloadKind::Emulator) {
            if let Payload::Emulator {
                ici,
                decoded,
                layout,
            } = art.payload
            {
                // `decode` already cross-checked the parts, so this
                // cannot fail; route it anyway rather than unwrap.
                if let Ok(c) = Compiled::from_artifact(ici, decoded, layout) {
                    return Ok(c);
                }
                self.counter("serve.cache.corrupt", PayloadKind::Emulator)
                    .inc();
            }
        }
        let compiled = {
            let _span = self.obs.span("serve.compile", &[("kind", "emu")]);
            Compiled::from_source_with_layout(source, layout)?
        };
        let bytes =
            artifact::encode_emulator(&key, &compiled.ici, &compiled.decoded, &compiled.layout);
        let _ = self.store(&key, PayloadKind::Emulator, &bytes);
        Ok(compiled)
    }

    /// The two-tier entry point: [`ArtifactCache::load_compiled`] for
    /// the base emulator image, then the fused superinstruction tier on
    /// top.
    ///
    /// The fused artifact's cache key includes the hash of the
    /// execution profile it was specialized against, and profiling is
    /// deterministic — so the warm path re-derives the key with one
    /// profiling run (`serve.profile` span), loads the fused artifact,
    /// and attaches it. When the artifact is absent (or stale: a stored
    /// profile hash that disagrees with the recomputed one is counted
    /// corrupt), the fusion pass runs (`serve.fuse` span) and the fresh
    /// artifact is stored, repairing the cache for the next start.
    ///
    /// Tier traffic is visible per kind: the fused artifact's hits,
    /// misses, corruptions and stores are all labelled `kind=fused`
    /// under the same `serve.cache.*` counters the base image uses.
    ///
    /// # Errors
    ///
    /// Compilation errors on the cold path, and any failure of the
    /// profiling run ([`PipelineError::WrongAnswer`] /
    /// [`PipelineError::Exec`]) — a program whose profile cannot be
    /// collected cannot be tiered.
    pub fn load_compiled_fused(
        &self,
        source: &str,
        layout: Layout,
    ) -> Result<Compiled, PipelineError> {
        let mut compiled = self.load_compiled(source, layout)?;
        let (stats, profile, _steps) = {
            let _span = self.obs.span("serve.profile", &[("kind", "fused")]);
            compiled.profile()?
        };
        let profile_hash = symbol_intcode::fuse::profile_hash(&stats, &profile);
        // The fusion pass's own configuration is part of the key:
        // retuning a threshold must invalidate artifacts fused under
        // the old one.
        let fuse_salt = symbol_intcode::FuseConfig::default().cache_salt();
        let key = ArtifactKey::fused(source, &layout, profile_hash, fuse_salt);
        if let Some(art) = self.load(&key, PayloadKind::Fused) {
            if let Payload::Fused {
                fused,
                profile_hash: stored_hash,
                report,
            } = art.payload
            {
                let attached = stored_hash == profile_hash
                    && compiled
                        .attach_fused_tier(symbol_core::pipeline::FusedTier {
                            program: fused,
                            report,
                            profile_hash: stored_hash,
                        })
                        .is_ok();
                if attached {
                    return Ok(compiled);
                }
                // A decodable artifact that does not match this
                // program/profile must not be served.
                self.counter("serve.cache.corrupt", PayloadKind::Fused)
                    .inc();
            }
        }
        {
            let _span = self.obs.span("serve.fuse", &[("kind", "fused")]);
            compiled.attach_fused_from_profile(&stats, &profile);
        }
        let tier = compiled.fused.as_ref().expect("tier just attached");
        let bytes = artifact::encode_fused(&key, &tier.program, tier.profile_hash, &tier.report);
        let _ = self.store(&key, PayloadKind::Fused, &bytes);
        Ok(compiled)
    }

    /// Runs `compute` under the single-flight guard for `flight_key`:
    /// the first caller (the leader) computes, everyone who arrives
    /// while it is in flight (followers) blocks and shares the
    /// leader's `Arc<Compiled>` — the artifact file is read and
    /// decoded exactly once no matter how many workers warm the same
    /// image concurrently. Leader/follower traffic is counted under
    /// `serve.cache.singleflight{kind, role}`.
    ///
    /// If the leader fails, followers retry independently (errors are
    /// not shareable), so a transient leader failure never poisons the
    /// key.
    fn single_flight(
        &self,
        flight_key: String,
        kind: &str,
        compute: impl Fn() -> Result<Compiled, PipelineError>,
    ) -> Result<Arc<Compiled>, PipelineError> {
        let role = obs_role(&self.obs, kind);
        let flight = {
            let mut map = self.inflight.lock().expect("inflight lock");
            match map.get(&flight_key) {
                Some(f) => {
                    let f = Arc::clone(f);
                    role("follower");
                    drop(map);
                    if let Some(image) = f.wait() {
                        return Ok(image);
                    }
                    return compute().map(Arc::new);
                }
                None => {
                    let f = Arc::new(InFlight::default());
                    map.insert(flight_key.clone(), Arc::clone(&f));
                    role("leader");
                    f
                }
            }
        };
        let result = compute().map(Arc::new);
        // Unregister before publishing so late arrivals become fresh
        // leaders instead of reading a stale slot.
        self.inflight
            .lock()
            .expect("inflight lock")
            .remove(&flight_key);
        flight.publish(result.as_ref().ok().map(Arc::clone));
        result
    }

    /// [`ArtifactCache::load_compiled`] behind the single-flight
    /// guard, returning a shareable image: concurrent warmers of the
    /// same `(source, layout)` read and decode the artifact once and
    /// all receive clones of one `Arc<Compiled>`.
    ///
    /// # Errors
    ///
    /// See [`ArtifactCache::load_compiled`].
    pub fn load_compiled_shared(
        &self,
        source: &str,
        layout: Layout,
    ) -> Result<Arc<Compiled>, PipelineError> {
        let flight_key = ArtifactKey::emulator(source, &layout).file_name(PayloadKind::Emulator);
        self.single_flight(flight_key, "emu", || self.load_compiled(source, layout))
    }

    /// [`ArtifactCache::load_compiled_fused`] behind the single-flight
    /// guard — the fused warm path re-derives the profile, so
    /// collapsing N concurrent warmers to one saves N-1 profiling runs
    /// on top of the reads and decodes.
    ///
    /// # Errors
    ///
    /// See [`ArtifactCache::load_compiled_fused`].
    pub fn load_compiled_fused_shared(
        &self,
        source: &str,
        layout: Layout,
    ) -> Result<Arc<Compiled>, PipelineError> {
        // Keyed without the profile hash (it is not known until after
        // profiling): one flight per (source, layout) and tier.
        let flight_key = ArtifactKey::emulator(source, &layout).file_name(PayloadKind::Fused);
        self.single_flight(flight_key, "fused", || {
            self.load_compiled_fused(source, layout)
        })
    }
}

/// Age beyond which an orphaned `.tmp-*` file is reclaimed even when
/// its writer cannot be proven dead: a store's temp lives only for the
/// milliseconds between write and rename, so anything this old is a
/// leak whatever its pid says (pids recycle, and not every platform
/// can answer liveness).
const STALE_TMP_AGE: std::time::Duration = std::time::Duration::from_secs(3600);

/// Whether the writer that owns a temp file might still be running.
/// Our own pid is always alive; on Linux other pids are checked via
/// `/proc`; elsewhere liveness is unknowable and the age threshold
/// decides alone.
fn temp_writer_may_be_alive(pid: u32) -> bool {
    if pid == std::process::id() {
        return true;
    }
    if cfg!(target_os = "linux") {
        Path::new("/proc").join(pid.to_string()).exists()
    } else {
        true
    }
}

/// Parses the writer pid out of a `.tmp-{pid}-{seq}` file name;
/// `None` for anything that is not one of our temp files.
fn temp_writer_pid(name: &str) -> Option<u32> {
    let rest = name.strip_prefix(".tmp-")?;
    let (pid, seq) = rest.split_once('-')?;
    seq.parse::<u64>().ok()?;
    pid.parse().ok()
}

/// Best-effort removal of stale temp files in `dir` (see
/// [`ArtifactCache::new`]); returns the number reclaimed.
fn reclaim_stale_temps(dir: &Path, obs: &Registry) -> u64 {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0;
    };
    let mut reclaimed = 0;
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(pid) = temp_writer_pid(&name.to_string_lossy()) else {
            continue;
        };
        let old_enough = entry
            .metadata()
            .and_then(|m| m.modified())
            .ok()
            .and_then(|t| t.elapsed().ok())
            .is_some_and(|age| age >= STALE_TMP_AGE);
        if (!temp_writer_may_be_alive(pid) || old_enough)
            && std::fs::remove_file(entry.path()).is_ok()
        {
            reclaimed += 1;
        }
    }
    if reclaimed > 0 {
        obs.counter("serve.cache.tmp_reclaimed", &[]).add(reclaimed);
    }
    reclaimed
}

/// Curried `serve.cache.singleflight` counter: resolves the labelled
/// cell per role at call time.
fn obs_role<'a>(obs: &'a Registry, kind: &'a str) -> impl Fn(&str) + 'a {
    move |role: &str| {
        obs.counter(
            "serve.cache.singleflight",
            &[("kind", kind), ("role", role)],
        )
        .inc();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

    /// A unique scratch directory, removed on drop.
    pub(crate) struct TempDir(pub PathBuf);

    impl TempDir {
        pub(crate) fn new(tag: &str) -> Self {
            let dir = std::env::temp_dir().join(format!(
                "symbol-serve-{tag}-{}-{}",
                std::process::id(),
                DIR_SEQ.fetch_add(1, Ordering::Relaxed)
            ));
            std::fs::create_dir_all(&dir).expect("create scratch dir");
            TempDir(dir)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    const SRC: &str = "main :- X is 3 + 4, X = 7.";

    fn counter(obs: &Registry, name: &str) -> u64 {
        obs.counter(name, &[("kind", "emu")]).get()
    }

    #[test]
    fn cold_then_warm() {
        let t = TempDir::new("coldwarm");
        let obs = Registry::new();
        let cache = ArtifactCache::new(&t.0, obs.clone()).expect("open cache");
        let a = cache.load_compiled(SRC, Layout::default()).expect("cold");
        assert!(a.front.is_some(), "cold path compiled from source");
        assert_eq!(counter(&obs, "serve.cache.miss"), 1);
        assert_eq!(counter(&obs, "serve.cache.store"), 1);
        let b = cache.load_compiled(SRC, Layout::default()).expect("warm");
        assert!(b.front.is_none(), "warm path skipped the front end");
        assert_eq!(counter(&obs, "serve.cache.hit"), 1);
        let ra = a.run_sequential().expect("runs");
        let rb = b.run_sequential().expect("runs");
        assert_eq!(ra.steps, rb.steps);
        assert_eq!(ra.stats.expect, rb.stats.expect);
    }

    const LOOP_SRC: &str = "main :- count(30). count(0). count(N) :- N > 0, M is N - 1, count(M).";

    fn fused_counter(obs: &Registry, name: &str) -> u64 {
        obs.counter(name, &[("kind", "fused")]).get()
    }

    #[test]
    fn fused_cold_then_warm() {
        let t = TempDir::new("fusedwarm");
        let obs = Registry::new();
        let cache = ArtifactCache::new(&t.0, obs.clone()).expect("open cache");
        let a = cache
            .load_compiled_fused(LOOP_SRC, Layout::default())
            .expect("cold");
        assert!(a.fused.is_some(), "cold path built the fused tier");
        assert_eq!(fused_counter(&obs, "serve.cache.miss"), 1);
        assert_eq!(fused_counter(&obs, "serve.cache.store"), 1);
        let b = cache
            .load_compiled_fused(LOOP_SRC, Layout::default())
            .expect("warm");
        assert!(b.fused.is_some(), "warm path attached the fused tier");
        assert_eq!(fused_counter(&obs, "serve.cache.hit"), 1);
        assert_eq!(
            a.fused.as_ref().unwrap().profile_hash,
            b.fused.as_ref().unwrap().profile_hash,
            "deterministic profiling re-derives the same key"
        );
        // Bit-identical across tiers and paths.
        let base = a.run_sequential().expect("decoded runs");
        let fa = a.run_sequential_fused().expect("cold fused runs");
        let fb = b.run_sequential_fused().expect("warm fused runs");
        assert_eq!(base.steps, fa.steps);
        assert_eq!(base.stats.expect, fa.stats.expect);
        assert_eq!(fa.steps, fb.steps);
        assert_eq!(fa.stats.expect, fb.stats.expect);
        assert_eq!(fa.stats.taken, fb.stats.taken);
    }

    #[test]
    fn corrupt_fused_entry_refuses_and_repairs() {
        let t = TempDir::new("fusedcorrupt");
        let obs = Registry::new();
        let cache = ArtifactCache::new(&t.0, obs.clone()).expect("open cache");
        let seeded = cache
            .load_compiled_fused(LOOP_SRC, Layout::default())
            .expect("seed");
        let key = ArtifactKey::fused(
            LOOP_SRC,
            &Layout::default(),
            seeded.fused.as_ref().unwrap().profile_hash,
            symbol_intcode::FuseConfig::default().cache_salt(),
        );
        let path = cache.path_for(&key, PayloadKind::Fused);
        let bytes = std::fs::read(&path).expect("read back");
        std::fs::write(&path, &bytes[..bytes.len() / 2]).expect("truncate");
        let c = cache
            .load_compiled_fused(LOOP_SRC, Layout::default())
            .expect("refuse");
        assert!(c.fused.is_some(), "fell back to running the fusion pass");
        assert_eq!(fused_counter(&obs, "serve.cache.corrupt"), 1);
        // The fallback re-stored a good artifact.
        let d = cache
            .load_compiled_fused(LOOP_SRC, Layout::default())
            .expect("warm");
        assert!(d.fused.is_some());
        assert_eq!(fused_counter(&obs, "serve.cache.hit"), 1);
    }

    #[test]
    fn truncated_entry_recompiles_cleanly() {
        let t = TempDir::new("trunc");
        let obs = Registry::new();
        let cache = ArtifactCache::new(&t.0, obs.clone()).expect("open cache");
        cache.load_compiled(SRC, Layout::default()).expect("seed");
        let path = cache.path_for(
            &ArtifactKey::emulator(SRC, &Layout::default()),
            PayloadKind::Emulator,
        );
        let bytes = std::fs::read(&path).expect("read back");
        std::fs::write(&path, &bytes[..bytes.len() / 2]).expect("truncate");
        let c = cache
            .load_compiled(SRC, Layout::default())
            .expect("recompile");
        assert!(c.front.is_some(), "corrupt entry fell back to compiling");
        assert_eq!(counter(&obs, "serve.cache.corrupt"), 1);
        // The fallback re-stored a good artifact.
        let d = cache.load_compiled(SRC, Layout::default()).expect("warm");
        assert!(d.front.is_none());
    }

    #[test]
    fn wrong_key_under_right_name_is_corrupt() {
        let t = TempDir::new("wrongkey");
        let obs = Registry::new();
        let cache = ArtifactCache::new(&t.0, obs.clone()).expect("open cache");
        let other = "main :- 9 = 9.";
        cache.load_compiled(other, Layout::default()).expect("seed");
        // Republish the other program's artifact under SRC's file name.
        let from = cache.path_for(
            &ArtifactKey::emulator(other, &Layout::default()),
            PayloadKind::Emulator,
        );
        let to = cache.path_for(
            &ArtifactKey::emulator(SRC, &Layout::default()),
            PayloadKind::Emulator,
        );
        std::fs::copy(&from, &to).expect("misfile");
        let c = cache
            .load_compiled(SRC, Layout::default())
            .expect("recompile");
        assert!(
            c.front.is_some(),
            "key mismatch must not serve the wrong program"
        );
        assert_eq!(counter(&obs, "serve.cache.corrupt"), 1);
    }

    #[test]
    fn attached_flight_recorder_sees_cache_traffic() {
        let t = TempDir::new("flight");
        let flight = Arc::new(symbol_obs::FlightRecorder::new(64));
        let cache = ArtifactCache::new(&t.0, Registry::new())
            .expect("open cache")
            .with_flight(Arc::clone(&flight));
        cache.load_compiled(SRC, Layout::default()).expect("cold");
        cache.load_compiled(SRC, Layout::default()).expect("warm");
        let kinds: Vec<&str> = flight.snapshot().iter().map(|r| r.kind_name()).collect();
        assert_eq!(kinds, ["cache_miss", "cache_hit"]);
        let key = ArtifactKey::emulator(SRC, &Layout::default());
        for r in flight.snapshot() {
            assert_eq!(r.a, key.source_hash, "payload carries the key hashes");
            assert_eq!(r.b, key.config_hash);
        }
    }

    #[test]
    fn concurrent_warmers_share_one_decode_through_single_flight() {
        let t = TempDir::new("singleflight");
        let obs = Registry::new();
        let cache = Arc::new(ArtifactCache::new(&t.0, obs.clone()).expect("open cache"));
        // Seed so every loader takes the warm (read + decode) path.
        cache.load_compiled(SRC, Layout::default()).expect("seed");
        let images: Vec<Arc<Compiled>> = (0..8)
            .map(|_| {
                let cache = Arc::clone(&cache);
                std::thread::spawn(move || {
                    cache
                        .load_compiled_shared(SRC, Layout::default())
                        .expect("warm")
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|th| th.join().expect("no panic"))
            .collect();
        let sf = |role: &str| {
            obs.counter(
                "serve.cache.singleflight",
                &[("kind", "emu"), ("role", role)],
            )
            .get()
        };
        assert_eq!(sf("leader") + sf("follower"), 8);
        assert!(sf("leader") >= 1);
        assert_eq!(
            counter(&obs, "serve.cache.hit") + counter(&obs, "serve.cache.miss"),
            sf("leader") + 1,
            "+1 for the seed: only leaders touch the disk, followers share"
        );
        let steps: Vec<u64> = images
            .iter()
            .map(|c| c.run_sequential().expect("runs").steps)
            .collect();
        assert!(steps.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn followers_share_the_leaders_image_without_touching_the_disk() {
        let t = TempDir::new("sfshare");
        let obs = Registry::new();
        let cache = Arc::new(ArtifactCache::new(&t.0, obs.clone()).expect("open cache"));
        let flight_key =
            ArtifactKey::emulator(SRC, &Layout::default()).file_name(PayloadKind::Emulator);
        let flight = Arc::new(InFlight::default());
        cache
            .inflight
            .lock()
            .unwrap()
            .insert(flight_key, Arc::clone(&flight));
        let follower = {
            let cache = Arc::clone(&cache);
            std::thread::spawn(move || {
                cache
                    .load_compiled_shared(SRC, Layout::default())
                    .expect("published image")
            })
        };
        let image = Arc::new(Compiled::from_source(SRC).expect("compiles"));
        flight.publish(Some(Arc::clone(&image)));
        let got = follower.join().expect("follower returns");
        assert!(
            Arc::ptr_eq(&got, &image),
            "the follower shares the published image, pointer-identical"
        );
        assert_eq!(
            counter(&obs, "serve.cache.hit") + counter(&obs, "serve.cache.miss"),
            0,
            "the follower never read the cache directory"
        );
        assert_eq!(
            obs.counter(
                "serve.cache.singleflight",
                &[("kind", "emu"), ("role", "follower")]
            )
            .get(),
            1
        );
    }

    #[test]
    fn a_failed_leader_does_not_poison_followers() {
        let t = TempDir::new("sffail");
        let obs = Registry::new();
        let cache = Arc::new(ArtifactCache::new(&t.0, obs.clone()).expect("open cache"));
        let flight_key =
            ArtifactKey::emulator(SRC, &Layout::default()).file_name(PayloadKind::Emulator);
        let flight = Arc::new(InFlight::default());
        cache
            .inflight
            .lock()
            .unwrap()
            .insert(flight_key, Arc::clone(&flight));
        let follower = {
            let cache = Arc::clone(&cache);
            std::thread::spawn(move || cache.load_compiled_shared(SRC, Layout::default()))
        };
        flight.publish(None);
        let got = follower
            .join()
            .expect("follower returns")
            .expect("independent fallback load succeeds");
        got.run_sequential().expect("fallback image runs");
        assert_eq!(
            counter(&obs, "serve.cache.miss"),
            1,
            "the fallback load compiled independently"
        );
    }

    #[test]
    fn fused_single_flight_collapses_concurrent_cold_warmups() {
        let t = TempDir::new("sffused");
        let obs = Registry::new();
        let cache = Arc::new(ArtifactCache::new(&t.0, obs.clone()).expect("open cache"));
        let images: Vec<Arc<Compiled>> = (0..4)
            .map(|_| {
                let cache = Arc::clone(&cache);
                std::thread::spawn(move || {
                    cache
                        .load_compiled_fused_shared(LOOP_SRC, Layout::default())
                        .expect("tiered image")
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|th| th.join().expect("no panic"))
            .collect();
        let sf = |role: &str| {
            obs.counter(
                "serve.cache.singleflight",
                &[("kind", "fused"), ("role", role)],
            )
            .get()
        };
        assert_eq!(sf("leader") + sf("follower"), 4);
        assert!(sf("leader") >= 1);
        let runs: Vec<u64> = images
            .iter()
            .map(|c| {
                assert!(c.fused.is_some(), "every warmer got the tiered image");
                c.run_sequential_fused().expect("fused runs").steps
            })
            .collect();
        assert!(runs.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn opening_the_cache_reclaims_temps_of_dead_writers_only() {
        let t = TempDir::new("reclaim");
        // A pid above Linux's default pid_max (4194304): provably dead.
        let dead = t.0.join(".tmp-4294000000-3");
        std::fs::write(&dead, b"half-written artifact").expect("plant dead temp");
        // Our own pid: a live writer's temp must survive the open.
        let live = t.0.join(format!(".tmp-{}-7", std::process::id()));
        std::fs::write(&live, b"in flight").expect("plant live temp");
        // Not our naming scheme: never touched.
        let foreign = t.0.join(".tmp-not-a-pid");
        std::fs::write(&foreign, b"someone else's").expect("plant foreign file");

        let obs = Registry::new();
        let cache = ArtifactCache::new(&t.0, obs.clone()).expect("open cache");
        assert!(!dead.exists(), "dead writer's temp reclaimed on open");
        assert!(live.exists(), "live writer's temp left alone");
        assert!(foreign.exists(), "non-temp files left alone");
        assert_eq!(obs.counter("serve.cache.tmp_reclaimed", &[]).get(), 1);

        // The cache still works normally after the sweep.
        cache.load_compiled(SRC, Layout::default()).expect("cold");
        cache.load_compiled(SRC, Layout::default()).expect("warm");
    }

    #[test]
    fn concurrent_writers_never_publish_a_partial_file() {
        let t = TempDir::new("race");
        let obs = Registry::new();
        let cache = Arc::new(ArtifactCache::new(&t.0, obs).expect("open cache"));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let cache = Arc::clone(&cache);
                std::thread::spawn(move || {
                    for _ in 0..4 {
                        let c = cache
                            .load_compiled(SRC, Layout::default())
                            .expect("load or compile");
                        c.run_sequential().expect("runs");
                    }
                })
            })
            .collect();
        for th in threads {
            th.join().expect("no worker panicked");
        }
        // Whatever the interleaving, the published file is complete.
        let warm = cache.load_compiled(SRC, Layout::default()).expect("warm");
        assert!(warm.front.is_none(), "final cache entry is valid");
        let leftovers: Vec<_> = std::fs::read_dir(&t.0)
            .expect("list dir")
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().starts_with(".tmp-"))
            .collect();
        assert!(leftovers.is_empty(), "no temp files left behind");
    }
}
