//! Greedy, deterministic shrinking of failing cases.
//!
//! The shrinker repeatedly tries candidate reductions in a fixed order
//! and keeps the first candidate that still fails with the *same*
//! [`FailureKind`]; a pass that accepts nothing ends the loop. Because
//! the candidate order is a pure function of the case and the check is
//! deterministic, shrinking the same case twice yields the same
//! reproducer — which is what makes checked-in corpus files stable.
//!
//! Prolog candidates (coarse to fine): drop a clause, drop a body goal,
//! replace a list cell by its tail, zero an integer literal. IntCode
//! candidates: delete an op (remapping every branch target and code
//! word across the hole), then single-operand simplifications.

use symbol_prolog::{program_to_source, Clause, Program, Term};

use crate::gen_intcode::IntFrag;
use crate::gen_prolog::PrologCase;
use crate::oracle::{Case, FailureKind};

/// Shrinks `case` while `check` keeps reporting the same `key` kind.
/// `max_evals` bounds the total number of candidate evaluations, so a
/// pathological case cannot stall the fuzz loop.
pub fn shrink_case(
    case: Case,
    key: &FailureKind,
    check: &mut dyn FnMut(&Case) -> Option<FailureKind>,
    max_evals: usize,
) -> Case {
    let mut current = case;
    let mut evals = 0usize;
    'outer: loop {
        for cand in candidates(&current) {
            if evals >= max_evals {
                return current;
            }
            evals += 1;
            if check(&cand).as_ref() == Some(key) {
                current = cand;
                continue 'outer;
            }
        }
        return current;
    }
}

fn candidates(case: &Case) -> Vec<Case> {
    match case {
        Case::Prolog(p) => prolog_candidates(p).into_iter().map(Case::Prolog).collect(),
        Case::IntCode(f) => intcode_candidates(f)
            .into_iter()
            .map(Case::IntCode)
            .collect(),
    }
}

// ---------------------------------------------------------------- Prolog

fn clauses_of(program: &Program) -> Vec<Clause> {
    program
        .predicates()
        .flat_map(|p| p.clauses.iter().cloned())
        .collect()
}

fn rebuild(program: &Program, clauses: Vec<Clause>, expected: &PrologCase) -> Option<PrologCase> {
    if clauses.is_empty() {
        return None;
    }
    let next = Program::from_clauses(clauses, program.symbols().clone());
    Some(PrologCase {
        source: program_to_source(&next),
        expected: expected.expected,
    })
}

fn prolog_candidates(case: &PrologCase) -> Vec<PrologCase> {
    // A case whose source no longer parses has nowhere to go.
    let Ok(program) = symbol_prolog::parse_program(&case.source) else {
        return Vec::new();
    };
    let clauses = clauses_of(&program);
    let mut out = Vec::new();

    // Drop whole clauses.
    for i in 0..clauses.len() {
        let mut c = clauses.clone();
        c.remove(i);
        out.extend(rebuild(&program, c, case));
    }
    // Drop single body goals.
    for i in 0..clauses.len() {
        for g in 0..clauses[i].body.len() {
            let mut c = clauses.clone();
            c[i].body.remove(g);
            out.extend(rebuild(&program, c, case));
        }
    }
    // Structural simplifications inside one clause at a time.
    let dot = program.symbols().lookup(".");
    for i in 0..clauses.len() {
        let cons_cells = count_in_clause(&clauses[i], &mut |t| is_cons(t, dot));
        for p in 0..cons_cells {
            let mut c = clauses.clone();
            let mut seen = 0usize;
            edit_clause(&mut c[i], &mut |t| {
                if is_cons(t, dot) {
                    if seen == p {
                        seen += 1;
                        let Term::Struct(_, mut args) = std::mem::replace(t, Term::Int(0)) else {
                            unreachable!("is_cons checked the shape");
                        };
                        *t = args.pop().expect("cons has two args");
                        return true;
                    }
                    seen += 1;
                }
                false
            });
            out.extend(rebuild(&program, c, case));
        }
        let ints = count_in_clause(&clauses[i], &mut |t| matches!(t, Term::Int(v) if *v != 0));
        for p in 0..ints {
            let mut c = clauses.clone();
            let mut seen = 0usize;
            edit_clause(&mut c[i], &mut |t| {
                if matches!(t, Term::Int(v) if *v != 0) {
                    if seen == p {
                        *t = Term::Int(0);
                        return true;
                    }
                    seen += 1;
                }
                false
            });
            out.extend(rebuild(&program, c, case));
        }
    }
    out
}

fn is_cons(t: &Term, dot: Option<symbol_prolog::Atom>) -> bool {
    matches!(t, Term::Struct(f, args) if args.len() == 2 && Some(*f) == dot)
}

/// Counts the subterms of the clause matching `pred` (pre-order).
fn count_in_clause(clause: &Clause, pred: &mut dyn FnMut(&Term) -> bool) -> usize {
    let mut n = 0;
    let mut visit = |t: &Term| {
        let mut stack = vec![t];
        while let Some(t) = stack.pop() {
            if pred(t) {
                n += 1;
            }
            if let Term::Struct(_, args) = t {
                stack.extend(args.iter());
            }
        }
    };
    visit(&clause.head);
    for g in &clause.body {
        visit(g);
    }
    n
}

/// Applies `edit` to subterms of the clause in pre-order; `edit`
/// returns `true` once it has made its single change, which stops the
/// walk descending into the replaced term.
fn edit_clause(clause: &mut Clause, edit: &mut dyn FnMut(&mut Term) -> bool) {
    fn walk(t: &mut Term, edit: &mut dyn FnMut(&mut Term) -> bool, done: &mut bool) {
        if *done {
            return;
        }
        if edit(t) {
            *done = true;
            return;
        }
        if let Term::Struct(_, args) = t {
            for a in args {
                walk(a, edit, done);
            }
        }
    }
    let mut done = false;
    walk(&mut clause.head, edit, &mut done);
    for g in &mut clause.body {
        walk(g, edit, &mut done);
    }
}

// --------------------------------------------------------------- IntCode

fn intcode_candidates(frag: &IntFrag) -> Vec<IntFrag> {
    use symbol_intcode::{AluOp, Cond, Label, Op, Operand, Tag, Word};

    let mut out = Vec::new();

    // Delete one op, closing the hole in the identity label space:
    // targets past the hole shift down by one; targets at the hole now
    // name the op that followed. Targets are deliberately NOT clamped
    // into range — repairing a dangling target would turn a Build
    // finding into a different program; an out-of-range candidate is
    // simply rejected by the kind check.
    for k in 0..frag.ops.len() {
        if frag.ops.len() <= 1 {
            break;
        }
        let remap = |t: u32| -> u32 {
            if (t as usize) > k {
                t - 1
            } else {
                t
            }
        };
        let mut ops = Vec::with_capacity(frag.ops.len() - 1);
        for (i, op) in frag.ops.iter().enumerate() {
            if i == k {
                continue;
            }
            let mut op = op.clone();
            if let Some(Label(t)) = op.target() {
                op.set_target(Label(remap(t)));
            }
            if let Op::MvI { w, .. } = &mut op {
                if w.tag == Tag::Cod {
                    w.val = remap(w.val as u32) as i64;
                }
            }
            ops.push(op);
        }
        out.push(IntFrag { ops });
    }

    // Single-operand simplifications, one mutated op per candidate.
    for k in 0..frag.ops.len() {
        let mut push = |op: Op| {
            if op != frag.ops[k] {
                let mut ops = frag.ops.clone();
                ops[k] = op;
                out.push(IntFrag { ops });
            }
        };
        match &frag.ops[k] {
            Op::Ld { d, base, off } if *off != 0 => push(Op::Ld {
                d: *d,
                base: *base,
                off: 0,
            }),
            Op::St { s, base, off } if *off != 0 => push(Op::St {
                s: *s,
                base: *base,
                off: 0,
            }),
            Op::MvI { d, w } if w.tag != Tag::Cod && *w != Word::int(0) => push(Op::MvI {
                d: *d,
                w: Word::int(0),
            }),
            Op::Alu { op, d, a, b } => {
                if *op != AluOp::Add {
                    push(Op::Alu {
                        op: AluOp::Add,
                        d: *d,
                        a: *a,
                        b: *b,
                    });
                }
                if let Operand::Reg(_) = b {
                    push(Op::Alu {
                        op: *op,
                        d: *d,
                        a: *a,
                        b: Operand::Imm(1),
                    });
                } else if *b != Operand::Imm(0) && *op == AluOp::Add {
                    push(Op::Alu {
                        op: *op,
                        d: *d,
                        a: *a,
                        b: Operand::Imm(0),
                    });
                }
            }
            Op::AddA { d, a, b } if *b != Operand::Imm(0) => push(Op::AddA {
                d: *d,
                a: *a,
                b: Operand::Imm(0),
            }),
            Op::Br { cond, a, b, t } => {
                if *cond != Cond::Eq {
                    push(Op::Br {
                        cond: Cond::Eq,
                        a: *a,
                        b: *b,
                        t: *t,
                    });
                }
                if *b != Operand::Imm(0) {
                    push(Op::Br {
                        cond: *cond,
                        a: *a,
                        b: Operand::Imm(0),
                        t: *t,
                    });
                }
            }
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use symbol_intcode::{Label, Op, R};

    fn has_jmp(c: &Case) -> Option<FailureKind> {
        match c {
            Case::IntCode(f) => f
                .ops
                .iter()
                .any(|o| matches!(o, Op::Jmp { .. }))
                .then_some(FailureKind::Panic),
            _ => None,
        }
    }

    #[test]
    fn deletion_remaps_targets_across_the_hole() {
        let frag = IntFrag {
            ops: vec![
                Op::Mv { d: R(32), s: R(33) },
                Op::Jmp { t: Label(3) },
                Op::Mv { d: R(34), s: R(35) },
                Op::Halt { success: true },
            ],
        };
        let cands = intcode_candidates(&frag);
        // Deleting op 2 moves the halt to index 2; the jump must follow.
        let deleted = &cands[2];
        assert_eq!(deleted.ops.len(), 3);
        assert_eq!(deleted.ops[1].target(), Some(Label(2)));
        deleted.build().expect("remapped fragment stays valid");
    }

    #[test]
    fn shrink_keeps_the_failure_and_is_deterministic() {
        let frag = IntFrag {
            ops: vec![
                Op::Mv { d: R(32), s: R(33) },
                Op::Mv { d: R(34), s: R(35) },
                Op::Jmp { t: Label(3) },
                Op::Halt { success: true },
            ],
        };
        let key = FailureKind::Panic;
        let a = shrink_case(Case::IntCode(frag.clone()), &key, &mut has_jmp, 10_000);
        let b = shrink_case(Case::IntCode(frag), &key, &mut has_jmp, 10_000);
        assert_eq!(a, b);
        assert!(has_jmp(&a).is_some(), "shrunk case still fails");
        let Case::IntCode(f) = &a else { unreachable!() };
        // Minimal: the jump plus its (clamped) landing op.
        assert!(f.ops.len() <= 2, "got {} ops", f.ops.len());
    }
}
