//! Tests of the resource-utilization statistics.

use std::collections::HashMap;

use symbol_intcode::layout::Layout;
use symbol_intcode::{Label, Op, OpClass, Word, R};
use symbol_vliw::{MachineConfig, SimConfig, SlotOp, VliwInstr, VliwProgram, VliwSim};

fn word(ops: Vec<Op>) -> VliwInstr {
    VliwInstr {
        slots: ops
            .into_iter()
            .enumerate()
            .map(|(u, op)| SlotOp {
                unit: u,
                op,
                speculative: false,
            })
            .collect(),
    }
}

fn layout() -> Layout {
    Layout {
        heap_size: 64,
        env_size: 64,
        cp_size: 64,
        trail_size: 64,
        pdl_size: 64,
    }
}

#[test]
fn class_ops_and_issue_rate() {
    let mut labels = HashMap::new();
    labels.insert(Label(0), 0);
    let instrs = vec![
        word(vec![
            Op::MvI {
                d: R(40),
                w: Word::int(3),
            },
            Op::MvI {
                d: R(41),
                w: Word::int(4),
            },
        ]),
        VliwInstr::default(),
        word(vec![Op::Ld {
            d: R(42),
            base: R(40),
            off: 0,
        }]),
        word(vec![Op::Halt { success: true }]),
    ];
    let p = VliwProgram::new(instrs, labels, 1, Label(0));
    let machine = MachineConfig::wide_units(2);
    let r = VliwSim::new(&p, machine, &layout())
        .run(&SimConfig::default())
        .unwrap();
    assert_eq!(r.class_ops, [1, 0, 2, 1]); // mem, alu, move, control
    assert_eq!(r.cycles, 4);
    assert!((r.issue_rate() - 1.0).abs() < 1e-12); // 4 ops / 4 cycles

    // one memory port over 4 cycles, 1 op used
    let mem_util = r.utilization(&machine, OpClass::Memory);
    assert!((mem_util - 0.25).abs() < 1e-12);
    // 2 move slots per cycle over 4 cycles = 8 slot-cycles, 2 used
    let mv_util = r.utilization(&machine, OpClass::Move);
    assert!((mv_util - 0.25).abs() < 1e-12);
}

#[test]
fn utilization_bounded_by_one() {
    let mut labels = HashMap::new();
    labels.insert(Label(0), 0);
    let instrs = vec![
        word(vec![Op::Mv { d: R(40), s: R(41) }]),
        word(vec![Op::Halt { success: true }]),
    ];
    let p = VliwProgram::new(instrs, labels, 1, Label(0));
    let machine = MachineConfig::units(1);
    let r = VliwSim::new(&p, machine, &layout())
        .run(&SimConfig::default())
        .unwrap();
    for class in [
        OpClass::Memory,
        OpClass::Alu,
        OpClass::Move,
        OpClass::Control,
    ] {
        let u = r.utilization(&machine, class);
        assert!((0.0..=1.0).contains(&u), "{class:?} utilization {u}");
    }
}
