//! Property tests for the front end: any term the AST can express is
//! re-parsed from its own display form to an alpha-equivalent term.
//!
//! Term generation uses a seeded xorshift PRNG (no external crates),
//! so every run exercises the same deterministic case set.

use symbol_prolog::{parser, SymbolTable, Term};

/// Deterministic xorshift64* PRNG.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform value in `0..n`.
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// A symbol-table-independent term description.
#[derive(Clone, Debug)]
enum TermSpec {
    Var(usize),
    Int(i64),
    Atom(String),
    Struct(String, Vec<TermSpec>),
    List(Vec<TermSpec>),
}

/// A random term whose atoms come from a safe alphabet, at most
/// `depth` nested levels deep.
fn random_spec(rng: &mut Rng, depth: usize) -> TermSpec {
    let leaf = depth == 0 || rng.below(2) == 0;
    if leaf {
        match rng.below(3) {
            0 => TermSpec::Var(rng.below(4) as usize),
            1 => TermSpec::Int(rng.below(1998) as i64 - 999),
            _ => {
                let a = ["a", "bc", "foo", "bar_1", "quux"][rng.below(5) as usize];
                TermSpec::Atom(a.to_owned())
            }
        }
    } else if rng.below(2) == 0 {
        let f = ["f", "g", "point", "wrap"][rng.below(4) as usize];
        let n = 1 + rng.below(3) as usize;
        TermSpec::Struct(
            f.to_owned(),
            (0..n).map(|_| random_spec(rng, depth - 1)).collect(),
        )
    } else {
        let n = rng.below(4) as usize;
        TermSpec::List((0..n).map(|_| random_spec(rng, depth - 1)).collect())
    }
}

impl TermSpec {
    fn build(&self, symbols: &mut SymbolTable) -> Term {
        match self {
            TermSpec::Var(v) => Term::Var(*v),
            TermSpec::Int(i) => Term::Int(*i),
            TermSpec::Atom(a) => Term::Atom(symbols.intern(a)),
            TermSpec::Struct(f, args) => {
                let fa = symbols.intern(f);
                Term::Struct(fa, args.iter().map(|a| a.build(symbols)).collect())
            }
            TermSpec::List(items) => Term::list(items.iter().map(|i| i.build(symbols)).collect()),
        }
    }
}

/// Structural equality modulo a consistent renaming of variables.
fn alpha_eq(a: &Term, b: &Term, map: &mut std::collections::HashMap<usize, usize>) -> bool {
    match (a, b) {
        (Term::Var(x), Term::Var(y)) => match map.get(x) {
            Some(&m) => m == *y,
            None => {
                map.insert(*x, *y);
                true
            }
        },
        (Term::Int(x), Term::Int(y)) => x == y,
        (Term::Atom(x), Term::Atom(y)) => x == y,
        (Term::Struct(f, xs), Term::Struct(g, ys)) => {
            f == g && xs.len() == ys.len() && xs.iter().zip(ys).all(|(x, y)| alpha_eq(x, y, map))
        }
        _ => false,
    }
}

#[test]
fn display_then_parse_is_alpha_identity() {
    let mut rng = Rng(0xc0ff_ee00_dead_beef);
    for _ in 0..256 {
        let spec = random_spec(&mut rng, 4);
        let mut symbols = SymbolTable::new();
        let term = spec.build(&mut symbols);
        let text = format!("{}", term.display(&symbols));
        let reparsed = parser::parse_term(&text, &mut symbols)
            .unwrap_or_else(|e| panic!("reparse of {text:?} failed: {e}"))
            .term;
        let mut map = std::collections::HashMap::new();
        assert!(
            alpha_eq(&term, &reparsed, &mut map),
            "{} reparsed as {}",
            term.display(&symbols),
            reparsed.display(&symbols)
        );
    }
}

#[test]
fn ground_terms_have_no_vars() {
    let mut rng = Rng(0xdead_10cc_face_b00c);
    for _ in 0..256 {
        let spec = random_spec(&mut rng, 4);
        let mut symbols = SymbolTable::new();
        let term = spec.build(&mut symbols);
        let mut vars = Vec::new();
        term.collect_vars(&mut vars);
        assert_eq!(term.is_ground(), vars.is_empty());
    }
}

#[test]
fn max_var_bounds_collected_vars() {
    let mut rng = Rng(0xba5e_ba11_ca11_ab1e);
    for _ in 0..256 {
        let spec = random_spec(&mut rng, 4);
        let mut symbols = SymbolTable::new();
        let term = spec.build(&mut symbols);
        let mut vars = Vec::new();
        term.collect_vars(&mut vars);
        assert_eq!(term.max_var(), vars.iter().copied().max());
    }
}
