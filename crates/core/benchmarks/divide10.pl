% divide10 -- symbolic differentiation of the 10-fold quotient
% x/x/x/x/x/x/x/x/x/x (Warren's DERIV family, Aquarius "divide10").
% The expected result size is checked (163 nodes).

main :-
    d(x/x/x/x/x/x/x/x/x/x, x, D),
    size(D, N),
    N = 163.

d(U + V, X, DU + DV) :- !, d(U, X, DU), d(V, X, DV).
d(U - V, X, DU - DV) :- !, d(U, X, DU), d(V, X, DV).
d(U * V, X, DU * V + U * DV) :- !, d(U, X, DU), d(V, X, DV).
d(U / V, X, (DU * V - U * DV) / (V * V)) :- !, d(U, X, DU), d(V, X, DV).
d(log(U), X, DU / U) :- !, d(U, X, DU).
d(X, X, 1) :- !.
d(_, _, 0).

size(X + Y, S) :- !, size(X, A), size(Y, B), S is A + B + 1.
size(X - Y, S) :- !, size(X, A), size(Y, B), S is A + B + 1.
size(X * Y, S) :- !, size(X, A), size(Y, B), S is A + B + 1.
size(X / Y, S) :- !, size(X, A), size(Y, B), S is A + B + 1.
size(log(X), S) :- !, size(X, A), S is A + 1.
size(_, 1).
