//! Very long instruction words and scheduled programs.

use std::collections::HashMap;
use std::fmt;

use symbol_intcode::{Label, Op};

/// One operation placed in a unit slot.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SlotOp {
    /// Unit index the op issues on.
    pub unit: usize,
    /// The operation.
    pub op: Op,
    /// Whether the compactor hoisted this op above a side exit. A
    /// speculative op's faults (bad address, division by zero) are
    /// dismissed — it produces a garbage value that is provably dead on
    /// the path where the fault can occur.
    pub speculative: bool,
}

/// One very long instruction word: the set of operations issued in a
/// single cycle. Branches are evaluated in the order they appear
/// (multi-way branch priority).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct VliwInstr {
    /// Operations, branches in priority order.
    pub slots: Vec<SlotOp>,
}

impl VliwInstr {
    /// Number of operations.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the word is empty (an explicit no-op cycle).
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

impl fmt::Display for VliwInstr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, s) in self.slots.iter().enumerate() {
            if i > 0 {
                write!(f, " || ")?;
            }
            write!(f, "u{}:{}", s.unit, s.op)?;
        }
        write!(f, "]")
    }
}

/// A scheduled VLIW program: instruction words plus the label map
/// (labels resolve to instruction indices; label ids are shared with
/// the original IntCode program, so code words in data memory remain
/// valid).
#[derive(Clone, Debug)]
pub struct VliwProgram {
    instrs: Vec<VliwInstr>,
    label_addr: Vec<usize>,
    entry: Label,
}

impl VliwProgram {
    /// Builds a program, validating label resolution for every branch
    /// target.
    ///
    /// # Panics
    ///
    /// Panics if a referenced label is unbound.
    pub fn new(
        instrs: Vec<VliwInstr>,
        label_at: HashMap<Label, usize>,
        num_labels: u32,
        entry: Label,
    ) -> Self {
        let mut label_addr = vec![usize::MAX; num_labels as usize];
        for (l, at) in &label_at {
            label_addr[l.0 as usize] = *at;
        }
        for w in &instrs {
            for s in &w.slots {
                if let Some(t) = s.op.target() {
                    assert!(
                        label_addr[t.0 as usize] != usize::MAX,
                        "branch target {t} unbound in VLIW program"
                    );
                }
            }
        }
        assert!(
            label_addr
                .get(entry.0 as usize)
                .is_some_and(|&a| a != usize::MAX),
            "entry label unbound"
        );
        VliwProgram {
            instrs,
            label_addr,
            entry,
        }
    }

    /// The instruction words.
    pub fn instrs(&self) -> &[VliwInstr] {
        &self.instrs
    }

    /// Resolves a label to an instruction index (`usize::MAX` when the
    /// label does not exist in this program).
    pub fn label_addr(&self, l: Label) -> usize {
        self.label_addr
            .get(l.0 as usize)
            .copied()
            .unwrap_or(usize::MAX)
    }

    /// The raw label→address table (`usize::MAX` = unbound).
    pub fn label_table(&self) -> &[usize] {
        &self.label_addr
    }

    /// Entry label.
    pub fn entry(&self) -> Label {
        self.entry
    }

    /// Every bound label with its instruction index.
    pub fn bound_labels(&self) -> impl Iterator<Item = (Label, usize)> + '_ {
        self.label_addr
            .iter()
            .enumerate()
            .filter(|(_, &a)| a != usize::MAX)
            .map(|(lid, &a)| (Label(lid as u32), a))
    }

    /// Total number of operations across all words.
    pub fn num_ops(&self) -> usize {
        self.instrs.iter().map(VliwInstr::len).sum()
    }

    /// Number of instruction words.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }
}

impl fmt::Display for VliwProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut at_labels: HashMap<usize, Vec<usize>> = HashMap::new();
        for (lid, &addr) in self.label_addr.iter().enumerate() {
            if addr != usize::MAX {
                at_labels.entry(addr).or_default().push(lid);
            }
        }
        for (i, w) in self.instrs.iter().enumerate() {
            if let Some(ls) = at_labels.get(&i) {
                for l in ls {
                    writeln!(f, "L{l}:")?;
                }
            }
            writeln!(f, "  {i:6}  {w}")?;
        }
        Ok(())
    }
}
