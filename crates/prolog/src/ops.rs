//! Standard operator table.
//!
//! The parser consults this fixed Edinburgh-style table; user-defined
//! operators (`op/3`) are not needed by the Aquarius benchmarks and are
//! intentionally unsupported.

/// Associativity class of an infix operator.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum InfixKind {
    /// `xfx` — both arguments strictly below the operator priority.
    Xfx,
    /// `xfy` — right argument may be at the operator priority.
    Xfy,
    /// `yfx` — left argument may be at the operator priority.
    Yfx,
}

/// Associativity class of a prefix operator.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum PrefixKind {
    /// `fy` — argument may be at the operator priority.
    Fy,
    /// `fx` — argument strictly below the operator priority.
    Fx,
}

/// Looks up `name` as an infix operator: `(priority, kind)`.
pub fn infix(name: &str) -> Option<(u32, InfixKind)> {
    use InfixKind::*;
    Some(match name {
        ":-" | "-->" => (1200, Xfx),
        ";" => (1100, Xfy),
        "->" => (1050, Xfy),
        "," => (1000, Xfy),
        "=" | "\\=" | "==" | "\\==" | "is" | "=:=" | "=\\=" | "<" | ">" | "=<" | ">=" | "@<"
        | "@>" | "@=<" | "@>=" | "=.." => (700, Xfx),
        "+" | "-" | "/\\" | "\\/" | "xor" => (500, Yfx),
        "*" | "/" | "//" | "mod" | "rem" | "<<" | ">>" => (400, Yfx),
        "**" => (200, Xfx),
        "^" => (200, Xfy),
        _ => return None,
    })
}

/// Looks up `name` as a prefix operator: `(priority, kind)`.
pub fn prefix(name: &str) -> Option<(u32, PrefixKind)> {
    use PrefixKind::*;
    Some(match name {
        ":-" | "?-" => (1200, Fx),
        "\\+" => (900, Fy),
        "-" | "+" | "\\" => (200, Fy),
        _ => return None,
    })
}

/// The priority below which a comma is an argument separator rather than
/// a conjunction: arguments of structures and list items parse at 999.
pub const ARG_PRIORITY: u32 = 999;

/// The maximum term priority.
pub const MAX_PRIORITY: u32 = 1200;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_ops_are_xfx_700() {
        for op in ["=", "<", ">=", "is", "==", "\\=="] {
            assert_eq!(infix(op), Some((700, InfixKind::Xfx)), "{op}");
        }
    }

    #[test]
    fn arithmetic_precedence_ordering() {
        let (add, _) = infix("+").unwrap();
        let (mul, _) = infix("*").unwrap();
        assert!(mul < add, "* binds tighter than +");
    }

    #[test]
    fn minus_is_both_prefix_and_infix() {
        assert!(prefix("-").is_some());
        assert!(infix("-").is_some());
    }

    #[test]
    fn unknown_operator_is_none() {
        assert_eq!(infix("foo"), None);
        assert_eq!(prefix("foo"), None);
    }
}
