//! The long-running query server.
//!
//! One immutable [`Compiled`] image is shared (via `Arc`) by a bounded
//! pool of `std::thread` workers that answer independent queries
//! against it. Requests flow through a bounded queue — submitters
//! block when it is full, giving natural backpressure — and workers
//! drain them in small batches, paying the lock once per batch rather
//! than once per request.
//!
//! The server is panic-free by construction: each query runs under
//! `catch_unwind`, so even a defect that would panic the emulator is
//! converted into a failed [`QueryResult`] (and counted) instead of
//! killing the worker.
//!
//! Observability, all on the registry handed to [`QueryServer::start`]:
//!
//! * `serve.queries.ok` / `serve.queries.failed` /
//!   `serve.queries.panicked` counters,
//! * a `serve.tier` counter labelled `tier=fused` / `tier=decoded`
//!   with which execution tier answered each successful query,
//! * `serve.queue.depth` gauge (sampled at each batch grab),
//! * `serve.batch` histogram of batch sizes,
//! * a `serve.query` span per query (latency histogram + trace event).

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use symbol_core::pipeline::Compiled;
use symbol_obs::Registry;

/// Tuning knobs of a [`QueryServer`].
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Worker threads (clamped to at least 1).
    pub workers: usize,
    /// Maximum queued requests before [`QueryServer::submit`] blocks
    /// (clamped to at least 1).
    pub queue_capacity: usize,
    /// Maximum requests a worker takes per lock acquisition (clamped
    /// to at least 1).
    pub max_batch: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            queue_capacity: 64,
            max_batch: 8,
        }
    }
}

/// The answer to one query.
#[derive(Clone, Debug)]
pub struct QueryResult {
    /// The id passed to [`QueryServer::submit`].
    pub id: u64,
    /// Emulator steps on success; a rendered error otherwise. A
    /// worker panic surfaces here as an error string, never as a dead
    /// thread.
    pub outcome: Result<u64, String>,
}

struct Queue {
    pending: VecDeque<u64>,
    closed: bool,
}

struct Shared {
    queue: Mutex<Queue>,
    /// Signalled when requests arrive or the queue closes.
    work: Condvar,
    /// Signalled when a batch is drained (space for submitters).
    space: Condvar,
    results: Mutex<Vec<QueryResult>>,
    capacity: usize,
    max_batch: usize,
}

/// A running worker pool answering queries against one shared
/// [`Compiled`] image. Dropping the server without calling
/// [`QueryServer::finish`] also shuts it down cleanly (results are
/// discarded).
pub struct QueryServer {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

fn run_one(compiled: &Compiled, id: u64, obs: &Registry) -> QueryResult {
    let _span = obs.span("serve.query", &[]);
    let tier = if compiled.fused.is_some() {
        "fused"
    } else {
        "decoded"
    };
    let outcome = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        compiled.run_sequential_fast()
    })) {
        Ok(Ok(run)) => {
            obs.counter("serve.queries.ok", &[]).inc();
            obs.counter("serve.tier", &[("tier", tier)]).inc();
            Ok(run.steps)
        }
        Ok(Err(e)) => {
            obs.counter("serve.queries.failed", &[]).inc();
            Err(e.to_string())
        }
        Err(_) => {
            obs.counter("serve.queries.panicked", &[]).inc();
            Err("query panicked".to_string())
        }
    };
    QueryResult { id, outcome }
}

fn worker_loop(shared: &Shared, compiled: &Compiled, obs: &Registry) {
    let depth = obs.gauge("serve.queue.depth", &[]);
    let batch_sizes = obs.histogram("serve.batch", &[]);
    loop {
        let batch: Vec<u64> = {
            let mut q = shared.queue.lock().expect("queue lock");
            loop {
                if !q.pending.is_empty() {
                    break;
                }
                if q.closed {
                    return;
                }
                q = shared.work.wait(q).expect("queue lock");
            }
            let n = q.pending.len().min(shared.max_batch);
            let batch = q.pending.drain(..n).collect();
            depth.set(q.pending.len() as i64);
            shared.space.notify_all();
            batch
        };
        batch_sizes.record(batch.len() as u64);
        let answered: Vec<QueryResult> = batch
            .into_iter()
            .map(|id| run_one(compiled, id, obs))
            .collect();
        shared
            .results
            .lock()
            .expect("results lock")
            .extend(answered);
    }
}

impl QueryServer {
    /// Starts `cfg.workers` threads serving queries against
    /// `compiled`. The registry may be shared with the artifact cache
    /// so one `metrics.json` covers both tiers.
    pub fn start(compiled: Arc<Compiled>, cfg: &ServerConfig, obs: &Registry) -> Self {
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue {
                pending: VecDeque::new(),
                closed: false,
            }),
            work: Condvar::new(),
            space: Condvar::new(),
            results: Mutex::new(Vec::new()),
            capacity: cfg.queue_capacity.max(1),
            max_batch: cfg.max_batch.max(1),
        });
        let workers = (0..cfg.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                let compiled = Arc::clone(&compiled);
                let obs = obs.clone();
                std::thread::spawn(move || worker_loop(&shared, &compiled, &obs))
            })
            .collect();
        QueryServer { shared, workers }
    }

    /// Enqueues one query, blocking while the queue is full.
    ///
    /// # Panics
    ///
    /// Panics if called after [`QueryServer::finish`] consumed the
    /// server (the borrow checker prevents this) or if a lock is
    /// poisoned, which only happens after a panic *outside* the
    /// `catch_unwind`-protected query path — an internal bug.
    pub fn submit(&self, id: u64) {
        let mut q = self.shared.queue.lock().expect("queue lock");
        while q.pending.len() >= self.shared.capacity {
            q = self.shared.space.wait(q).expect("queue lock");
        }
        q.pending.push_back(id);
        self.shared.work.notify_one();
    }

    /// Closes the queue, waits for every in-flight query, joins the
    /// workers and returns all results sorted by id.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread itself panicked — impossible through
    /// the query path, which is `catch_unwind`-protected.
    pub fn finish(mut self) -> Vec<QueryResult> {
        self.close();
        for th in self.workers.drain(..) {
            th.join().expect("worker thread exited cleanly");
        }
        let mut results = std::mem::take(&mut *self.shared.results.lock().expect("results lock"));
        results.sort_by_key(|r| r.id);
        results
    }

    fn close(&self) {
        let mut q = self.shared.queue.lock().expect("queue lock");
        q.closed = true;
        self.shared.work.notify_all();
    }
}

impl Drop for QueryServer {
    fn drop(&mut self) {
        self.close();
        for th in self.workers.drain(..) {
            let _ = th.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compiled() -> Arc<Compiled> {
        Arc::new(Compiled::from_source("main :- X is 2 + 2, X = 4.").expect("compiles"))
    }

    #[test]
    fn serves_many_queries_against_one_image() {
        let obs = Registry::new();
        let server = QueryServer::start(
            compiled(),
            &ServerConfig {
                workers: 4,
                queue_capacity: 8,
                max_batch: 4,
            },
            &obs,
        );
        for id in 0..100 {
            server.submit(id);
        }
        let results = server.finish();
        assert_eq!(results.len(), 100);
        let steps = results[0].outcome.clone().expect("query succeeds");
        for r in &results {
            assert_eq!(r.outcome.clone().expect("query succeeds"), steps);
        }
        assert_eq!(
            results.iter().map(|r| r.id).collect::<Vec<_>>(),
            (0..100).collect::<Vec<_>>()
        );
        assert_eq!(obs.counter("serve.queries.ok", &[]).get(), 100);
        assert_eq!(obs.counter("serve.queries.failed", &[]).get(), 0);
        assert_eq!(obs.counter("serve.queries.panicked", &[]).get(), 0);
        assert_eq!(
            obs.counter("serve.tier", &[("tier", "decoded")]).get(),
            100,
            "no fused tier installed: every query ran decoded"
        );
        assert!(obs.histogram("serve.batch", &[]).count() > 0);
    }

    #[test]
    fn fused_image_serves_queries_on_the_fused_tier() {
        let obs = Registry::new();
        let src = "main :- count(20). count(0). count(N) :- N > 0, M is N - 1, count(M).";
        let mut c = Compiled::from_source(src).expect("compiles");
        let decoded_steps = c.run_sequential().expect("decoded runs").steps;
        c.build_fused_tier().expect("fuses");
        let server = QueryServer::start(Arc::new(c), &ServerConfig::default(), &obs);
        for id in 0..25 {
            server.submit(id);
        }
        let results = server.finish();
        assert_eq!(results.len(), 25);
        for r in &results {
            assert_eq!(
                r.outcome.clone().expect("query succeeds"),
                decoded_steps,
                "fused tier is bit-identical to decoded"
            );
        }
        assert_eq!(obs.counter("serve.tier", &[("tier", "fused")]).get(), 25);
        assert_eq!(obs.counter("serve.tier", &[("tier", "decoded")]).get(), 0);
    }

    #[test]
    fn failing_queries_come_back_as_errors_not_panics() {
        let obs = Registry::new();
        let failing =
            Arc::new(Compiled::from_source("main :- 1 = 2.").expect("compiles (query fails)"));
        let server = QueryServer::start(failing, &ServerConfig::default(), &obs);
        for id in 0..10 {
            server.submit(id);
        }
        let results = server.finish();
        assert_eq!(results.len(), 10);
        for r in &results {
            assert!(r.outcome.is_err());
        }
        assert_eq!(obs.counter("serve.queries.failed", &[]).get(), 10);
    }

    #[test]
    fn zero_worker_config_is_clamped() {
        let server = QueryServer::start(
            compiled(),
            &ServerConfig {
                workers: 0,
                queue_capacity: 0,
                max_batch: 0,
            },
            &Registry::disabled(),
        );
        server.submit(1);
        let results = server.finish();
        assert_eq!(results.len(), 1);
        assert!(results[0].outcome.is_ok());
    }
}
