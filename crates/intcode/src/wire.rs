//! Zero-dependency binary serialization for compiled artifacts.
//!
//! This module is the byte-level foundation of the `symbol-serve`
//! compiled-artifact layer: a little-endian [`Writer`]/[`Reader`] pair,
//! the shared [`WireError`] diagnosis type, and validated
//! encode/decode for the two program forms an artifact carries —
//! [`IciProgram`] (the portable sequential layout) and
//! [`DecodedProgram`] (the pre-decoded micro-op form the serving tier
//! executes directly).
//!
//! Design rules, in order:
//!
//! 1. **Never panic on malformed bytes.** Every read is bounds-checked
//!    and every decoded structure is re-validated before it is allowed
//!    to reach an execution engine, so a truncated, bit-flipped or
//!    adversarial artifact surfaces as a [`WireError`] — the caller
//!    recompiles — and can never index out of bounds at run time.
//! 2. **Byte-exact round trips.** `encode(decode(bytes)) == bytes` for
//!    every value this module accepts; the workspace determinism suite
//!    asserts it over the whole benchmark set.
//! 3. **No external dependencies.** Fixed-width little-endian fields
//!    and explicit tag bytes; nothing here depends on struct layout,
//!    `repr`, or host endianness.

use std::collections::HashMap;
use std::fmt;

use crate::decode::{DecodedProgram, MicroOp};
use crate::op::{AluOp, Cond, Label, Op, Operand, R};
use crate::program::{IciProgram, ProgramError};
use crate::word::{Tag, Word};

/// Upper bound accepted for a deserialized register-file size. Real
/// programs use a few thousand registers; anything near this limit is
/// a corrupt or hostile artifact and must not drive a giant
/// allocation in the emulator.
pub const MAX_REGS: usize = 1 << 24;

/// Any defect found while decoding serialized bytes.
///
/// The magic/version/checksum variants are produced by the artifact
/// container in `symbol-serve`; they live here so every layer of the
/// format shares one diagnosis type.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum WireError {
    /// The input ended before a field could be read.
    Truncated {
        /// Bytes the read needed.
        need: usize,
        /// Bytes that were left.
        have: usize,
    },
    /// An enum tag byte holds no known variant.
    BadTag {
        /// Which enum was being decoded.
        what: &'static str,
        /// The offending tag value.
        value: u32,
    },
    /// A structurally valid field holds a semantically invalid value
    /// (out-of-range register, impossible count, ...).
    BadValue {
        /// What was being validated.
        what: &'static str,
    },
    /// Decoding finished with unconsumed bytes.
    TrailingBytes {
        /// How many bytes were left over.
        extra: usize,
    },
    /// The decoded program failed [`IciProgram::try_new`] validation.
    Program(ProgramError),
    /// The artifact container does not start with the format magic.
    BadMagic,
    /// The artifact container carries an unsupported format version.
    BadVersion {
        /// Version found in the file.
        found: u32,
        /// Version this build reads and writes.
        expected: u32,
    },
    /// An integrity check failed (content checksum, key mismatch).
    Corrupt {
        /// Which check failed.
        what: &'static str,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { need, have } => {
                write!(f, "truncated input: needed {need} bytes, had {have}")
            }
            WireError::BadTag { what, value } => {
                write!(f, "unknown {what} tag {value}")
            }
            WireError::BadValue { what } => write!(f, "invalid {what}"),
            WireError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after the encoded value")
            }
            WireError::Program(e) => write!(f, "program validation: {e}"),
            WireError::BadMagic => write!(f, "bad artifact magic"),
            WireError::BadVersion { found, expected } => {
                write!(f, "artifact format version {found} (expected {expected})")
            }
            WireError::Corrupt { what } => write!(f, "corrupt artifact: {what} check failed"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<ProgramError> for WireError {
    fn from(e: ProgramError) -> Self {
        WireError::Program(e)
    }
}

/// Little-endian byte sink for the wire format.
#[derive(Default, Debug)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends a raw byte slice (no length prefix).
    pub fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a bool as one byte (0/1).
    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// Appends a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `i32`, little-endian.
    pub fn i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `i64`, little-endian.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a collection count as a `u64`.
    pub fn count(&mut self, n: usize) {
        self.u64(n as u64);
    }
}

/// Bounds-checked little-endian byte source.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `bytes`, positioned at the start.
    pub fn new(bytes: &'a [u8]) -> Self {
        Reader { buf: bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Takes the next `n` raw bytes.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] when fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated {
                need: n,
                have: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] at end of input.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a bool byte, rejecting anything but 0/1.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] or [`WireError::BadTag`].
    pub fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(WireError::BadTag {
                what: "bool",
                value: v as u32,
            }),
        }
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`].
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    /// Reads a little-endian `i32`.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`].
    pub fn i32(&mut self) -> Result<i32, WireError> {
        Ok(i32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`].
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    /// Reads a little-endian `i64`.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`].
    pub fn i64(&mut self) -> Result<i64, WireError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    /// Reads a collection count written by [`Writer::count`], rejecting
    /// counts that could not possibly fit in the remaining input (each
    /// element needs at least `min_elem_bytes`). This keeps a corrupt
    /// length field from driving a giant allocation.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] or [`WireError::BadValue`].
    pub fn count(&mut self, min_elem_bytes: usize, what: &'static str) -> Result<usize, WireError> {
        let n = self.u64()?;
        let Ok(n) = usize::try_from(n) else {
            return Err(WireError::BadValue { what });
        };
        if n.saturating_mul(min_elem_bytes.max(1)) > self.remaining() {
            return Err(WireError::BadValue { what });
        }
        Ok(n)
    }

    /// Asserts the input was fully consumed.
    ///
    /// # Errors
    ///
    /// [`WireError::TrailingBytes`] when bytes are left over.
    pub fn finish(&self) -> Result<(), WireError> {
        if self.remaining() != 0 {
            return Err(WireError::TrailingBytes {
                extra: self.remaining(),
            });
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Scalar ICI types.
// ---------------------------------------------------------------------

/// Encodes a word tag as one byte.
pub fn put_tag(w: &mut Writer, t: Tag) {
    w.u8(match t {
        Tag::Ref => 0,
        Tag::Int => 1,
        Tag::Atm => 2,
        Tag::Lst => 3,
        Tag::Str => 4,
        Tag::Fun => 5,
        Tag::Cod => 6,
    });
}

/// Decodes a word tag.
///
/// # Errors
///
/// [`WireError::BadTag`] on an unknown tag byte.
pub fn get_tag(r: &mut Reader<'_>) -> Result<Tag, WireError> {
    Ok(match r.u8()? {
        0 => Tag::Ref,
        1 => Tag::Int,
        2 => Tag::Atm,
        3 => Tag::Lst,
        4 => Tag::Str,
        5 => Tag::Fun,
        6 => Tag::Cod,
        v => {
            return Err(WireError::BadTag {
                what: "Tag",
                value: v as u32,
            })
        }
    })
}

/// Encodes a tagged word (tag byte + value field).
pub fn put_word(w: &mut Writer, word: Word) {
    put_tag(w, word.tag);
    w.i64(word.val);
}

/// Decodes a tagged word.
///
/// # Errors
///
/// See [`get_tag`].
pub fn get_word(r: &mut Reader<'_>) -> Result<Word, WireError> {
    let tag = get_tag(r)?;
    let val = r.i64()?;
    Ok(Word { tag, val })
}

/// Encodes an ALU opcode as one byte.
pub fn put_alu(w: &mut Writer, op: AluOp) {
    w.u8(match op {
        AluOp::Add => 0,
        AluOp::Sub => 1,
        AluOp::Mul => 2,
        AluOp::Div => 3,
        AluOp::Mod => 4,
        AluOp::Rem => 5,
        AluOp::And => 6,
        AluOp::Or => 7,
        AluOp::Xor => 8,
        AluOp::Shl => 9,
        AluOp::Shr => 10,
        AluOp::Max => 11,
    });
}

/// Decodes an ALU opcode.
///
/// # Errors
///
/// [`WireError::BadTag`] on an unknown opcode byte.
pub fn get_alu(r: &mut Reader<'_>) -> Result<AluOp, WireError> {
    Ok(match r.u8()? {
        0 => AluOp::Add,
        1 => AluOp::Sub,
        2 => AluOp::Mul,
        3 => AluOp::Div,
        4 => AluOp::Mod,
        5 => AluOp::Rem,
        6 => AluOp::And,
        7 => AluOp::Or,
        8 => AluOp::Xor,
        9 => AluOp::Shl,
        10 => AluOp::Shr,
        11 => AluOp::Max,
        v => {
            return Err(WireError::BadTag {
                what: "AluOp",
                value: v as u32,
            })
        }
    })
}

/// Encodes a branch condition as one byte.
pub fn put_cond(w: &mut Writer, c: Cond) {
    w.u8(match c {
        Cond::Eq => 0,
        Cond::Ne => 1,
        Cond::Lt => 2,
        Cond::Le => 3,
        Cond::Gt => 4,
        Cond::Ge => 5,
    });
}

/// Decodes a branch condition.
///
/// # Errors
///
/// [`WireError::BadTag`] on an unknown condition byte.
pub fn get_cond(r: &mut Reader<'_>) -> Result<Cond, WireError> {
    Ok(match r.u8()? {
        0 => Cond::Eq,
        1 => Cond::Ne,
        2 => Cond::Lt,
        3 => Cond::Le,
        4 => Cond::Gt,
        5 => Cond::Ge,
        v => {
            return Err(WireError::BadTag {
                what: "Cond",
                value: v as u32,
            })
        }
    })
}

fn put_operand(w: &mut Writer, o: Operand) {
    match o {
        Operand::Reg(r) => {
            w.u8(0);
            w.u32(r.0);
        }
        Operand::Imm(i) => {
            w.u8(1);
            w.i64(i);
        }
    }
}

fn get_operand(r: &mut Reader<'_>) -> Result<Operand, WireError> {
    Ok(match r.u8()? {
        0 => Operand::Reg(R(r.u32()?)),
        1 => Operand::Imm(r.i64()?),
        v => {
            return Err(WireError::BadTag {
                what: "Operand",
                value: v as u32,
            })
        }
    })
}

// ---------------------------------------------------------------------
// Op (source instruction form).
// ---------------------------------------------------------------------

fn put_op(w: &mut Writer, op: &Op) {
    match *op {
        Op::Ld { d, base, off } => {
            w.u8(0);
            w.u32(d.0);
            w.u32(base.0);
            w.i32(off);
        }
        Op::St { s, base, off } => {
            w.u8(1);
            w.u32(s.0);
            w.u32(base.0);
            w.i32(off);
        }
        Op::Mv { d, s } => {
            w.u8(2);
            w.u32(d.0);
            w.u32(s.0);
        }
        Op::MvI { d, w: word } => {
            w.u8(3);
            w.u32(d.0);
            put_word(w, word);
        }
        Op::Alu { op, d, a, b } => {
            w.u8(4);
            put_alu(w, op);
            w.u32(d.0);
            w.u32(a.0);
            put_operand(w, b);
        }
        Op::AddA { d, a, b } => {
            w.u8(5);
            w.u32(d.0);
            w.u32(a.0);
            put_operand(w, b);
        }
        Op::MkTag { d, s, tag } => {
            w.u8(6);
            w.u32(d.0);
            w.u32(s.0);
            put_tag(w, tag);
        }
        Op::Br { cond, a, b, t } => {
            w.u8(7);
            put_cond(w, cond);
            w.u32(a.0);
            put_operand(w, b);
            w.u32(t.0);
        }
        Op::BrTag { a, tag, eq, t } => {
            w.u8(8);
            w.u32(a.0);
            put_tag(w, tag);
            w.bool(eq);
            w.u32(t.0);
        }
        Op::BrWord { a, w: word, eq, t } => {
            w.u8(9);
            w.u32(a.0);
            put_word(w, word);
            w.bool(eq);
            w.u32(t.0);
        }
        Op::BrWEq { a, b, eq, t } => {
            w.u8(10);
            w.u32(a.0);
            w.u32(b.0);
            w.bool(eq);
            w.u32(t.0);
        }
        Op::Jmp { t } => {
            w.u8(11);
            w.u32(t.0);
        }
        Op::JmpR { r } => {
            w.u8(12);
            w.u32(r.0);
        }
        Op::Halt { success } => {
            w.u8(13);
            w.bool(success);
        }
    }
}

fn get_op(r: &mut Reader<'_>) -> Result<Op, WireError> {
    Ok(match r.u8()? {
        0 => Op::Ld {
            d: R(r.u32()?),
            base: R(r.u32()?),
            off: r.i32()?,
        },
        1 => Op::St {
            s: R(r.u32()?),
            base: R(r.u32()?),
            off: r.i32()?,
        },
        2 => Op::Mv {
            d: R(r.u32()?),
            s: R(r.u32()?),
        },
        3 => Op::MvI {
            d: R(r.u32()?),
            w: get_word(r)?,
        },
        4 => Op::Alu {
            op: get_alu(r)?,
            d: R(r.u32()?),
            a: R(r.u32()?),
            b: get_operand(r)?,
        },
        5 => Op::AddA {
            d: R(r.u32()?),
            a: R(r.u32()?),
            b: get_operand(r)?,
        },
        6 => Op::MkTag {
            d: R(r.u32()?),
            s: R(r.u32()?),
            tag: get_tag(r)?,
        },
        7 => Op::Br {
            cond: get_cond(r)?,
            a: R(r.u32()?),
            b: get_operand(r)?,
            t: Label(r.u32()?),
        },
        8 => Op::BrTag {
            a: R(r.u32()?),
            tag: get_tag(r)?,
            eq: r.bool()?,
            t: Label(r.u32()?),
        },
        9 => Op::BrWord {
            a: R(r.u32()?),
            w: get_word(r)?,
            eq: r.bool()?,
            t: Label(r.u32()?),
        },
        10 => Op::BrWEq {
            a: R(r.u32()?),
            b: R(r.u32()?),
            eq: r.bool()?,
            t: Label(r.u32()?),
        },
        11 => Op::Jmp { t: Label(r.u32()?) },
        12 => Op::JmpR { r: R(r.u32()?) },
        13 => Op::Halt { success: r.bool()? },
        v => {
            return Err(WireError::BadTag {
                what: "Op",
                value: v as u32,
            })
        }
    })
}

// ---------------------------------------------------------------------
// IciProgram.
// ---------------------------------------------------------------------

impl IciProgram {
    /// Encodes the program (ops, group tags, label table, entry) into
    /// `w`. The encoding is position-independent: label ids keep their
    /// stable identities, so the decoded program resolves them exactly
    /// as the original did.
    pub fn encode_into(&self, w: &mut Writer) {
        w.count(self.ops().len());
        for op in self.ops() {
            put_op(w, op);
        }
        for &g in self.groups() {
            w.u32(g);
        }
        w.count(self.label_table().len());
        for &a in self.label_table() {
            w.u64(if a == usize::MAX { u64::MAX } else { a as u64 });
        }
        w.u32(self.entry().0);
    }

    /// The program as a standalone byte vector.
    pub fn to_wire_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        self.encode_into(&mut w);
        w.into_bytes()
    }

    /// Decodes a program from `r`, re-running the full
    /// [`IciProgram::try_new`] structural validation — a malformed
    /// artifact is diagnosed, never executed.
    ///
    /// # Errors
    ///
    /// Any [`WireError`]; structural defects surface as
    /// [`WireError::Program`].
    pub fn decode_from(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let n = r.count(2, "op count")?;
        let mut ops = Vec::with_capacity(n);
        for _ in 0..n {
            ops.push(get_op(r)?);
        }
        let mut groups = Vec::with_capacity(n);
        for _ in 0..n {
            groups.push(r.u32()?);
        }
        let num_labels = r.count(8, "label count")?;
        let mut label_at = HashMap::new();
        for lid in 0..num_labels {
            let a = r.u64()?;
            if a != u64::MAX {
                let Ok(at) = usize::try_from(a) else {
                    return Err(WireError::BadValue {
                        what: "label address",
                    });
                };
                label_at.insert(Label(lid as u32), at);
            }
        }
        let Ok(num_labels) = u32::try_from(num_labels) else {
            return Err(WireError::BadValue {
                what: "label count",
            });
        };
        let entry = Label(r.u32()?);
        Ok(IciProgram::try_new(
            ops, groups, label_at, num_labels, entry,
        )?)
    }

    /// Decodes a program from a standalone byte vector (the inverse of
    /// [`IciProgram::to_wire_bytes`]), requiring full consumption.
    ///
    /// # Errors
    ///
    /// See [`IciProgram::decode_from`].
    pub fn from_wire_bytes(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(bytes);
        let p = Self::decode_from(&mut r)?;
        r.finish()?;
        Ok(p)
    }
}

// ---------------------------------------------------------------------
// DecodedProgram (micro-op form).
// ---------------------------------------------------------------------

fn put_micro(w: &mut Writer, m: MicroOp) {
    match m {
        MicroOp::Ld { d, base, off } => {
            w.u8(0);
            w.u32(d);
            w.u32(base);
            w.i32(off);
        }
        MicroOp::St { s, base, off } => {
            w.u8(1);
            w.u32(s);
            w.u32(base);
            w.i32(off);
        }
        MicroOp::Mv { d, s } => {
            w.u8(2);
            w.u32(d);
            w.u32(s);
        }
        MicroOp::MvI { d, w: word } => {
            w.u8(3);
            w.u32(d);
            put_word(w, word);
        }
        MicroOp::AluRR { op, d, a, b } => {
            w.u8(4);
            put_alu(w, op);
            w.u32(d);
            w.u32(a);
            w.u32(b);
        }
        MicroOp::AluRI { op, d, a, imm } => {
            w.u8(5);
            put_alu(w, op);
            w.u32(d);
            w.u32(a);
            w.i64(imm);
        }
        MicroOp::AddARR { d, a, b } => {
            w.u8(6);
            w.u32(d);
            w.u32(a);
            w.u32(b);
        }
        MicroOp::AddARI { d, a, imm } => {
            w.u8(7);
            w.u32(d);
            w.u32(a);
            w.i64(imm);
        }
        MicroOp::MkTag { d, s, tag } => {
            w.u8(8);
            w.u32(d);
            w.u32(s);
            put_tag(w, tag);
        }
        MicroOp::BrRR { cond, a, b, t } => {
            w.u8(9);
            put_cond(w, cond);
            w.u32(a);
            w.u32(b);
            w.u32(t);
        }
        MicroOp::BrRI { cond, a, imm, t } => {
            w.u8(10);
            put_cond(w, cond);
            w.u32(a);
            w.i64(imm);
            w.u32(t);
        }
        MicroOp::BrTag { a, tag, eq, t } => {
            w.u8(11);
            w.u32(a);
            put_tag(w, tag);
            w.bool(eq);
            w.u32(t);
        }
        MicroOp::BrWord { a, w: word, eq, t } => {
            w.u8(12);
            w.u32(a);
            put_word(w, word);
            w.bool(eq);
            w.u32(t);
        }
        MicroOp::BrWEq { a, b, eq, t } => {
            w.u8(13);
            w.u32(a);
            w.u32(b);
            w.bool(eq);
            w.u32(t);
        }
        MicroOp::Jmp { t } => {
            w.u8(14);
            w.u32(t);
        }
        MicroOp::JmpR { r } => {
            w.u8(15);
            w.u32(r);
        }
        MicroOp::Halt { success } => {
            w.u8(16);
            w.bool(success);
        }
        MicroOp::CmpBrRR {
            op,
            cond,
            d,
            a,
            b,
            ba,
            bb,
            t,
        } => {
            w.u8(17);
            put_alu(w, op);
            put_cond(w, cond);
            w.u32(d);
            w.u32(a);
            w.u32(b);
            w.u32(ba);
            w.u32(bb);
            w.u32(t);
        }
        MicroOp::CmpBrRI {
            op,
            cond,
            d,
            a,
            imm,
            ba,
            bimm,
            t,
        } => {
            w.u8(18);
            put_alu(w, op);
            put_cond(w, cond);
            w.u32(d);
            w.u32(a);
            w.i32(imm);
            w.u32(ba);
            w.i32(bimm);
            w.u32(t);
        }
        MicroOp::TagDeref {
            a,
            tag,
            eq,
            t,
            d,
            base,
            off,
        } => {
            w.u8(19);
            w.u32(a);
            put_tag(w, tag);
            w.bool(eq);
            w.u32(t);
            w.u32(d);
            w.u32(base);
            w.i32(off);
        }
        MicroOp::MvSt {
            d,
            s,
            s2,
            base,
            off,
        } => {
            w.u8(20);
            w.u32(d);
            w.u32(s);
            w.u32(s2);
            w.u32(base);
            w.i32(off);
        }
        MicroOp::LdMv {
            d,
            base,
            off,
            d2,
            s,
        } => {
            w.u8(21);
            w.u32(d);
            w.u32(base);
            w.i32(off);
            w.u32(d2);
            w.u32(s);
        }
        MicroOp::MvIAlu {
            d,
            imm,
            op,
            d2,
            a,
            b,
        } => {
            w.u8(22);
            w.u32(d);
            w.i32(imm);
            put_alu(w, op);
            w.u32(d2);
            w.u32(a);
            w.u32(b);
        }
    }
}

fn get_micro(r: &mut Reader<'_>) -> Result<MicroOp, WireError> {
    Ok(match r.u8()? {
        0 => MicroOp::Ld {
            d: r.u32()?,
            base: r.u32()?,
            off: r.i32()?,
        },
        1 => MicroOp::St {
            s: r.u32()?,
            base: r.u32()?,
            off: r.i32()?,
        },
        2 => MicroOp::Mv {
            d: r.u32()?,
            s: r.u32()?,
        },
        3 => MicroOp::MvI {
            d: r.u32()?,
            w: get_word(r)?,
        },
        4 => MicroOp::AluRR {
            op: get_alu(r)?,
            d: r.u32()?,
            a: r.u32()?,
            b: r.u32()?,
        },
        5 => MicroOp::AluRI {
            op: get_alu(r)?,
            d: r.u32()?,
            a: r.u32()?,
            imm: r.i64()?,
        },
        6 => MicroOp::AddARR {
            d: r.u32()?,
            a: r.u32()?,
            b: r.u32()?,
        },
        7 => MicroOp::AddARI {
            d: r.u32()?,
            a: r.u32()?,
            imm: r.i64()?,
        },
        8 => MicroOp::MkTag {
            d: r.u32()?,
            s: r.u32()?,
            tag: get_tag(r)?,
        },
        9 => MicroOp::BrRR {
            cond: get_cond(r)?,
            a: r.u32()?,
            b: r.u32()?,
            t: r.u32()?,
        },
        10 => MicroOp::BrRI {
            cond: get_cond(r)?,
            a: r.u32()?,
            imm: r.i64()?,
            t: r.u32()?,
        },
        11 => MicroOp::BrTag {
            a: r.u32()?,
            tag: get_tag(r)?,
            eq: r.bool()?,
            t: r.u32()?,
        },
        12 => MicroOp::BrWord {
            a: r.u32()?,
            w: get_word(r)?,
            eq: r.bool()?,
            t: r.u32()?,
        },
        13 => MicroOp::BrWEq {
            a: r.u32()?,
            b: r.u32()?,
            eq: r.bool()?,
            t: r.u32()?,
        },
        14 => MicroOp::Jmp { t: r.u32()? },
        15 => MicroOp::JmpR { r: r.u32()? },
        16 => MicroOp::Halt { success: r.bool()? },
        17 => MicroOp::CmpBrRR {
            op: get_alu(r)?,
            cond: get_cond(r)?,
            d: r.u32()?,
            a: r.u32()?,
            b: r.u32()?,
            ba: r.u32()?,
            bb: r.u32()?,
            t: r.u32()?,
        },
        18 => MicroOp::CmpBrRI {
            op: get_alu(r)?,
            cond: get_cond(r)?,
            d: r.u32()?,
            a: r.u32()?,
            imm: r.i32()?,
            ba: r.u32()?,
            bimm: r.i32()?,
            t: r.u32()?,
        },
        19 => MicroOp::TagDeref {
            a: r.u32()?,
            tag: get_tag(r)?,
            eq: r.bool()?,
            t: r.u32()?,
            d: r.u32()?,
            base: r.u32()?,
            off: r.i32()?,
        },
        20 => MicroOp::MvSt {
            d: r.u32()?,
            s: r.u32()?,
            s2: r.u32()?,
            base: r.u32()?,
            off: r.i32()?,
        },
        21 => MicroOp::LdMv {
            d: r.u32()?,
            base: r.u32()?,
            off: r.i32()?,
            d2: r.u32()?,
            s: r.u32()?,
        },
        22 => MicroOp::MvIAlu {
            d: r.u32()?,
            imm: r.i32()?,
            op: get_alu(r)?,
            d2: r.u32()?,
            a: r.u32()?,
            b: r.u32()?,
        },
        v => {
            return Err(WireError::BadTag {
                what: "MicroOp",
                value: v as u32,
            })
        }
    })
}

/// The registers a micro-op indexes (def and uses alike) — everything
/// that must be below the register-file size for the step loop to be
/// in-bounds by construction.
fn micro_regs(m: MicroOp) -> [u32; 5] {
    const NO: u32 = 0;
    match m {
        MicroOp::Ld { d, base, .. } => [d, base, NO, NO, NO],
        MicroOp::St { s, base, .. } => [s, base, NO, NO, NO],
        MicroOp::Mv { d, s } => [d, s, NO, NO, NO],
        MicroOp::MvI { d, .. } => [d, NO, NO, NO, NO],
        MicroOp::AluRR { d, a, b, .. } => [d, a, b, NO, NO],
        MicroOp::AluRI { d, a, .. } => [d, a, NO, NO, NO],
        MicroOp::AddARR { d, a, b } => [d, a, b, NO, NO],
        MicroOp::AddARI { d, a, .. } => [d, a, NO, NO, NO],
        MicroOp::MkTag { d, s, .. } => [d, s, NO, NO, NO],
        MicroOp::BrRR { a, b, .. } => [a, b, NO, NO, NO],
        MicroOp::BrRI { a, .. } => [a, NO, NO, NO, NO],
        MicroOp::BrTag { a, .. } => [a, NO, NO, NO, NO],
        MicroOp::BrWord { a, .. } => [a, NO, NO, NO, NO],
        MicroOp::BrWEq { a, b, .. } => [a, b, NO, NO, NO],
        MicroOp::Jmp { .. } | MicroOp::Halt { .. } => [NO, NO, NO, NO, NO],
        MicroOp::JmpR { r } => [r, NO, NO, NO, NO],
        MicroOp::CmpBrRR {
            d, a, b, ba, bb, ..
        } => [d, a, b, ba, bb],
        MicroOp::CmpBrRI { d, a, ba, .. } => [d, a, ba, NO, NO],
        MicroOp::TagDeref { a, d, base, .. } => [a, d, base, NO, NO],
        MicroOp::MvSt { d, s, s2, base, .. } => [d, s, s2, base, NO],
        MicroOp::LdMv { d, base, d2, s, .. } => [d, base, d2, s, NO],
        MicroOp::MvIAlu { d, d2, a, b, .. } => [d, d2, a, b, NO],
    }
}

impl DecodedProgram {
    /// Encodes the micro-op form (records, label→pc table, entry pc,
    /// register-file size) into `w`.
    pub fn encode_into(&self, w: &mut Writer) {
        w.count(self.micro.len());
        for &m in &self.micro {
            put_micro(w, m);
        }
        w.count(self.label_pc.len());
        for &pc in &self.label_pc {
            w.u32(pc);
        }
        w.u64(self.entry_pc as u64);
        w.u64(self.num_regs as u64);
    }

    /// The program as a standalone byte vector.
    pub fn to_wire_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        self.encode_into(&mut w);
        w.into_bytes()
    }

    /// Decodes a micro-op program from `r` and validates every invariant
    /// the step loop's unchecked indexing relies on: all register ids
    /// below the register-file size, the register-file size positive and
    /// bounded by [`MAX_REGS`], the entry pc and every pre-resolved
    /// branch target within (or one past) the program, and every bound
    /// label→pc entry likewise. A corrupt artifact therefore fails
    /// here — it can never make the emulator index out of bounds.
    ///
    /// # Errors
    ///
    /// Any [`WireError`] describing the first defect found.
    pub fn decode_from(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let n = r.count(2, "micro-op count")?;
        let mut micro = Vec::with_capacity(n);
        for _ in 0..n {
            micro.push(get_micro(r)?);
        }
        let labels = r.count(4, "label count")?;
        let mut label_pc = Vec::with_capacity(labels);
        for _ in 0..labels {
            label_pc.push(r.u32()?);
        }
        let entry_pc = r.u64()?;
        let num_regs = r.u64()?;

        let Ok(num_regs) = usize::try_from(num_regs) else {
            return Err(WireError::BadValue {
                what: "register-file size",
            });
        };
        if num_regs == 0 || num_regs > MAX_REGS {
            return Err(WireError::BadValue {
                what: "register-file size",
            });
        }
        let Ok(entry_pc) = usize::try_from(entry_pc) else {
            return Err(WireError::BadValue { what: "entry pc" });
        };
        if entry_pc > n {
            return Err(WireError::BadValue { what: "entry pc" });
        }
        let in_prog = |t: u32| (t as usize) <= n;
        for (i, &m) in micro.iter().enumerate() {
            for reg in micro_regs(m) {
                if reg as usize >= num_regs {
                    return Err(WireError::BadValue {
                        what: "register id",
                    });
                }
            }
            let target_ok = match m {
                MicroOp::BrRR { t, .. }
                | MicroOp::BrRI { t, .. }
                | MicroOp::BrTag { t, .. }
                | MicroOp::BrWord { t, .. }
                | MicroOp::BrWEq { t, .. }
                | MicroOp::Jmp { t }
                | MicroOp::CmpBrRR { t, .. }
                | MicroOp::CmpBrRI { t, .. }
                | MicroOp::TagDeref { t, .. } => in_prog(t),
                _ => true,
            };
            if !target_ok {
                return Err(WireError::BadValue {
                    what: "branch target",
                });
            }
            // A fused record accounts its second constituent at pc
            // `i + 1`; at the last index that slot does not exist and
            // the step loop would index its stats arrays out of
            // bounds. The fusion pass can never produce this (it needs
            // a real second op), so reject it as corrupt.
            if m.is_fused() && i + 1 >= n {
                return Err(WireError::BadValue {
                    what: "fused op position",
                });
            }
        }
        for &pc in &label_pc {
            if pc != u32::MAX && !in_prog(pc) {
                return Err(WireError::BadValue {
                    what: "label target",
                });
            }
        }
        // `from_parts` recomputes the branch-target bitmap — it is
        // derived state and deliberately not serialized, which keeps
        // round trips byte-exact across fused and unfused programs.
        Ok(DecodedProgram::from_parts(
            micro, label_pc, entry_pc, num_regs,
        ))
    }

    /// Decodes a standalone byte vector (the inverse of
    /// [`DecodedProgram::to_wire_bytes`]), requiring full consumption.
    ///
    /// # Errors
    ///
    /// See [`DecodedProgram::decode_from`].
    pub fn from_wire_bytes(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(bytes);
        let p = Self::decode_from(&mut r)?;
        r.finish()?;
        Ok(p)
    }
}

/// 64-bit FNV-1a hash — the stable content hash used for artifact
/// cache keys and the container checksum. Not cryptographic; it only
/// needs to make accidental collisions and silent corruption
/// overwhelmingly unlikely.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;

    fn sample_program() -> IciProgram {
        let mut a = Asm::new();
        let e = a.fresh_label();
        let lp = a.fresh_label();
        let i = a.fresh_reg();
        a.bind(e);
        a.emit(Op::MvI {
            d: i,
            w: Word::int(0),
        });
        a.bind(lp);
        a.emit(Op::Alu {
            op: AluOp::Add,
            d: i,
            a: i,
            b: Operand::Imm(1),
        });
        a.emit(Op::Br {
            cond: Cond::Lt,
            a: i,
            b: Operand::Imm(10),
            t: lp,
        });
        a.emit(Op::Halt { success: true });
        a.finish(e)
    }

    #[test]
    fn ici_round_trip_is_byte_exact() {
        let p = sample_program();
        let bytes = p.to_wire_bytes();
        let q = IciProgram::from_wire_bytes(&bytes).expect("decodes");
        assert_eq!(p.ops(), q.ops());
        assert_eq!(p.groups(), q.groups());
        assert_eq!(p.label_table(), q.label_table());
        assert_eq!(p.entry(), q.entry());
        assert_eq!(bytes, q.to_wire_bytes(), "re-encode must be byte-exact");
    }

    #[test]
    fn decoded_round_trip_is_byte_exact_and_runs_identically() {
        use crate::emu::ExecConfig;
        use crate::layout::Layout;

        let p = sample_program();
        let d = DecodedProgram::new(&p);
        let bytes = d.to_wire_bytes();
        let d2 = DecodedProgram::from_wire_bytes(&bytes).expect("decodes");
        assert_eq!(bytes, d2.to_wire_bytes(), "re-encode must be byte-exact");

        let layout = Layout {
            heap_size: 64,
            env_size: 64,
            cp_size: 64,
            trail_size: 64,
            pdl_size: 64,
        };
        let cfg = ExecConfig::default();
        let (r1, s1, n1) = crate::decode::DecodedEmulator::new(&d, &layout).run_with_stats(&cfg);
        let (r2, s2, n2) = crate::decode::DecodedEmulator::new(&d2, &layout).run_with_stats(&cfg);
        assert_eq!(r1, r2);
        assert_eq!(n1, n2);
        assert_eq!(s1.expect, s2.expect);
        assert_eq!(s1.taken, s2.taken);
    }

    #[test]
    fn fused_round_trip_is_byte_exact_and_runs_identically() {
        use crate::decode::DecodedEmulator;
        use crate::emu::ExecConfig;
        use crate::fuse::{fuse, FuseConfig};
        use crate::layout::Layout;

        let layout = Layout {
            heap_size: 64,
            env_size: 64,
            cp_size: 64,
            trail_size: 64,
            pdl_size: 64,
        };
        let cfg = ExecConfig::default();
        let d = DecodedProgram::new(&sample_program());
        let (_, stats, _, profile) = DecodedEmulator::new(&d, &layout).run_with_profile(&cfg);
        let (fused, report) = fuse(&d, &stats, &profile, &FuseConfig::default());
        assert!(report.pairs > 0, "sample loop must fuse");
        let bytes = fused.to_wire_bytes();
        let back = DecodedProgram::from_wire_bytes(&bytes).expect("decodes");
        assert_eq!(bytes, back.to_wire_bytes(), "re-encode must be byte-exact");
        let (r1, s1, n1) = DecodedEmulator::new(&fused, &layout).run_with_stats(&cfg);
        let (r2, s2, n2) = DecodedEmulator::new(&back, &layout).run_with_stats(&cfg);
        assert_eq!(r1, r2);
        assert_eq!(n1, n2);
        assert_eq!(s1.expect, s2.expect);
        assert_eq!(s1.taken, s2.taken);
    }

    #[test]
    fn fused_op_at_last_index_is_rejected() {
        // A fused record accounts its interior at pc+1; a hand-crafted
        // artifact placing one at the end must be rejected, not allowed
        // to index the stats arrays out of bounds.
        let mut w = Writer::new();
        w.count(1);
        put_micro(
            &mut w,
            MicroOp::CmpBrRI {
                op: AluOp::Add,
                cond: Cond::Lt,
                d: 0,
                a: 0,
                imm: 1,
                ba: 0,
                bimm: 10,
                t: 0,
            },
        );
        w.count(0); // labels
        w.u64(0); // entry pc
        w.u64(1); // num_regs
        let err = DecodedProgram::from_wire_bytes(&w.into_bytes()).unwrap_err();
        assert!(
            matches!(err, WireError::BadValue { what } if what == "fused op position"),
            "{err}"
        );
    }

    #[test]
    fn truncation_at_every_prefix_is_an_error_not_a_panic() {
        let bytes = DecodedProgram::new(&sample_program()).to_wire_bytes();
        for cut in 0..bytes.len() {
            let r = DecodedProgram::from_wire_bytes(&bytes[..cut]);
            assert!(r.is_err(), "prefix of {cut} bytes decoded successfully");
        }
        let ici = sample_program().to_wire_bytes();
        for cut in 0..ici.len() {
            assert!(IciProgram::from_wire_bytes(&ici[..cut]).is_err());
        }
    }

    #[test]
    fn out_of_range_register_is_rejected() {
        let d = DecodedProgram::new(&sample_program());
        let mut w = Writer::new();
        d.encode_into(&mut w);
        let mut bytes = w.into_bytes();
        // The register-file size is the trailing u64; shrink it to 1 so
        // the loop counter register is out of range.
        let len = bytes.len();
        bytes[len - 8..].copy_from_slice(&1u64.to_le_bytes());
        let err = DecodedProgram::from_wire_bytes(&bytes).unwrap_err();
        assert!(
            matches!(err, WireError::BadValue { what } if what == "register id"),
            "{err}"
        );
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = sample_program().to_wire_bytes();
        bytes.push(0);
        assert!(matches!(
            IciProgram::from_wire_bytes(&bytes),
            Err(WireError::TrailingBytes { extra: 1 })
        ));
    }

    #[test]
    fn absurd_counts_are_rejected_without_allocating() {
        // A u64::MAX op count must fail the count sanity check, not OOM.
        let mut w = Writer::new();
        w.u64(u64::MAX);
        assert!(IciProgram::from_wire_bytes(&w.into_bytes()).is_err());
    }

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a64(b"hello"), 0xa430d84680aabd0b);
    }
}
