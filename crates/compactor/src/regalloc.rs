//! Register allocation for scheduled code.
//!
//! The compactor schedules over an unbounded virtual register space
//! (the paper's renaming, §3.1); real hardware has the prototype's
//! 16-entry banks (§5.2). This pass folds the temporaries of a
//! scheduled [`VliwProgram`] into a fixed physical pool by graph
//! coloring over word-granularity liveness — no spilling is attempted:
//! if the program needs more registers than the budget, allocation
//! fails with the measured requirement (our benchmarks need at most
//! 16, see the `register_pressure` example).
//!
//! Fixed machine registers (heap/stack pointers, argument registers,
//! ...) are architectural and keep their identities.

use std::collections::{HashMap, HashSet};

use symbol_intcode::layout::reg;
use symbol_intcode::{Op, R};
use symbol_vliw::{VliwInstr, VliwProgram};

/// Allocation failure: the program's pressure exceeds the budget.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct OutOfRegisters {
    /// Registers the program would need.
    pub required: usize,
    /// The physical budget given.
    pub budget: usize,
}

impl std::fmt::Display for OutOfRegisters {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "register allocation needs {} temporaries but the budget is {}",
            self.required, self.budget
        )
    }
}

impl std::error::Error for OutOfRegisters {}

fn is_temp(r: R) -> bool {
    r.0 >= reg::FIRST_TEMP
}

/// Word-granularity liveness of temporaries (shared with the pressure
/// analysis): `live_in[i]` is the set of temps live when word `i`
/// issues. Temps never survive indirect transfers by construction.
pub fn temp_liveness(program: &VliwProgram) -> Vec<HashSet<R>> {
    let words = program.instrs();
    let n = words.len();
    let mut uses: Vec<HashSet<R>> = Vec::with_capacity(n);
    let mut defs: Vec<HashSet<R>> = Vec::with_capacity(n);
    let mut succs: Vec<Vec<usize>> = Vec::with_capacity(n);

    for (i, w) in words.iter().enumerate() {
        let mut u = HashSet::new();
        let mut d = HashSet::new();
        let mut s = Vec::new();
        let mut falls = true;
        for slot in &w.slots {
            for r in slot.op.uses() {
                if is_temp(r) {
                    u.insert(r);
                }
            }
            if let Some(r) = slot.op.def() {
                if is_temp(r) {
                    d.insert(r);
                }
            }
            match &slot.op {
                Op::Jmp { t } => {
                    s.push(program.label_addr(*t));
                    falls = false;
                }
                Op::JmpR { .. } | Op::Halt { .. } => falls = false,
                o if o.is_control() => {
                    if let Some(t) = o.target() {
                        s.push(program.label_addr(t));
                    }
                }
                _ => {}
            }
        }
        if falls && i + 1 < n {
            s.push(i + 1);
        }
        s.retain(|&x| x < n);
        uses.push(u);
        defs.push(d);
        succs.push(s);
    }

    let mut live_in: Vec<HashSet<R>> = vec![HashSet::new(); n];
    let mut changed = true;
    while changed {
        changed = false;
        for i in (0..n).rev() {
            let mut out: HashSet<R> = HashSet::new();
            for &s in &succs[i] {
                out.extend(live_in[s].iter().copied());
            }
            let mut inn = uses[i].clone();
            for r in out {
                if !defs[i].contains(&r) {
                    inn.insert(r);
                }
            }
            if inn != live_in[i] {
                live_in[i] = inn;
                changed = true;
            }
        }
    }
    live_in
}

/// Allocates the temporaries of `program` into at most `budget`
/// physical registers (`FIRST_TEMP .. FIRST_TEMP + budget`).
///
/// Returns the rewritten program and the number of physical registers
/// actually used.
///
/// # Errors
///
/// [`OutOfRegisters`] when the interference graph cannot be colored
/// within the budget (no spill code is generated).
pub fn allocate(
    program: &VliwProgram,
    budget: usize,
) -> Result<(VliwProgram, usize), OutOfRegisters> {
    let words = program.instrs();
    let n = words.len();
    let live_in = temp_liveness(program);

    // live-out per word = union of successors' live-ins; recompute the
    // successor lists cheaply by reusing liveness rules.
    // Interference: (a) temps co-live at a word interfere;
    // (b) a def interferes with everything live right after the word.
    let mut interf: HashMap<R, HashSet<R>> = HashMap::new();
    let touch = |a: R, b: R, interf: &mut HashMap<R, HashSet<R>>| {
        if a != b {
            interf.entry(a).or_default().insert(b);
            interf.entry(b).or_default().insert(a);
        }
    };
    for i in 0..n {
        let live: Vec<R> = live_in[i].iter().copied().collect();
        for (x, &a) in live.iter().enumerate() {
            for &b in &live[x + 1..] {
                touch(a, b, &mut interf);
            }
        }
        // defs of word i interfere with live-in of word i+1 and of the
        // branch targets; approximate with live_in[i+1..] via the
        // next-word set plus branch-target sets
        let mut after: HashSet<R> = HashSet::new();
        let mut falls = true;
        for slot in &words[i].slots {
            match &slot.op {
                Op::Jmp { t } => {
                    let a = program.label_addr(*t);
                    if a < n {
                        after.extend(live_in[a].iter().copied());
                    }
                    falls = false;
                }
                Op::JmpR { .. } | Op::Halt { .. } => falls = false,
                o if o.is_control() => {
                    if let Some(t) = o.target() {
                        let a = program.label_addr(t);
                        if a < n {
                            after.extend(live_in[a].iter().copied());
                        }
                    }
                }
                _ => {}
            }
        }
        if falls && i + 1 < n {
            after.extend(live_in[i + 1].iter().copied());
        }
        for slot in &words[i].slots {
            if let Some(d) = slot.op.def() {
                if is_temp(d) {
                    interf.entry(d).or_default();
                    for &b in &after {
                        touch(d, b, &mut interf);
                    }
                }
            }
        }
    }

    // Greedy coloring in first-appearance order.
    let mut order: Vec<R> = Vec::new();
    let mut seen: HashSet<R> = HashSet::new();
    for w in words {
        for slot in &w.slots {
            for r in slot.op.uses().into_iter().chain(slot.op.def()) {
                if is_temp(r) && seen.insert(r) {
                    order.push(r);
                }
            }
        }
    }
    let mut color: HashMap<R, u32> = HashMap::new();
    let mut used = 0usize;
    for r in order {
        let mut taken: HashSet<u32> = HashSet::new();
        if let Some(ns) = interf.get(&r) {
            for nb in ns {
                if let Some(&c) = color.get(nb) {
                    taken.insert(c);
                }
            }
        }
        let c = (0..)
            .find(|c| !taken.contains(c))
            .expect("unbounded search");
        if c as usize >= budget {
            // count the true requirement for the error message
            let required = color.values().copied().max().unwrap_or(0) as usize + 2;
            return Err(OutOfRegisters {
                required: required.max(c as usize + 1),
                budget,
            });
        }
        used = used.max(c as usize + 1);
        color.insert(r, c);
    }

    // Rewrite.
    let map = |r: R| -> R {
        if is_temp(r) {
            R(reg::FIRST_TEMP + color[&r])
        } else {
            r
        }
    };
    let new_words: Vec<VliwInstr> = words
        .iter()
        .map(|w| VliwInstr {
            slots: w
                .slots
                .iter()
                .map(|s| symbol_vliw::SlotOp {
                    unit: s.unit,
                    op: rewrite(&s.op, &map),
                    speculative: s.speculative,
                })
                .collect(),
        })
        .collect();

    let label_at: HashMap<symbol_intcode::Label, usize> = program.bound_labels().collect();
    let num_labels = program
        .bound_labels()
        .map(|(l, _)| l.0 + 1)
        .max()
        .unwrap_or(1);
    Ok((
        VliwProgram::new(new_words, label_at, num_labels, program.entry()),
        used,
    ))
}

fn rewrite(op: &Op, map: &impl Fn(R) -> R) -> Op {
    use symbol_intcode::Operand;
    let mo = |o: &Operand| match o {
        Operand::Reg(r) => Operand::Reg(map(*r)),
        Operand::Imm(i) => Operand::Imm(*i),
    };
    match op {
        Op::Ld { d, base, off } => Op::Ld {
            d: map(*d),
            base: map(*base),
            off: *off,
        },
        Op::St { s, base, off } => Op::St {
            s: map(*s),
            base: map(*base),
            off: *off,
        },
        Op::Mv { d, s } => Op::Mv {
            d: map(*d),
            s: map(*s),
        },
        Op::MvI { d, w } => Op::MvI { d: map(*d), w: *w },
        Op::Alu { op: o, d, a, b } => Op::Alu {
            op: *o,
            d: map(*d),
            a: map(*a),
            b: mo(b),
        },
        Op::AddA { d, a, b } => Op::AddA {
            d: map(*d),
            a: map(*a),
            b: mo(b),
        },
        Op::MkTag { d, s, tag } => Op::MkTag {
            d: map(*d),
            s: map(*s),
            tag: *tag,
        },
        Op::Br { cond, a, b, t } => Op::Br {
            cond: *cond,
            a: map(*a),
            b: mo(b),
            t: *t,
        },
        Op::BrTag { a, tag, eq, t } => Op::BrTag {
            a: map(*a),
            tag: *tag,
            eq: *eq,
            t: *t,
        },
        Op::BrWord { a, w, eq, t } => Op::BrWord {
            a: map(*a),
            w: *w,
            eq: *eq,
            t: *t,
        },
        Op::BrWEq { a, b, eq, t } => Op::BrWEq {
            a: map(*a),
            b: map(*b),
            eq: *eq,
            t: *t,
        },
        Op::Jmp { t } => Op::Jmp { t: *t },
        Op::JmpR { r } => Op::JmpR { r: map(*r) },
        Op::Halt { success } => Op::Halt { success: *success },
    }
}
