//! The assembled IntCode program.

use std::collections::HashMap;
use std::fmt;

use crate::op::{Label, Op};
use crate::word::Tag;

/// A structural defect found while assembling an [`IciProgram`].
///
/// Construction via [`IciProgram::new`] panics on these (they are
/// compiler bugs on the translate path), but generated inputs — fuzz
/// fragments, corpus files — go through [`IciProgram::try_new`], where
/// a malformed program must fail loudly with a diagnosis instead of
/// panicking or executing garbage.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ProgramError {
    /// A label is bound past the end of the op vector.
    LabelPastEnd {
        /// The label.
        label: Label,
        /// Where it was bound.
        at: usize,
    },
    /// A label id is outside the declared `num_labels` space.
    LabelOutOfRange {
        /// The label.
        label: Label,
    },
    /// A branch references a label that is never bound.
    UnboundBranchTarget {
        /// The unbound target.
        label: Label,
    },
    /// A code-word immediate references a label that is never bound.
    UnboundCodeWord {
        /// The unbound label.
        label: Label,
    },
    /// The entry label is unbound.
    UnboundEntry {
        /// The entry label.
        label: Label,
    },
    /// The `groups` vector is not parallel to the ops.
    GroupsLengthMismatch {
        /// Number of ops.
        ops: usize,
        /// Number of group tags.
        groups: usize,
    },
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::LabelPastEnd { label, at } => {
                write!(f, "label {label} bound past the end (at {at})")
            }
            ProgramError::LabelOutOfRange { label } => {
                write!(f, "label {label} is outside the declared label space")
            }
            ProgramError::UnboundBranchTarget { label } => {
                write!(f, "branch target {label} is unbound")
            }
            ProgramError::UnboundCodeWord { label } => {
                write!(f, "code word label {label} is unbound")
            }
            ProgramError::UnboundEntry { label } => {
                write!(f, "entry label {label} is unbound")
            }
            ProgramError::GroupsLengthMismatch { ops, groups } => {
                write!(f, "{groups} group tags for {ops} ops")
            }
        }
    }
}

impl std::error::Error for ProgramError {}

/// A complete IntCode program: a flat op vector plus the label map and
/// the entry point.
///
/// Label ids are the stable identities used by code words in data
/// memory; [`IciProgram::label_addr`] resolves them to instruction
/// indices for this particular (sequential) layout. A rescheduled VLIW
/// program keeps the same label ids but resolves them differently.
#[derive(Clone, Debug)]
pub struct IciProgram {
    ops: Vec<Op>,
    groups: Vec<u32>,
    label_addr: Vec<usize>,
    entry: Label,
    entries: Vec<Label>,
}

impl IciProgram {
    /// Builds a program, resolving and validating all labels.
    ///
    /// # Panics
    ///
    /// Panics if a referenced label is unbound or binds past the end.
    pub fn new(
        ops: Vec<Op>,
        groups: Vec<u32>,
        label_at: HashMap<Label, usize>,
        num_labels: u32,
        entry: Label,
    ) -> Self {
        match Self::try_new(ops, groups, label_at, num_labels, entry) {
            Ok(p) => p,
            Err(e) => panic!("{e}"),
        }
    }

    /// Builds a program, returning a [`ProgramError`] instead of
    /// panicking when validation fails.
    ///
    /// This is the entry point for *generated* programs — fuzz
    /// fragments and corpus reproducers — where a malformed input is an
    /// expected condition that must be diagnosed, not a compiler bug.
    ///
    /// # Errors
    ///
    /// Returns the first structural defect found: labels bound past the
    /// end or outside the declared label space, unbound branch targets,
    /// unbound code-word labels, an unbound entry, or a `groups` vector
    /// that is not parallel to the ops.
    pub fn try_new(
        ops: Vec<Op>,
        groups: Vec<u32>,
        label_at: HashMap<Label, usize>,
        num_labels: u32,
        entry: Label,
    ) -> Result<Self, ProgramError> {
        if groups.len() != ops.len() {
            return Err(ProgramError::GroupsLengthMismatch {
                ops: ops.len(),
                groups: groups.len(),
            });
        }
        let mut label_addr = vec![usize::MAX; num_labels as usize];
        for (l, at) in &label_at {
            if l.0 >= num_labels {
                return Err(ProgramError::LabelOutOfRange { label: *l });
            }
            if *at > ops.len() {
                return Err(ProgramError::LabelPastEnd { label: *l, at: *at });
            }
            label_addr[l.0 as usize] = *at;
        }
        let bound =
            |l: Label| (l.0 as usize) < label_addr.len() && label_addr[l.0 as usize] != usize::MAX;
        if !bound(entry) {
            return Err(ProgramError::UnboundEntry { label: entry });
        }
        // Every label referenced by a branch or a code word must be bound.
        let mut entries = vec![entry];
        for op in &ops {
            if let Some(t) = op.target() {
                if !bound(t) {
                    return Err(ProgramError::UnboundBranchTarget { label: t });
                }
            }
            if let Op::MvI { w, .. } = op {
                if w.tag == Tag::Cod {
                    let l = Label(w.val as u32);
                    if !bound(l) {
                        return Err(ProgramError::UnboundCodeWord { label: l });
                    }
                    entries.push(l);
                }
            }
        }
        entries.sort_unstable();
        entries.dedup();
        Ok(IciProgram {
            ops,
            groups,
            label_addr,
            entry,
            entries,
        })
    }

    /// The ops in sequential layout order.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// BAM-instruction group id of each op (parallel to [`Self::ops`]).
    pub fn groups(&self) -> &[u32] {
        &self.groups
    }

    /// Resolves a label to its instruction index.
    ///
    /// # Panics
    ///
    /// Panics if the label is unbound (cannot happen for labels that
    /// passed construction validation).
    pub fn label_addr(&self, l: Label) -> usize {
        let a = self.label_addr[l.0 as usize];
        assert!(a != usize::MAX, "label {l} is unbound");
        a
    }

    /// The raw label→address table (`usize::MAX` = unbound).
    pub fn label_table(&self) -> &[usize] {
        &self.label_addr
    }

    /// Program entry label.
    pub fn entry(&self) -> Label {
        self.entry
    }

    /// All *address-taken* labels: the entry plus every label stored in
    /// a code word (continuations, retry addresses, routine returns).
    /// These are the places indirect jumps can land.
    pub fn address_taken(&self) -> &[Label] {
        &self.entries
    }

    /// Number of ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

impl fmt::Display for IciProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Invert the label map for listing.
        let mut at_labels: HashMap<usize, Vec<usize>> = HashMap::new();
        for (lid, &addr) in self.label_addr.iter().enumerate() {
            if addr != usize::MAX {
                at_labels.entry(addr).or_default().push(lid);
            }
        }
        for (i, op) in self.ops.iter().enumerate() {
            if let Some(ls) = at_labels.get(&i) {
                for l in ls {
                    writeln!(f, "L{l}:")?;
                }
            }
            writeln!(f, "  {i:6}  {op}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::R;

    #[test]
    #[should_panic(expected = "unbound")]
    fn unbound_branch_target_panics() {
        let ops = vec![Op::Jmp { t: Label(0) }];
        IciProgram::new(ops, vec![0], HashMap::new(), 1, Label(0));
    }

    #[test]
    fn try_new_reports_each_defect() {
        // Unbound branch target (entry bound, target not).
        let mut labels = HashMap::new();
        labels.insert(Label(0), 0);
        let e = IciProgram::try_new(
            vec![Op::Jmp { t: Label(1) }],
            vec![0],
            labels.clone(),
            2,
            Label(0),
        )
        .unwrap_err();
        assert_eq!(e, ProgramError::UnboundBranchTarget { label: Label(1) });

        // Label id outside the declared space.
        let mut oob = HashMap::new();
        oob.insert(Label(7), 0);
        let e = IciProgram::try_new(vec![Op::Halt { success: true }], vec![0], oob, 1, Label(0))
            .unwrap_err();
        assert_eq!(e, ProgramError::LabelOutOfRange { label: Label(7) });

        // Label bound past the end.
        let mut past = HashMap::new();
        past.insert(Label(0), 5);
        let e = IciProgram::try_new(vec![Op::Halt { success: true }], vec![0], past, 1, Label(0))
            .unwrap_err();
        assert_eq!(
            e,
            ProgramError::LabelPastEnd {
                label: Label(0),
                at: 5
            }
        );

        // Unbound entry.
        let e = IciProgram::try_new(
            vec![Op::Halt { success: true }],
            vec![0],
            HashMap::new(),
            1,
            Label(0),
        )
        .unwrap_err();
        assert_eq!(e, ProgramError::UnboundEntry { label: Label(0) });

        // Groups not parallel to ops.
        let e = IciProgram::try_new(
            vec![Op::Halt { success: true }],
            vec![],
            labels.clone(),
            2,
            Label(0),
        )
        .unwrap_err();
        assert_eq!(e, ProgramError::GroupsLengthMismatch { ops: 1, groups: 0 });

        // Unbound code word.
        let e = IciProgram::try_new(
            vec![Op::MvI {
                d: R(40),
                w: crate::word::Word::code(1),
            }],
            vec![0],
            labels,
            2,
            Label(0),
        )
        .unwrap_err();
        assert_eq!(e, ProgramError::UnboundCodeWord { label: Label(1) });
    }

    #[test]
    fn try_new_accepts_a_well_formed_program() {
        let mut labels = HashMap::new();
        labels.insert(Label(0), 0);
        let p = IciProgram::try_new(
            vec![Op::Halt { success: true }],
            vec![0],
            labels,
            1,
            Label(0),
        )
        .expect("valid");
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn entries_include_code_words() {
        let mut labels = HashMap::new();
        labels.insert(Label(0), 0);
        labels.insert(Label(1), 1);
        let ops = vec![
            Op::MvI {
                d: R(40),
                w: crate::word::Word::code(1),
            },
            Op::Halt { success: true },
        ];
        let p = IciProgram::new(ops, vec![0, 0], labels, 2, Label(0));
        assert!(p.address_taken().contains(&Label(1)));
        assert!(p.address_taken().contains(&Label(0)));
    }
}
