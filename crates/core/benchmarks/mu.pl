% mu -- Hofstadter's MU puzzle: derive "muiiu" from the axiom "mi" with
% the four MIU rewrite rules, depth-bounded search (Aquarius "mu").

main :- theorem(5, [m,u,i,i,u]).

theorem(_, [m,i]).
theorem(D, R) :-
    D > 0,
    D1 is D - 1,
    theorem(D1, S),
    rule(S, R).

% Rule I: xI -> xIU
rule(S, R) :- conc(X, [i], S), conc(X, [i,u], R).
% Rule II: Mx -> Mxx
rule([m|T], [m|R]) :- conc(T, T, R).
% Rule III: xIIIy -> xUy
rule(S, R) :- conc(X, [i,i,i|Y], S), conc(X, [u|Y], R).
% Rule IV: xUUy -> xy
rule(S, R) :- conc(X, [u,u|Y], S), conc(X, Y, R).

conc([], L, L).
conc([X|T], L, [X|R]) :- conc(T, L, R).
