//! Times every stage of the evaluation system (paper Figure 1) in
//! isolation: parsing, BAM compilation, IntCode translation, sequential
//! emulation, compaction and VLIW simulation.

use std::hint::black_box;

use symbol_bench::compiled;
use symbol_bench::timing::Harness;
use symbol_compactor::{compact, CompactMode, TracePolicy};
use symbol_core::benchmarks;
use symbol_vliw::{MachineConfig, SimConfig, VliwSim};

fn stages(h: &mut Harness) {
    let src = benchmarks::by_name("qsort").expect("qsort exists").source;

    h.bench_function("stage/parse", |b| {
        b.iter(|| symbol_prolog::parse_program(black_box(src)).expect("parses"))
    });

    let program = symbol_prolog::parse_program(src).expect("parses");
    h.bench_function("stage/compile_bam", |b| {
        b.iter(|| symbol_bam::compile(black_box(&program)).expect("compiles"))
    });

    let bam = symbol_bam::compile(&program).expect("compiles");
    let main = symbol_prolog::PredId::new(program.symbols().lookup("main").expect("main"), 0);
    let layout = symbol_intcode::Layout::default();
    h.bench_function("stage/translate_ici", |b| {
        b.iter(|| symbol_intcode::translate(black_box(&bam), main, &layout).expect("translates"))
    });

    let (compiled_qsort, run) = compiled("qsort");
    h.bench_function("stage/emulate_sequential", |b| {
        b.iter(|| {
            symbol_intcode::Emulator::new(&compiled_qsort.ici, &compiled_qsort.layout)
                .run(&symbol_intcode::ExecConfig::default())
                .expect("runs")
        })
    });

    let machine = MachineConfig::units(3);
    h.bench_function("stage/compact_trace", |b| {
        b.iter(|| {
            compact(
                black_box(&compiled_qsort.ici),
                &run.stats,
                &machine,
                CompactMode::TraceSchedule,
                &TracePolicy::default(),
            )
        })
    });

    let compacted = compact(
        &compiled_qsort.ici,
        &run.stats,
        &machine,
        CompactMode::TraceSchedule,
        &TracePolicy::default(),
    );
    h.bench_function("stage/simulate_vliw", |b| {
        b.iter(|| {
            VliwSim::new(&compacted.program, machine, &compiled_qsort.layout)
                .run(&SimConfig::default())
                .expect("simulates")
        })
    });
}

fn main() {
    let mut h = Harness::new();
    stages(&mut h);
    h.final_summary();
}
