//! The assembled IntCode program.

use std::collections::HashMap;
use std::fmt;

use crate::op::{Label, Op};
use crate::word::Tag;

/// A complete IntCode program: a flat op vector plus the label map and
/// the entry point.
///
/// Label ids are the stable identities used by code words in data
/// memory; [`IciProgram::label_addr`] resolves them to instruction
/// indices for this particular (sequential) layout. A rescheduled VLIW
/// program keeps the same label ids but resolves them differently.
#[derive(Clone, Debug)]
pub struct IciProgram {
    ops: Vec<Op>,
    groups: Vec<u32>,
    label_addr: Vec<usize>,
    entry: Label,
    entries: Vec<Label>,
}

impl IciProgram {
    /// Builds a program, resolving and validating all labels.
    ///
    /// # Panics
    ///
    /// Panics if a referenced label is unbound or binds past the end.
    pub fn new(
        ops: Vec<Op>,
        groups: Vec<u32>,
        label_at: HashMap<Label, usize>,
        num_labels: u32,
        entry: Label,
    ) -> Self {
        let mut label_addr = vec![usize::MAX; num_labels as usize];
        for (l, at) in &label_at {
            assert!(*at <= ops.len(), "label {l} bound past the end");
            label_addr[l.0 as usize] = *at;
        }
        // Every label referenced by a branch or a code word must be bound.
        let mut entries = vec![entry];
        for op in &ops {
            if let Some(t) = op.target() {
                assert!(
                    label_addr[t.0 as usize] != usize::MAX,
                    "branch target {t} is unbound"
                );
            }
            if let Op::MvI { w, .. } = op {
                if w.tag == Tag::Cod {
                    let l = Label(w.val as u32);
                    assert!(
                        label_addr[l.0 as usize] != usize::MAX,
                        "code word label {l} is unbound"
                    );
                    entries.push(l);
                }
            }
        }
        entries.sort_unstable();
        entries.dedup();
        IciProgram {
            ops,
            groups,
            label_addr,
            entry,
            entries,
        }
    }

    /// The ops in sequential layout order.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// BAM-instruction group id of each op (parallel to [`Self::ops`]).
    pub fn groups(&self) -> &[u32] {
        &self.groups
    }

    /// Resolves a label to its instruction index.
    ///
    /// # Panics
    ///
    /// Panics if the label is unbound (cannot happen for labels that
    /// passed construction validation).
    pub fn label_addr(&self, l: Label) -> usize {
        let a = self.label_addr[l.0 as usize];
        assert!(a != usize::MAX, "label {l} is unbound");
        a
    }

    /// The raw label→address table (`usize::MAX` = unbound).
    pub fn label_table(&self) -> &[usize] {
        &self.label_addr
    }

    /// Program entry label.
    pub fn entry(&self) -> Label {
        self.entry
    }

    /// All *address-taken* labels: the entry plus every label stored in
    /// a code word (continuations, retry addresses, routine returns).
    /// These are the places indirect jumps can land.
    pub fn address_taken(&self) -> &[Label] {
        &self.entries
    }

    /// Number of ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

impl fmt::Display for IciProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Invert the label map for listing.
        let mut at_labels: HashMap<usize, Vec<usize>> = HashMap::new();
        for (lid, &addr) in self.label_addr.iter().enumerate() {
            if addr != usize::MAX {
                at_labels.entry(addr).or_default().push(lid);
            }
        }
        for (i, op) in self.ops.iter().enumerate() {
            if let Some(ls) = at_labels.get(&i) {
                for l in ls {
                    writeln!(f, "L{l}:")?;
                }
            }
            writeln!(f, "  {i:6}  {op}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::R;

    #[test]
    #[should_panic(expected = "unbound")]
    fn unbound_branch_target_panics() {
        let ops = vec![Op::Jmp { t: Label(0) }];
        IciProgram::new(ops, vec![0], HashMap::new(), 1, Label(0));
    }

    #[test]
    fn entries_include_code_words() {
        let mut labels = HashMap::new();
        labels.insert(Label(0), 0);
        labels.insert(Label(1), 1);
        let ops = vec![
            Op::MvI {
                d: R(40),
                w: crate::word::Word::code(1),
            },
            Op::Halt { success: true },
        ];
        let p = IciProgram::new(ops, vec![0, 0], labels, 2, Label(0));
        assert!(p.address_taken().contains(&Label(1)));
        assert!(p.address_taken().contains(&Label(0)));
    }
}
