//! Report renderers: one function per table and figure of the paper.
//!
//! Every renderer takes the measured [`BenchResult`]s and produces a
//! plain-text report that places our numbers next to the paper's
//! published ones wherever the paper reports a per-benchmark value.

use std::fmt::Write as _;

use symbol_analysis::amdahl::{amdahl_overlapped, amdahl_separate};
use symbol_analysis::table::{f, opt, TextTable};
use symbol_analysis::ClassMix;

use super::BenchResult;
use crate::benchmarks::paper;

/// Figure 2: dynamic instruction mix, per benchmark and averaged.
pub fn fig2_mix(results: &[BenchResult]) -> String {
    let mut t = TextTable::new(&["benchmark", "memory", "alu", "move", "control"]);
    for r in results {
        t.row(vec![
            r.name.into(),
            format!("{:.1}%", r.mix.memory * 100.0),
            format!("{:.1}%", r.mix.alu * 100.0),
            format!("{:.1}%", r.mix.mv * 100.0),
            format!("{:.1}%", r.mix.control * 100.0),
        ]);
    }
    let avg = average_mix(results);
    t.row(vec![
        "AVERAGE".into(),
        format!("{:.1}%", avg.memory * 100.0),
        format!("{:.1}%", avg.alu * 100.0),
        format!("{:.1}%", avg.mv * 100.0),
        format!("{:.1}%", avg.control * 100.0),
    ]);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 2 — dynamic instruction mix (paper: memory ~32%, branch >15%)\n"
    );
    let _ = write!(out, "{t}");
    out
}

/// The suite-average instruction mix.
pub fn average_mix(results: &[BenchResult]) -> ClassMix {
    let mixes: Vec<ClassMix> = results.iter().map(|r| r.mix).collect();
    ClassMix::average(&mixes)
}

/// Figure 3: Amdahl speed-up ceilings from the measured memory
/// fraction, as an ASCII chart of the two curves.
pub fn fig3_amdahl(results: &[BenchResult]) -> String {
    let m = average_mix(results).memory;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 3 — Amdahl speed-up vs enhancement of non-memory ops\n\
         (measured memory fraction m = {:.3}; asymptote 1/m = {:.2})\n",
        m,
        1.0 / m
    );
    let mut t = TextTable::new(&["enhancement", "separate", "overlapped"]);
    for k in [1.0, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 32.0] {
        t.row(vec![
            f(k, 1),
            f(amdahl_separate(m, k), 2),
            f(amdahl_overlapped(m, k), 2),
        ]);
    }
    let _ = write!(out, "{t}");
    let _ = writeln!(
        out,
        "\noverlapped curve, ASCII (x = enhancement 1..32, bar = speed-up):"
    );
    for k in [1, 2, 4, 8, 16, 32] {
        let s = amdahl_overlapped(m, k as f64);
        let bar = "#".repeat((s * 12.0) as usize);
        let _ = writeln!(out, "  k={k:>2} |{bar} {s:.2}");
    }
    out
}

/// Table 1: trace vs basic-block compaction on the unbounded
/// shared-memory machine.
pub fn table1_compaction(results: &[BenchResult]) -> String {
    let mut t = TextTable::new(&[
        "benchmark",
        "trace s.u.",
        "paper",
        "trace len",
        "paper",
        "bb s.u.",
        "bb len",
    ]);
    let mut tr_sum = 0.0;
    let mut bb_sum = 0.0;
    let mut tl_sum = 0.0;
    let mut bl_sum = 0.0;
    for r in results {
        let (tr, bb) = r.unbounded_speedups();
        tr_sum += tr;
        bb_sum += bb;
        tl_sum += r.trace_length;
        bl_sum += r.block_length;
        let row = paper::TABLE1.iter().find(|p| p.name == r.name);
        t.row(vec![
            r.name.into(),
            f(tr, 2),
            opt(row.map(|p| p.trace_speedup), 2),
            f(r.trace_length, 1),
            opt(row.map(|p| p.trace_len), 1),
            f(bb, 2),
            f(r.block_length, 1),
        ]);
    }
    let n = results.len() as f64;
    t.row(vec![
        "AVERAGE".into(),
        f(tr_sum / n, 2),
        "2.15".into(),
        f(tl_sum / n, 1),
        "11.62".into(),
        f(bb_sum / n, 2),
        f(bl_sum / n, 1),
    ]);
    format!(
        "Table 1 — available concurrency: trace scheduling vs basic blocks\n\
         (unbounded units, shared single-ported memory; paper bb average 1.65,\n\
         paper block length 6-7 ops)\n\n{t}"
    )
}

/// Table 2: average probability of faulty branch prediction.
pub fn table2_predictability(results: &[BenchResult]) -> String {
    let mut t = TextTable::new(&["benchmark", "P_fp", "paper"]);
    let mut sum = 0.0;
    for r in results {
        sum += r.pfp_average;
        let p = paper::TABLE2
            .iter()
            .find(|(n, _)| *n == r.name)
            .map(|&(_, v)| v);
        t.row(vec![r.name.into(), f(r.pfp_average, 4), opt(p, 4)]);
    }
    t.row(vec![
        "AVERAGE".into(),
        f(sum / results.len() as f64, 4),
        "0.1475".into(),
    ]);
    format!(
        "Table 2 — probability of faulty prediction of branch direction\n\
         (execution-weighted; low values mean trace picking rarely guesses wrong)\n\n{t}"
    )
}

/// Figure 4: distribution of P_fp as an ASCII histogram.
pub fn fig4_histogram(results: &[BenchResult]) -> String {
    let bins = results.first().map(|r| r.pfp_histogram.len()).unwrap_or(20);
    let mut total = vec![0.0; bins];
    for r in results {
        for (i, v) in r.pfp_histogram.iter().enumerate() {
            total[i] += v;
        }
    }
    for v in &mut total {
        *v /= results.len() as f64;
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 4 — distribution of P_fp across the suite\n\
         (paper: bulk of weight near 0, small data-dependent peak near 0.4-0.5)\n"
    );
    for (i, v) in total.iter().enumerate() {
        let lo = i as f64 * 0.5 / bins as f64;
        let hi = (i + 1) as f64 * 0.5 / bins as f64;
        let bar = "#".repeat((v * 200.0).round() as usize);
        let _ = writeln!(out, "  [{lo:.3},{hi:.3}) |{bar} {:.1}%", v * 100.0);
    }
    out
}

/// Table 3: cycles and speed-ups of the BAM model and 1–5 unit VLIWs.
pub fn table3_units(results: &[BenchResult]) -> String {
    let mut t = TextTable::new(&[
        "benchmark",
        "seq",
        "bam",
        "s.u.",
        "1u",
        "s.u.",
        "2u",
        "s.u.",
        "3u",
        "s.u.",
        "4u",
        "s.u.",
        "5u",
        "s.u.",
    ]);
    let mut sums = [0.0f64; 6];
    for r in results {
        let mut row = vec![r.name.to_owned(), r.seq_cycles.to_string()];
        row.push(r.bam_cycles.to_string());
        row.push(f(r.bam_speedup(), 2));
        sums[0] += r.bam_speedup();
        for (u, sum) in (1..=5).zip(sums.iter_mut().skip(1)) {
            row.push(r.unit_cycles[u - 1].to_string());
            row.push(f(r.unit_speedup(u), 2));
            *sum += r.unit_speedup(u);
        }
        t.row(row);
    }
    let n = results.len() as f64;
    let mut avg = vec!["AVERAGE".to_owned(), String::new()];
    for s in sums {
        avg.push(String::new());
        avg.push(f(s / n, 2));
    }
    t.row(avg);
    format!(
        "Table 3 — cycles and speed-up vs the sequential machine\n\
         (paper averages: BAM 1.58, 1u 1.58, 2u 1.68, 3u 1.89, 4u 1.95, 5u 1.96)\n\n{t}"
    )
}

/// Figure 6: the Table 3 averages as an ASCII chart.
pub fn fig6_chart(results: &[BenchResult]) -> String {
    let n = results.len() as f64;
    let series: Vec<(&str, f64)> = vec![
        ("seq", 1.0),
        (
            "BAM",
            results.iter().map(BenchResult::bam_speedup).sum::<f64>() / n,
        ),
        (
            "1 unit",
            results.iter().map(|r| r.unit_speedup(1)).sum::<f64>() / n,
        ),
        (
            "2 units",
            results.iter().map(|r| r.unit_speedup(2)).sum::<f64>() / n,
        ),
        (
            "3 units",
            results.iter().map(|r| r.unit_speedup(3)).sum::<f64>() / n,
        ),
        (
            "4 units",
            results.iter().map(|r| r.unit_speedup(4)).sum::<f64>() / n,
        ),
        (
            "5 units",
            results.iter().map(|r| r.unit_speedup(5)).sum::<f64>() / n,
        ),
    ];
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 6 — average speed-up per configuration (saturation at 3-4 units)\n"
    );
    for (name, s) in series {
        let bar = "#".repeat((s * 20.0).round() as usize);
        let _ = writeln!(out, "  {name:<8} |{bar} {s:.2}");
    }
    out
}

/// Table 4: absolute execution times (ms) against the paper-reported
/// machines; SYMBOL-3 = our 3-unit configuration at 30 MHz.
pub fn table4_absolute(results: &[BenchResult]) -> String {
    let mut t = TextTable::new(&[
        "benchmark",
        "Quintus*",
        "VLSI-PLM*",
        "KCM*",
        "BAM*",
        "SYMBOL-3*",
        "ours(3u)",
    ]);
    for row in paper::TABLE4 {
        let ours = results
            .iter()
            .find(|r| r.name == row.name)
            .map(BenchResult::symbol3_ms);
        t.row(vec![
            row.name.into(),
            opt(row.quintus, 3),
            opt(row.vlsi_plm, 3),
            opt(row.kcm, 3),
            opt(row.bam, 4),
            opt(row.symbol3, 4),
            opt(ours, 4),
        ]);
    }
    format!(
        "Table 4 — absolute execution times in ms (columns marked * are the\n\
         paper's published measurements; ours = 3-unit cycles / 30 MHz)\n\n{t}"
    )
}

/// Table 5: SYMBOL-3 and BAM speed-up vs the sequential machine under
/// the same duration hypotheses.
pub fn table5_speedups(results: &[BenchResult]) -> String {
    let mut t = TextTable::new(&["benchmark", "BAM s.u.", "SYMBOL-3 s.u."]);
    let mut b = 0.0;
    let mut s3 = 0.0;
    for r in results {
        b += r.bam_speedup();
        s3 += r.unit_speedup(3);
        t.row(vec![
            r.name.into(),
            f(r.bam_speedup(), 2),
            f(r.unit_speedup(3), 2),
        ]);
    }
    let n = results.len() as f64;
    t.row(vec!["AVERAGE".into(), f(b / n, 2), f(s3 / n, 2)]);
    format!(
        "Table 5 — speed-up over a sequential machine with the same operation\n\
         durations (paper: BAM ~1.5, SYMBOL-3 ~1.9)\n\n{t}"
    )
}

/// Code-growth summary (the cost side of global compaction, §4.4).
pub fn code_growth(results: &[BenchResult]) -> String {
    let mut t = TextTable::new(&["benchmark", "growth", "trace len", "block len"]);
    for r in results {
        t.row(vec![
            r.name.into(),
            f(r.code_growth, 2),
            f(r.trace_length, 1),
            f(r.block_length, 1),
        ]);
    }
    format!("Code growth of global compaction (compensation + duplication copies)\n\n{t}")
}

/// Resource utilization of the 3-unit machine (the event-driven
/// simulator's statistics, paper §3.2): how close each class comes to
/// its slot budget, and why the single memory port is the binding
/// constraint.
pub fn utilization(results: &[BenchResult]) -> String {
    let mut t = TextTable::new(&[
        "benchmark",
        "mem port",
        "alu",
        "move",
        "control",
        "ops/cycle",
    ]);
    let mut sums = [0.0f64; 5];
    for r in results {
        t.row(vec![
            r.name.into(),
            format!("{:.0}%", r.utilization3[0] * 100.0),
            format!("{:.0}%", r.utilization3[1] * 100.0),
            format!("{:.0}%", r.utilization3[2] * 100.0),
            format!("{:.0}%", r.utilization3[3] * 100.0),
            f(r.issue_rate3, 2),
        ]);
        for (s, v) in sums.iter_mut().zip(
            r.utilization3
                .iter()
                .copied()
                .chain(std::iter::once(r.issue_rate3)),
        ) {
            *s += v;
        }
    }
    let n = results.len() as f64;
    t.row(vec![
        "AVERAGE".into(),
        format!("{:.0}%", sums[0] / n * 100.0),
        format!("{:.0}%", sums[1] / n * 100.0),
        format!("{:.0}%", sums[2] / n * 100.0),
        format!("{:.0}%", sums[3] / n * 100.0),
        f(sums[4] / n, 2),
    ]);
    format!(
        "Resource utilization at 3 units (fraction of slot-cycles used;\n\
         the memory port saturates first — the shared-memory bottleneck)\n\n{t}"
    )
}

/// Machine-readable CSV with every measured number (one row per
/// benchmark) for external plotting.
pub fn csv(results: &[BenchResult]) -> String {
    let mut out = String::from(
        "benchmark,ops,seq_cycles,mem_frac,alu_frac,move_frac,control_frac,\
         pfp_avg,bam_cycles,u1_cycles,u2_cycles,u3_cycles,u4_cycles,u5_cycles,\
         bb_unbounded_cycles,trace_unbounded_cycles,trace_len,block_len,\
         code_growth,mem_util3,issue_rate3\n",
    );
    for r in results {
        let _ = writeln!(
            out,
            "{},{},{},{:.4},{:.4},{:.4},{:.4},{:.4},{},{},{},{},{},{},{},{},{:.2},{:.2},{:.3},{:.3},{:.3}",
            r.name,
            r.ops,
            r.seq_cycles,
            r.mix.memory,
            r.mix.alu,
            r.mix.mv,
            r.mix.control,
            r.pfp_average,
            r.bam_cycles,
            r.unit_cycles[0],
            r.unit_cycles[1],
            r.unit_cycles[2],
            r.unit_cycles[3],
            r.unit_cycles[4],
            r.bb_unbounded_cycles,
            r.trace_unbounded_cycles,
            r.trace_length,
            r.block_length,
            r.code_growth,
            r.utilization3[0],
            r.issue_rate3,
        );
    }
    out
}

/// Every report, concatenated (the `tables` binary's output).
pub fn full_report(results: &[BenchResult]) -> String {
    [
        fig2_mix(results),
        fig3_amdahl(results),
        table1_compaction(results),
        table2_predictability(results),
        fig4_histogram(results),
        table3_units(results),
        fig6_chart(results),
        table4_absolute(results),
        table5_speedups(results),
        utilization(results),
        code_growth(results),
    ]
    .join("\n\n")
}
