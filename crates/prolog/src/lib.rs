//! # symbol-prolog
//!
//! Prolog front end of the SYMBOL evaluation system: tokenizer,
//! operator-precedence parser, clause normalizer and program loader.
//!
//! This crate turns Prolog source text into a [`Program`]: predicates
//! grouped by name/arity, with clause bodies flattened into plain goal
//! sequences (control constructs `;`, `->` and `\+` are expanded into
//! auxiliary predicates by [`normalize`]), ready for compilation to the
//! Berkeley-Abstract-Machine-style code of `symbol-bam`.
//!
//! ```
//! use symbol_prolog::parse_program;
//!
//! # fn main() -> Result<(), symbol_prolog::ParseError> {
//! let program = parse_program("app([], L, L). app([X|T], L, [X|R]) :- app(T, L, R).")?;
//! assert_eq!(program.predicates().count(), 1);
//! # Ok(())
//! # }
//! ```

pub mod ast;
pub mod error;
pub mod lexer;
pub mod normalize;
pub mod ops;
pub mod parser;
pub mod program;
pub mod symbols;

pub use ast::{Clause, Term};
pub use error::ParseError;
pub use program::{PredId, Predicate, Program};
pub use symbols::{Atom, SymbolTable};

/// Parses Prolog source text into a fully normalized [`Program`].
///
/// This is the one-stop entry point: it tokenizes, parses every clause,
/// expands control constructs and groups clauses into predicates.
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first syntax error found.
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let mut symbols = SymbolTable::new();
    let clauses = parser::parse_clauses(src, &mut symbols)?;
    let clauses = normalize::normalize_clauses(clauses, &mut symbols);
    Ok(Program::from_clauses(clauses, symbols))
}
