//! # symbol-vliw
//!
//! The VLIW target of the SYMBOL evaluation system: the parameterized
//! machine model of the paper's §4.5 ([`machine::MachineConfig`]), the
//! instruction-word program representation ([`program::VliwProgram`]),
//! and a validating cycle-accurate simulator ([`sim::VliwSim`]).
//!
//! The simulator both *times* compacted code (Table 3 / Figure 6) and
//! *checks* it: it re-runs the benchmark and must reproduce the
//! sequential answer, while verifying slot budgets, the shared-memory
//! port limit and result latencies on every word.

pub mod decode;
pub mod machine;
pub mod program;
pub mod sim;
pub mod wire;

pub use decode::{DecodedVliw, DecodedVliwSim, SimProfile};
pub use machine::MachineConfig;
pub use program::{SlotOp, VliwInstr, VliwProgram};
pub use sim::{check_word_resources, SimConfig, SimError, SimOutcome, SimResult, VliwSim};
