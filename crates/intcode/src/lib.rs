//! # symbol-intcode
//!
//! The Intermediate Code (ICI) layer of the SYMBOL evaluation system:
//!
//! * a RISC-level [`op::Op`] set with tagged words and branch-on-tag
//!   (the paper's Prolog-specific architectural support),
//! * the BAM → ICI [`translate::translate`] pass (with per-clause
//!   register renaming and the shared runtime routines),
//! * the data memory [`layout::Layout`] of the BAM execution model
//!   (heap / environment stack / choice-point stack / trail / PDL), and
//! * the sequential [`emu::Emulator`] that validates programs and
//!   collects the Expect counts and branch probabilities driving trace
//!   selection, and
//! * the pre-decoded micro-op engine ([`decode::DecodedProgram`] +
//!   [`decode::DecodedEmulator`]) — the default execution path of the
//!   evaluation pipeline, bit-identical to the legacy interpreter but
//!   substantially faster per step, and
//! * the profile-guided [`fuse()`] pass — the second tier: hot
//!   straight-line pairs from a `run_with_profile` execution profile
//!   are re-decoded into fused superinstructions
//!   (compare-and-branch, tag-check-and-deref, move+store, ...) that
//!   halve dispatch on the covered dynamic ops while staying
//!   bit-identical to both unfused engines.
//!
//! ```
//! use symbol_prolog::parse_program;
//! use symbol_intcode::{emu::{Emulator, ExecConfig, Outcome}, layout::Layout, translate};
//! use symbol_prolog::PredId;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let src = "main :- app([1,2],[3],[1,2,3]).
//!            app([], L, L). app([X|T], L, [X|R]) :- app(T, L, R).";
//! let program = parse_program(src)?;
//! let bam = symbol_bam::compile(&program)?;
//! let main = PredId::new(program.symbols().lookup("main").unwrap(), 0);
//! let layout = Layout::default();
//! let ici = translate::translate(&bam, main, &layout)?;
//! let result = Emulator::new(&ici, &layout).run(&ExecConfig::default())?;
//! assert_eq!(result.outcome, Outcome::Success);
//! # Ok(())
//! # }
//! ```

pub mod asm;
pub mod batch;
pub mod decode;
pub mod emu;
pub mod fuse;
pub mod layout;
pub mod op;
pub mod program;
pub mod translate;
pub mod wire;
pub mod word;

pub use asm::Asm;
pub use batch::{run_batch, run_batch_parallel, ArenaPool, BatchOutcome, EngineArena};
pub use decode::{DecodedEmulator, DecodedProgram, ExecProfile};
pub use emu::{Emulator, ExecConfig, ExecError, ExecStats, Outcome, RunResult};
pub use fuse::{fuse, profile_hash, FuseConfig, FusionReport};
pub use layout::Layout;
pub use op::{AluOp, Cond, Label, Op, OpClass, Operand, R};
pub use program::{IciProgram, ProgramError};
pub use translate::{translate, TranslateError};
pub use wire::WireError;
pub use word::{Tag, Word};
