//! Design-space exploration: the architecture sweep harness.
//!
//! The paper evaluates one family of machines — 1..5 paper units with a
//! single shared memory port (Table 3). This module generalizes that
//! experiment into a declarative *grid*: a cross product over units,
//! issue width, memory ports, memory latency, taken-branch penalty,
//! multi-way branching, the prototype's split instruction formats, and
//! the compaction mode. The grid expands into a flat list of
//! [`SweepPoint`]s, every (benchmark, point) pair is simulated through
//! the existing compile-once/simulate-many driver, and the results are
//! reduced into speedup curves, a Pareto frontier of hardware cost
//! vs. geometric-mean speedup, and best-machine reports.
//!
//! # Determinism
//!
//! The sweep is bit-identical for every thread count, by construction:
//!
//! * grid expansion is a pure function of the [`GridSpec`] (fixed loop
//!   nest, no hashing, no iteration-order dependence);
//! * each benchmark compiles and profiles exactly once
//!   ([`CompiledCache`]), and every simulation reads that one profile
//!   immutably;
//! * simulations are distributed through `run_indexed`, which
//!   collects results **by job index**, never by completion order;
//! * reductions (geomean, frontier, winners) iterate in fixed config /
//!   benchmark order with deterministic tie-breaks (lower hardware
//!   cost, then lower config index);
//! * the JSON report carries no timestamps, hostnames or durations.
//!
//! The `sweep` binary's `--check` mode re-runs the grid on one thread
//! and asserts the two JSON reports are byte-identical.
//!
//! # Invariant gates
//!
//! [`SweepReport::check_invariants`] asserts two paper-shape laws over
//! every (benchmark, config) cell, and [`check_paper_points`]
//! cross-checks the grid against the Table 3 driver:
//!
//! 1. **Unit monotonicity** — at fixed other axes, adding units never
//!    makes a benchmark slower (cycles are non-increasing in units),
//!    up to a 1% greedy-scheduling anomaly allowance
//!    ([`UNIT_MONOTONICITY_SLACK_PCT`]).
//! 2. **Memory-port floor** — no config beats the Amdahl ceiling
//!    implied by its memory-port budget: simulated cycles are at least
//!    [`port_cycle_floor`]`(executed memory ops, min(ports, units))`,
//!    because a machine that accepts `p` accesses per cycle needs at
//!    least `ceil(m / p)` cycles to issue `m` of them.
//! 3. **Paper-point reproduction** — the grid cells whose machine is
//!    exactly [`MachineConfig::units`]`(n)` under trace scheduling must
//!    reproduce the Table 3 cycle counts from [`crate::experiments::measure`]
//!    bit-exactly.

use std::time::{Duration, Instant};

use symbol_analysis::{port_cycle_floor, TextTable};
use symbol_compactor::{sequential_cycles, try_compact, CompactMode, SeqDurations, TracePolicy};
use symbol_intcode::OpClass;
use symbol_obs::Registry;
use symbol_vliw::{DecodedVliw, DecodedVliwSim, MachineConfig, SimConfig, SimOutcome};

use crate::benchmarks::Benchmark;
use crate::pipeline::{Compiled, CompiledCache, PipelineError};

use super::run_indexed;

/// One point of the design space: a machine configuration plus the
/// compaction mode that schedules code for it.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct SweepPoint {
    /// The target machine.
    pub machine: MachineConfig,
    /// How code is compacted for it.
    pub mode: CompactMode,
}

impl SweepPoint {
    /// Stable human-readable label, e.g. `u3 w3 p1 ml2 bp1 mw trace`.
    pub fn label(&self) -> String {
        format!("{} {}", self.machine.describe(), mode_name(self.mode))
    }
}

/// Stable short name of a compaction mode (also the grid syntax).
pub fn mode_name(mode: CompactMode) -> &'static str {
    match mode {
        CompactMode::TraceSchedule => "trace",
        CompactMode::BasicBlock => "bb",
        CompactMode::BamGroups => "bam",
    }
}

/// Declarative description of a design-space grid: the cross product
/// of every axis. Numeric axes are kept sorted ascending and deduped
/// by [`GridSpec::normalize`]; `units` ascending is what lets the
/// monotonicity gate walk contiguous unit chunks.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct GridSpec {
    /// Unit counts (innermost expansion axis).
    pub units: Vec<usize>,
    /// Issue width as a multiple of the unit count (`1` = the paper's
    /// one-op-per-unit reading, `4` = the widest Figure 5 reading).
    pub width_factors: Vec<usize>,
    /// Shared data-memory ports per cycle.
    pub mem_ports: Vec<usize>,
    /// Memory load latencies, cycles.
    pub mem_latencies: Vec<u32>,
    /// Taken-branch bubbles, cycles.
    pub branch_penalties: Vec<u32>,
    /// Multi-way branching on/off.
    pub multiway: Vec<bool>,
    /// Prototype split instruction formats on/off.
    pub split_formats: Vec<bool>,
    /// Compaction modes.
    pub modes: Vec<CompactMode>,
}

impl GridSpec {
    /// The paper's own Table 3 axis: 1..5 units, everything else at
    /// the paper defaults, trace scheduling. Expands to exactly
    /// [`MachineConfig::units`]`(n)` for n = 1..5.
    pub fn paper() -> Self {
        GridSpec {
            units: vec![1, 2, 3, 4, 5],
            width_factors: vec![1],
            mem_ports: vec![1],
            mem_latencies: vec![2],
            branch_penalties: vec![1],
            multiway: vec![true],
            split_formats: vec![false],
            modes: vec![CompactMode::TraceSchedule],
        }
    }

    /// The CI smoke grid: 160 configurations spanning every axis the
    /// smoke gates need (contains the paper points), small enough to
    /// sweep a few benchmarks in seconds.
    pub fn reduced() -> Self {
        GridSpec {
            units: vec![1, 2, 3, 4, 5],
            width_factors: vec![1, 2],
            mem_ports: vec![1, 2],
            mem_latencies: vec![1, 2],
            branch_penalties: vec![0, 1],
            multiway: vec![true],
            split_formats: vec![false],
            modes: vec![CompactMode::TraceSchedule, CompactMode::BasicBlock],
        }
    }

    /// The nightly grid: 2592 configurations across all eight axes.
    pub fn full() -> Self {
        GridSpec {
            units: vec![1, 2, 3, 4, 5, 6],
            width_factors: vec![1, 2],
            mem_ports: vec![1, 2, 4],
            mem_latencies: vec![1, 2, 4],
            branch_penalties: vec![0, 1, 2],
            multiway: vec![true, false],
            split_formats: vec![false, true],
            modes: vec![CompactMode::TraceSchedule, CompactMode::BasicBlock],
        }
    }

    /// Parses the grid syntax:
    /// `units=1..5;width=1x,2x;ports=1,2;mlat=1,2;tbp=0,1;multiway=on,off;formats=unified,split;mode=trace,bb`.
    ///
    /// Keys may appear in any order; a missing key takes the paper
    /// default for that axis ([`GridSpec::paper`]). Numeric values are
    /// comma-separated integers or `lo..hi` inclusive ranges. The
    /// names `paper`, `reduced` and `full` select the presets.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending key or value.
    pub fn parse(spec: &str) -> Result<Self, String> {
        match spec {
            "paper" => return Ok(Self::paper()),
            "reduced" => return Ok(Self::reduced()),
            "full" => return Ok(Self::full()),
            _ => {}
        }
        let mut grid = Self::paper();
        for part in spec.split(';') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("grid: `{part}` is not a `key=value` clause"))?;
            match key.trim() {
                "units" => grid.units = parse_usizes(value)?,
                "width" => {
                    grid.width_factors = value
                        .split(',')
                        .map(|v| {
                            let v = v.trim();
                            let n = v.strip_suffix('x').unwrap_or(v);
                            n.parse::<usize>()
                                .map_err(|_| format!("grid: bad width factor `{v}`"))
                        })
                        .collect::<Result<_, _>>()?;
                }
                "ports" => grid.mem_ports = parse_usizes(value)?,
                "mlat" => grid.mem_latencies = parse_u32s(value)?,
                "tbp" => grid.branch_penalties = parse_u32s(value)?,
                "multiway" => grid.multiway = parse_switch(value, "multiway", "on", "off")?,
                "formats" => {
                    // `split` maps to true, `unified` to false.
                    grid.split_formats = parse_switch(value, "formats", "split", "unified")?;
                }
                "mode" => {
                    grid.modes = value
                        .split(',')
                        .map(|v| match v.trim() {
                            "trace" => Ok(CompactMode::TraceSchedule),
                            "bb" => Ok(CompactMode::BasicBlock),
                            "bam" => Ok(CompactMode::BamGroups),
                            other => Err(format!("grid: unknown mode `{other}`")),
                        })
                        .collect::<Result<_, _>>()?;
                }
                other => return Err(format!("grid: unknown axis `{other}`")),
            }
        }
        grid.normalize()?;
        Ok(grid)
    }

    /// Sorts and dedupes the numeric axes (ascending `units` is what
    /// the monotonicity gate relies on), dedupes the boolean/mode
    /// axes preserving order, and rejects empty or degenerate axes.
    ///
    /// # Errors
    ///
    /// Returns a message naming the degenerate axis.
    pub fn normalize(&mut self) -> Result<(), String> {
        fn sort_dedup<T: Ord + Copy>(axis: &mut Vec<T>, name: &str) -> Result<(), String> {
            axis.sort_unstable();
            axis.dedup();
            if axis.is_empty() {
                return Err(format!("grid: axis `{name}` is empty"));
            }
            Ok(())
        }
        sort_dedup(&mut self.units, "units")?;
        sort_dedup(&mut self.width_factors, "width")?;
        sort_dedup(&mut self.mem_ports, "ports")?;
        sort_dedup(&mut self.mem_latencies, "mlat")?;
        sort_dedup(&mut self.branch_penalties, "tbp")?;
        if self.units[0] == 0 {
            return Err("grid: a machine needs at least one unit".into());
        }
        if self.width_factors[0] == 0 {
            return Err("grid: issue width factor must be at least 1".into());
        }
        if self.mem_ports[0] == 0 {
            return Err("grid: a machine needs at least one memory port".into());
        }
        dedup_preserving(&mut self.multiway);
        dedup_preserving(&mut self.split_formats);
        dedup_preserving(&mut self.modes);
        if self.multiway.is_empty() || self.split_formats.is_empty() || self.modes.is_empty() {
            return Err("grid: boolean/mode axes must be non-empty".into());
        }
        Ok(())
    }

    /// Number of points the grid expands to.
    pub fn len(&self) -> usize {
        self.units.len()
            * self.width_factors.len()
            * self.mem_ports.len()
            * self.mem_latencies.len()
            * self.branch_penalties.len()
            * self.multiway.len()
            * self.split_formats.len()
            * self.modes.len()
    }

    /// True when the grid expands to no points.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Expands the grid into its flat point list. The loop nest runs
    /// `units` **innermost**, so every contiguous chunk of
    /// `units.len()` points shares all other axes — that is the shape
    /// the monotonicity gate walks.
    pub fn expand(&self) -> Vec<SweepPoint> {
        let mut points = Vec::with_capacity(self.len());
        for &mode in &self.modes {
            for &split in &self.split_formats {
                for &multiway in &self.multiway {
                    for &tbp in &self.branch_penalties {
                        for &mlat in &self.mem_latencies {
                            for &ports in &self.mem_ports {
                                for &factor in &self.width_factors {
                                    for &units in &self.units {
                                        let machine = MachineConfig {
                                            units,
                                            issue_width: units * factor,
                                            mem_ports: ports,
                                            multiway_branch: multiway,
                                            mem_latency: mlat,
                                            taken_branch_penalty: tbp,
                                            alu_latency: 1,
                                            split_formats: split,
                                        };
                                        points.push(SweepPoint { machine, mode });
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        points
    }

    /// The grid syntax string this spec corresponds to (parse
    /// round-trips it). Used as the report's `grid` field.
    pub fn describe(&self) -> String {
        fn join<T: std::fmt::Display>(v: &[T]) -> String {
            v.iter()
                .map(|x| x.to_string())
                .collect::<Vec<_>>()
                .join(",")
        }
        format!(
            "units={};width={};ports={};mlat={};tbp={};multiway={};formats={};mode={}",
            join(&self.units),
            self.width_factors
                .iter()
                .map(|f| format!("{f}x"))
                .collect::<Vec<_>>()
                .join(","),
            join(&self.mem_ports),
            join(&self.mem_latencies),
            join(&self.branch_penalties),
            self.multiway
                .iter()
                .map(|&b| if b { "on" } else { "off" })
                .collect::<Vec<_>>()
                .join(","),
            self.split_formats
                .iter()
                .map(|&b| if b { "split" } else { "unified" })
                .collect::<Vec<_>>()
                .join(","),
            self.modes
                .iter()
                .map(|&m| mode_name(m))
                .collect::<Vec<_>>()
                .join(","),
        )
    }
}

fn parse_usizes(value: &str) -> Result<Vec<usize>, String> {
    parse_numbers(value, |v| {
        v.parse::<usize>()
            .map_err(|_| format!("grid: bad number `{v}`"))
    })
}

fn parse_u32s(value: &str) -> Result<Vec<u32>, String> {
    parse_numbers(value, |v| {
        v.parse::<u32>()
            .map_err(|_| format!("grid: bad number `{v}`"))
    })
}

/// Parses `1,2,4` and `1..5` (inclusive) clauses for a numeric axis.
fn parse_numbers<T, F>(value: &str, parse_one: F) -> Result<Vec<T>, String>
where
    T: Copy + TryFrom<u64>,
    F: Fn(&str) -> Result<T, String>,
{
    let mut out = Vec::new();
    for clause in value.split(',') {
        let clause = clause.trim();
        if let Some((lo, hi)) = clause.split_once("..") {
            let lo: u64 = lo
                .trim()
                .parse()
                .map_err(|_| format!("grid: bad range `{clause}`"))?;
            let hi: u64 = hi
                .trim()
                .parse()
                .map_err(|_| format!("grid: bad range `{clause}`"))?;
            if lo > hi {
                return Err(format!("grid: empty range `{clause}`"));
            }
            for n in lo..=hi {
                out.push(
                    T::try_from(n).map_err(|_| format!("grid: value out of range `{clause}`"))?,
                );
            }
        } else {
            out.push(parse_one(clause)?);
        }
    }
    Ok(out)
}

/// Parses a boolean axis where `on_word` maps to true.
fn parse_switch(
    value: &str,
    axis: &str,
    on_word: &str,
    off_word: &str,
) -> Result<Vec<bool>, String> {
    value
        .split(',')
        .map(|v| {
            let v = v.trim();
            if v == on_word {
                Ok(true)
            } else if v == off_word {
                Ok(false)
            } else {
                Err(format!(
                    "grid: `{axis}` accepts `{on_word}`/`{off_word}`, got `{v}`"
                ))
            }
        })
        .collect()
}

fn dedup_preserving<T: PartialEq + Copy>(axis: &mut Vec<T>) {
    let mut seen = Vec::new();
    axis.retain(|&x| {
        if seen.contains(&x) {
            false
        } else {
            seen.push(x);
            true
        }
    });
}

/// How to run a sweep.
#[derive(Clone, Debug)]
pub struct SweepOptions {
    /// Worker threads for the per-benchmark simulation fan-out.
    pub threads: usize,
    /// Wall-clock budget; checked at benchmark boundaries — once
    /// exceeded the remaining benchmarks are skipped and listed in
    /// [`SweepReport::truncated`]. `None` = unbounded. A budgeted run
    /// is *not* deterministic across machines (the cut point depends
    /// on wall-clock speed), so the `sweep` binary refuses to combine
    /// it with `--check`.
    pub budget: Option<Duration>,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            budget: None,
        }
    }
}

/// A sweep failure, carrying the benchmark and configuration that
/// caused it.
#[derive(Debug)]
pub enum SweepError {
    /// The grid was degenerate.
    Grid(String),
    /// A benchmark failed to compile, run or re-verify under some
    /// configuration.
    Pipeline {
        /// The benchmark that failed.
        bench: &'static str,
        /// The configuration it failed under (empty for compile-time
        /// failures that precede any configuration).
        config: String,
        /// The underlying pipeline error.
        source: PipelineError,
    },
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepError::Grid(msg) => write!(f, "{msg}"),
            SweepError::Pipeline {
                bench,
                config,
                source,
            } => {
                if config.is_empty() {
                    write!(f, "{bench}: {source}")
                } else {
                    write!(f, "{bench} [{config}]: {source}")
                }
            }
        }
    }
}

impl std::error::Error for SweepError {}

/// Everything one benchmark contributed to the sweep: one cycle count
/// and one executed-memory-op count per grid point, plus the
/// sequential baseline the speedups divide by.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BenchSweep {
    /// Benchmark name.
    pub name: &'static str,
    /// Sequential-machine cycles (the speedup denominator).
    pub seq_cycles: u64,
    /// Dynamic memory ops of the sequential profile.
    pub seq_mem_ops: u64,
    /// Simulated cycles, one per grid point (grid order).
    pub cycles: Vec<u64>,
    /// Executed memory ops, one per grid point — trace scheduling may
    /// *add* speculative executions, never remove any, so each entry
    /// is at least `seq_mem_ops`. The memory-port floor gate divides
    /// this by the port budget.
    pub mem_ops: Vec<u64>,
}

impl BenchSweep {
    /// Speed-up of grid point `i` over the sequential machine.
    pub fn speedup(&self, i: usize) -> f64 {
        self.seq_cycles as f64 / self.cycles[i] as f64
    }
}

/// Allowance of the unit-monotonicity gate, percent.
///
/// Greedy list scheduling is not perfectly monotone in resources —
/// giving a machine one more unit can reshuffle a greedy schedule into
/// a slightly worse one (the classic Graham scheduling anomaly). The
/// observed anomalies are under 1% (e.g. `conc30` under basic-block
/// compaction: 3546 cycles on 3 units vs 3517 on 2), while a real
/// resource-model bug shifts cycle counts by far more, so the gate
/// tolerates a 1% regression per unit step and stays a hard gate for
/// everything larger. The check uses exact integer arithmetic.
pub const UNIT_MONOTONICITY_SLACK_PCT: u32 = 1;

/// The result of a sweep: the expanded grid plus per-benchmark cycle
/// tables, ready for reduction and serialization.
#[derive(Clone, PartialEq, Debug)]
pub struct SweepReport {
    /// The grid syntax string the report was produced from.
    pub grid: String,
    /// The expanded grid, in expansion order.
    pub points: Vec<SweepPoint>,
    /// Length of the innermost (units) axis — every contiguous chunk
    /// of this many points shares all axes except `units`.
    pub units_chunk: usize,
    /// One row per benchmark that ran, in request order.
    pub benches: Vec<BenchSweep>,
    /// Benchmarks skipped because the time budget ran out.
    pub truncated: Vec<&'static str>,
}

/// Expands `grid` and simulates every (benchmark, point) pair.
///
/// Per benchmark: one compile + one sequential profiling run
/// ([`CompiledCache`]), then the whole point list fans out over
/// `opts.threads` workers through `run_indexed`. Per-benchmark spans
/// (`sweep.bench`) and cycle/point counters are recorded on `obs`;
/// labels carry only the benchmark name, never the configuration, so
/// the metric cardinality stays bounded for thousand-point grids.
///
/// # Errors
///
/// [`SweepError::Grid`] for a degenerate grid; [`SweepError::Pipeline`]
/// when a benchmark fails to compile, run or re-verify under some
/// configuration (the lowest (benchmark, point) index wins, so errors
/// are deterministic too).
pub fn run_sweep(
    grid: &GridSpec,
    benches: &[Benchmark],
    opts: &SweepOptions,
    obs: &Registry,
) -> Result<SweepReport, SweepError> {
    let mut normalized = grid.clone();
    normalized.normalize().map_err(SweepError::Grid)?;
    let points = normalized.expand();
    let policy = TracePolicy::default();
    let start = Instant::now();

    let mut report = SweepReport {
        grid: normalized.describe(),
        points: points.clone(),
        units_chunk: normalized.units.len(),
        benches: Vec::with_capacity(benches.len()),
        truncated: Vec::new(),
    };

    for (k, bench) in benches.iter().enumerate() {
        if let Some(budget) = opts.budget {
            if start.elapsed() >= budget {
                report.truncated = benches[k..].iter().map(|b| b.name).collect();
                break;
            }
        }
        let labels: &[(&str, &str)] = &[("bench", bench.name)];
        let _span = obs.span("sweep.bench", labels);
        let wrap = |source: PipelineError, config: String| SweepError::Pipeline {
            bench: bench.name,
            config,
            source,
        };
        let compiled = Compiled::from_source(bench.source).map_err(|e| wrap(e, String::new()))?;
        let cache = CompiledCache::new(&compiled).map_err(|e| wrap(e, String::new()))?;
        let seq_cycles =
            sequential_cycles(&compiled.ici, &cache.run.stats, &SeqDurations::default());
        let seq_mem_ops = cache
            .run
            .stats
            .class_counts(&compiled.ici)
            .iter()
            .find(|(c, _)| *c == OpClass::Memory)
            .map_or(0, |(_, n)| *n);

        let simulate = |i: usize| -> Result<(u64, u64), PipelineError> {
            let point = &points[i];
            let compacted = try_compact(
                &compiled.ici,
                &cache.run.stats,
                &point.machine,
                point.mode,
                &policy,
            )?;
            let decoded = DecodedVliw::new(&compacted.program, point.machine);
            let result =
                DecodedVliwSim::new(&decoded, &compiled.layout).run(&SimConfig::default())?;
            if result.outcome != SimOutcome::Success {
                return Err(PipelineError::WrongAnswer);
            }
            Ok((result.cycles, result.class_ops[OpClass::Memory.index()]))
        };

        let mut cycles = Vec::with_capacity(points.len());
        let mut mem_ops = Vec::with_capacity(points.len());
        for (i, r) in run_indexed(points.len(), opts.threads, simulate)
            .into_iter()
            .enumerate()
        {
            let (c, m) = r.map_err(|e| wrap(e, points[i].label()))?;
            cycles.push(c);
            mem_ops.push(m);
        }
        obs.counter("sweep.points", labels).add(points.len() as u64);
        obs.counter("sweep.sim_cycles", labels)
            .add(cycles.iter().sum());

        report.benches.push(BenchSweep {
            name: bench.name,
            seq_cycles,
            seq_mem_ops,
            cycles,
            mem_ops,
        });
    }
    Ok(report)
}

impl SweepReport {
    /// Geometric-mean speedup of grid point `i` across the swept
    /// benchmarks, computed as `exp(mean(ln(speedup)))` in fixed
    /// benchmark order — deterministic bit for bit.
    pub fn geomean_speedup(&self, i: usize) -> f64 {
        if self.benches.is_empty() {
            return 0.0;
        }
        let sum: f64 = self.benches.iter().map(|b| b.speedup(i).ln()).sum();
        (sum / self.benches.len() as f64).exp()
    }

    /// All geomean speedups, in grid order.
    pub fn geomean_speedups(&self) -> Vec<f64> {
        (0..self.points.len())
            .map(|i| self.geomean_speedup(i))
            .collect()
    }

    /// The Pareto frontier of hardware cost vs. geomean speedup:
    /// indices of the grid points not dominated by any cheaper-or-equal
    /// point, sorted by ascending cost. Ties break deterministically —
    /// at equal cost and speedup the lower grid index survives.
    pub fn pareto_frontier(&self) -> Vec<usize> {
        let speedups = self.geomean_speedups();
        let mut order: Vec<usize> = (0..self.points.len()).collect();
        order.sort_by(|&a, &b| {
            self.points[a]
                .machine
                .hardware_cost()
                .total_cmp(&self.points[b].machine.hardware_cost())
                .then(a.cmp(&b))
        });
        let mut frontier = Vec::new();
        let mut best = f64::NEG_INFINITY;
        for i in order {
            if speedups[i] > best {
                best = speedups[i];
                frontier.push(i);
            }
        }
        frontier
    }

    /// The fastest grid point for each benchmark: `(bench index, grid
    /// index)`. Ties break toward lower hardware cost, then lower grid
    /// index.
    pub fn best_per_bench(&self) -> Vec<(usize, usize)> {
        self.benches
            .iter()
            .enumerate()
            .map(|(k, b)| {
                let mut best = 0usize;
                for i in 1..self.points.len() {
                    let better = b.cycles[i] < b.cycles[best]
                        || (b.cycles[i] == b.cycles[best]
                            && self.points[i]
                                .machine
                                .hardware_cost()
                                .total_cmp(&self.points[best].machine.hardware_cost())
                                .is_lt());
                    if better {
                        best = i;
                    }
                }
                (k, best)
            })
            .collect()
    }

    /// The best single machine overall: the grid index with the
    /// highest geomean speedup (ties toward lower cost, then lower
    /// index). `None` for an empty grid or benchmark list.
    pub fn best_overall(&self) -> Option<usize> {
        if self.points.is_empty() || self.benches.is_empty() {
            return None;
        }
        let speedups = self.geomean_speedups();
        let mut best = 0usize;
        for i in 1..self.points.len() {
            let better = speedups[i] > speedups[best]
                || (speedups[i] == speedups[best]
                    && self.points[i]
                        .machine
                        .hardware_cost()
                        .total_cmp(&self.points[best].machine.hardware_cost())
                        .is_lt());
            if better {
                best = i;
            }
        }
        Some(best)
    }

    /// Checks the paper-shape invariant gates over every (benchmark,
    /// point) cell; returns a list of human-readable violations (empty
    /// = all gates hold).
    ///
    /// * **Unit monotonicity**: within each contiguous chunk of
    ///   `units_chunk` points (same axes except `units`, ascending),
    ///   cycles never increase with more units — beyond the
    ///   [`UNIT_MONOTONICITY_SLACK_PCT`] anomaly allowance.
    /// * **Memory-port floor**: `cycles >= ceil(executed mem ops /
    ///   min(ports, units))` — the exact integer form of the Amdahl
    ///   memory ceiling ([`port_cycle_floor`]).
    pub fn check_invariants(&self) -> Vec<String> {
        let mut violations = Vec::new();
        for b in &self.benches {
            for (i, point) in self.points.iter().enumerate() {
                let m = &point.machine;
                let ports = m.mem_ports.min(m.units);
                let floor = port_cycle_floor(b.mem_ops[i], ports);
                if b.cycles[i] < floor {
                    violations.push(format!(
                        "{}: [{}] {} cycles beat the {}-port floor of {} \
                         ({} executed memory ops)",
                        b.name,
                        point.label(),
                        b.cycles[i],
                        ports,
                        floor,
                        b.mem_ops[i],
                    ));
                }
                if i % self.units_chunk != 0 {
                    let prev = &self.points[i - 1];
                    // Exact integer form of
                    // `cycles[i] > cycles[i-1] * (1 + slack%)`.
                    let slack = 100 + UNIT_MONOTONICITY_SLACK_PCT as u128;
                    if b.cycles[i] as u128 * 100 > b.cycles[i - 1] as u128 * slack {
                        violations.push(format!(
                            "{}: [{}] {} cycles is slower than [{}] {} cycles \
                             with fewer units",
                            b.name,
                            point.label(),
                            b.cycles[i],
                            prev.label(),
                            b.cycles[i - 1],
                        ));
                    }
                }
            }
        }
        violations
    }

    /// Serializes the report as deterministic JSON (`sweep-v1`): fixed
    /// key order, `{:.4}` floats, `{:.2}` costs, no timestamps. Two
    /// runs of the same grid over the same benchmarks produce
    /// byte-identical output whatever the thread count.
    pub fn to_json(&self) -> String {
        let speedups = self.geomean_speedups();
        let mut out = String::with_capacity(1 << 16);
        out.push_str("{\n  \"schema\": \"sweep-v1\",\n");
        out.push_str(&format!("  \"grid\": \"{}\",\n", self.grid));
        out.push_str(&format!("  \"units_chunk\": {},\n", self.units_chunk));
        out.push_str("  \"configs\": [\n");
        for (i, p) in self.points.iter().enumerate() {
            let m = &p.machine;
            out.push_str(&format!(
                "    {{\"label\": \"{}\", \"units\": {}, \"issue_width\": {}, \
                 \"mem_ports\": {}, \"mem_latency\": {}, \"taken_branch_penalty\": {}, \
                 \"multiway\": {}, \"split_formats\": {}, \"mode\": \"{}\", \
                 \"cost\": {:.2}, \"geomean_speedup\": {:.4}}}{}\n",
                p.label(),
                m.units,
                m.issue_width,
                m.mem_ports,
                m.mem_latency,
                m.taken_branch_penalty,
                m.multiway_branch,
                m.split_formats,
                mode_name(p.mode),
                m.hardware_cost(),
                speedups[i],
                if i + 1 < self.points.len() { "," } else { "" },
            ));
        }
        out.push_str("  ],\n  \"benches\": [\n");
        for (k, b) in self.benches.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"seq_cycles\": {}, \"seq_mem_ops\": {}, \
                 \"cycles\": {:?}, \"mem_ops\": {:?}}}{}\n",
                b.name,
                b.seq_cycles,
                b.seq_mem_ops,
                b.cycles,
                b.mem_ops,
                if k + 1 < self.benches.len() { "," } else { "" },
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!(
            "  \"truncated\": [{}],\n",
            self.truncated
                .iter()
                .map(|n| format!("\"{n}\""))
                .collect::<Vec<_>>()
                .join(", "),
        ));
        out.push_str(&format!("  \"frontier\": {:?},\n", self.pareto_frontier()));
        out.push_str("  \"best_per_bench\": [\n");
        let winners = self.best_per_bench();
        for (j, (k, i)) in winners.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"bench\": \"{}\", \"config\": {}, \"speedup\": {:.4}}}{}\n",
                self.benches[*k].name,
                i,
                self.benches[*k].speedup(*i),
                if j + 1 < winners.len() { "," } else { "" },
            ));
        }
        out.push_str("  ],\n");
        match self.best_overall() {
            Some(i) => out.push_str(&format!("  \"best_overall\": {i}\n")),
            None => out.push_str("  \"best_overall\": null\n"),
        }
        out.push_str("}\n");
        out
    }

    /// Renders the human-readable report: the Pareto frontier, the
    /// per-benchmark winners, and the paper-axis speedup curves.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let speedups = self.geomean_speedups();

        out.push_str(&format!(
            "Design-space sweep: {} configs x {} benchmarks (grid {})\n",
            self.points.len(),
            self.benches.len(),
            self.grid,
        ));
        if !self.truncated.is_empty() {
            out.push_str(&format!(
                "TRUNCATED by time budget; skipped: {}\n",
                self.truncated.join(", "),
            ));
        }
        out.push('\n');

        out.push_str("Pareto frontier (hardware cost vs geomean speedup):\n");
        let mut frontier = TextTable::new(&["config", "cost", "geomean speedup"]);
        let best = self.best_overall();
        for &i in &self.pareto_frontier() {
            let marker = if Some(i) == best { " *best" } else { "" };
            frontier.row(vec![
                format!("{}{}", self.points[i].label(), marker),
                format!("{:.2}", self.points[i].machine.hardware_cost()),
                format!("{:.2}", speedups[i]),
            ]);
        }
        out.push_str(&frontier.to_string());

        out.push_str("\nBest machine per benchmark:\n");
        let mut winners = TextTable::new(&["benchmark", "config", "speedup", "cycles"]);
        for (k, i) in self.best_per_bench() {
            winners.row(vec![
                self.benches[k].name.to_string(),
                self.points[i].label(),
                format!("{:.2}", self.benches[k].speedup(i)),
                self.benches[k].cycles[i].to_string(),
            ]);
        }
        out.push_str(&winners.to_string());

        // Speedup curves over the units axis at paper defaults, when
        // the grid contains those points.
        let paper_points: Vec<(usize, usize)> = self
            .points
            .iter()
            .enumerate()
            .filter(|(_, p)| {
                p.mode == CompactMode::TraceSchedule
                    && p.machine == MachineConfig::units(p.machine.units)
            })
            .map(|(i, p)| (p.machine.units, i))
            .collect();
        if !paper_points.is_empty() {
            out.push_str("\nSpeedup over sequential at paper defaults:\n");
            let mut headers = vec!["benchmark".to_string()];
            headers.extend(paper_points.iter().map(|(u, _)| format!("{u}u")));
            let headers: Vec<&str> = headers.iter().map(String::as_str).collect();
            let mut curves = TextTable::new(&headers);
            for b in &self.benches {
                let mut row = vec![b.name.to_string()];
                row.extend(
                    paper_points
                        .iter()
                        .map(|&(_, i)| format!("{:.2}", b.speedup(i))),
                );
                curves.row(row);
            }
            out.push_str(&curves.to_string());
        }
        out
    }
}

/// Cross-checks the sweep against the Table 3 driver: for every
/// benchmark and every `n` where the grid contains the exact paper
/// machine [`MachineConfig::units`]`(n)` under trace scheduling, the
/// sweep's cycle count must equal [`crate::experiments::measure`]'s bit for bit.
///
/// # Errors
///
/// Returns the list of mismatches, or a message when the grid contains
/// no paper point at all (the cross-check would be vacuous).
pub fn check_paper_points(
    report: &SweepReport,
    benches: &[Benchmark],
    threads: usize,
) -> Result<(), Vec<String>> {
    let paper_points: Vec<(usize, usize)> = report
        .points
        .iter()
        .enumerate()
        .filter_map(|(i, p)| {
            let units = p.machine.units;
            (p.mode == CompactMode::TraceSchedule
                && (1..=5).contains(&units)
                && p.machine == MachineConfig::units(units))
            .then_some((units, i))
        })
        .collect();
    if paper_points.is_empty() {
        return Err(vec![
            "grid contains no paper point (units(n), trace) to cross-check".into(),
        ]);
    }
    let mut violations = Vec::new();
    for b in &report.benches {
        let Some(bench) = benches.iter().find(|x| x.name == b.name) else {
            violations.push(format!("{}: benchmark not found for cross-check", b.name));
            continue;
        };
        let measured = match crate::experiments::measure(bench) {
            Ok(m) => m,
            Err(e) => {
                violations.push(format!("{}: Table 3 driver failed: {e}", b.name));
                continue;
            }
        };
        let _ = threads;
        for &(units, i) in &paper_points {
            let expect = measured.unit_cycles[units - 1];
            if b.cycles[i] != expect {
                violations.push(format!(
                    "{}: paper point units({units}) sweeps to {} cycles but \
                     Table 3 measures {expect}",
                    b.name, b.cycles[i],
                ));
            }
        }
        if b.seq_cycles != measured.seq_cycles {
            violations.push(format!(
                "{}: sweep sequential baseline {} != Table 3 baseline {}",
                b.name, b.seq_cycles, measured.seq_cycles,
            ));
        }
    }
    if violations.is_empty() {
        Ok(())
    } else {
        Err(violations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks;

    #[test]
    fn paper_grid_expands_to_the_exact_table3_machines() {
        let points = GridSpec::paper().expand();
        assert_eq!(points.len(), 5);
        for (k, p) in points.iter().enumerate() {
            assert_eq!(p.machine, MachineConfig::units(k + 1));
            assert_eq!(p.mode, CompactMode::TraceSchedule);
        }
    }

    #[test]
    fn reduced_grid_has_the_advertised_size_and_contains_paper_points() {
        let grid = GridSpec::reduced();
        assert_eq!(grid.len(), 160);
        let points = grid.expand();
        assert_eq!(points.len(), 160);
        for n in 1..=5 {
            assert!(
                points.iter().any(|p| p.machine == MachineConfig::units(n)
                    && p.mode == CompactMode::TraceSchedule),
                "reduced grid lost the paper point units({n})"
            );
        }
    }

    #[test]
    fn units_is_the_innermost_expansion_axis() {
        let grid = GridSpec::reduced();
        let points = grid.expand();
        let chunk = grid.units.len();
        for (i, p) in points.iter().enumerate() {
            assert_eq!(p.machine.units, grid.units[i % chunk]);
            if i % chunk != 0 {
                // Same chunk: every axis except units (and the
                // width that scales with it) matches.
                let prev = &points[i - 1].machine;
                assert_eq!(p.machine.mem_ports, prev.mem_ports);
                assert_eq!(p.machine.mem_latency, prev.mem_latency);
                assert_eq!(
                    p.machine.issue_width * prev.units,
                    prev.issue_width * p.machine.units,
                );
            }
        }
    }

    #[test]
    fn grid_syntax_parses_and_round_trips() {
        let grid = GridSpec::parse("units=1..3;ports=2,1;mode=trace,bb;width=2x;tbp=0").unwrap();
        assert_eq!(grid.units, vec![1, 2, 3]);
        assert_eq!(grid.mem_ports, vec![1, 2], "numeric axes are sorted");
        assert_eq!(grid.width_factors, vec![2]);
        assert_eq!(grid.branch_penalties, vec![0]);
        // Missing keys take the paper defaults.
        assert_eq!(grid.mem_latencies, vec![2]);
        assert_eq!(grid.multiway, vec![true]);
        assert_eq!(
            grid.modes,
            vec![CompactMode::TraceSchedule, CompactMode::BasicBlock]
        );
        // describe() emits the very syntax parse() accepts.
        let again = GridSpec::parse(&grid.describe()).unwrap();
        assert_eq!(again, grid);
    }

    #[test]
    fn grid_parse_rejects_nonsense() {
        assert!(GridSpec::parse("units=0").is_err());
        assert!(GridSpec::parse("ports=0").is_err());
        assert!(GridSpec::parse("mode=voodoo").is_err());
        assert!(GridSpec::parse("turbo=on").is_err());
        assert!(GridSpec::parse("units=5..1").is_err());
        assert!(GridSpec::parse("units").is_err());
        assert!(GridSpec::parse("multiway=yes").is_err());
    }

    #[test]
    fn preset_names_resolve() {
        assert_eq!(GridSpec::parse("paper").unwrap(), GridSpec::paper());
        assert_eq!(GridSpec::parse("reduced").unwrap(), GridSpec::reduced());
        assert_eq!(GridSpec::parse("full").unwrap(), GridSpec::full());
        assert_eq!(GridSpec::full().len(), 2592);
    }

    /// A tiny synthetic report for exercising the reductions without
    /// running simulations.
    fn synthetic() -> SweepReport {
        let grid = GridSpec {
            units: vec![1, 2],
            ..GridSpec::paper()
        };
        let points = grid.expand();
        SweepReport {
            grid: grid.describe(),
            units_chunk: 2,
            benches: vec![
                BenchSweep {
                    name: "a",
                    seq_cycles: 1000,
                    seq_mem_ops: 100,
                    cycles: vec![500, 250],
                    mem_ops: vec![100, 110],
                },
                BenchSweep {
                    name: "b",
                    seq_cycles: 2000,
                    seq_mem_ops: 300,
                    cycles: vec![1000, 800],
                    mem_ops: vec![300, 300],
                },
            ],
            truncated: Vec::new(),
            points,
        }
    }

    #[test]
    fn reductions_pick_the_documented_winners() {
        let r = synthetic();
        // Geomean of (2.0, 2.0) = 2.0; of (4.0, 2.5) = sqrt(10).
        assert!((r.geomean_speedup(0) - 2.0).abs() < 1e-12);
        assert!((r.geomean_speedup(1) - 10f64.sqrt()).abs() < 1e-12);
        // Both points are on the frontier: the 2-unit machine costs
        // more and speeds up more.
        assert_eq!(r.pareto_frontier(), vec![0, 1]);
        assert_eq!(r.best_overall(), Some(1));
        assert_eq!(r.best_per_bench(), vec![(0, 1), (1, 1)]);
    }

    #[test]
    fn invariant_gates_catch_planted_violations() {
        let clean = synthetic();
        assert!(clean.check_invariants().is_empty());

        // Plant a monotonicity violation: 2 units slower than 1.
        let mut mono = synthetic();
        mono.benches[0].cycles = vec![500, 600];
        let violations = mono.check_invariants();
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("fewer units"), "{violations:?}");

        // Plant a port-floor violation: fewer cycles than memory ops
        // on a single-ported machine. The planted slow 2-unit point
        // also trips the monotonicity gate, so both fire.
        let mut floor = synthetic();
        floor.benches[1].cycles = vec![299, 800];
        let violations = floor.check_invariants();
        assert_eq!(violations.len(), 2);
        assert!(
            violations.iter().any(|v| v.contains("floor")),
            "{violations:?}"
        );
        assert!(
            violations.iter().any(|v| v.contains("fewer units")),
            "{violations:?}"
        );
    }

    #[test]
    fn json_report_is_wellformed_and_complete() {
        let r = synthetic();
        let json = r.to_json();
        let doc = symbol_obs::json::parse(&json).expect("sweep JSON parses");
        assert_eq!(doc.get("schema").and_then(|v| v.as_str()), Some("sweep-v1"));
        assert_eq!(
            doc.get("configs").and_then(|v| v.as_arr()).unwrap().len(),
            2
        );
        assert_eq!(
            doc.get("benches").and_then(|v| v.as_arr()).unwrap().len(),
            2
        );
        assert_eq!(doc.get("best_overall").and_then(|v| v.as_u64()), Some(1));
        // Deterministic: rendering twice is byte-identical.
        assert_eq!(json, r.to_json());
        // The human rendering mentions the winner and the frontier.
        let text = r.render();
        assert!(text.contains("Pareto frontier"));
        assert!(text.contains("*best"));
    }

    #[test]
    fn sweep_runs_a_tiny_grid_and_matches_the_table3_driver() {
        let grid = GridSpec {
            units: vec![1, 3],
            ..GridSpec::paper()
        };
        let bench = *benchmarks::by_name("nreverse").expect("nreverse exists");
        let opts = SweepOptions {
            threads: 2,
            budget: None,
        };
        let report = run_sweep(&grid, &[bench], &opts, &Registry::disabled()).expect("sweep runs");
        assert_eq!(report.points.len(), 2);
        assert_eq!(report.benches.len(), 1);
        assert!(report.truncated.is_empty());
        assert!(report.check_invariants().is_empty());

        // Bit-identical across thread counts.
        let seq = run_sweep(
            &grid,
            &[bench],
            &SweepOptions {
                threads: 1,
                budget: None,
            },
            &Registry::disabled(),
        )
        .expect("sequential sweep runs");
        assert_eq!(report, seq);
        assert_eq!(report.to_json(), seq.to_json());

        // And the paper points agree with the Table 3 driver.
        check_paper_points(&report, &[bench], 1).expect("paper points reproduce");
    }

    #[test]
    fn zero_budget_truncates_at_a_benchmark_boundary() {
        let grid = GridSpec::paper();
        let benches: Vec<Benchmark> = ["nreverse", "qsort"]
            .iter()
            .map(|n| *benchmarks::by_name(n).unwrap())
            .collect();
        let opts = SweepOptions {
            threads: 1,
            budget: Some(Duration::ZERO),
        };
        let report = run_sweep(&grid, &benches, &opts, &Registry::disabled()).expect("sweep runs");
        assert!(report.benches.is_empty());
        assert_eq!(report.truncated, vec!["nreverse", "qsort"]);
        let json = report.to_json();
        assert!(json.contains("\"truncated\": [\"nreverse\", \"qsort\"]"));
    }
}
