//! Compiled BAM programs.

use std::collections::HashMap;

use symbol_prolog::PredId;

use crate::compile::index::CompiledPred;
use crate::instr::BamInstr;

/// A compiled BAM program: one code unit per predicate.
#[derive(Clone, Debug)]
pub struct BamProgram {
    preds: Vec<CompiledPred>,
    by_id: HashMap<PredId, usize>,
}

impl BamProgram {
    /// Wraps compiled predicates (in definition order).
    pub fn new(preds: Vec<CompiledPred>) -> Self {
        let by_id = preds.iter().enumerate().map(|(i, p)| (p.id, i)).collect();
        BamProgram { preds, by_id }
    }

    /// Iterates over predicates in definition order.
    pub fn predicates(&self) -> impl Iterator<Item = &CompiledPred> {
        self.preds.iter()
    }

    /// Looks up a predicate's code.
    pub fn predicate(&self, id: PredId) -> Option<&CompiledPred> {
        self.by_id.get(&id).map(|&i| &self.preds[i])
    }

    /// Total number of BAM instructions (excluding labels).
    pub fn num_instructions(&self) -> usize {
        self.preds
            .iter()
            .map(|p| {
                p.code
                    .iter()
                    .filter(|i| !matches!(i, BamInstr::Label(_)))
                    .count()
            })
            .sum()
    }
}
