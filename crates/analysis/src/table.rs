//! Minimal text-table renderer for the experiment reports.

use std::fmt;

/// Column alignment.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Align {
    /// Left-aligned (names).
    Left,
    /// Right-aligned (numbers).
    Right,
}

/// A simple aligned text table.
#[derive(Clone, Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given header; the first column is
    /// left-aligned, the rest right-aligned.
    pub fn new(header: &[&str]) -> Self {
        let aligns = (0..header.len())
            .map(|i| if i == 0 { Align::Left } else { Align::Right })
            .collect();
        TextTable {
            header: header.iter().map(|s| (*s).to_owned()).collect(),
            aligns,
            rows: Vec::new(),
        }
    }

    /// Appends a row (shorter rows are padded with blanks).
    ///
    /// # Panics
    ///
    /// Panics if the row has more cells than the header.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert!(
            cells.len() <= self.header.len(),
            "row has {} cells but the table has {} columns",
            cells.len(),
            self.header.len()
        );
        let mut cells = cells;
        cells.resize(self.header.len(), String::new());
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for i in 0..cols {
                if i > 0 {
                    write!(f, "  ")?;
                }
                match self.aligns[i] {
                    Align::Left => write!(f, "{:<width$}", cells[i], width = widths[i])?,
                    Align::Right => write!(f, "{:>width$}", cells[i], width = widths[i])?,
                }
            }
            writeln!(f)
        };
        write_row(f, &self.header)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a float with `d` decimals.
pub fn f(x: f64, d: usize) -> String {
    format!("{x:.d$}")
}

/// Formats an optional float, blank when absent.
pub fn opt(x: Option<f64>, d: usize) -> String {
    x.map(|v| f(v, d)).unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new(&["name", "value"]);
        t.row(vec!["aa".into(), "1.0".into()]);
        t.row(vec!["b".into(), "12.5".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[2].starts_with("aa"));
        assert!(lines[3].ends_with("12.5"));
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = TextTable::new(&["a", "b", "c"]);
        t.row(vec!["x".into()]);
        assert_eq!(t.len(), 1);
        let _ = t.to_string();
    }

    #[test]
    #[should_panic(expected = "columns")]
    fn long_rows_panic() {
        let mut t = TextTable::new(&["a"]);
        t.row(vec!["x".into(), "y".into()]);
    }

    #[test]
    fn float_helpers() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(opt(None, 2), "");
        assert_eq!(opt(Some(2.5), 1), "2.5");
    }
}
