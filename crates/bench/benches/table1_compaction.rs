//! Table 1 — trace scheduling vs basic-block compaction on the
//! unbounded shared-memory machine. Times both compactions, then
//! regenerates the table for the full suite.

use std::hint::black_box;

use symbol_bench::timing::Harness;
use symbol_bench::{compiled, TIMING_SUBSET};
use symbol_compactor::{compact, CompactMode, TracePolicy};
use symbol_core::experiments::{measure_all, reports};
use symbol_vliw::MachineConfig;

fn bench(h: &mut Harness) {
    let machine = MachineConfig::unbounded();
    for name in TIMING_SUBSET {
        let (cc, run) = compiled(name);
        h.bench_function(&format!("table1/trace/{name}"), |b| {
            b.iter(|| {
                compact(
                    black_box(&cc.ici),
                    &run.stats,
                    &machine,
                    CompactMode::TraceSchedule,
                    &TracePolicy::default(),
                )
            })
        });
        h.bench_function(&format!("table1/basic_block/{name}"), |b| {
            b.iter(|| {
                compact(
                    black_box(&cc.ici),
                    &run.stats,
                    &machine,
                    CompactMode::BasicBlock,
                    &TracePolicy::default(),
                )
            })
        });
    }
}

fn print_report() {
    let results = measure_all().expect("suite measures");
    println!("\n{}", reports::table1_compaction(&results));
}

fn main() {
    let mut h = Harness::new();
    bench(&mut h);
    h.final_summary();
    print_report();
}
