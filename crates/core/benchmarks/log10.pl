% log10 -- symbolic differentiation of the 10-fold logarithm
% log(log(...log(x)...)) (Warren's DERIV family, Aquarius "log10").
% The expected result size is checked (66 nodes).

main :-
    d(log(log(log(log(log(log(log(log(log(log(x)))))))))), x, D),
    size(D, N),
    N = 66.

d(U + V, X, DU + DV) :- !, d(U, X, DU), d(V, X, DV).
d(U - V, X, DU - DV) :- !, d(U, X, DU), d(V, X, DV).
d(U * V, X, DU * V + U * DV) :- !, d(U, X, DU), d(V, X, DV).
d(U / V, X, (DU * V - U * DV) / (V * V)) :- !, d(U, X, DU), d(V, X, DV).
d(log(U), X, DU / U) :- !, d(U, X, DU).
d(X, X, 1) :- !.
d(_, _, 0).

size(X + Y, S) :- !, size(X, A), size(Y, B), S is A + B + 1.
size(X - Y, S) :- !, size(X, A), size(Y, B), S is A + B + 1.
size(X * Y, S) :- !, size(X, A), size(Y, B), S is A + B + 1.
size(X / Y, S) :- !, size(X, A), size(Y, B), S is A + B + 1.
size(log(X), S) :- !, size(X, A), S is A + 1.
size(_, 1).
