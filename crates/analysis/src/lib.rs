//! # symbol-analysis
//!
//! The measurement layer of the SYMBOL evaluation system: dynamic
//! instruction-class mixes (Figure 2), Amdahl-law speed-up ceilings for
//! the shared-memory model (Figure 3), branch-predictability statistics
//! (Table 2 / Figure 4), and a small text-table renderer used by every
//! report the benchmark harness prints.

pub mod amdahl;
pub mod mix;
pub mod predict;
pub mod table;

pub use amdahl::{amdahl_overlapped, amdahl_ports, amdahl_separate, port_cycle_floor, AmdahlCurve};
pub use mix::ClassMix;
pub use predict::{faulty_prediction, Histogram, PredictStats};
pub use table::TextTable;
