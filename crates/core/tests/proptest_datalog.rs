//! Differential fuzzing with randomly generated (terminating) logic
//! programs: a small Datalog-like generator produces fact bases and
//! non-recursive conjunctive rules; a reference evaluator in Rust
//! computes the query answer; the whole pipeline — including
//! trace-scheduled VLIW execution — must agree.
//!
//! Generation uses a seeded xorshift PRNG (no external crates), so
//! every run exercises the same deterministic case set.

use std::collections::HashSet;

use symbol_compactor::{compact, CompactMode, TracePolicy};
use symbol_core::pipeline::Compiled;
use symbol_vliw::{MachineConfig, SimConfig, SimOutcome, VliwSim};

/// Deterministic xorshift64* PRNG.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform value in `0..n`.
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// A generated program: facts for `e/2`, one rule layer, and a query.
#[derive(Clone, Debug)]
struct Gen {
    /// Directed edges over a small constant universe.
    edges: Vec<(u8, u8)>,
    /// Query endpoints for the two-step-path relation.
    query: (u8, u8),
}

impl Gen {
    fn random(rng: &mut Rng) -> Gen {
        let n = 1 + rng.below(13) as usize;
        let edges = (0..n)
            .map(|_| (rng.below(6) as u8, rng.below(6) as u8))
            .collect();
        let query = (rng.below(6) as u8, rng.below(6) as u8);
        Gen { edges, query }
    }

    /// Reference answer: is there a path of exactly two edges (or one
    /// edge) from query.0 to query.1?
    fn oracle(&self) -> bool {
        let set: HashSet<(u8, u8)> = self.edges.iter().copied().collect();
        let (a, b) = self.query;
        if set.contains(&(a, b)) {
            return true;
        }
        (0u8..6).any(|m| set.contains(&(a, m)) && set.contains(&(m, b)))
    }

    fn source(&self) -> String {
        let mut src = String::new();
        for (a, b) in &self.edges {
            src.push_str(&format!("e(n{a}, n{b}).\n"));
        }
        let (a, b) = self.query;
        src.push_str("reach(X, Y) :- e(X, Y).\n");
        src.push_str("reach(X, Y) :- e(X, M), e(M, Y).\n");
        src.push_str(&format!("main :- reach(n{a}, n{b}).\n"));
        src
    }
}

#[test]
fn pipeline_agrees_with_the_datalog_oracle() {
    let mut rng = Rng(0x9e37_79b9_7f4a_7c15);
    for _ in 0..32 {
        let g = Gen::random(&mut rng);
        let src = g.source();
        let compiled = Compiled::from_source(&src).expect("compiles");
        let want = g.oracle();

        // sequential
        let seq_ok = compiled.run_sequential().is_ok();
        assert_eq!(seq_ok, want, "sequential diverged on:\n{src}");

        // trace-scheduled VLIW (only meaningful when we have a profile,
        // i.e. when the query succeeds or fails — both produce stats)
        let run = symbol_intcode::Emulator::new(&compiled.ici, &compiled.layout)
            .run(&symbol_intcode::ExecConfig::default())
            .expect("emulates");
        let machine = MachineConfig::units(3);
        let compacted = compact(
            &compiled.ici,
            &run.stats,
            &machine,
            CompactMode::TraceSchedule,
            &TracePolicy::default(),
        );
        let sim = VliwSim::new(&compacted.program, machine, &compiled.layout)
            .run(&SimConfig::default())
            .expect("simulates");
        assert_eq!(
            sim.outcome == SimOutcome::Success,
            want,
            "scheduled code diverged on:\n{src}"
        );
    }
}
