//! Pre-decoded micro-op execution engine for the sequential emulator.
//!
//! [`DecodedProgram`] lowers an [`IciProgram`] once, at load time, into
//! a flat vector of small `Copy` micro-op records with every operand
//! fully resolved:
//!
//! * register ids are plain `u32` indices (no `R` newtype unwrapping in
//!   the hot loop),
//! * the register/immediate second operand of ALU ops and branches is
//!   monomorphized into separate `..RR` / `..RI` record kinds, so the
//!   nested [`Operand`] dispatch disappears from the step loop,
//! * every direct branch target is a pre-resolved instruction index,
//!   and indirect jumps go through a dense label → pc table instead of
//!   [`IciProgram::label_addr`]'s assert-on-missing lookup.
//!
//! [`DecodedEmulator`] executes the decoded form with the trace
//! instrumentation monomorphized out through a const-generic step loop:
//! the common profile-only path contains no trace branch at all. The
//! engine is **bit-identical** to [`crate::emu::Emulator`] — same
//! [`Outcome`], same step count, same [`ExecStats`] and same
//! [`ExecError`] values on every program — which the workspace
//! differential suite asserts over the whole benchmark suite.

use std::collections::VecDeque;

use crate::emu::{ExecConfig, ExecError, ExecStats, Outcome, RunResult};
use crate::layout::Layout;
use crate::op::{AluOp, Cond, Label, Op, Operand};
use crate::program::IciProgram;
use crate::word::{Tag, Word};

/// One pre-decoded micro-op. `Copy` and at most 32 bytes, so the step
/// loop fetches a whole record by value and never chases references
/// into the source [`Op`] vector.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub(crate) enum MicroOp {
    /// `d = mem[base.val + off]`.
    Ld { d: u32, base: u32, off: i32 },
    /// `mem[base.val + off] = s`.
    St { s: u32, base: u32, off: i32 },
    /// `d = s`.
    Mv { d: u32, s: u32 },
    /// `d = w`.
    MvI { d: u32, w: Word },
    /// `d = a (op) b` with a register right operand.
    AluRR { op: AluOp, d: u32, a: u32, b: u32 },
    /// `d = a (op) imm`.
    AluRI { op: AluOp, d: u32, a: u32, imm: i64 },
    /// Address add with a register right operand.
    AddARR { d: u32, a: u32, b: u32 },
    /// Address add with an immediate right operand.
    AddARI { d: u32, a: u32, imm: i64 },
    /// `d = <tag, s.val>`.
    MkTag { d: u32, s: u32, tag: Tag },
    /// Value branch with a register right operand; `t` is the resolved
    /// target pc.
    BrRR { cond: Cond, a: u32, b: u32, t: u32 },
    /// Value branch against an immediate.
    BrRI {
        cond: Cond,
        a: u32,
        imm: i64,
        t: u32,
    },
    /// Branch on the tag field.
    BrTag { a: u32, tag: Tag, eq: bool, t: u32 },
    /// Branch comparing a full word against an immediate word.
    BrWord { a: u32, w: Word, eq: bool, t: u32 },
    /// Branch comparing two registers as full words.
    BrWEq { a: u32, b: u32, eq: bool, t: u32 },
    /// Unconditional jump to a resolved pc.
    Jmp { t: u32 },
    /// Indirect jump through a code word.
    JmpR { r: u32 },
    /// Stop the machine.
    Halt { success: bool },

    // -----------------------------------------------------------------
    // Fused superinstructions (the profile-guided second tier, built by
    // [`crate::fuse::fuse`]). Each record executes TWO source ops in
    // one dispatch; the head constituent runs at index `at` and the
    // second at `at + 1`, and every piece of architectural bookkeeping
    // — step-limit check, step count, Expect/taken statistics, trace
    // entries, error `at` fields, predictor state — is accounted under
    // the constituent's own index, so a fused program is bit-identical
    // to the unfused one. Legality (the interior pc is never a branch
    // target) is the fusion pass's responsibility; the wire decoder
    // re-validates the structural part (a fused record never sits at
    // the last index, so `at + 1` stays in bounds).
    // -----------------------------------------------------------------
    /// `AluRR` at `at` fused with `BrRR` at `at + 1`.
    CmpBrRR {
        op: AluOp,
        cond: Cond,
        d: u32,
        a: u32,
        b: u32,
        ba: u32,
        bb: u32,
        t: u32,
    },
    /// `AluRI` at `at` fused with `BrRI` at `at + 1` (both immediates
    /// narrowed to `i32` so the record stays within the 32-byte cap).
    CmpBrRI {
        op: AluOp,
        cond: Cond,
        d: u32,
        a: u32,
        imm: i32,
        ba: u32,
        bimm: i32,
        t: u32,
    },
    /// `BrTag` at `at` fused with `Ld` at `at + 1`: the tag check
    /// either branches away or falls through into the dereferencing
    /// load (the paper's tag-check + deref chain).
    TagDeref {
        a: u32,
        tag: Tag,
        eq: bool,
        t: u32,
        d: u32,
        base: u32,
        off: i32,
    },
    /// `Mv` at `at` fused with `St` at `at + 1`.
    MvSt {
        d: u32,
        s: u32,
        s2: u32,
        base: u32,
        off: i32,
    },
    /// `Ld` at `at` fused with `Mv` at `at + 1`.
    LdMv {
        d: u32,
        base: u32,
        off: i32,
        d2: u32,
        s: u32,
    },
    /// `MvI` at `at` (an `Int` word whose value fits `i32`, folded into
    /// the record as a plain immediate) fused with an `AluRR` at
    /// `at + 1` that consumes the freshly written register.
    MvIAlu {
        d: u32,
        imm: i32,
        op: AluOp,
        d2: u32,
        a: u32,
        b: u32,
    },
}

impl MicroOp {
    /// Whether this record is a fused superinstruction (executes two
    /// constituent ops; requires `at + 1` to be a valid index).
    pub(crate) fn is_fused(self) -> bool {
        matches!(
            self,
            MicroOp::CmpBrRR { .. }
                | MicroOp::CmpBrRI { .. }
                | MicroOp::TagDeref { .. }
                | MicroOp::MvSt { .. }
                | MicroOp::LdMv { .. }
                | MicroOp::MvIAlu { .. }
        )
    }
}

/// Marks every pc that control flow can enter other than by falling
/// through from `pc - 1`: direct branch/jump targets, every bound
/// label (reachable through `JmpR`), and the entry pc. The fusion pass
/// refuses to bury one of these as the interior of a fused pair —
/// fusing it would make the incoming edge skip the head constituent.
pub(crate) fn compute_branch_targets(
    micro: &[MicroOp],
    label_pc: &[u32],
    entry_pc: usize,
) -> Vec<bool> {
    let n = micro.len();
    let mut bt = vec![false; n];
    let mut mark = |t: u32| {
        if let Some(slot) = bt.get_mut(t as usize) {
            *slot = true;
        }
    };
    for &m in micro {
        match m {
            MicroOp::BrRR { t, .. }
            | MicroOp::BrRI { t, .. }
            | MicroOp::BrTag { t, .. }
            | MicroOp::BrWord { t, .. }
            | MicroOp::BrWEq { t, .. }
            | MicroOp::Jmp { t }
            | MicroOp::CmpBrRR { t, .. }
            | MicroOp::CmpBrRI { t, .. }
            | MicroOp::TagDeref { t, .. } => mark(t),
            _ => {}
        }
    }
    for &pc in label_pc {
        if pc != u32::MAX {
            mark(pc);
        }
    }
    if let Some(slot) = bt.get_mut(entry_pc) {
        *slot = true;
    }
    bt
}

/// An [`IciProgram`] lowered to the flat micro-op form.
///
/// The micro-op vector is parallel to [`IciProgram::ops`] — record `i`
/// executes op `i` — so statistics indices, error `at` fields and the
/// label table all keep their sequential-layout meaning.
#[derive(Clone, Debug)]
pub struct DecodedProgram {
    pub(crate) micro: Vec<MicroOp>,
    /// Dense label id → instruction index (`u32::MAX` = unbound).
    pub(crate) label_pc: Vec<u32>,
    /// Entry instruction index.
    pub(crate) entry_pc: usize,
    /// Register file size (highest register id used, plus one).
    pub(crate) num_regs: usize,
    /// Per-pc "control flow can enter here other than by fall-through"
    /// bitmap (see [`compute_branch_targets`]), built at decode time
    /// and consumed by the fusion pass's legality check. Derived, never
    /// serialized: the wire codec recomputes it on decode.
    pub(crate) branch_targets: Vec<bool>,
}

impl DecodedProgram {
    /// Decodes a program. All direct branch targets were validated at
    /// [`IciProgram`] construction, so decoding cannot fail.
    ///
    /// # Panics
    ///
    /// Panics if the entry label is unbound (as [`crate::emu::Emulator::new`]
    /// does) or the program has ≥ `u32::MAX` ops.
    pub fn new(program: &IciProgram) -> Self {
        let ops = program.ops();
        assert!(
            ops.len() < u32::MAX as usize,
            "program too large to pre-decode"
        );
        let t = |l: Label| program.label_addr(l) as u32;
        let micro = ops
            .iter()
            .map(|op| match *op {
                Op::Ld { d, base, off } => MicroOp::Ld {
                    d: d.0,
                    base: base.0,
                    off,
                },
                Op::St { s, base, off } => MicroOp::St {
                    s: s.0,
                    base: base.0,
                    off,
                },
                Op::Mv { d, s } => MicroOp::Mv { d: d.0, s: s.0 },
                Op::MvI { d, w } => MicroOp::MvI { d: d.0, w },
                Op::Alu { op, d, a, b } => match b {
                    Operand::Reg(b) => MicroOp::AluRR {
                        op,
                        d: d.0,
                        a: a.0,
                        b: b.0,
                    },
                    Operand::Imm(imm) => MicroOp::AluRI {
                        op,
                        d: d.0,
                        a: a.0,
                        imm,
                    },
                },
                Op::AddA { d, a, b } => match b {
                    Operand::Reg(b) => MicroOp::AddARR {
                        d: d.0,
                        a: a.0,
                        b: b.0,
                    },
                    Operand::Imm(imm) => MicroOp::AddARI {
                        d: d.0,
                        a: a.0,
                        imm,
                    },
                },
                Op::MkTag { d, s, tag } => MicroOp::MkTag {
                    d: d.0,
                    s: s.0,
                    tag,
                },
                Op::Br { cond, a, b, t: l } => match b {
                    Operand::Reg(b) => MicroOp::BrRR {
                        cond,
                        a: a.0,
                        b: b.0,
                        t: t(l),
                    },
                    Operand::Imm(imm) => MicroOp::BrRI {
                        cond,
                        a: a.0,
                        imm,
                        t: t(l),
                    },
                },
                Op::BrTag { a, tag, eq, t: l } => MicroOp::BrTag {
                    a: a.0,
                    tag,
                    eq,
                    t: t(l),
                },
                Op::BrWord { a, w, eq, t: l } => MicroOp::BrWord {
                    a: a.0,
                    w,
                    eq,
                    t: t(l),
                },
                Op::BrWEq { a, b, eq, t: l } => MicroOp::BrWEq {
                    a: a.0,
                    b: b.0,
                    eq,
                    t: t(l),
                },
                Op::Jmp { t: l } => MicroOp::Jmp { t: t(l) },
                Op::JmpR { r } => MicroOp::JmpR { r: r.0 },
                Op::Halt { success } => MicroOp::Halt { success },
            })
            .collect();
        let label_pc = program
            .label_table()
            .iter()
            .map(|&a| if a == usize::MAX { u32::MAX } else { a as u32 })
            .collect();
        let num_regs = ops
            .iter()
            .flat_map(|o| o.uses().into_iter().chain(o.def()))
            .map(|r| r.0 as usize + 1)
            .max()
            .unwrap_or(1);
        Self::from_parts(
            micro,
            label_pc,
            program.label_addr(program.entry()),
            num_regs,
        )
    }

    /// Assembles a program from already-validated parts, recomputing
    /// the derived branch-target bitmap. Shared by [`DecodedProgram::new`],
    /// the wire decoder and the fusion pass.
    pub(crate) fn from_parts(
        micro: Vec<MicroOp>,
        label_pc: Vec<u32>,
        entry_pc: usize,
        num_regs: usize,
    ) -> Self {
        let branch_targets = compute_branch_targets(&micro, &label_pc, entry_pc);
        DecodedProgram {
            micro,
            label_pc,
            entry_pc,
            num_regs,
            branch_targets,
        }
    }

    /// Number of micro-ops (equals the source program's op count).
    pub fn len(&self) -> usize {
        self.micro.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.micro.is_empty()
    }

    /// Whether control flow can reach `pc` other than by falling
    /// through from `pc - 1` (branch/jump target, bound label, or the
    /// entry point).
    pub fn is_branch_target(&self, pc: usize) -> bool {
        self.branch_targets.get(pc).copied().unwrap_or(false)
    }
}

/// Per-PC dynamic profile gathered by the profiled step loop
/// ([`DecodedEmulator::run_with_profile`]).
///
/// The execution counts themselves already live in
/// [`ExecStats::expect`] (the paper's *Expect*); this adds what a
/// hardware profile would: per-branch misprediction counts under a
/// 2-bit saturating counter predictor (one counter per conditional
/// branch, initialized to weakly-not-taken). Indices are op indices,
/// parallel to the program.
#[derive(Clone, Debug, Default)]
pub struct ExecProfile {
    /// Times the 2-bit predictor mispredicted the branch at op `i`
    /// (zero for non-branch ops).
    pub mispredict: Vec<u64>,
}

impl ExecProfile {
    /// Total mispredictions over the run.
    pub fn total_mispredicts(&self) -> u64 {
        self.mispredict.iter().sum()
    }

    /// Misprediction rate over the dynamically executed conditional
    /// branches, or `None` when no conditional branch ever executed.
    pub fn mispredict_rate(&self, program: &IciProgram, stats: &ExecStats) -> Option<f64> {
        let mut dynamic_branches = 0u64;
        for (i, op) in program.ops().iter().enumerate() {
            if op.is_conditional_branch() {
                dynamic_branches += stats.expect[i];
            }
        }
        if dynamic_branches == 0 {
            None
        } else {
            Some(self.total_mispredicts() as f64 / dynamic_branches as f64)
        }
    }
}

/// The sequential machine state, executing a [`DecodedProgram`].
///
/// Mirrors [`crate::emu::Emulator`]'s interface: `run`,
/// `run_with_stats`, the circular trace, and the `peek`/`reg`
/// inspection accessors.
#[derive(Debug)]
pub struct DecodedEmulator<'a> {
    program: &'a DecodedProgram,
    regs: Vec<Word>,
    mem: Vec<Word>,
    pc: usize,
    trace: VecDeque<usize>,
    trace_cap: usize,
}

#[inline(always)]
fn load(mem: &[Word], addr: i64, at: usize) -> Result<Word, ExecError> {
    usize::try_from(addr)
        .ok()
        .and_then(|i| mem.get(i))
        .copied()
        .ok_or(ExecError::BadAddress { addr, at })
}

#[inline(always)]
fn store(mem: &mut [Word], addr: i64, w: Word, at: usize) -> Result<(), ExecError> {
    match usize::try_from(addr).ok().and_then(|i| mem.get_mut(i)) {
        Some(slot) => {
            *slot = w;
            Ok(())
        }
        None => Err(ExecError::BadAddress { addr, at }),
    }
}

impl<'a> DecodedEmulator<'a> {
    /// Creates an emulator with zeroed registers and memory.
    pub fn new(program: &'a DecodedProgram, layout: &Layout) -> Self {
        Self::new_in(program, layout, Vec::new(), Vec::new())
    }

    /// Creates an emulator reusing caller-owned buffers for the
    /// register file and data memory: each is resized to this
    /// program/layout and re-zeroed in place, so a buffer that already
    /// served an image of the same shape is recycled without touching
    /// the allocator. This is the batch executor's
    /// ([`crate::batch`]) hot-path constructor.
    pub(crate) fn new_in(
        program: &'a DecodedProgram,
        layout: &Layout,
        mut regs: Vec<Word>,
        mut mem: Vec<Word>,
    ) -> Self {
        regs.clear();
        regs.resize(program.num_regs, Word::int(0));
        mem.clear();
        mem.resize(layout.total(), Word::int(0));
        DecodedEmulator {
            program,
            regs,
            mem,
            pc: program.entry_pc,
            trace: VecDeque::new(),
            trace_cap: 0,
        }
    }

    /// Releases the register/memory buffers for reuse by a later
    /// [`DecodedEmulator::new_in`].
    pub(crate) fn into_buffers(self) -> (Vec<Word>, Vec<Word>) {
        (self.regs, self.mem)
    }

    /// The statistics-free monomorphization for throughput serving:
    /// returns only the outcome and step count, with the per-pc
    /// Expect/taken accounting compiled out of the loop entirely
    /// (`STATS = false`). Outcome, step count and errors are
    /// bit-identical to [`DecodedEmulator::run_with_stats`] — the
    /// batch determinism suite asserts exactly that.
    pub(crate) fn run_pooled(&mut self, cfg: &ExecConfig) -> (Result<Outcome, ExecError>, u64) {
        let mut steps: u64 = 0;
        let res = self.step_loop::<false, false, false>(
            cfg,
            &mut [],
            &mut [],
            &mut steps,
            &mut [],
            &mut [],
        );
        (res, steps)
    }

    /// Enables a circular trace of the last `cap` executed op indices.
    pub fn set_trace(&mut self, cap: usize) {
        self.trace_cap = cap;
        self.trace = VecDeque::with_capacity(cap.min(1 << 20));
    }

    /// The traced op indices, oldest first.
    pub fn trace(&self) -> Vec<usize> {
        self.trace.iter().copied().collect()
    }

    /// Runs to completion.
    ///
    /// # Errors
    ///
    /// Returns an [`ExecError`] on malformed programs or exhausted
    /// limits — never for ordinary Prolog failure.
    pub fn run(&mut self, cfg: &ExecConfig) -> Result<RunResult, ExecError> {
        let (outcome, stats, steps) = self.run_with_stats(cfg);
        outcome.map(|outcome| RunResult {
            outcome,
            steps,
            stats,
        })
    }

    /// Like [`DecodedEmulator::run`] but returns the statistics
    /// gathered so far even when execution ends in an error.
    pub fn run_with_stats(
        &mut self,
        cfg: &ExecConfig,
    ) -> (Result<Outcome, ExecError>, ExecStats, u64) {
        let n = self.program.micro.len();
        let mut expect = vec![0u64; n];
        let mut taken = vec![0u64; n];
        let mut steps: u64 = 0;
        let res = if self.trace_cap > 0 {
            self.step_loop::<true, false, true>(
                cfg,
                &mut expect,
                &mut taken,
                &mut steps,
                &mut [],
                &mut [],
            )
        } else {
            self.step_loop::<false, false, true>(
                cfg,
                &mut expect,
                &mut taken,
                &mut steps,
                &mut [],
                &mut [],
            )
        };
        (res, ExecStats { expect, taken }, steps)
    }

    /// Like [`DecodedEmulator::run_with_stats`] but additionally runs
    /// the per-PC profiling hooks: a 2-bit saturating branch predictor
    /// whose per-branch misprediction counts land in the returned
    /// [`ExecProfile`].
    ///
    /// This is a *separate monomorphization* of the same step loop —
    /// the default `run`/`run_with_stats` path compiles with
    /// `PROFILE = false` and contains none of this bookkeeping, which
    /// is how instrumentation stays free when off. Outcome, step count
    /// and [`ExecStats`] are bit-identical to the unprofiled run.
    pub fn run_with_profile(
        &mut self,
        cfg: &ExecConfig,
    ) -> (Result<Outcome, ExecError>, ExecStats, u64, ExecProfile) {
        let n = self.program.micro.len();
        let mut expect = vec![0u64; n];
        let mut taken = vec![0u64; n];
        let mut mispredict = vec![0u64; n];
        // One 2-bit counter per op, initialized to 01 (weakly not
        // taken); only conditional branches ever read or update theirs.
        let mut predictor = vec![1u8; n];
        let mut steps: u64 = 0;
        let res = if self.trace_cap > 0 {
            self.step_loop::<true, true, true>(
                cfg,
                &mut expect,
                &mut taken,
                &mut steps,
                &mut predictor,
                &mut mispredict,
            )
        } else {
            self.step_loop::<false, true, true>(
                cfg,
                &mut expect,
                &mut taken,
                &mut steps,
                &mut predictor,
                &mut mispredict,
            )
        };
        (
            res,
            ExecStats { expect, taken },
            steps,
            ExecProfile { mispredict },
        )
    }

    /// The monomorphized step loop. With `TRACE = false` (the
    /// profile-only default) the trace bookkeeping — including its
    /// capacity test — compiles out entirely; with `PROFILE = false`
    /// the branch-predictor accounting compiles out the same way, so
    /// the default path is the same machine code it was before the
    /// profiling hooks existed. `STATS = false` (the batch serving
    /// path, [`DecodedEmulator::run_pooled`]) additionally compiles
    /// out the per-pc Expect/taken counters — outcome, step count and
    /// errors are unaffected.
    #[allow(clippy::too_many_arguments)]
    fn step_loop<const TRACE: bool, const PROFILE: bool, const STATS: bool>(
        &mut self,
        cfg: &ExecConfig,
        expect: &mut [u64],
        taken: &mut [u64],
        steps: &mut u64,
        predictor: &mut [u8],
        mispredict: &mut [u64],
    ) -> Result<Outcome, ExecError> {
        let micro = self.program.micro.as_slice();
        let label_pc = self.program.label_pc.as_slice();
        let Self {
            regs,
            mem,
            trace,
            trace_cap,
            ..
        } = self;
        let regs = regs.as_mut_slice();
        let mut pc = self.pc;
        let max_steps = cfg.max_steps;
        let r = loop {
            let Some(&m) = micro.get(pc) else {
                break Err(ExecError::RanOffEnd);
            };
            if *steps >= max_steps {
                break Err(ExecError::StepLimit { limit: max_steps });
            }
            *steps += 1;
            let at = pc;
            if STATS {
                expect[at] += 1;
            }
            if TRACE {
                if trace.len() == *trace_cap {
                    trace.pop_front();
                }
                trace.push_back(at);
            }
            macro_rules! fail {
                ($e:expr) => {{
                    break Err($e);
                }};
            }
            // Predictor update for the branch constituent at index `$i`
            // (`at` for plain branches, `at + 1` for a fused
            // compare-and-branch whose branch is the second half).
            macro_rules! predict {
                ($taken:expr, $i:expr) => {
                    if PROFILE {
                        // 2-bit saturating counter: 00/01 predict not
                        // taken, 10/11 predict taken.
                        let state = predictor[$i];
                        if (state >= 2) != $taken {
                            mispredict[$i] += 1;
                        }
                        predictor[$i] = if $taken {
                            (state + 1).min(3)
                        } else {
                            state.saturating_sub(1)
                        };
                    }
                };
            }
            macro_rules! branch {
                ($cond:expr, $t:expr, $i:expr) => {{
                    let taken_now = $cond;
                    predict!(taken_now, $i);
                    if taken_now {
                        if STATS {
                            taken[$i] += 1;
                        }
                        pc = $t as usize;
                    } else {
                        pc = $i + 1;
                    }
                }};
            }
            // The second constituent of a fused pair: repeats, under
            // index `at + 1`, exactly the bookkeeping the loop header
            // did for the head — step-limit check first, then the step
            // count, Expect count and trace entry — so a fused run is
            // bit-identical to the unfused one even when the limit
            // lands between the two halves.
            macro_rules! second {
                () => {{
                    if *steps >= max_steps {
                        fail!(ExecError::StepLimit { limit: max_steps });
                    }
                    *steps += 1;
                    if STATS {
                        expect[at + 1] += 1;
                    }
                    if TRACE {
                        if trace.len() == *trace_cap {
                            trace.pop_front();
                        }
                        trace.push_back(at + 1);
                    }
                }};
            }
            match m {
                MicroOp::Ld { d, base, off } => {
                    let addr = regs[base as usize].val + off as i64;
                    match load(mem, addr, at) {
                        Ok(w) => regs[d as usize] = w,
                        Err(e) => fail!(e),
                    }
                    pc = at + 1;
                }
                MicroOp::St { s, base, off } => {
                    let addr = regs[base as usize].val + off as i64;
                    let w = regs[s as usize];
                    if let Err(e) = store(mem, addr, w, at) {
                        fail!(e);
                    }
                    pc = at + 1;
                }
                MicroOp::Mv { d, s } => {
                    regs[d as usize] = regs[s as usize];
                    pc = at + 1;
                }
                MicroOp::MvI { d, w } => {
                    regs[d as usize] = w;
                    pc = at + 1;
                }
                MicroOp::AluRR { op, d, a, b } => {
                    let av = regs[a as usize].val;
                    let bv = regs[b as usize].val;
                    match op.eval(av, bv) {
                        Some(v) => regs[d as usize] = Word::int(v),
                        None => fail!(ExecError::DivideByZero { at }),
                    }
                    pc = at + 1;
                }
                MicroOp::AluRI { op, d, a, imm } => {
                    let av = regs[a as usize].val;
                    match op.eval(av, imm) {
                        Some(v) => regs[d as usize] = Word::int(v),
                        None => fail!(ExecError::DivideByZero { at }),
                    }
                    pc = at + 1;
                }
                MicroOp::AddARR { d, a, b } => {
                    let aw = regs[a as usize];
                    let bv = regs[b as usize].val;
                    regs[d as usize] = Word {
                        tag: aw.tag,
                        val: aw.val.wrapping_add(bv),
                    };
                    pc = at + 1;
                }
                MicroOp::AddARI { d, a, imm } => {
                    let aw = regs[a as usize];
                    regs[d as usize] = Word {
                        tag: aw.tag,
                        val: aw.val.wrapping_add(imm),
                    };
                    pc = at + 1;
                }
                MicroOp::MkTag { d, s, tag } => {
                    let v = regs[s as usize].val;
                    regs[d as usize] = Word { tag, val: v };
                    pc = at + 1;
                }
                MicroOp::BrRR { cond, a, b, t } => {
                    branch!(cond.eval(regs[a as usize].val, regs[b as usize].val), t, at);
                }
                MicroOp::BrRI { cond, a, imm, t } => {
                    branch!(cond.eval(regs[a as usize].val, imm), t, at);
                }
                MicroOp::BrTag { a, tag, eq, t } => {
                    branch!((regs[a as usize].tag == tag) == eq, t, at);
                }
                MicroOp::BrWord { a, w, eq, t } => {
                    branch!((regs[a as usize] == w) == eq, t, at);
                }
                MicroOp::BrWEq { a, b, eq, t } => {
                    branch!((regs[a as usize] == regs[b as usize]) == eq, t, at);
                }
                MicroOp::Jmp { t } => {
                    pc = t as usize;
                }
                MicroOp::JmpR { r } => {
                    let w = regs[r as usize];
                    if w.tag != Tag::Cod {
                        fail!(ExecError::BadCodeWord { word: w, at });
                    }
                    let id = w.val as u32;
                    match label_pc.get(id as usize) {
                        Some(&a) if a != u32::MAX => pc = a as usize,
                        _ => fail!(ExecError::UnmappedLabel {
                            label: Label(id),
                            at,
                        }),
                    }
                }
                MicroOp::Halt { success } => {
                    break Ok(if success {
                        Outcome::Success
                    } else {
                        Outcome::Failure
                    });
                }
                MicroOp::CmpBrRR {
                    op,
                    cond,
                    d,
                    a,
                    b,
                    ba,
                    bb,
                    t,
                } => {
                    let av = regs[a as usize].val;
                    let bv = regs[b as usize].val;
                    match op.eval(av, bv) {
                        Some(v) => regs[d as usize] = Word::int(v),
                        None => fail!(ExecError::DivideByZero { at }),
                    }
                    second!();
                    branch!(
                        cond.eval(regs[ba as usize].val, regs[bb as usize].val),
                        t,
                        at + 1
                    );
                }
                MicroOp::CmpBrRI {
                    op,
                    cond,
                    d,
                    a,
                    imm,
                    ba,
                    bimm,
                    t,
                } => {
                    let av = regs[a as usize].val;
                    match op.eval(av, imm as i64) {
                        Some(v) => regs[d as usize] = Word::int(v),
                        None => fail!(ExecError::DivideByZero { at }),
                    }
                    second!();
                    branch!(cond.eval(regs[ba as usize].val, bimm as i64), t, at + 1);
                }
                MicroOp::TagDeref {
                    a,
                    tag,
                    eq,
                    t,
                    d,
                    base,
                    off,
                } => {
                    let taken_now = (regs[a as usize].tag == tag) == eq;
                    predict!(taken_now, at);
                    if taken_now {
                        if STATS {
                            taken[at] += 1;
                        }
                        pc = t as usize;
                    } else {
                        second!();
                        let addr = regs[base as usize].val + off as i64;
                        match load(mem, addr, at + 1) {
                            Ok(w) => regs[d as usize] = w,
                            Err(e) => fail!(e),
                        }
                        pc = at + 2;
                    }
                }
                MicroOp::MvSt {
                    d,
                    s,
                    s2,
                    base,
                    off,
                } => {
                    regs[d as usize] = regs[s as usize];
                    second!();
                    let addr = regs[base as usize].val + off as i64;
                    let w = regs[s2 as usize];
                    if let Err(e) = store(mem, addr, w, at + 1) {
                        fail!(e);
                    }
                    pc = at + 2;
                }
                MicroOp::LdMv {
                    d,
                    base,
                    off,
                    d2,
                    s,
                } => {
                    let addr = regs[base as usize].val + off as i64;
                    match load(mem, addr, at) {
                        Ok(w) => regs[d as usize] = w,
                        Err(e) => fail!(e),
                    }
                    second!();
                    regs[d2 as usize] = regs[s as usize];
                    pc = at + 2;
                }
                MicroOp::MvIAlu {
                    d,
                    imm,
                    op,
                    d2,
                    a,
                    b,
                } => {
                    regs[d as usize] = Word::int(imm as i64);
                    second!();
                    let av = regs[a as usize].val;
                    let bv = regs[b as usize].val;
                    match op.eval(av, bv) {
                        Some(v) => regs[d2 as usize] = Word::int(v),
                        None => fail!(ExecError::DivideByZero { at: at + 1 }),
                    }
                    pc = at + 2;
                }
            }
        };
        self.pc = pc;
        r
    }

    /// Read access to a memory word (for tests and answer inspection).
    pub fn peek(&self, addr: i64) -> Option<Word> {
        usize::try_from(addr)
            .ok()
            .and_then(|i| self.mem.get(i))
            .copied()
    }

    /// Read access to a register (for tests and answer inspection).
    pub fn reg(&self, r: crate::op::R) -> Word {
        self.regs[r.0 as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;
    use crate::emu::Emulator;
    use crate::op::{AluOp, Cond, Op};

    fn tiny_layout() -> Layout {
        Layout {
            heap_size: 64,
            env_size: 64,
            cp_size: 64,
            trail_size: 64,
            pdl_size: 64,
        }
    }

    fn assemble(build: impl FnOnce(&mut Asm) -> Label) -> IciProgram {
        let mut a = Asm::new();
        let entry = build(&mut a);
        a.finish(entry)
    }

    /// Runs a program through both engines and asserts bit-identical
    /// results (success or error alike).
    fn differential(p: &IciProgram, cfg: &ExecConfig) {
        let layout = tiny_layout();
        let (lr, ls, ln) = Emulator::new(p, &layout).run_with_stats(cfg);
        let decoded = DecodedProgram::new(p);
        let (dr, ds, dn) = DecodedEmulator::new(&decoded, &layout).run_with_stats(cfg);
        assert_eq!(lr, dr, "outcome/error diverged");
        assert_eq!(ln, dn, "step count diverged");
        assert_eq!(ls.expect, ds.expect, "Expect counts diverged");
        assert_eq!(ls.taken, ds.taken, "taken counts diverged");
    }

    #[test]
    fn decoded_matches_legacy_on_a_counted_loop() {
        let p = assemble(|a| {
            let e = a.fresh_label();
            let lp = a.fresh_label();
            let i = a.fresh_reg();
            a.bind(e);
            a.emit(Op::MvI {
                d: i,
                w: Word::int(0),
            });
            a.bind(lp);
            a.emit(Op::Alu {
                op: AluOp::Add,
                d: i,
                a: i,
                b: Operand::Imm(1),
            });
            a.emit(Op::Br {
                cond: Cond::Lt,
                a: i,
                b: Operand::Imm(100),
                t: lp,
            });
            a.emit(Op::Halt { success: true });
            e
        });
        differential(&p, &ExecConfig::default());
    }

    #[test]
    fn decoded_matches_legacy_on_memory_and_tags() {
        let p = assemble(|a| {
            let e = a.fresh_label();
            let ok = a.fresh_label();
            let base = a.fresh_reg();
            let v = a.fresh_reg();
            let v2 = a.fresh_reg();
            a.bind(e);
            a.emit(Op::MvI {
                d: base,
                w: Word::int(8),
            });
            a.emit(Op::MvI {
                d: v,
                w: Word::atom(7),
            });
            a.emit(Op::MkTag {
                d: v,
                s: v,
                tag: Tag::Lst,
            });
            a.emit(Op::St { s: v, base, off: 3 });
            a.emit(Op::Ld {
                d: v2,
                base,
                off: 3,
            });
            a.emit(Op::AddA {
                d: base,
                a: base,
                b: Operand::Imm(1),
            });
            a.emit(Op::BrWEq {
                a: v,
                b: v2,
                eq: true,
                t: ok,
            });
            a.emit(Op::Halt { success: false });
            a.bind(ok);
            a.emit(Op::BrTag {
                a: v2,
                tag: Tag::Lst,
                eq: true,
                t: e, // loops forever if retaken — guarded by halt below
            });
            a.emit(Op::Halt { success: true });
            e
        });
        // The BrTag retakes the entry once; bound the run so both
        // engines hit the same step limit identically.
        differential(&p, &ExecConfig { max_steps: 50 });
    }

    #[test]
    fn decoded_matches_legacy_on_errors() {
        // Bad address.
        let p = assemble(|a| {
            let e = a.fresh_label();
            let base = a.fresh_reg();
            a.bind(e);
            a.emit(Op::MvI {
                d: base,
                w: Word::int(-3),
            });
            a.emit(Op::Ld {
                d: base,
                base,
                off: 0,
            });
            a.emit(Op::Halt { success: true });
            e
        });
        differential(&p, &ExecConfig::default());

        // Division by zero.
        let p = assemble(|a| {
            let e = a.fresh_label();
            let x = a.fresh_reg();
            a.bind(e);
            a.emit(Op::MvI {
                d: x,
                w: Word::int(5),
            });
            a.emit(Op::Alu {
                op: AluOp::Div,
                d: x,
                a: x,
                b: Operand::Imm(0),
            });
            a.emit(Op::Halt { success: true });
            e
        });
        differential(&p, &ExecConfig::default());

        // Indirect jump through a non-code word.
        let p = assemble(|a| {
            let e = a.fresh_label();
            let x = a.fresh_reg();
            a.bind(e);
            a.emit(Op::MvI {
                d: x,
                w: Word::int(1),
            });
            a.emit(Op::JmpR { r: x });
            a.emit(Op::Halt { success: true });
            e
        });
        differential(&p, &ExecConfig::default());
    }

    #[test]
    fn unmapped_indirect_label_is_an_error_in_both_engines() {
        // A `Word::code` immediate naming an unbound label would fail
        // program validation, so build the unmapped id at run time
        // instead: tag an integer as code.
        let p2 = assemble(|a| {
            let e = a.fresh_label();
            let x = a.fresh_reg();
            a.bind(e);
            a.emit(Op::MvI {
                d: x,
                w: Word::int(999),
            });
            a.emit(Op::MkTag {
                d: x,
                s: x,
                tag: Tag::Cod,
            });
            a.emit(Op::JmpR { r: x });
            a.emit(Op::Halt { success: true });
            e
        });
        let layout = tiny_layout();
        let err = Emulator::new(&p2, &layout)
            .run(&ExecConfig::default())
            .unwrap_err();
        assert!(
            matches!(
                err,
                ExecError::UnmappedLabel {
                    label: Label(999),
                    at: 2
                }
            ),
            "legacy: {err:?}"
        );
        let decoded = DecodedProgram::new(&p2);
        let derr = DecodedEmulator::new(&decoded, &layout)
            .run(&ExecConfig::default())
            .unwrap_err();
        assert_eq!(err, derr);
    }

    #[test]
    fn traced_runs_match() {
        let p = assemble(|a| {
            let e = a.fresh_label();
            let lp = a.fresh_label();
            let i = a.fresh_reg();
            a.bind(e);
            a.emit(Op::MvI {
                d: i,
                w: Word::int(0),
            });
            a.bind(lp);
            a.emit(Op::Alu {
                op: AluOp::Add,
                d: i,
                a: i,
                b: Operand::Imm(1),
            });
            a.emit(Op::Br {
                cond: Cond::Lt,
                a: i,
                b: Operand::Imm(40),
                t: lp,
            });
            a.emit(Op::Halt { success: true });
            e
        });
        let layout = tiny_layout();
        let mut legacy = Emulator::new(&p, &layout);
        legacy.set_trace(16);
        legacy.run(&ExecConfig::default()).unwrap();
        let decoded = DecodedProgram::new(&p);
        let mut fast = DecodedEmulator::new(&decoded, &layout);
        fast.set_trace(16);
        fast.run(&ExecConfig::default()).unwrap();
        assert_eq!(legacy.trace(), fast.trace());
    }

    #[test]
    fn profiled_run_is_bit_identical_and_predicts_loops_well() {
        // A 100-iteration counted loop: the backward branch is taken 99
        // times then falls through once. Starting from weakly-not-taken
        // (01) the counter mispredicts the first taken (moving to 10,
        // predict-taken) and the final fall-through — exactly 2
        // mispredictions.
        let p = assemble(|a| {
            let e = a.fresh_label();
            let lp = a.fresh_label();
            let i = a.fresh_reg();
            a.bind(e);
            a.emit(Op::MvI {
                d: i,
                w: Word::int(0),
            });
            a.bind(lp);
            a.emit(Op::Alu {
                op: AluOp::Add,
                d: i,
                a: i,
                b: Operand::Imm(1),
            });
            a.emit(Op::Br {
                cond: Cond::Lt,
                a: i,
                b: Operand::Imm(100),
                t: lp,
            });
            a.emit(Op::Halt { success: true });
            e
        });
        let layout = tiny_layout();
        let cfg = ExecConfig::default();
        let decoded = DecodedProgram::new(&p);
        let (r1, s1, n1) = DecodedEmulator::new(&decoded, &layout).run_with_stats(&cfg);
        let (r2, s2, n2, prof) = DecodedEmulator::new(&decoded, &layout).run_with_profile(&cfg);
        assert_eq!(
            r1.unwrap(),
            r2.unwrap(),
            "profiling must not change results"
        );
        assert_eq!(n1, n2);
        assert_eq!(s1.expect, s2.expect);
        assert_eq!(s1.taken, s2.taken);
        let branch_at = 2; // MvI, Alu, Br, Halt
        assert_eq!(s2.expect[branch_at], 100);
        assert_eq!(s2.taken[branch_at], 99);
        assert_eq!(prof.mispredict[branch_at], 2);
        assert_eq!(prof.total_mispredicts(), 2);
        let rate = prof.mispredict_rate(&p, &s2).unwrap();
        assert!((rate - 0.02).abs() < 1e-12, "rate {rate}");
    }

    #[test]
    fn hot_pcs_rank_by_execution_count() {
        let p = assemble(|a| {
            let e = a.fresh_label();
            let lp = a.fresh_label();
            let i = a.fresh_reg();
            a.bind(e);
            a.emit(Op::MvI {
                d: i,
                w: Word::int(0),
            });
            a.bind(lp);
            a.emit(Op::Alu {
                op: AluOp::Add,
                d: i,
                a: i,
                b: Operand::Imm(1),
            });
            a.emit(Op::Br {
                cond: Cond::Lt,
                a: i,
                b: Operand::Imm(10),
                t: lp,
            });
            a.emit(Op::Halt { success: true });
            e
        });
        let layout = tiny_layout();
        let decoded = DecodedProgram::new(&p);
        let (_, stats, _) =
            DecodedEmulator::new(&decoded, &layout).run_with_stats(&ExecConfig::default());
        let hot = stats.hot_pcs(2);
        // Ops 1 and 2 each ran 10 times; ties break by index.
        assert_eq!(hot, vec![(1, 10), (2, 10)]);
        assert_eq!(stats.hot_pcs(100).len(), 4, "halt and init ran once");
    }

    #[test]
    fn micro_op_records_stay_compact() {
        // The whole point of the decoded form is cache density: one
        // record must not grow past 32 bytes.
        assert!(std::mem::size_of::<MicroOp>() <= 32);
    }
}
