//! Trace scheduling is *guided* by the profile but must be *correct*
//! for any execution — compensation code and cold-path scheduling keep
//! the semantics even when the profile is empty or misleading.

use symbol_compactor::{compact, CompactMode, TracePolicy};
use symbol_intcode::{Emulator, ExecConfig, ExecStats, Layout, Outcome};
use symbol_prolog::PredId;
use symbol_vliw::{MachineConfig, SimConfig, SimOutcome, VliwSim};

fn prepare(src: &str) -> (symbol_intcode::IciProgram, ExecStats, Layout, Outcome) {
    let program = symbol_prolog::parse_program(src).expect("parse");
    let bam = symbol_bam::compile(&program).expect("compile");
    let main = PredId::new(program.symbols().lookup("main").expect("main"), 0);
    let layout = Layout {
        heap_size: 1 << 16,
        env_size: 1 << 14,
        cp_size: 1 << 14,
        trail_size: 1 << 14,
        pdl_size: 1 << 12,
    };
    let ici = symbol_intcode::translate(&bam, main, &layout).expect("translate");
    let run = Emulator::new(&ici, &layout)
        .run(&ExecConfig::default())
        .expect("sequential");
    (ici, run.stats, layout, run.outcome)
}

fn check_with_stats(src: &str, mangle: impl Fn(&ExecStats) -> ExecStats) {
    let (ici, stats, layout, outcome) = prepare(src);
    let want = match outcome {
        Outcome::Success => SimOutcome::Success,
        Outcome::Failure => SimOutcome::Failure,
    };
    let fake = mangle(&stats);
    for units in [1usize, 3] {
        let machine = MachineConfig::units(units);
        let compacted = compact(
            &ici,
            &fake,
            &machine,
            CompactMode::TraceSchedule,
            &TracePolicy::default(),
        );
        let sim = VliwSim::new(&compacted.program, machine, &layout)
            .run(&SimConfig::default())
            .expect("schedule runs");
        assert_eq!(sim.outcome, want, "{units} units with mangled profile");
    }
}

const PROGRAM: &str = "
    main :- qs([3,1,4,1,5,9,2,6], S, []), S = [1,1,2,3,4,5,6,9].
    qs([X|L], R, R0) :- part(L, X, L1, L2), qs(L2, R1, R0), qs(L1, R, [X|R1]).
    qs([], R, R).
    part([X|L], Y, [X|L1], L2) :- X =< Y, !, part(L, Y, L1, L2).
    part([X|L], Y, L1, [X|L2]) :- part(L, Y, L1, L2).
    part([], _, [], []).
";

#[test]
fn empty_profile_is_still_correct() {
    // All Expect counts zero: every block is "cold", trace picking has
    // nothing to go on, and the layout degenerates — but the answer
    // must survive.
    check_with_stats(PROGRAM, |s| ExecStats {
        expect: vec![0; s.expect.len()],
        taken: vec![0; s.taken.len()],
    });
}

#[test]
fn inverted_profile_is_still_correct() {
    // Branch probabilities flipped: the picker follows the *unlikely*
    // path everywhere — slower, never wrong.
    check_with_stats(PROGRAM, |s| ExecStats {
        expect: s.expect.clone(),
        taken: s
            .expect
            .iter()
            .zip(&s.taken)
            .map(|(&e, &t)| e - t)
            .collect(),
    });
}

#[test]
fn uniform_profile_is_still_correct() {
    // Every op claimed to execute exactly once, every branch 50/50.
    check_with_stats(PROGRAM, |s| ExecStats {
        expect: vec![1; s.expect.len()],
        taken: s.taken.iter().map(|_| 0).collect(),
    });
}

#[test]
fn misleading_profile_costs_cycles_but_not_answers() {
    let (ici, stats, layout, _) = prepare(PROGRAM);
    let machine = MachineConfig::units(3);
    let run = |st: &ExecStats| {
        let compacted = compact(
            &ici,
            st,
            &machine,
            CompactMode::TraceSchedule,
            &TracePolicy::default(),
        );
        VliwSim::new(&compacted.program, machine, &layout)
            .run(&SimConfig::default())
            .expect("runs")
            .cycles
    };
    let good = run(&stats);
    let inverted = ExecStats {
        expect: stats.expect.clone(),
        taken: stats
            .expect
            .iter()
            .zip(&stats.taken)
            .map(|(&e, &t)| e - t)
            .collect(),
    };
    let bad = run(&inverted);
    assert!(
        bad >= good,
        "a misleading profile should not beat the true one ({bad} < {good})"
    );
}
