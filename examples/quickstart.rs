//! Quickstart: compile a Prolog program through the whole SYMBOL
//! evaluation system and compare sequential and VLIW execution.
//!
//! ```sh
//! cargo run --release -p symbol-core --example quickstart
//! ```

use symbol_compactor::{sequential_cycles, try_compact, CompactMode, SeqDurations, TracePolicy};
use symbol_core::pipeline::Compiled;
use symbol_vliw::{MachineConfig, SimConfig, VliwSim};

const PROGRAM: &str = "
    main :- nrev([1,2,3,4,5,6,7,8,9,10], R),
            R = [10,9,8,7,6,5,4,3,2,1].

    nrev([], []).
    nrev([H|T], R) :- nrev(T, RT), app(RT, [H], R).

    app([], L, L).
    app([X|T], L, [X|R]) :- app(T, L, R).
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Prolog -> BAM -> IntCode.
    let compiled = Compiled::from_source(PROGRAM)?;
    let front = compiled.front.as_ref().expect("compiled from source");
    println!(
        "compiled: {} predicates, {} BAM instructions, {} IntCode ops",
        front.program.predicates().count(),
        front.bam.num_instructions(),
        compiled.ici.len()
    );

    // 2. Sequential emulation: correctness + profile.
    let run = compiled.run_sequential()?;
    let seq = sequential_cycles(&compiled.ici, &run.stats, &SeqDurations::default());
    println!("sequential: {} ops executed, {seq} cycles", run.steps);

    // 3. Trace-schedule for a 3-unit shared-memory VLIW and re-run.
    let machine = MachineConfig::units(3);
    let compacted = try_compact(
        &compiled.ici,
        &run.stats,
        &machine,
        CompactMode::TraceSchedule,
        &TracePolicy::default(),
    )?;
    let result =
        VliwSim::new(&compacted.program, machine, &compiled.layout).run(&SimConfig::default())?;
    println!(
        "3-unit VLIW: {} cycles ({} words, {} taken transfers) -> {:?}",
        result.cycles, result.instructions, result.taken_branches, result.outcome
    );
    println!(
        "speed-up over sequential: {:.2}x (trace length {:.1} ops, code growth {:.2}x)",
        seq as f64 / result.cycles as f64,
        compacted.stats.avg_region_len,
        compacted.stats.code_growth()
    );
    Ok(())
}
