//! Unit sweep: reproduce one row of the paper's Table 3 for any
//! benchmark of the suite — cycles and speed-up of the BAM model and
//! of 1..5-unit trace-scheduled VLIWs.
//!
//! ```sh
//! cargo run --release -p symbol-core --example unit_sweep -- queens_8
//! cargo run --release -p symbol-core --example unit_sweep -- queens_8 --json
//! ```

use symbol_core::benchmarks;
use symbol_core::experiments::measure;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    args.retain(|a| a != "--json");
    let name = args.first().cloned().unwrap_or_else(|| "queens_8".into());
    let bench = benchmarks::by_name(&name).ok_or_else(|| {
        format!(
            "unknown benchmark {name}; available: {}",
            benchmarks::ALL
                .iter()
                .map(|b| b.name)
                .collect::<Vec<_>>()
                .join(", ")
        )
    })?;

    let r = measure(bench)?;
    if json {
        let cycles = r
            .unit_cycles
            .iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        let speedups = (1..=5)
            .map(|u| format!("{:.6}", r.unit_speedup(u)))
            .collect::<Vec<_>>()
            .join(", ");
        println!(
            "{{\"bench\": \"{}\", \"ops\": {}, \"seq_cycles\": {}, \"bam_cycles\": {}, \
             \"bam_speedup\": {:.6}, \"unit_cycles\": [{cycles}], \
             \"unit_speedups\": [{speedups}], \"trace_length\": {:.6}, \
             \"pfp_average\": {:.6}}}",
            bench.name,
            r.ops,
            r.seq_cycles,
            r.bam_cycles,
            r.bam_speedup(),
            r.trace_length,
            r.pfp_average
        );
        return Ok(());
    }

    println!("{}: {}", bench.name, bench.description);
    println!(
        "sequential machine: {} cycles ({} ops, memory {:.1}%, control {:.1}%)",
        r.seq_cycles,
        r.ops,
        r.mix.memory * 100.0,
        r.mix.control * 100.0
    );
    println!(
        "BAM model:          {:>10} cycles   speed-up {:.2}",
        r.bam_cycles,
        r.bam_speedup()
    );
    for units in 1..=5 {
        println!(
            "{units} unit(s):          {:>10} cycles   speed-up {:.2}",
            r.unit_cycles[units - 1],
            r.unit_speedup(units)
        );
    }
    println!(
        "average trace length {:.1} ops; probability of faulty prediction {:.4}",
        r.trace_length, r.pfp_average
    );
    Ok(())
}
