//! `symbolc` — command-line front end for the SYMBOL evaluation system.
//!
//! ```text
//! symbolc run <file.pl> [units]     execute main/0 sequentially and on a VLIW
//! symbolc bam <file.pl>             print the BAM code listing
//! symbolc ici <file.pl>             print the IntCode listing
//! symbolc schedule <file.pl> [units] print the scheduled VLIW words
//! symbolc profile <file.pl>         instruction mix + branch predictability
//! symbolc sweep <file.pl>           BAM + 1..5-unit cycle counts
//! ```
//!
//! Files must define `main/0`; every simulated configuration re-checks
//! the sequential answer.

use std::process::ExitCode;

use symbol_analysis::{ClassMix, PredictStats};
use symbol_compactor::{sequential_cycles, try_compact, CompactMode, SeqDurations, TracePolicy};
use symbol_core::pipeline::{Compiled, PipelineError};
use symbol_vliw::{MachineConfig, SimConfig, SimOutcome, VliwSim};

fn usage() -> ExitCode {
    eprintln!("usage: symbolc <run|bam|ici|schedule|profile|sweep> <file.pl> [units]");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, path, units) = match args.as_slice() {
        [cmd, path] => (cmd.as_str(), path.as_str(), 3usize),
        [cmd, path, units] => match units.parse() {
            Ok(u) => (cmd.as_str(), path.as_str(), u),
            Err(_) => return usage(),
        },
        _ => return usage(),
    };

    let src = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("symbolc: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let compiled = match Compiled::from_source(&src) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("symbolc: {e}");
            return ExitCode::FAILURE;
        }
    };

    match dispatch(cmd, &compiled, units) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("symbolc: {e}");
            ExitCode::FAILURE
        }
    }
}

fn dispatch(cmd: &str, compiled: &Compiled, units: usize) -> Result<ExitCode, PipelineError> {
    match cmd {
        "bam" => {
            let front = compiled
                .front
                .as_ref()
                .expect("compiled from source, front end is present");
            print!(
                "{}",
                symbol_bam::pretty::program(&front.bam, front.program.symbols())
            );
            Ok(ExitCode::SUCCESS)
        }
        "ici" => {
            print!("{}", compiled.ici);
            Ok(ExitCode::SUCCESS)
        }
        "run" => match compiled.run_sequential() {
            Ok(run) => {
                let seq = sequential_cycles(&compiled.ici, &run.stats, &SeqDurations::default());
                println!(
                    "main/0: success ({} ops, {} sequential cycles)",
                    run.steps, seq
                );
                let machine = MachineConfig::units(units);
                let compacted = try_compact(
                    &compiled.ici,
                    &run.stats,
                    &machine,
                    CompactMode::TraceSchedule,
                    &TracePolicy::default(),
                )?;
                let sim = VliwSim::new(&compacted.program, machine, &compiled.layout)
                    .run(&SimConfig::default())?;
                if sim.outcome != SimOutcome::Success {
                    eprintln!("symbolc: scheduled code diverged from sequential execution");
                    return Ok(ExitCode::FAILURE);
                }
                println!(
                    "{units}-unit VLIW: {} cycles (speed-up {:.2})",
                    sim.cycles,
                    seq as f64 / sim.cycles as f64
                );
                Ok(ExitCode::SUCCESS)
            }
            Err(PipelineError::WrongAnswer) => {
                println!("main/0: failure (no solution)");
                Ok(ExitCode::from(1))
            }
            Err(e) => Err(e),
        },
        "schedule" => {
            let run = compiled.run_sequential()?;
            let machine = MachineConfig::units(units);
            let compacted = try_compact(
                &compiled.ici,
                &run.stats,
                &machine,
                CompactMode::TraceSchedule,
                &TracePolicy::default(),
            )?;
            print!("{}", compacted.program);
            eprintln!(
                "{} regions, {} compensation blocks, growth {:.2}x",
                compacted.stats.regions,
                compacted.stats.comp_blocks,
                compacted.stats.code_growth()
            );
            Ok(ExitCode::SUCCESS)
        }
        "profile" => {
            let run = compiled.run_sequential()?;
            let mix = ClassMix::measure(&compiled.ici, &run.stats);
            println!(
                "instruction mix: memory {:.1}%  alu {:.1}%  move {:.1}%  control {:.1}%",
                mix.memory * 100.0,
                mix.alu * 100.0,
                mix.mv * 100.0,
                mix.control * 100.0
            );
            let predict = PredictStats::measure(&compiled.ici, &run.stats);
            println!(
                "branches: {} executed, average P_fp {:.4}",
                predict.branches.len(),
                predict.average()
            );
            Ok(ExitCode::SUCCESS)
        }
        "sweep" => {
            let run = compiled.run_sequential()?;
            let seq = sequential_cycles(&compiled.ici, &run.stats, &SeqDurations::default());
            println!("sequential: {seq} cycles");
            let mut configs = vec![("bam", MachineConfig::bam(), CompactMode::BamGroups)];
            for u in 1..=5 {
                configs.push((
                    Box::leak(format!("{u} unit(s)").into_boxed_str()),
                    MachineConfig::units(u),
                    CompactMode::TraceSchedule,
                ));
            }
            for (name, machine, mode) in configs {
                let compacted = try_compact(
                    &compiled.ici,
                    &run.stats,
                    &machine,
                    mode,
                    &TracePolicy::default(),
                )?;
                let sim = VliwSim::new(&compacted.program, machine, &compiled.layout)
                    .run(&SimConfig::default())?;
                println!(
                    "{name:<10} {:>10} cycles   speed-up {:.2}",
                    sim.cycles,
                    seq as f64 / sim.cycles as f64
                );
            }
            Ok(ExitCode::SUCCESS)
        }
        _ => {
            let _ = usage();
            Ok(ExitCode::FAILURE)
        }
    }
}
