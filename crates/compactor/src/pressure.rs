//! Register-pressure analysis of scheduled code.
//!
//! The SYMBOL prototype has a 16-register bank per processor (paper
//! §5.2) while the compactor schedules over unbounded virtual
//! registers. This pass measures how many registers a schedule
//! actually needs — the maximum number of simultaneously live virtual
//! registers across the program — so the prototype's feasibility can
//! be judged (and a future register allocator sized).
//!
//! Liveness is computed at instruction-word granularity over the VLIW
//! program's own control-flow graph; fixed machine registers (ids
//! below `FIRST_TEMP`) are architectural state and counted separately.

use std::collections::HashSet;

use symbol_intcode::layout::reg;
use symbol_intcode::{Op, R};
use symbol_vliw::VliwProgram;

/// Register pressure measurements.
#[derive(Clone, Debug, PartialEq)]
pub struct Pressure {
    /// Maximum simultaneously live *temporary* registers at any word
    /// boundary.
    pub max_live_temps: usize,
    /// Number of fixed (architectural) registers the program touches.
    pub fixed_regs_used: usize,
    /// Number of distinct temporaries the program touches.
    pub temps_used: usize,
}

fn is_temp(r: R) -> bool {
    r.0 >= reg::FIRST_TEMP
}

/// Measures register pressure of a scheduled program.
pub fn measure(program: &VliwProgram) -> Pressure {
    let words = program.instrs();
    let n = words.len();

    // Per-word use/def sets (temps only) and successors.
    let mut uses: Vec<HashSet<R>> = Vec::with_capacity(n);
    let mut defs: Vec<HashSet<R>> = Vec::with_capacity(n);
    let mut succs: Vec<Vec<usize>> = Vec::with_capacity(n);
    let mut fixed: HashSet<R> = HashSet::new();
    let mut temps: HashSet<R> = HashSet::new();

    // Indirect transfers (calls returning, backtracking) carry no
    // live temporaries by construction: the translator keeps every
    // value that must survive a call or a retry in an environment or
    // choice-point slot, never in a renamed temporary. Indirect words
    // therefore end all temp live ranges.

    for (i, w) in words.iter().enumerate() {
        let mut u = HashSet::new();
        let mut d = HashSet::new();
        let mut s = Vec::new();
        let mut falls = true;
        for slot in &w.slots {
            for r in slot.op.uses() {
                if is_temp(r) {
                    u.insert(r);
                    temps.insert(r);
                } else {
                    fixed.insert(r);
                }
            }
            if let Some(r) = slot.op.def() {
                if is_temp(r) {
                    d.insert(r);
                    temps.insert(r);
                } else {
                    fixed.insert(r);
                }
            }
            match &slot.op {
                Op::Jmp { t } => {
                    s.push(program.label_addr(*t));
                    falls = false;
                }
                Op::JmpR { .. } => {
                    falls = false;
                }
                Op::Halt { .. } => falls = false,
                o if o.is_control() => {
                    if let Some(t) = o.target() {
                        s.push(program.label_addr(t));
                    }
                }
                _ => {}
            }
        }
        if falls && i + 1 < n {
            s.push(i + 1);
        }
        s.retain(|&x| x < n);
        uses.push(u);
        defs.push(d);
        succs.push(s);
    }

    // Backward liveness to a fixpoint.
    let mut live_in: Vec<HashSet<R>> = vec![HashSet::new(); n];
    let mut changed = true;
    while changed {
        changed = false;
        for i in (0..n).rev() {
            let mut out: HashSet<R> = HashSet::new();
            for &s in &succs[i] {
                out.extend(live_in[s].iter().copied());
            }
            let mut inn = uses[i].clone();
            for r in out {
                if !defs[i].contains(&r) {
                    inn.insert(r);
                }
            }
            if inn != live_in[i] {
                live_in[i] = inn;
                changed = true;
            }
        }
    }

    let max_live_temps = live_in.iter().map(HashSet::len).max().unwrap_or(0);
    Pressure {
        max_live_temps,
        fixed_regs_used: fixed.len(),
        temps_used: temps.len(),
    }
}

/// Convenience: pressure per trace-scheduled benchmark at a machine
/// width (used by the report).
pub fn pressure_summary(pressures: &[(String, Pressure)]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Register pressure of trace-scheduled code (prototype has a\n\
         16-register bank per unit plus the architectural registers):\n"
    );
    for (name, p) in pressures {
        let _ = writeln!(
            out,
            "  {name:<10} max live temps {:>3}   temps touched {:>5}   fixed regs {:>2}",
            p.max_live_temps, p.temps_used, p.fixed_regs_used
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap as Map;
    use symbol_intcode::{Label, Op, Word};
    use symbol_vliw::{SlotOp, VliwInstr};

    fn slot(op: Op) -> SlotOp {
        SlotOp {
            unit: 0,
            op,
            speculative: false,
        }
    }

    #[test]
    fn straight_line_pressure() {
        // t0 = 1; t1 = 2; t2 = t0+t1 (via moves); halt
        let t0 = R(reg::FIRST_TEMP);
        let t1 = R(reg::FIRST_TEMP + 1);
        let words = vec![
            VliwInstr {
                slots: vec![slot(Op::MvI {
                    d: t0,
                    w: Word::int(1),
                })],
            },
            VliwInstr {
                slots: vec![slot(Op::MvI {
                    d: t1,
                    w: Word::int(2),
                })],
            },
            VliwInstr {
                slots: vec![slot(Op::Alu {
                    op: symbol_intcode::AluOp::Add,
                    d: t0,
                    a: t0,
                    b: symbol_intcode::Operand::Reg(t1),
                })],
            },
            VliwInstr {
                slots: vec![slot(Op::Halt { success: true })],
            },
        ];
        let mut labels = Map::new();
        labels.insert(Label(0), 0);
        let p = VliwProgram::new(words, labels, 1, Label(0));
        let pr = measure(&p);
        assert_eq!(pr.max_live_temps, 2);
        assert_eq!(pr.temps_used, 2);
    }

    #[test]
    fn dead_code_has_no_pressure() {
        let t0 = R(reg::FIRST_TEMP);
        let words = vec![
            VliwInstr {
                slots: vec![slot(Op::MvI {
                    d: t0,
                    w: Word::int(1),
                })],
            },
            VliwInstr {
                slots: vec![slot(Op::Halt { success: true })],
            },
        ];
        let mut labels = Map::new();
        labels.insert(Label(0), 0);
        let p = VliwProgram::new(words, labels, 1, Label(0));
        let pr = measure(&p);
        assert_eq!(pr.max_live_temps, 0, "t0 is never read");
        assert_eq!(pr.temps_used, 1);
    }
}
