//! # symbol-obs
//!
//! The zero-dependency observability layer of the SYMBOL reproduction:
//! counters, gauges, log2-bucketed histograms, RAII span timers,
//! leveled events, and two exporters — a stable, diffable
//! `metrics.json` snapshot and a Chrome Trace Format (`trace_event`)
//! document that opens in Perfetto or `chrome://tracing`.
//!
//! ## Design
//!
//! * **Global-free.** There is no process-wide singleton: everything
//!   hangs off a [`Registry`] handle the application creates and passes
//!   down. Handles are `Arc`-backed clones, cheap to share across the
//!   scoped worker threads of the experiment drivers.
//! * **Atomics-only hot path.** Metric updates are single relaxed
//!   atomic operations; locks are only taken at registration and
//!   export time.
//! * **Free when off.** [`Registry::disabled`] hands out inert handles
//!   whose updates are a null check. The execution engines go further:
//!   their profiling hooks are monomorphized out behind const generics
//!   (see `symbol-intcode`'s and `symbol-vliw`'s decoded engines), so
//!   the disabled path is the same machine code as before the hooks
//!   existed — the `emulator_decode` bench enforces a <2% ceiling on
//!   any residual drift.
//!
//! ```
//! use symbol_obs::Registry;
//!
//! let obs = Registry::new();
//! let steps = obs.counter("emulator.steps", &[("bench", "qsort")]);
//! {
//!     let _span = obs.span("emulate", &[("bench", "qsort")]);
//!     steps.add(1000);
//! }
//! let snapshot = obs.snapshot();
//! assert_eq!(snapshot.counters[0].value, 1000);
//! let metrics_json = snapshot.to_json();
//! let trace_json = obs.chrome_trace_json();
//! # assert!(metrics_json.contains("emulator.steps"));
//! # assert!(trace_json.contains("emulate"));
//! ```

pub mod event;
pub mod export;
pub mod flight;
pub mod json;
pub mod metrics;
pub mod prom;
pub mod quantile;
pub mod timeline;
pub mod trace;

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

pub use event::{EventRecord, Events, Level};
pub use export::{BucketSample, CounterSample, GaugeSample, HistogramSample, Snapshot};
pub use flight::{FlightKind, FlightRecord, FlightRecorder};
pub use metrics::{bucket_bounds, bucket_index, Counter, Gauge, Histogram};
pub use prom::to_prometheus;
pub use quantile::QuantileView;
pub use timeline::{Timeline, TimelineRecorder};
pub use trace::{chrome_trace_json, thread_id, Span, TraceEvent};

use metrics::{CounterCell, GaugeCell, HistogramCell, MetricId};

#[derive(Debug)]
struct RegistryInner {
    /// Zero point of all trace timestamps.
    epoch: Instant,
    counters: Mutex<Vec<Arc<CounterCell>>>,
    gauges: Mutex<Vec<Arc<GaugeCell>>>,
    histograms: Mutex<Vec<Arc<HistogramCell>>>,
    trace: Mutex<Vec<TraceEvent>>,
    events: Events,
}

/// The root observability handle. Clone freely; all clones share the
/// same metric cells, trace buffer and event sink.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    inner: Option<Arc<RegistryInner>>,
}

impl Registry {
    /// An enabled registry collecting events up to [`Level::Info`].
    pub fn new() -> Self {
        Registry::with_events(Events::collecting(Level::Info))
    }

    /// An enabled registry with an explicit event sink (e.g.
    /// [`Events::stderr`] for live diagnostics in a binary).
    pub fn with_events(events: Events) -> Self {
        Registry {
            inner: Some(Arc::new(RegistryInner {
                epoch: Instant::now(),
                counters: Mutex::new(Vec::new()),
                gauges: Mutex::new(Vec::new()),
                histograms: Mutex::new(Vec::new()),
                trace: Mutex::new(Vec::new()),
                events,
            })),
        }
    }

    /// The disabled registry: every handle it produces is inert, every
    /// span a no-op. This is the default threaded through the library
    /// APIs, so un-instrumented callers pay only null checks.
    pub fn disabled() -> Self {
        Registry { inner: None }
    }

    /// Whether this registry records anything.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Finds or creates the counter `name` with `labels`.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let Some(inner) = &self.inner else {
            return Counter::noop();
        };
        let id = MetricId::new(name, labels);
        let mut counters = inner.counters.lock().expect("counter table poisoned");
        if let Some(c) = counters.iter().find(|c| c.id == id) {
            return Counter(Some(c.clone()));
        }
        let cell = Arc::new(CounterCell {
            id,
            value: Default::default(),
        });
        counters.push(cell.clone());
        Counter(Some(cell))
    }

    /// Finds or creates the gauge `name` with `labels`.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let Some(inner) = &self.inner else {
            return Gauge::noop();
        };
        let id = MetricId::new(name, labels);
        let mut gauges = inner.gauges.lock().expect("gauge table poisoned");
        if let Some(g) = gauges.iter().find(|g| g.id == id) {
            return Gauge(Some(g.clone()));
        }
        let cell = Arc::new(GaugeCell {
            id,
            value: Default::default(),
        });
        gauges.push(cell.clone());
        Gauge(Some(cell))
    }

    /// Finds or creates the histogram `name` with `labels`.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        let Some(inner) = &self.inner else {
            return Histogram::noop();
        };
        let id = MetricId::new(name, labels);
        let mut histograms = inner.histograms.lock().expect("histogram table poisoned");
        if let Some(h) = histograms.iter().find(|h| h.id == id) {
            return Histogram(Some(h.clone()));
        }
        let cell = Arc::new(HistogramCell::new(id));
        histograms.push(cell.clone());
        Histogram(Some(cell))
    }

    /// Pre-resolves `n` counters of `name` distinguished by a dense
    /// index label (`key="0"` .. `key="n-1"`). Sharded hot paths (one
    /// metric cell per worker queue) resolve the whole set once at
    /// startup and index it with the shard id, so the hot path never
    /// formats a label string or takes the registry lock.
    pub fn indexed_counters(&self, name: &str, key: &str, n: usize) -> Vec<Counter> {
        (0..n)
            .map(|i| self.counter(name, &[(key, &i.to_string())]))
            .collect()
    }

    /// [`Registry::indexed_counters`] for gauges.
    pub fn indexed_gauges(&self, name: &str, key: &str, n: usize) -> Vec<Gauge> {
        (0..n)
            .map(|i| self.gauge(name, &[(key, &i.to_string())]))
            .collect()
    }

    /// [`Registry::indexed_counters`] for histograms.
    pub fn indexed_histograms(&self, name: &str, key: &str, n: usize) -> Vec<Histogram> {
        (0..n)
            .map(|i| self.histogram(name, &[(key, &i.to_string())]))
            .collect()
    }

    /// Opens an RAII span named `name`. On drop it appends a Chrome
    /// Trace event and records the duration into the histogram
    /// `span.<name>.ns` with the same labels.
    pub fn span(&self, name: &str, labels: &[(&str, &str)]) -> Span {
        if self.inner.is_none() {
            return Span::noop();
        }
        let histogram = self.histogram(&format!("span.{name}.ns"), labels);
        Span {
            state: Some(trace::SpanState {
                registry: self.clone(),
                name: name.to_string(),
                labels: labels
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.to_string()))
                    .collect(),
                start: Instant::now(),
                histogram,
            }),
        }
    }

    /// Opens an RAII span that records only a Chrome Trace event —
    /// no `span.<name>.ns` histogram. Use this for labels with
    /// unbounded cardinality (request ids): a regular [`Registry::span`]
    /// would mint one histogram cell per distinct label set and the
    /// registry would grow without bound.
    pub fn event_span(&self, name: &str, labels: &[(&str, &str)]) -> Span {
        if self.inner.is_none() {
            return Span::noop();
        }
        Span {
            state: Some(trace::SpanState {
                registry: self.clone(),
                name: name.to_string(),
                labels: labels
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.to_string()))
                    .collect(),
                start: Instant::now(),
                histogram: Histogram::noop(),
            }),
        }
    }

    /// Nanoseconds elapsed since this registry was created (0 when
    /// disabled) — the clock timeline ticks and flight-dump stamps
    /// share so they can be correlated.
    pub fn now_ns(&self) -> u64 {
        self.elapsed_since_epoch(Instant::now()).as_nanos() as u64
    }

    /// The registry's event sink (the silent sink when disabled).
    pub fn events(&self) -> Events {
        self.inner
            .as_ref()
            .map_or_else(Events::silent, |i| i.events.clone())
    }

    /// Takes a point-in-time, canonically sorted copy of every metric.
    pub fn snapshot(&self) -> Snapshot {
        let Some(inner) = &self.inner else {
            return Snapshot::default();
        };
        let mut counters: Vec<CounterSample> = inner
            .counters
            .lock()
            .expect("counter table poisoned")
            .iter()
            .map(|c| CounterSample {
                name: c.id.name.clone(),
                labels: c.id.labels.clone(),
                value: c.value.load(std::sync::atomic::Ordering::Relaxed),
            })
            .collect();
        counters.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        let mut gauges: Vec<GaugeSample> = inner
            .gauges
            .lock()
            .expect("gauge table poisoned")
            .iter()
            .map(|g| GaugeSample {
                name: g.id.name.clone(),
                labels: g.id.labels.clone(),
                value: g.value.load(std::sync::atomic::Ordering::Relaxed),
            })
            .collect();
        gauges.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        let mut histograms: Vec<HistogramSample> = inner
            .histograms
            .lock()
            .expect("histogram table poisoned")
            .iter()
            .map(|h| HistogramSample::from_cell(h))
            .collect();
        histograms.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        Snapshot {
            counters,
            gauges,
            histograms,
        }
    }

    /// Copies out the completed trace events recorded so far.
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        self.inner.as_ref().map_or_else(Vec::new, |i| {
            i.trace.lock().expect("trace buffer poisoned").clone()
        })
    }

    /// Renders the recorded spans as a Chrome Trace Format document.
    pub fn chrome_trace_json(&self) -> String {
        chrome_trace_json(&self.trace_events())
    }

    pub(crate) fn push_trace_event(&self, e: TraceEvent) {
        if let Some(inner) = &self.inner {
            inner.trace.lock().expect("trace buffer poisoned").push(e);
        }
    }

    pub(crate) fn elapsed_since_epoch(&self, t: Instant) -> Duration {
        self.inner.as_ref().map_or(Duration::ZERO, |i| {
            t.checked_duration_since(i.epoch).unwrap_or_default()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_hands_out_inert_handles() {
        let r = Registry::disabled();
        assert!(!r.enabled());
        r.counter("c", &[]).add(1);
        r.gauge("g", &[]).set(1);
        r.histogram("h", &[]).record(1);
        drop(r.span("s", &[]));
        let s = r.snapshot();
        assert!(s.counters.is_empty() && s.gauges.is_empty() && s.histograms.is_empty());
        assert!(r.trace_events().is_empty());
        assert!(!r.events().enabled(Level::Error));
    }

    #[test]
    fn indexed_handles_resolve_per_index_cells() {
        let r = Registry::new();
        let gauges = r.indexed_gauges("q.depth", "shard", 3);
        assert_eq!(gauges.len(), 3);
        gauges[0].add(5);
        gauges[2].add(7);
        assert_eq!(r.gauge("q.depth", &[("shard", "0")]).get(), 5);
        assert_eq!(r.gauge("q.depth", &[("shard", "2")]).get(), 7);
        let counters = r.indexed_counters("q.steals", "shard", 2);
        counters[1].inc();
        assert_eq!(r.counter("q.steals", &[("shard", "1")]).get(), 1);
        let hists = r.indexed_histograms("q.batch", "shard", 2);
        hists[0].record(4);
        assert_eq!(r.histogram("q.batch", &[("shard", "0")]).count(), 1);
        // Disabled registries hand out inert sets of the right size.
        let d = Registry::disabled();
        assert_eq!(d.indexed_gauges("q.depth", "shard", 4).len(), 4);
    }

    #[test]
    fn handles_are_find_or_create() {
        let r = Registry::new();
        let a = r.counter("steps", &[("b", "x")]);
        let b = r.counter("steps", &[("b", "x")]);
        a.add(2);
        b.add(3);
        assert_eq!(a.get(), 5, "same identity shares one cell");
        let other = r.counter("steps", &[("b", "y")]);
        assert_eq!(other.get(), 0, "different labels are a different cell");
    }

    #[test]
    fn label_order_does_not_matter() {
        let r = Registry::new();
        r.counter("m", &[("a", "1"), ("z", "2")]).inc();
        r.counter("m", &[("z", "2"), ("a", "1")]).inc();
        assert_eq!(r.snapshot().counters.len(), 1);
        assert_eq!(r.snapshot().counters[0].value, 2);
    }

    #[test]
    fn spans_record_trace_events_and_histograms() {
        let r = Registry::new();
        {
            let _s = r.span("compile", &[("bench", "tak")]);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let events = r.trace_events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "compile");
        assert!(events[0].dur_us >= 1000);
        let snap = r.snapshot();
        assert_eq!(snap.histograms.len(), 1);
        assert_eq!(snap.histograms[0].name, "span.compile.ns");
        assert_eq!(snap.histograms[0].count, 1);
    }

    #[test]
    fn event_spans_trace_without_minting_histograms() {
        let r = Registry::new();
        for req in 0..10u64 {
            let id = req.to_string();
            drop(r.event_span("serve.query", &[("req", &id)]));
        }
        assert_eq!(r.trace_events().len(), 10);
        assert!(
            r.snapshot().histograms.is_empty(),
            "per-request spans must not create histogram cells"
        );
        drop(Registry::disabled().event_span("s", &[]));
    }

    #[test]
    fn now_ns_is_monotone_and_zero_when_disabled() {
        let r = Registry::new();
        let a = r.now_ns();
        std::thread::sleep(std::time::Duration::from_millis(1));
        assert!(r.now_ns() > a);
        assert_eq!(Registry::disabled().now_ns(), 0);
    }

    #[test]
    fn clones_share_state() {
        let r = Registry::new();
        let c = r.clone().counter("shared", &[]);
        c.inc();
        assert_eq!(r.snapshot().counters[0].value, 1);
    }
}
