//! BAM → IntCode translation.
//!
//! Expands every BAM instruction into a short sequence of ICIs
//! (tagged with a group id — the compaction barrier of the BAM cost
//! model), generates the top-level driver, and appends the three
//! runtime routines every program shares:
//!
//! * `fail` — trail unwinding and choice-point state restoration;
//! * `unify` — general unification with an explicit push-down list;
//! * `struct_eq` — structural equality for `==/2` / `\==/2`.
//!
//! Temporary BAM slots are renamed to fresh virtual registers per
//! predicate (the paper's "variable renaming procedure in order to
//! eliminate redundant data-dependencies", §3.1).

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use symbol_bam::{BamInstr, BamLabel, BamProgram, Cmp, Const, Slot, TagClass, TypeTest};
use symbol_prolog::PredId;

use crate::asm::Asm;
use crate::layout::{cp_frame, env_frame, reg, Layout};
use crate::op::{AluOp, Cond, Label, Op, Operand, R};
use crate::program::IciProgram;
use crate::word::{Tag, Word};

/// Constant-switch tables up to this size use a linear compare chain;
/// larger ones binary-search (paper §2's hashing support).
const LINEAR_SWITCH_LIMIT: usize = 6;

/// Translation failure.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TranslateError {
    /// The requested entry predicate has no code.
    MissingEntry {
        /// Rendered `name/arity`.
        pred: String,
    },
    /// A predicate's arity exceeds the 16 argument registers.
    ArityTooLarge {
        /// The offending arity.
        arity: usize,
    },
    /// The assembled program failed [`IciProgram::try_new`] validation.
    /// A defect here is a translator bug, but the serving tier must see
    /// it as an error value, never a panic.
    Program(crate::program::ProgramError),
}

impl fmt::Display for TranslateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TranslateError::MissingEntry { pred } => {
                write!(f, "entry predicate {pred} is not defined")
            }
            TranslateError::ArityTooLarge { arity } => {
                write!(f, "arity {arity} exceeds the argument register file")
            }
            TranslateError::Program(e) => write!(f, "assembled program is malformed: {e}"),
        }
    }
}

impl From<crate::program::ProgramError> for TranslateError {
    fn from(e: crate::program::ProgramError) -> Self {
        TranslateError::Program(e)
    }
}

impl Error for TranslateError {}

/// Translates a compiled BAM program into an executable [`IciProgram`]
/// entered through a driver that calls `entry` and halts.
///
/// # Errors
///
/// Returns [`TranslateError`] if `entry` is undefined or a predicate's
/// arity does not fit the argument register file.
pub fn translate(
    bam: &BamProgram,
    entry: PredId,
    layout: &Layout,
) -> Result<IciProgram, TranslateError> {
    translate_with_events(bam, entry, layout, &symbol_obs::Events::silent())
}

/// [`translate`] with translator diagnostics emitted to `events`
/// instead of any output stream — the library never prints; the caller
/// decides whether events are collected, echoed or dropped.
///
/// # Errors
///
/// See [`translate`].
pub fn translate_with_events(
    bam: &BamProgram,
    entry: PredId,
    layout: &Layout,
    events: &symbol_obs::Events,
) -> Result<IciProgram, TranslateError> {
    let mut tr = Tr::new(bam, layout);
    let emit_err = |e: &TranslateError| {
        events.emit_with(symbol_obs::Level::Error, "intcode::translate", || {
            format!("translation failed: {e}")
        });
    };
    if let Err(e) = tr.check_arities() {
        emit_err(&e);
        return Err(e);
    }
    let entry_label = match tr.emit_driver(entry) {
        Ok(l) => l,
        Err(e) => {
            emit_err(&e);
            return Err(e);
        }
    };
    for pred in bam.predicates() {
        tr.emit_predicate(pred.id, &pred.code);
    }
    tr.emit_fail_routine();
    tr.emit_unify_routine();
    tr.emit_struct_eq_routine();
    let program = match tr.asm.try_finish(entry_label) {
        Ok(p) => p,
        Err(e) => {
            let e = TranslateError::from(e);
            emit_err(&e);
            return Err(e);
        }
    };
    events.emit_with(symbol_obs::Level::Info, "intcode::translate", || {
        format!(
            "translated {} BAM predicates to {} intermediate code instructions",
            bam.predicates().count(),
            program.ops().len()
        )
    });
    Ok(program)
}

struct Tr<'a> {
    asm: Asm,
    layout: &'a Layout,
    bam: &'a BamProgram,
    pred_entry: HashMap<PredId, Label>,
    fail: Label,
    unify: Label,
    struct_eq: Label,
}

impl<'a> Tr<'a> {
    fn new(bam: &'a BamProgram, layout: &'a Layout) -> Self {
        let mut asm = Asm::new();
        let fail = asm.fresh_label();
        let unify = asm.fresh_label();
        let struct_eq = asm.fresh_label();
        let mut pred_entry = HashMap::new();
        for p in bam.predicates() {
            let l = asm.fresh_label();
            pred_entry.insert(p.id, l);
        }
        Tr {
            asm,
            layout,
            bam,
            pred_entry,
            fail,
            unify,
            struct_eq,
        }
    }

    fn check_arities(&self) -> Result<(), TranslateError> {
        for p in self.bam.predicates() {
            if p.id.arity > reg::NUM_ARGS as usize {
                return Err(TranslateError::ArityTooLarge { arity: p.id.arity });
            }
        }
        Ok(())
    }

    // ---------------- driver ----------------

    fn emit_driver(&mut self, entry: PredId) -> Result<Label, TranslateError> {
        let main = *self
            .pred_entry
            .get(&entry)
            .ok_or_else(|| TranslateError::MissingEntry {
                pred: format!("{:?}/{}", entry.name, entry.arity),
            })?;
        let start = self.asm.fresh_label();
        let done = self.asm.fresh_label();
        let halt_fail = self.asm.fresh_label();
        let l = *self.layout;

        self.asm.bind(start);
        self.asm.next_group();
        let a = &mut self.asm;
        a.emit(Op::MvI {
            d: reg::H,
            w: Word::int(l.heap_base()),
        });
        a.emit(Op::MvI {
            d: reg::HB,
            w: Word::int(l.heap_base()),
        });
        a.emit(Op::MvI {
            d: reg::E,
            w: Word::int(l.env_base()),
        });
        a.emit(Op::MvI {
            d: reg::ETOP,
            w: Word::int(l.env_base()),
        });
        a.emit(Op::MvI {
            d: reg::EB,
            w: Word::int(l.env_base()),
        });
        a.emit(Op::MvI {
            d: reg::TR,
            w: Word::int(l.trail_base()),
        });
        a.emit(Op::MvI {
            d: reg::PDL,
            w: Word::int(l.pdl_base()),
        });
        // Sentinel choice point (arity 0): failing past it halts.
        a.emit(Op::MvI {
            d: reg::B,
            w: Word::int(l.cp_base() + cp_frame::FIXED as i64),
        });
        a.emit(Op::St {
            s: reg::H,
            base: reg::B,
            off: -cp_frame::SAVED_H,
        });
        a.emit(Op::St {
            s: reg::TR,
            base: reg::B,
            off: -cp_frame::SAVED_TR,
        });
        let t = a.fresh_reg();
        a.emit(Op::MvI {
            d: t,
            w: Word::code(halt_fail.0),
        });
        a.emit(Op::St {
            s: t,
            base: reg::B,
            off: -cp_frame::RETRY,
        });
        a.emit(Op::St {
            s: reg::B,
            base: reg::B,
            off: -cp_frame::PREV_B,
        });
        a.emit(Op::St {
            s: reg::E,
            base: reg::B,
            off: -cp_frame::SAVED_E,
        });
        a.emit(Op::St {
            s: reg::ETOP,
            base: reg::B,
            off: -cp_frame::SAVED_ETOP,
        });
        let t2 = a.fresh_reg();
        a.emit(Op::MvI {
            d: t2,
            w: Word::code(done.0),
        });
        a.emit(Op::St {
            s: t2,
            base: reg::B,
            off: -cp_frame::SAVED_CP,
        });
        a.emit(Op::St {
            s: reg::B,
            base: reg::B,
            off: -cp_frame::SAVED_B0,
        });
        let t3 = a.fresh_reg();
        a.emit(Op::MvI {
            d: t3,
            w: Word::int(0),
        });
        a.emit(Op::St {
            s: t3,
            base: reg::B,
            off: -cp_frame::ARITY,
        });
        a.emit(Op::St {
            s: reg::EB,
            base: reg::B,
            off: -cp_frame::SAVED_EB,
        });
        a.emit(Op::Mv {
            d: reg::B0,
            s: reg::B,
        });
        a.emit(Op::MvI {
            d: reg::CP,
            w: Word::code(done.0),
        });
        a.emit(Op::Jmp { t: main });
        a.bind(done);
        a.emit(Op::Halt { success: true });
        a.bind(halt_fail);
        a.emit(Op::Halt { success: false });
        Ok(start)
    }

    // ---------------- predicates ----------------

    fn emit_predicate(&mut self, id: PredId, code: &[BamInstr]) {
        let entry = self.pred_entry[&id];
        self.asm.bind(entry);
        let mut ctx = PredCtx::default();
        for ins in code {
            self.emit_instr(ins, &mut ctx);
        }
    }

    fn lbl(&mut self, ctx: &mut PredCtx, l: BamLabel) -> Label {
        if l == symbol_bam::compile::clause::FAIL {
            return self.fail;
        }
        *ctx.labels
            .entry(l)
            .or_insert_with(|| self.asm.fresh_label())
    }

    fn temp(&mut self, ctx: &mut PredCtx, k: usize) -> R {
        *ctx.temps.entry(k).or_insert_with(|| self.asm.fresh_reg())
    }

    /// Reads a slot into a register (loads permanents from the frame).
    fn read_slot(&mut self, ctx: &mut PredCtx, s: Slot) -> R {
        match s {
            Slot::Arg(i) => reg::arg(i),
            Slot::Temp(k) => self.temp(ctx, k),
            Slot::Perm(k) => {
                let t = self.asm.fresh_reg();
                self.asm.emit(Op::Ld {
                    d: t,
                    base: reg::E,
                    off: env_frame::SLOTS + k as i32,
                });
                t
            }
        }
    }

    /// Writes register `r` into a slot.
    fn write_slot(&mut self, ctx: &mut PredCtx, s: Slot, r: R) {
        match s {
            Slot::Arg(i) => {
                let d = reg::arg(i);
                if d != r {
                    self.asm.emit(Op::Mv { d, s: r });
                }
            }
            Slot::Temp(k) => {
                let d = self.temp(ctx, k);
                if d != r {
                    self.asm.emit(Op::Mv { d, s: r });
                }
            }
            Slot::Perm(k) => {
                self.asm.emit(Op::St {
                    s: r,
                    base: reg::E,
                    off: env_frame::SLOTS + k as i32,
                });
            }
        }
    }

    fn const_word(c: Const) -> Word {
        match c {
            Const::Int(i) => Word::int(i),
            Const::Atom(a) => Word::atom(a.0),
        }
    }

    fn heap_push(&mut self, r: R) {
        self.asm.emit(Op::St {
            s: r,
            base: reg::H,
            off: 0,
        });
        self.asm.emit(Op::Alu {
            op: AluOp::Add,
            d: reg::H,
            a: reg::H,
            b: Operand::Imm(1),
        });
    }

    fn operand_to_reg(&mut self, ctx: &mut PredCtx, o: symbol_bam::Operand) -> R {
        match o {
            symbol_bam::Operand::Slot(s) => self.read_slot(ctx, s),
            symbol_bam::Operand::Const(c) => {
                let t = self.asm.fresh_reg();
                self.asm.emit(Op::MvI {
                    d: t,
                    w: Self::const_word(c),
                });
                t
            }
        }
    }

    fn arith_operand(&mut self, ctx: &mut PredCtx, o: symbol_bam::Operand) -> Operand {
        match o {
            symbol_bam::Operand::Slot(s) => Operand::Reg(self.read_slot(ctx, s)),
            symbol_bam::Operand::Const(Const::Int(i)) => Operand::Imm(i),
            symbol_bam::Operand::Const(c) => {
                let t = self.asm.fresh_reg();
                self.asm.emit(Op::MvI {
                    d: t,
                    w: Self::const_word(c),
                });
                Operand::Reg(t)
            }
        }
    }

    // ---------------- instruction expansion ----------------

    #[allow(clippy::too_many_lines)]
    fn emit_instr(&mut self, ins: &BamInstr, ctx: &mut PredCtx) {
        let env_base = self.layout.env_base();
        match ins {
            BamInstr::Label(l) => {
                let l = self.lbl(ctx, *l);
                self.asm.bind(l);
            }
            BamInstr::Jump(l) => {
                self.asm.next_group();
                let l = self.lbl(ctx, *l);
                self.asm.emit(Op::Jmp { t: l });
            }
            BamInstr::Fail => {
                self.asm.next_group();
                let f = self.fail;
                self.asm.emit(Op::Jmp { t: f });
            }
            BamInstr::Call(p) => {
                self.asm.next_group();
                let ret = self.asm.fresh_label();
                let target = self.pred_entry[p];
                self.asm.emit(Op::MvI {
                    d: reg::CP,
                    w: Word::code(ret.0),
                });
                self.asm.emit(Op::Jmp { t: target });
                self.asm.bind(ret);
            }
            BamInstr::Execute(p) => {
                self.asm.next_group();
                let target = self.pred_entry[p];
                self.asm.emit(Op::Jmp { t: target });
            }
            BamInstr::Proceed => {
                self.asm.next_group();
                self.asm.emit(Op::JmpR { r: reg::CP });
            }
            BamInstr::Allocate(n) => {
                self.asm.next_group();
                let t = self.asm.fresh_reg();
                self.asm.emit(Op::Alu {
                    op: AluOp::Max,
                    d: t,
                    a: reg::ETOP,
                    b: Operand::Reg(reg::EB),
                });
                self.asm.emit(Op::St {
                    s: reg::E,
                    base: t,
                    off: env_frame::PREV_E,
                });
                self.asm.emit(Op::St {
                    s: reg::CP,
                    base: t,
                    off: env_frame::SAVED_CP,
                });
                self.asm.emit(Op::Mv { d: reg::E, s: t });
                self.asm.emit(Op::Alu {
                    op: AluOp::Add,
                    d: reg::ETOP,
                    a: reg::E,
                    b: Operand::Imm(env_frame::SLOTS as i64 + *n as i64),
                });
            }
            BamInstr::Deallocate => {
                self.asm.next_group();
                self.asm.emit(Op::Ld {
                    d: reg::CP,
                    base: reg::E,
                    off: env_frame::SAVED_CP,
                });
                self.asm.emit(Op::Mv {
                    d: reg::ETOP,
                    s: reg::E,
                });
                self.asm.emit(Op::Ld {
                    d: reg::E,
                    base: reg::ETOP,
                    off: env_frame::PREV_E,
                });
            }
            BamInstr::Try {
                arity,
                first,
                retry,
            } => {
                self.asm.next_group();
                let first = self.lbl(ctx, *first);
                let retry = self.lbl(ctx, *retry);
                let nb = self.asm.fresh_reg();
                self.asm.emit(Op::AddA {
                    d: nb,
                    a: reg::B,
                    b: Operand::Imm(cp_frame::FIXED as i64 + *arity as i64),
                });
                self.asm.emit(Op::St {
                    s: reg::H,
                    base: nb,
                    off: -cp_frame::SAVED_H,
                });
                self.asm.emit(Op::St {
                    s: reg::TR,
                    base: nb,
                    off: -cp_frame::SAVED_TR,
                });
                let t = self.asm.fresh_reg();
                self.asm.emit(Op::MvI {
                    d: t,
                    w: Word::code(retry.0),
                });
                self.asm.emit(Op::St {
                    s: t,
                    base: nb,
                    off: -cp_frame::RETRY,
                });
                self.asm.emit(Op::St {
                    s: reg::B,
                    base: nb,
                    off: -cp_frame::PREV_B,
                });
                self.asm.emit(Op::St {
                    s: reg::E,
                    base: nb,
                    off: -cp_frame::SAVED_E,
                });
                self.asm.emit(Op::St {
                    s: reg::ETOP,
                    base: nb,
                    off: -cp_frame::SAVED_ETOP,
                });
                self.asm.emit(Op::St {
                    s: reg::CP,
                    base: nb,
                    off: -cp_frame::SAVED_CP,
                });
                self.asm.emit(Op::St {
                    s: reg::B0,
                    base: nb,
                    off: -cp_frame::SAVED_B0,
                });
                let ta = self.asm.fresh_reg();
                self.asm.emit(Op::MvI {
                    d: ta,
                    w: Word::int(*arity as i64),
                });
                self.asm.emit(Op::St {
                    s: ta,
                    base: nb,
                    off: -cp_frame::ARITY,
                });
                for i in 0..*arity {
                    self.asm.emit(Op::St {
                        s: reg::arg(i),
                        base: nb,
                        off: -(cp_frame::ARGS_START + i as i32),
                    });
                }
                // Protected boundary: monotone max (see layout::cp_frame).
                let teb = self.asm.fresh_reg();
                self.asm.emit(Op::Alu {
                    op: AluOp::Max,
                    d: teb,
                    a: reg::ETOP,
                    b: Operand::Reg(reg::EB),
                });
                self.asm.emit(Op::St {
                    s: teb,
                    base: nb,
                    off: -cp_frame::SAVED_EB,
                });
                self.asm.emit(Op::Mv { d: reg::EB, s: teb });
                self.asm.emit(Op::Mv { d: reg::B, s: nb });
                self.asm.emit(Op::Mv {
                    d: reg::HB,
                    s: reg::H,
                });
                self.asm.emit(Op::Jmp { t: first });
            }
            BamInstr::Retry { arity, alt, retry } => {
                self.asm.next_group();
                let alt = self.lbl(ctx, *alt);
                let retry = self.lbl(ctx, *retry);
                for i in 0..*arity {
                    self.asm.emit(Op::Ld {
                        d: reg::arg(i),
                        base: reg::B,
                        off: -(cp_frame::ARGS_START + i as i32),
                    });
                }
                let t = self.asm.fresh_reg();
                self.asm.emit(Op::MvI {
                    d: t,
                    w: Word::code(retry.0),
                });
                self.asm.emit(Op::St {
                    s: t,
                    base: reg::B,
                    off: -cp_frame::RETRY,
                });
                self.asm.emit(Op::Jmp { t: alt });
            }
            BamInstr::Trust { arity, alt } => {
                self.asm.next_group();
                let alt = self.lbl(ctx, *alt);
                for i in 0..*arity {
                    self.asm.emit(Op::Ld {
                        d: reg::arg(i),
                        base: reg::B,
                        off: -(cp_frame::ARGS_START + i as i32),
                    });
                }
                self.asm.emit(Op::Ld {
                    d: reg::B,
                    base: reg::B,
                    off: -cp_frame::PREV_B,
                });
                self.asm.emit(Op::Ld {
                    d: reg::HB,
                    base: reg::B,
                    off: -cp_frame::SAVED_H,
                });
                self.asm.emit(Op::Ld {
                    d: reg::EB,
                    base: reg::B,
                    off: -cp_frame::SAVED_EB,
                });
                self.asm.emit(Op::Jmp { t: alt });
            }
            BamInstr::SwitchOnTerm {
                arg,
                scratch,
                var,
                cons,
                lst,
                strct,
            } => {
                self.asm.next_group();
                let var = self.lbl(ctx, *var);
                let cons = self.lbl(ctx, *cons);
                let lst = self.lbl(ctx, *lst);
                let strct = self.lbl(ctx, *strct);
                let t = match scratch {
                    Slot::Temp(k) => self.temp(ctx, *k),
                    _ => self.asm.fresh_reg(),
                };
                self.asm.emit(Op::Mv {
                    d: t,
                    s: reg::arg(*arg),
                });
                self.asm.deref_in_place(t);
                self.asm.emit(Op::BrTag {
                    a: t,
                    tag: Tag::Ref,
                    eq: true,
                    t: var,
                });
                self.asm.emit(Op::BrTag {
                    a: t,
                    tag: Tag::Lst,
                    eq: true,
                    t: lst,
                });
                self.asm.emit(Op::BrTag {
                    a: t,
                    tag: Tag::Str,
                    eq: true,
                    t: strct,
                });
                self.asm.emit(Op::Jmp { t: cons });
            }
            BamInstr::SwitchOnConst {
                slot,
                table,
                default,
            } => {
                self.asm.next_group();
                let r = self.read_slot(ctx, *slot);
                let d = self.lbl(ctx, *default);
                if table.len() <= LINEAR_SWITCH_LIMIT {
                    for (c, l) in table {
                        let l = self.lbl(ctx, *l);
                        self.asm.emit(Op::BrWord {
                            a: r,
                            w: Self::const_word(*c),
                            eq: true,
                            t: l,
                        });
                    }
                    self.asm.emit(Op::Jmp { t: d });
                } else {
                    // Large tables (database predicates): dispatch by
                    // tag, then binary-search the value field — the
                    // paper's "hashing" builtin for switch_on_constant.
                    let mut ints: Vec<(i64, Label)> = Vec::new();
                    let mut atoms: Vec<(i64, Label)> = Vec::new();
                    for (c, l) in table {
                        let l = self.lbl(ctx, *l);
                        match c {
                            Const::Int(i) => ints.push((*i, l)),
                            Const::Atom(a) => atoms.push((a.0 as i64, l)),
                        }
                    }
                    ints.sort_unstable_by_key(|&(v, _)| v);
                    atoms.sort_unstable_by_key(|&(v, _)| v);
                    let lint = self.asm.fresh_label();
                    let latm = self.asm.fresh_label();
                    if !ints.is_empty() {
                        self.asm.emit(Op::BrTag {
                            a: r,
                            tag: Tag::Int,
                            eq: true,
                            t: lint,
                        });
                    }
                    if !atoms.is_empty() {
                        self.asm.emit(Op::BrTag {
                            a: r,
                            tag: Tag::Atm,
                            eq: true,
                            t: latm,
                        });
                    }
                    self.asm.emit(Op::Jmp { t: d });
                    if !ints.is_empty() {
                        self.asm.bind(lint);
                        self.emit_value_search(r, &ints, d);
                    }
                    if !atoms.is_empty() {
                        self.asm.bind(latm);
                        self.emit_value_search(r, &atoms, d);
                    }
                }
            }
            BamInstr::SwitchOnStruct {
                slot,
                table,
                default,
            } => {
                self.asm.next_group();
                let r = self.read_slot(ctx, *slot);
                let f = self.asm.fresh_reg();
                self.asm.emit(Op::Ld {
                    d: f,
                    base: r,
                    off: 0,
                });
                for (fct, l) in table {
                    let l = self.lbl(ctx, *l);
                    self.asm.emit(Op::BrWord {
                        a: f,
                        w: Word {
                            tag: Tag::Fun,
                            val: fct.encode(),
                        },
                        eq: true,
                        t: l,
                    });
                }
                let d = self.lbl(ctx, *default);
                self.asm.emit(Op::Jmp { t: d });
            }
            BamInstr::SetCutBarrier => {
                self.asm.next_group();
                self.asm.emit(Op::Mv {
                    d: reg::B0,
                    s: reg::B,
                });
            }
            BamInstr::SaveCutBarrier(s) => {
                self.asm.next_group();
                self.write_slot(ctx, *s, reg::B0);
            }
            BamInstr::Cut(saved) => {
                self.asm.next_group();
                match saved {
                    None => self.asm.emit(Op::Mv {
                        d: reg::B,
                        s: reg::B0,
                    }),
                    Some(s) => {
                        let r = self.read_slot(ctx, *s);
                        self.asm.emit(Op::Mv { d: reg::B, s: r });
                    }
                }
                self.asm.emit(Op::Ld {
                    d: reg::HB,
                    base: reg::B,
                    off: -cp_frame::SAVED_H,
                });
                self.asm.emit(Op::Ld {
                    d: reg::EB,
                    base: reg::B,
                    off: -cp_frame::SAVED_EB,
                });
            }
            BamInstr::Move { src, dst } => {
                self.asm.next_group();
                let r = self.operand_to_reg(ctx, *src);
                self.write_slot(ctx, *dst, r);
            }
            BamInstr::MoveUnsafe { src, dst } => {
                self.asm.next_group();
                let t0 = self.read_slot(ctx, *src);
                let t = self.asm.fresh_reg();
                self.asm.emit(Op::Mv { d: t, s: t0 });
                self.asm.deref_in_place(t);
                let done = self.asm.fresh_label();
                self.asm.emit(Op::BrTag {
                    a: t,
                    tag: Tag::Ref,
                    eq: false,
                    t: done,
                });
                self.asm.emit(Op::Br {
                    cond: Cond::Lt,
                    a: t,
                    b: Operand::Imm(env_base),
                    t: done,
                });
                // Globalize: fresh heap variable, bind the stack cell to it.
                let nv = self.asm.fresh_reg();
                self.asm.emit(Op::MkTag {
                    d: nv,
                    s: reg::H,
                    tag: Tag::Ref,
                });
                self.heap_push(nv);
                self.asm.bind_cell(t, nv, env_base);
                self.asm.emit(Op::Mv { d: t, s: nv });
                self.asm.bind(done);
                self.write_slot(ctx, *dst, t);
            }
            BamInstr::Deref { src, dst } => {
                self.asm.next_group();
                let r = self.read_slot(ctx, *src);
                let t = self.asm.fresh_reg();
                self.asm.emit(Op::Mv { d: t, s: r });
                self.asm.deref_in_place(t);
                self.write_slot(ctx, *dst, t);
            }
            BamInstr::LoadArg { base, idx, dst } => {
                self.asm.next_group();
                let b = self.read_slot(ctx, *base);
                let t = self.asm.fresh_reg();
                self.asm.emit(Op::Ld {
                    d: t,
                    base: b,
                    off: *idx as i32,
                });
                self.write_slot(ctx, *dst, t);
            }
            BamInstr::BranchVar { slot, target } => {
                self.asm.next_group();
                let r = self.read_slot(ctx, *slot);
                let l = self.lbl(ctx, *target);
                self.asm.emit(Op::BrTag {
                    a: r,
                    tag: Tag::Ref,
                    eq: true,
                    t: l,
                });
            }
            BamInstr::BranchNotTag { slot, tag, target } => {
                self.asm.next_group();
                let r = self.read_slot(ctx, *slot);
                let l = self.lbl(ctx, *target);
                let tag = tag_of(*tag);
                self.asm.emit(Op::BrTag {
                    a: r,
                    tag,
                    eq: false,
                    t: l,
                });
            }
            BamInstr::BranchNotConst { slot, c, target } => {
                self.asm.next_group();
                let r = self.read_slot(ctx, *slot);
                let l = self.lbl(ctx, *target);
                self.asm.emit(Op::BrWord {
                    a: r,
                    w: Self::const_word(*c),
                    eq: false,
                    t: l,
                });
            }
            BamInstr::BranchNotFunctor { slot, f, target } => {
                self.asm.next_group();
                let r = self.read_slot(ctx, *slot);
                let l = self.lbl(ctx, *target);
                let t = self.asm.fresh_reg();
                self.asm.emit(Op::Ld {
                    d: t,
                    base: r,
                    off: 0,
                });
                self.asm.emit(Op::BrWord {
                    a: t,
                    w: Word {
                        tag: Tag::Fun,
                        val: f.encode(),
                    },
                    eq: false,
                    t: l,
                });
            }
            BamInstr::BindConst { var, c } => {
                self.asm.next_group();
                let v = self.read_slot(ctx, *var);
                let t = self.asm.fresh_reg();
                self.asm.emit(Op::MvI {
                    d: t,
                    w: Self::const_word(*c),
                });
                self.asm.bind_cell(v, t, env_base);
            }
            BamInstr::BindSlot { var, value } => {
                self.asm.next_group();
                let v = self.read_slot(ctx, *var);
                let w = self.read_slot(ctx, *value);
                self.asm.bind_cell(v, w, env_base);
            }
            BamInstr::NewList { dst } => {
                self.asm.next_group();
                let t = self.asm.fresh_reg();
                self.asm.emit(Op::MkTag {
                    d: t,
                    s: reg::H,
                    tag: Tag::Lst,
                });
                self.write_slot(ctx, *dst, t);
            }
            BamInstr::NewStruct { dst, f } => {
                self.asm.next_group();
                let t = self.asm.fresh_reg();
                self.asm.emit(Op::MkTag {
                    d: t,
                    s: reg::H,
                    tag: Tag::Str,
                });
                self.write_slot(ctx, *dst, t);
                let ft = self.asm.fresh_reg();
                self.asm.emit(Op::MvI {
                    d: ft,
                    w: Word {
                        tag: Tag::Fun,
                        val: f.encode(),
                    },
                });
                self.heap_push(ft);
            }
            BamInstr::PushConst { c } => {
                self.asm.next_group();
                let t = self.asm.fresh_reg();
                self.asm.emit(Op::MvI {
                    d: t,
                    w: Self::const_word(*c),
                });
                self.heap_push(t);
            }
            BamInstr::PushValue { src } => {
                self.asm.next_group();
                let r = self.read_slot(ctx, *src);
                let t = self.asm.fresh_reg();
                self.asm.emit(Op::Mv { d: t, s: r });
                self.asm.deref_in_place(t);
                let push = self.asm.fresh_label();
                self.asm.emit(Op::BrTag {
                    a: t,
                    tag: Tag::Ref,
                    eq: false,
                    t: push,
                });
                self.asm.emit(Op::Br {
                    cond: Cond::Lt,
                    a: t,
                    b: Operand::Imm(env_base),
                    t: push,
                });
                // Unbound environment cell: globalize before pushing.
                let nv = self.asm.fresh_reg();
                self.asm.emit(Op::MkTag {
                    d: nv,
                    s: reg::H,
                    tag: Tag::Ref,
                });
                self.heap_push(nv);
                self.asm.bind_cell(t, nv, env_base);
                self.asm.emit(Op::Mv { d: t, s: nv });
                self.asm.bind(push);
                self.heap_push(t);
            }
            BamInstr::PushFresh { dst } => {
                self.asm.next_group();
                let t = self.asm.fresh_reg();
                self.asm.emit(Op::MkTag {
                    d: t,
                    s: reg::H,
                    tag: Tag::Ref,
                });
                self.heap_push(t);
                self.write_slot(ctx, *dst, t);
            }
            BamInstr::GeneralUnify { a, b } => {
                self.asm.next_group();
                let ra = self.read_slot(ctx, *a);
                let rb = self.read_slot(ctx, *b);
                self.asm.emit(Op::Mv { d: reg::U1, s: ra });
                self.asm.emit(Op::Mv { d: reg::U2, s: rb });
                let ret = self.asm.fresh_label();
                self.asm.emit(Op::MvI {
                    d: reg::RR,
                    w: Word::code(ret.0),
                });
                let u = self.unify;
                self.asm.emit(Op::Jmp { t: u });
                self.asm.bind(ret);
            }
            BamInstr::StructEqBranch {
                a,
                b,
                want_equal,
                target,
            } => {
                self.asm.next_group();
                let ra = self.read_slot(ctx, *a);
                let rb = self.read_slot(ctx, *b);
                self.asm.emit(Op::Mv { d: reg::U1, s: ra });
                self.asm.emit(Op::Mv { d: reg::U2, s: rb });
                let ret = self.asm.fresh_label();
                self.asm.emit(Op::MvI {
                    d: reg::RR,
                    w: Word::code(ret.0),
                });
                let sq = self.struct_eq;
                self.asm.emit(Op::Jmp { t: sq });
                self.asm.bind(ret);
                let l = self.lbl(ctx, *target);
                self.asm.emit(Op::Br {
                    cond: Cond::Eq,
                    a: reg::FLAG,
                    b: Operand::Imm(if *want_equal { 0 } else { 1 }),
                    t: l,
                });
            }
            BamInstr::DerefInt { src, dst } => {
                self.asm.next_group();
                let r = self.read_slot(ctx, *src);
                let t = self.asm.fresh_reg();
                self.asm.emit(Op::Mv { d: t, s: r });
                self.asm.deref_in_place(t);
                let f = self.fail;
                self.asm.emit(Op::BrTag {
                    a: t,
                    tag: Tag::Int,
                    eq: false,
                    t: f,
                });
                self.write_slot(ctx, *dst, t);
            }
            BamInstr::Arith { op, a, b, dst } => {
                self.asm.next_group();
                let ra = self.operand_to_reg_arith(ctx, *a);
                let ob = self.arith_operand(ctx, *b);
                let t = self.asm.fresh_reg();
                self.asm.emit(Op::Alu {
                    op: alu_of(*op),
                    d: t,
                    a: ra,
                    b: ob,
                });
                self.write_slot(ctx, *dst, t);
            }
            BamInstr::BranchCmpFalse { cmp, a, b, target } => {
                self.asm.next_group();
                let ra = self.operand_to_reg_arith(ctx, *a);
                let ob = self.arith_operand(ctx, *b);
                let l = self.lbl(ctx, *target);
                self.asm.emit(Op::Br {
                    cond: cond_of(cmp.negate()),
                    a: ra,
                    b: ob,
                    t: l,
                });
            }
            BamInstr::TypeTestBranch { slot, test, target } => {
                self.asm.next_group();
                let r = self.read_slot(ctx, *slot);
                let l = self.lbl(ctx, *target);
                match test {
                    TypeTest::Var => self.asm.emit(Op::BrTag {
                        a: r,
                        tag: Tag::Ref,
                        eq: false,
                        t: l,
                    }),
                    TypeTest::NonVar => self.asm.emit(Op::BrTag {
                        a: r,
                        tag: Tag::Ref,
                        eq: true,
                        t: l,
                    }),
                    TypeTest::Atom => self.asm.emit(Op::BrTag {
                        a: r,
                        tag: Tag::Atm,
                        eq: false,
                        t: l,
                    }),
                    TypeTest::Integer => self.asm.emit(Op::BrTag {
                        a: r,
                        tag: Tag::Int,
                        eq: false,
                        t: l,
                    }),
                    TypeTest::Atomic => {
                        let ok = self.asm.fresh_label();
                        self.asm.emit(Op::BrTag {
                            a: r,
                            tag: Tag::Atm,
                            eq: true,
                            t: ok,
                        });
                        self.asm.emit(Op::BrTag {
                            a: r,
                            tag: Tag::Int,
                            eq: false,
                            t: l,
                        });
                        self.asm.bind(ok);
                    }
                }
            }
            BamInstr::Halt { success } => {
                self.asm.next_group();
                self.asm.emit(Op::Halt { success: *success });
            }
        }
    }

    fn operand_to_reg_arith(&mut self, ctx: &mut PredCtx, o: symbol_bam::Operand) -> R {
        self.operand_to_reg(ctx, o)
    }

    /// Binary search over sorted `(value, target)` pairs on `r`'s value
    /// field; the tag has already been checked by the caller.
    fn emit_value_search(&mut self, r: R, entries: &[(i64, Label)], default: Label) {
        if entries.len() <= LINEAR_SWITCH_LIMIT {
            for &(v, l) in entries {
                self.asm.emit(Op::Br {
                    cond: Cond::Eq,
                    a: r,
                    b: Operand::Imm(v),
                    t: l,
                });
            }
            self.asm.emit(Op::Jmp { t: default });
            return;
        }
        let mid = entries.len() / 2;
        let (pivot, target) = entries[mid];
        self.asm.emit(Op::Br {
            cond: Cond::Eq,
            a: r,
            b: Operand::Imm(pivot),
            t: target,
        });
        let right = self.asm.fresh_label();
        self.asm.emit(Op::Br {
            cond: Cond::Gt,
            a: r,
            b: Operand::Imm(pivot),
            t: right,
        });
        self.emit_value_search(r, &entries[..mid], default);
        self.asm.bind(right);
        self.emit_value_search(r, &entries[mid + 1..], default);
    }

    // ---------------- runtime routines ----------------

    fn emit_fail_routine(&mut self) {
        let fail = self.fail;
        self.asm.next_group();
        self.asm.bind(fail);
        let a = &mut self.asm;
        let t0 = a.fresh_reg();
        a.emit(Op::Ld {
            d: t0,
            base: reg::B,
            off: -cp_frame::SAVED_TR,
        });
        let lp = a.fresh_label();
        let done = a.fresh_label();
        a.bind(lp);
        a.emit(Op::Br {
            cond: Cond::Le,
            a: reg::TR,
            b: Operand::Reg(t0),
            t: done,
        });
        a.emit(Op::Alu {
            op: AluOp::Sub,
            d: reg::TR,
            a: reg::TR,
            b: Operand::Imm(1),
        });
        let t1 = a.fresh_reg();
        a.emit(Op::Ld {
            d: t1,
            base: reg::TR,
            off: 0,
        });
        a.emit(Op::St {
            s: t1,
            base: t1,
            off: 0,
        });
        a.emit(Op::Jmp { t: lp });
        a.bind(done);
        a.emit(Op::Ld {
            d: reg::H,
            base: reg::B,
            off: -cp_frame::SAVED_H,
        });
        a.emit(Op::Mv {
            d: reg::HB,
            s: reg::H,
        });
        a.emit(Op::Ld {
            d: reg::CP,
            base: reg::B,
            off: -cp_frame::SAVED_CP,
        });
        a.emit(Op::Ld {
            d: reg::E,
            base: reg::B,
            off: -cp_frame::SAVED_E,
        });
        a.emit(Op::Ld {
            d: reg::ETOP,
            base: reg::B,
            off: -cp_frame::SAVED_ETOP,
        });
        a.emit(Op::Ld {
            d: reg::EB,
            base: reg::B,
            off: -cp_frame::SAVED_EB,
        });
        a.emit(Op::Ld {
            d: reg::B0,
            base: reg::B,
            off: -cp_frame::SAVED_B0,
        });
        let t2 = a.fresh_reg();
        a.emit(Op::Ld {
            d: t2,
            base: reg::B,
            off: -cp_frame::RETRY,
        });
        a.emit(Op::JmpR { r: t2 });
    }

    fn emit_unify_routine(&mut self) {
        let env_base = self.layout.env_base();
        let pdl_base = self.layout.pdl_base();
        let unify = self.unify;
        let fail = self.fail;
        self.asm.next_group();
        self.asm.bind(unify);

        let pair = self.asm.fresh_label();
        let next = self.asm.fresh_label();
        let a_unb = self.asm.fresh_label();
        let bind_a_to_b = self.asm.fresh_label();
        let bind_b_to_a = self.asm.fresh_label();
        let llst = self.asm.fresh_label();
        let lstr = self.asm.fresh_label();
        let lpush = self.asm.fresh_label();
        let lfirst = self.asm.fresh_label();
        let ldone = self.asm.fresh_label();

        self.asm.emit(Op::MvI {
            d: reg::PDL,
            w: Word::int(pdl_base),
        });
        self.asm.bind(pair);
        self.asm.deref_in_place(reg::U1);
        self.asm.deref_in_place(reg::U2);
        self.asm.emit(Op::BrWEq {
            a: reg::U1,
            b: reg::U2,
            eq: true,
            t: next,
        });
        self.asm.emit(Op::BrTag {
            a: reg::U1,
            tag: Tag::Ref,
            eq: true,
            t: a_unb,
        });
        self.asm.emit(Op::BrTag {
            a: reg::U2,
            tag: Tag::Ref,
            eq: true,
            t: bind_b_to_a,
        });
        self.asm.emit(Op::BrTag {
            a: reg::U1,
            tag: Tag::Lst,
            eq: true,
            t: llst,
        });
        self.asm.emit(Op::BrTag {
            a: reg::U1,
            tag: Tag::Str,
            eq: true,
            t: lstr,
        });
        self.asm.emit(Op::Jmp { t: fail });

        // Lists: push cdr pair, loop on car pair.
        self.asm.bind(llst);
        self.asm.emit(Op::BrTag {
            a: reg::U2,
            tag: Tag::Lst,
            eq: false,
            t: fail,
        });
        let t1 = self.asm.fresh_reg();
        let t2 = self.asm.fresh_reg();
        self.asm.emit(Op::Ld {
            d: t1,
            base: reg::U1,
            off: 1,
        });
        self.asm.emit(Op::Ld {
            d: t2,
            base: reg::U2,
            off: 1,
        });
        self.asm.emit(Op::St {
            s: t1,
            base: reg::PDL,
            off: 0,
        });
        self.asm.emit(Op::St {
            s: t2,
            base: reg::PDL,
            off: 1,
        });
        self.asm.emit(Op::Alu {
            op: AluOp::Add,
            d: reg::PDL,
            a: reg::PDL,
            b: Operand::Imm(2),
        });
        let t3 = self.asm.fresh_reg();
        let t4 = self.asm.fresh_reg();
        self.asm.emit(Op::Ld {
            d: t3,
            base: reg::U1,
            off: 0,
        });
        self.asm.emit(Op::Ld {
            d: t4,
            base: reg::U2,
            off: 0,
        });
        self.asm.emit(Op::Mv { d: reg::U1, s: t3 });
        self.asm.emit(Op::Mv { d: reg::U2, s: t4 });
        self.asm.emit(Op::Jmp { t: pair });

        // Structures: compare functors, push args n..2, loop on arg 1.
        self.asm.bind(lstr);
        self.asm.emit(Op::BrTag {
            a: reg::U2,
            tag: Tag::Str,
            eq: false,
            t: fail,
        });
        let f1 = self.asm.fresh_reg();
        let f2 = self.asm.fresh_reg();
        self.asm.emit(Op::Ld {
            d: f1,
            base: reg::U1,
            off: 0,
        });
        self.asm.emit(Op::Ld {
            d: f2,
            base: reg::U2,
            off: 0,
        });
        self.asm.emit(Op::BrWEq {
            a: f1,
            b: f2,
            eq: false,
            t: fail,
        });
        let n = self.asm.fresh_reg();
        self.asm.emit(Op::Alu {
            op: AluOp::And,
            d: n,
            a: f1,
            b: Operand::Imm(0xff),
        });
        self.asm.bind(lpush);
        self.asm.emit(Op::Br {
            cond: Cond::Le,
            a: n,
            b: Operand::Imm(1),
            t: lfirst,
        });
        let p1 = self.asm.fresh_reg();
        let p2 = self.asm.fresh_reg();
        let v1 = self.asm.fresh_reg();
        let v2 = self.asm.fresh_reg();
        self.asm.emit(Op::AddA {
            d: p1,
            a: reg::U1,
            b: Operand::Reg(n),
        });
        self.asm.emit(Op::Ld {
            d: v1,
            base: p1,
            off: 0,
        });
        self.asm.emit(Op::AddA {
            d: p2,
            a: reg::U2,
            b: Operand::Reg(n),
        });
        self.asm.emit(Op::Ld {
            d: v2,
            base: p2,
            off: 0,
        });
        self.asm.emit(Op::St {
            s: v1,
            base: reg::PDL,
            off: 0,
        });
        self.asm.emit(Op::St {
            s: v2,
            base: reg::PDL,
            off: 1,
        });
        self.asm.emit(Op::Alu {
            op: AluOp::Add,
            d: reg::PDL,
            a: reg::PDL,
            b: Operand::Imm(2),
        });
        self.asm.emit(Op::Alu {
            op: AluOp::Sub,
            d: n,
            a: n,
            b: Operand::Imm(1),
        });
        self.asm.emit(Op::Jmp { t: lpush });
        self.asm.bind(lfirst);
        let w1 = self.asm.fresh_reg();
        let w2 = self.asm.fresh_reg();
        self.asm.emit(Op::Ld {
            d: w1,
            base: reg::U1,
            off: 1,
        });
        self.asm.emit(Op::Ld {
            d: w2,
            base: reg::U2,
            off: 1,
        });
        self.asm.emit(Op::Mv { d: reg::U1, s: w1 });
        self.asm.emit(Op::Mv { d: reg::U2, s: w2 });
        self.asm.emit(Op::Jmp { t: pair });

        // Binding cases.
        self.asm.bind(a_unb);
        self.asm.emit(Op::BrTag {
            a: reg::U2,
            tag: Tag::Ref,
            eq: false,
            t: bind_a_to_b,
        });
        // Both unbound: bind the higher (younger) address to the lower.
        self.asm.emit(Op::Br {
            cond: Cond::Lt,
            a: reg::U1,
            b: Operand::Reg(reg::U2),
            t: bind_b_to_a,
        });
        self.asm.bind(bind_a_to_b);
        self.asm.bind_cell(reg::U1, reg::U2, env_base);
        self.asm.emit(Op::Jmp { t: next });
        self.asm.bind(bind_b_to_a);
        self.asm.bind_cell(reg::U2, reg::U1, env_base);

        // Pop the next pair or return.
        self.asm.bind(next);
        self.asm.emit(Op::Br {
            cond: Cond::Le,
            a: reg::PDL,
            b: Operand::Imm(pdl_base),
            t: ldone,
        });
        self.asm.emit(Op::Alu {
            op: AluOp::Sub,
            d: reg::PDL,
            a: reg::PDL,
            b: Operand::Imm(2),
        });
        self.asm.emit(Op::Ld {
            d: reg::U1,
            base: reg::PDL,
            off: 0,
        });
        self.asm.emit(Op::Ld {
            d: reg::U2,
            base: reg::PDL,
            off: 1,
        });
        self.asm.emit(Op::Jmp { t: pair });
        self.asm.bind(ldone);
        self.asm.emit(Op::JmpR { r: reg::RR });
    }

    fn emit_struct_eq_routine(&mut self) {
        let pdl_base = self.layout.pdl_base();
        let eq = self.struct_eq;
        self.asm.next_group();
        self.asm.bind(eq);

        let pair = self.asm.fresh_label();
        let next = self.asm.fresh_label();
        let lfalse = self.asm.fresh_label();
        let llst = self.asm.fresh_label();
        let lstr = self.asm.fresh_label();
        let lpush = self.asm.fresh_label();
        let lfirst = self.asm.fresh_label();
        let ldone = self.asm.fresh_label();

        let one = self.asm.fresh_reg();
        self.asm.emit(Op::MvI {
            d: one,
            w: Word::int(1),
        });
        self.asm.emit(Op::Mv {
            d: reg::FLAG,
            s: one,
        });
        self.asm.emit(Op::MvI {
            d: reg::PDL,
            w: Word::int(pdl_base),
        });
        self.asm.bind(pair);
        self.asm.deref_in_place(reg::U1);
        self.asm.deref_in_place(reg::U2);
        self.asm.emit(Op::BrWEq {
            a: reg::U1,
            b: reg::U2,
            eq: true,
            t: next,
        });
        self.asm.emit(Op::BrTag {
            a: reg::U1,
            tag: Tag::Ref,
            eq: true,
            t: lfalse,
        });
        self.asm.emit(Op::BrTag {
            a: reg::U2,
            tag: Tag::Ref,
            eq: true,
            t: lfalse,
        });
        self.asm.emit(Op::BrTag {
            a: reg::U1,
            tag: Tag::Lst,
            eq: true,
            t: llst,
        });
        self.asm.emit(Op::BrTag {
            a: reg::U1,
            tag: Tag::Str,
            eq: true,
            t: lstr,
        });
        self.asm.emit(Op::Jmp { t: lfalse });

        self.asm.bind(llst);
        self.asm.emit(Op::BrTag {
            a: reg::U2,
            tag: Tag::Lst,
            eq: false,
            t: lfalse,
        });
        let t1 = self.asm.fresh_reg();
        let t2 = self.asm.fresh_reg();
        self.asm.emit(Op::Ld {
            d: t1,
            base: reg::U1,
            off: 1,
        });
        self.asm.emit(Op::Ld {
            d: t2,
            base: reg::U2,
            off: 1,
        });
        self.asm.emit(Op::St {
            s: t1,
            base: reg::PDL,
            off: 0,
        });
        self.asm.emit(Op::St {
            s: t2,
            base: reg::PDL,
            off: 1,
        });
        self.asm.emit(Op::Alu {
            op: AluOp::Add,
            d: reg::PDL,
            a: reg::PDL,
            b: Operand::Imm(2),
        });
        let t3 = self.asm.fresh_reg();
        let t4 = self.asm.fresh_reg();
        self.asm.emit(Op::Ld {
            d: t3,
            base: reg::U1,
            off: 0,
        });
        self.asm.emit(Op::Ld {
            d: t4,
            base: reg::U2,
            off: 0,
        });
        self.asm.emit(Op::Mv { d: reg::U1, s: t3 });
        self.asm.emit(Op::Mv { d: reg::U2, s: t4 });
        self.asm.emit(Op::Jmp { t: pair });

        self.asm.bind(lstr);
        self.asm.emit(Op::BrTag {
            a: reg::U2,
            tag: Tag::Str,
            eq: false,
            t: lfalse,
        });
        let f1 = self.asm.fresh_reg();
        let f2 = self.asm.fresh_reg();
        self.asm.emit(Op::Ld {
            d: f1,
            base: reg::U1,
            off: 0,
        });
        self.asm.emit(Op::Ld {
            d: f2,
            base: reg::U2,
            off: 0,
        });
        self.asm.emit(Op::BrWEq {
            a: f1,
            b: f2,
            eq: false,
            t: lfalse,
        });
        let n = self.asm.fresh_reg();
        self.asm.emit(Op::Alu {
            op: AluOp::And,
            d: n,
            a: f1,
            b: Operand::Imm(0xff),
        });
        self.asm.bind(lpush);
        self.asm.emit(Op::Br {
            cond: Cond::Le,
            a: n,
            b: Operand::Imm(1),
            t: lfirst,
        });
        let p1 = self.asm.fresh_reg();
        let p2 = self.asm.fresh_reg();
        let v1 = self.asm.fresh_reg();
        let v2 = self.asm.fresh_reg();
        self.asm.emit(Op::AddA {
            d: p1,
            a: reg::U1,
            b: Operand::Reg(n),
        });
        self.asm.emit(Op::Ld {
            d: v1,
            base: p1,
            off: 0,
        });
        self.asm.emit(Op::AddA {
            d: p2,
            a: reg::U2,
            b: Operand::Reg(n),
        });
        self.asm.emit(Op::Ld {
            d: v2,
            base: p2,
            off: 0,
        });
        self.asm.emit(Op::St {
            s: v1,
            base: reg::PDL,
            off: 0,
        });
        self.asm.emit(Op::St {
            s: v2,
            base: reg::PDL,
            off: 1,
        });
        self.asm.emit(Op::Alu {
            op: AluOp::Add,
            d: reg::PDL,
            a: reg::PDL,
            b: Operand::Imm(2),
        });
        self.asm.emit(Op::Alu {
            op: AluOp::Sub,
            d: n,
            a: n,
            b: Operand::Imm(1),
        });
        self.asm.emit(Op::Jmp { t: lpush });
        self.asm.bind(lfirst);
        let w1 = self.asm.fresh_reg();
        let w2 = self.asm.fresh_reg();
        self.asm.emit(Op::Ld {
            d: w1,
            base: reg::U1,
            off: 1,
        });
        self.asm.emit(Op::Ld {
            d: w2,
            base: reg::U2,
            off: 1,
        });
        self.asm.emit(Op::Mv { d: reg::U1, s: w1 });
        self.asm.emit(Op::Mv { d: reg::U2, s: w2 });
        self.asm.emit(Op::Jmp { t: pair });

        self.asm.bind(lfalse);
        let zero = self.asm.fresh_reg();
        self.asm.emit(Op::MvI {
            d: zero,
            w: Word::int(0),
        });
        self.asm.emit(Op::Mv {
            d: reg::FLAG,
            s: zero,
        });
        self.asm.emit(Op::JmpR { r: reg::RR });

        self.asm.bind(next);
        self.asm.emit(Op::Br {
            cond: Cond::Le,
            a: reg::PDL,
            b: Operand::Imm(pdl_base),
            t: ldone,
        });
        self.asm.emit(Op::Alu {
            op: AluOp::Sub,
            d: reg::PDL,
            a: reg::PDL,
            b: Operand::Imm(2),
        });
        self.asm.emit(Op::Ld {
            d: reg::U1,
            base: reg::PDL,
            off: 0,
        });
        self.asm.emit(Op::Ld {
            d: reg::U2,
            base: reg::PDL,
            off: 1,
        });
        self.asm.emit(Op::Jmp { t: pair });
        self.asm.bind(ldone);
        self.asm.emit(Op::JmpR { r: reg::RR });
    }
}

/// Per-predicate translation context.
#[derive(Default)]
struct PredCtx {
    labels: HashMap<BamLabel, Label>,
    temps: HashMap<usize, R>,
}

fn tag_of(t: TagClass) -> Tag {
    match t {
        TagClass::Var => Tag::Ref,
        TagClass::Int => Tag::Int,
        TagClass::Atm => Tag::Atm,
        TagClass::Lst => Tag::Lst,
        TagClass::Str => Tag::Str,
    }
}

fn alu_of(op: symbol_bam::ArithOp) -> AluOp {
    use symbol_bam::ArithOp as A;
    match op {
        A::Add => AluOp::Add,
        A::Sub => AluOp::Sub,
        A::Mul => AluOp::Mul,
        A::Div => AluOp::Div,
        A::Mod => AluOp::Mod,
        A::Rem => AluOp::Rem,
        A::And => AluOp::And,
        A::Or => AluOp::Or,
        A::Xor => AluOp::Xor,
        A::Shl => AluOp::Shl,
        A::Shr => AluOp::Shr,
        A::Max => AluOp::Max,
    }
}

fn cond_of(c: Cmp) -> Cond {
    match c {
        Cmp::Eq => Cond::Eq,
        Cmp::Ne => Cond::Ne,
        Cmp::Lt => Cond::Lt,
        Cmp::Le => Cond::Le,
        Cmp::Gt => Cond::Gt,
        Cmp::Ge => Cond::Ge,
    }
}
