//! The parallel experiment drivers must be *bit-identical* to their
//! sequential counterparts: every `f64` statistic, every cycle count,
//! every histogram bin. Results are collected by work-list index, so
//! thread scheduling can reorder completion but never output — this
//! suite asserts exactly that.

use symbol_core::benchmarks;
use symbol_core::experiments::{measure, measure_cached};
use symbol_core::{Compiled, CompiledCache};

/// Benchmarks small enough to measure repeatedly in debug builds.
const SUBSET: [&str; 4] = ["conc30", "nreverse", "qsort", "serialise"];

#[test]
fn parallel_simulations_are_bit_identical_to_sequential() {
    for name in SUBSET {
        let b = benchmarks::by_name(name).expect("known benchmark");
        let compiled = Compiled::from_source(b.source).expect("compiles");
        let cache = CompiledCache::new(&compiled).expect("profiles");
        let sequential = measure_cached(b.name, &cache, 1).expect("measures");
        // Oversubscribe relative to the 8-entry work list so workers
        // genuinely contend for jobs.
        for threads in [2, 8, 32] {
            let parallel = measure_cached(b.name, &cache, threads).expect("measures");
            assert_eq!(
                sequential, parallel,
                "{name}: {threads}-thread driver diverged from sequential"
            );
        }
    }
}

#[test]
fn cached_profile_reproduces_the_standalone_driver() {
    // measure() compiles and profiles internally; going through an
    // explicitly shared CompiledCache must change nothing.
    let b = benchmarks::by_name("nreverse").expect("known benchmark");
    let standalone = measure(b).expect("measures");
    let compiled = Compiled::from_source(b.source).expect("compiles");
    let cache = CompiledCache::new(&compiled).expect("profiles");
    let cached = measure_cached(b.name, &cache, 4).expect("measures");
    assert_eq!(standalone, cached);
}

#[test]
fn repeated_parallel_runs_agree_with_each_other() {
    let b = benchmarks::by_name("qsort").expect("known benchmark");
    let compiled = Compiled::from_source(b.source).expect("compiles");
    let cache = CompiledCache::new(&compiled).expect("profiles");
    let first = measure_cached(b.name, &cache, 8).expect("measures");
    let second = measure_cached(b.name, &cache, 8).expect("measures");
    assert_eq!(first, second);
}
