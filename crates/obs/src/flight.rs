//! The flight recorder: an always-on, lock-free, bounded ring buffer
//! of fixed-size structured records.
//!
//! When a query is slow or panics, aggregate counters tell you *that*
//! it happened but not *what happened around it*. The flight recorder
//! closes that gap: every interesting event on the serving hot path
//! (enqueue, dequeue, query start/end, cache traffic) appends one
//! small record — monotonic timestamp, thread id, event kind, two
//! `u64` payload words — to a fixed-size ring. Writers never block and
//! never allocate; old records are silently overwritten; a snapshot
//! or an ndjson dump captures the last `capacity` events at the
//! moment of an incident.
//!
//! ## Concurrency
//!
//! The ring is a power-of-two array of seqlock slots behind one
//! atomic write cursor. A writer claims a slot with a single relaxed
//! `fetch_add`, marks it busy, stores the five payload words with
//! relaxed atomics and publishes the slot's sequence number with a
//! release store. A reader ([`FlightRecorder::snapshot`]) checks each
//! slot's sequence before and after copying the payload and discards
//! the slot when the two disagree — a record being overwritten
//! mid-read is dropped, never torn. No operation takes a lock and the
//! writer path is wait-free (one `fetch_add`, six stores).
//!
//! A [`FlightRecorder::disabled`] recorder has no slots; `record` on
//! it is a single branch, so the disabled path stays inside the <2%
//! observability ceiling the `emulator_decode` bench enforces.

use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::time::Instant;

use crate::trace::thread_id;

/// Slot sequence value marking a write in progress.
const BUSY: u64 = u64::MAX;

/// What a flight record describes. The codes are stable (they appear
/// in dumps); add new kinds at the end.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u16)]
pub enum FlightKind {
    /// A free-form marker (payload meaning is the caller's).
    Mark = 0,
    /// A request entered the queue (`a` = request id, `b` = depth
    /// after enqueue).
    Enqueue = 1,
    /// A batch left the queue (`a` = first request id, `b` = batch
    /// size).
    Dequeue = 2,
    /// A query began executing (`a` = request id).
    QueryStart = 3,
    /// A query succeeded (`a` = request id, `b` = steps).
    QueryOk = 4,
    /// A query returned an error (`a` = request id).
    QueryFail = 5,
    /// A query panicked through `catch_unwind` (`a` = request id).
    QueryPanic = 6,
    /// A live stats query was answered (`a` = request id).
    StatsQuery = 7,
    /// Artifact cache hit (`a` = source hash, `b` = config hash).
    CacheHit = 8,
    /// Artifact cache miss (`a` = source hash, `b` = config hash).
    CacheMiss = 9,
    /// Artifact cache entry was corrupt (`a` = source hash, `b` =
    /// config hash).
    CacheCorrupt = 10,
    /// The recorder itself was dumped (`a` = triggering request id).
    Dump = 11,
}

impl FlightKind {
    /// Every kind, in code order.
    pub const ALL: [FlightKind; 12] = [
        FlightKind::Mark,
        FlightKind::Enqueue,
        FlightKind::Dequeue,
        FlightKind::QueryStart,
        FlightKind::QueryOk,
        FlightKind::QueryFail,
        FlightKind::QueryPanic,
        FlightKind::StatsQuery,
        FlightKind::CacheHit,
        FlightKind::CacheMiss,
        FlightKind::CacheCorrupt,
        FlightKind::Dump,
    ];

    /// Stable lower-snake name (what dumps carry).
    pub fn name(self) -> &'static str {
        match self {
            FlightKind::Mark => "mark",
            FlightKind::Enqueue => "enqueue",
            FlightKind::Dequeue => "dequeue",
            FlightKind::QueryStart => "query_start",
            FlightKind::QueryOk => "query_ok",
            FlightKind::QueryFail => "query_fail",
            FlightKind::QueryPanic => "query_panic",
            FlightKind::StatsQuery => "stats_query",
            FlightKind::CacheHit => "cache_hit",
            FlightKind::CacheMiss => "cache_miss",
            FlightKind::CacheCorrupt => "cache_corrupt",
            FlightKind::Dump => "dump",
        }
    }

    /// The kind of a stored code, `None` for codes from a future
    /// format.
    pub fn from_code(code: u16) -> Option<FlightKind> {
        FlightKind::ALL.get(code as usize).copied()
    }
}

/// One recorded event, as copied out by a snapshot.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct FlightRecord {
    /// Global write sequence (1-based, gap-free per recorder).
    pub seq: u64,
    /// Nanoseconds since the recorder was created (monotonic).
    pub ts_ns: u64,
    /// Dense thread id of the recording thread (see
    /// [`crate::thread_id`]).
    pub tid: u64,
    /// Event kind code (render through [`FlightKind::from_code`]).
    pub kind: u16,
    /// First payload word (meaning depends on `kind`).
    pub a: u64,
    /// Second payload word.
    pub b: u64,
}

impl FlightRecord {
    /// The record's kind name, or `"unknown"` for codes from a future
    /// format.
    pub fn kind_name(&self) -> &'static str {
        FlightKind::from_code(self.kind).map_or("unknown", FlightKind::name)
    }
}

#[derive(Debug)]
struct Slot {
    /// 0 = never written, [`BUSY`] = write in progress, else
    /// `record.seq`.
    seq: AtomicU64,
    ts_ns: AtomicU64,
    tid: AtomicU64,
    kind: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
}

impl Slot {
    fn new() -> Self {
        Slot {
            seq: AtomicU64::new(0),
            ts_ns: AtomicU64::new(0),
            tid: AtomicU64::new(0),
            kind: AtomicU64::new(0),
            a: AtomicU64::new(0),
            b: AtomicU64::new(0),
        }
    }
}

/// The bounded lock-free ring of [`FlightRecord`]s.
#[derive(Debug)]
pub struct FlightRecorder {
    /// Power-of-two slot array (empty when disabled).
    slots: Box<[Slot]>,
    /// Index mask (`slots.len() - 1`).
    mask: usize,
    /// Total records ever written (also the next sequence number).
    cursor: AtomicU64,
    /// Zero point of all record timestamps.
    epoch: Instant,
}

impl FlightRecorder {
    /// A recorder holding the last `capacity` records (rounded up to a
    /// power of two, minimum 8). `capacity == 0` gives the disabled
    /// recorder.
    pub fn new(capacity: usize) -> Self {
        let cap = if capacity == 0 {
            0
        } else {
            capacity.max(8).next_power_of_two()
        };
        FlightRecorder {
            slots: (0..cap).map(|_| Slot::new()).collect(),
            mask: cap.saturating_sub(1),
            cursor: AtomicU64::new(0),
            epoch: Instant::now(),
        }
    }

    /// The recorder every record call falls straight through: no
    /// slots, no stores, one branch.
    pub fn disabled() -> Self {
        FlightRecorder::new(0)
    }

    /// Whether this recorder stores anything.
    pub fn enabled(&self) -> bool {
        !self.slots.is_empty()
    }

    /// Slot capacity (0 when disabled).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Appends one record. Wait-free; never blocks, never allocates.
    #[inline]
    pub fn record(&self, kind: FlightKind, a: u64, b: u64) {
        if self.slots.is_empty() {
            return;
        }
        let idx = self.cursor.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(idx as usize) & self.mask];
        // The swap's acquire half keeps the payload stores from
        // floating above the busy mark; the final release store
        // publishes them with the sequence.
        slot.seq.swap(BUSY, Ordering::AcqRel);
        slot.ts_ns
            .store(self.epoch.elapsed().as_nanos() as u64, Ordering::Relaxed);
        slot.tid.store(thread_id(), Ordering::Relaxed);
        slot.kind.store(kind as u64, Ordering::Relaxed);
        slot.a.store(a, Ordering::Relaxed);
        slot.b.store(b, Ordering::Relaxed);
        slot.seq.store(idx + 1, Ordering::Release);
    }

    /// Total records ever written (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        self.cursor.load(Ordering::Relaxed)
    }

    /// Records lost to ring overflow so far.
    pub fn dropped(&self) -> u64 {
        self.recorded().saturating_sub(self.slots.len() as u64)
    }

    /// Copies out every consistent record, oldest first (by sequence).
    /// Records being overwritten concurrently are skipped, never torn.
    pub fn snapshot(&self) -> Vec<FlightRecord> {
        let mut out = Vec::with_capacity(self.slots.len());
        for slot in self.slots.iter() {
            let s1 = slot.seq.load(Ordering::Acquire);
            if s1 == 0 || s1 == BUSY {
                continue;
            }
            let rec = FlightRecord {
                seq: s1,
                ts_ns: slot.ts_ns.load(Ordering::Relaxed),
                tid: slot.tid.load(Ordering::Relaxed),
                kind: slot.kind.load(Ordering::Relaxed) as u16,
                a: slot.a.load(Ordering::Relaxed),
                b: slot.b.load(Ordering::Relaxed),
            };
            fence(Ordering::Acquire);
            if slot.seq.load(Ordering::Relaxed) == s1 {
                out.push(rec);
            }
        }
        out.sort_by_key(|r| r.seq);
        out
    }

    /// Renders a snapshot as ndjson — one record object per line, in
    /// sequence order (the dump format `obs_report --flight` renders).
    pub fn dump_ndjson(&self) -> String {
        to_ndjson(&self.snapshot())
    }
}

/// Renders records as ndjson, one object per line.
pub fn to_ndjson(records: &[FlightRecord]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for r in records {
        let _ = writeln!(
            out,
            "{{\"seq\": {}, \"ts_ns\": {}, \"tid\": {}, \"kind\": \"{}\", \"a\": {}, \"b\": {}}}",
            r.seq,
            r.ts_ns,
            r.tid,
            r.kind_name(),
            r.a,
            r.b
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_inert() {
        let f = FlightRecorder::disabled();
        assert!(!f.enabled());
        f.record(FlightKind::Mark, 1, 2);
        assert_eq!(f.recorded(), 0);
        assert!(f.snapshot().is_empty());
        assert_eq!(f.dump_ndjson(), "");
    }

    #[test]
    fn records_come_back_in_order_with_payloads() {
        let f = FlightRecorder::new(64);
        f.record(FlightKind::QueryStart, 7, 0);
        f.record(FlightKind::QueryOk, 7, 1234);
        let snap = f.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].seq, 1);
        assert_eq!(snap[0].kind_name(), "query_start");
        assert_eq!(snap[0].a, 7);
        assert_eq!(snap[1].kind_name(), "query_ok");
        assert_eq!(snap[1].b, 1234);
        assert!(snap[0].ts_ns <= snap[1].ts_ns, "timestamps are monotonic");
        assert_eq!(f.dropped(), 0);
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let f = FlightRecorder::new(8);
        for i in 0..20u64 {
            f.record(FlightKind::Mark, i, 0);
        }
        assert_eq!(f.recorded(), 20);
        assert_eq!(f.dropped(), 12);
        let snap = f.snapshot();
        assert_eq!(snap.len(), 8, "only the last capacity records remain");
        assert_eq!(
            snap.iter().map(|r| r.seq).collect::<Vec<_>>(),
            (13..=20).collect::<Vec<_>>(),
            "the survivors are the newest, in order"
        );
        assert_eq!(snap[0].a, 12, "payload follows the sequence");
    }

    #[test]
    fn capacity_is_rounded_to_a_power_of_two() {
        assert_eq!(FlightRecorder::new(1).capacity(), 8);
        assert_eq!(FlightRecorder::new(100).capacity(), 128);
        assert_eq!(FlightRecorder::new(1024).capacity(), 1024);
        assert_eq!(FlightRecorder::new(0).capacity(), 0);
    }

    #[test]
    fn kind_codes_round_trip() {
        for k in FlightKind::ALL {
            assert_eq!(FlightKind::from_code(k as u16), Some(k), "{}", k.name());
        }
        assert_eq!(FlightKind::from_code(999), None);
        let r = FlightRecord {
            seq: 1,
            ts_ns: 0,
            tid: 0,
            kind: 999,
            a: 0,
            b: 0,
        };
        assert_eq!(r.kind_name(), "unknown");
    }

    #[test]
    fn ndjson_lines_parse_back() {
        let f = FlightRecorder::new(8);
        f.record(FlightKind::Enqueue, 1, 1);
        f.record(FlightKind::Dequeue, 1, 1);
        let dump = f.dump_ndjson();
        assert_eq!(dump.lines().count(), 2);
        for line in dump.lines() {
            let v = crate::json::parse(line).expect("valid json");
            assert!(v.get("seq").and_then(|s| s.as_u64()).is_some());
            assert!(v.get("kind").and_then(|k| k.as_str()).is_some());
        }
    }
}
