//! # symbol-bench
//!
//! The benchmark harness of the SYMBOL reproduction.
//!
//! * The `tables` binary regenerates every table and figure of the
//!   paper in one run:
//!   `cargo run --release -p symbol-bench --bin tables`.
//! * The Criterion benches under `benches/` — one per table and figure
//!   — time the regeneration kernels on representative workloads and
//!   print the regenerated rows next to the paper's numbers.

use symbol_core::benchmarks::{self, Benchmark};
use symbol_core::experiments::{measure, BenchResult};
use symbol_core::pipeline::Compiled;

/// Small benchmarks used inside timed Criterion loops (the full suite
/// runs once, outside the timed section, to print the actual tables).
pub const TIMING_SUBSET: &[&str] = &["conc30", "nreverse", "ops8", "qsort"];

/// Compiles and profiles one named benchmark.
///
/// # Panics
///
/// Panics if the benchmark is unknown or fails to compile/run — the
/// harness cannot proceed without it.
pub fn compiled(name: &str) -> (Compiled, symbol_intcode::RunResult) {
    let b = benchmarks::by_name(name).unwrap_or_else(|| panic!("unknown benchmark {name}"));
    let c = Compiled::from_source(b.source).expect("benchmark compiles");
    let run = c.run_sequential().expect("benchmark runs");
    (c, run)
}

/// Measures a list of benchmarks (used by the report-printing side of
/// each bench).
///
/// # Panics
///
/// Panics if any benchmark fails its self-check anywhere.
pub fn measure_named(names: &[&str]) -> Vec<BenchResult> {
    names
        .iter()
        .map(|n| {
            let b: &Benchmark = benchmarks::by_name(n).expect("known benchmark");
            measure(b).expect("benchmark measures")
        })
        .collect()
}
