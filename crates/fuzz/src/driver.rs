//! The fuzz loop: generate → oracle → shrink → report.

use std::fmt::Write as _;
use std::panic::{self, AssertUnwindSafe};
use std::time::{Duration, Instant};

use crate::corpus::{render, Expect};
use crate::oracle::{run_case, Case, Failure, FailureKind, OracleConfig};
use crate::rng::Rng;
use crate::shrink::shrink_case;
use crate::{gen_intcode, gen_prolog};

/// Which generation levels to exercise.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum KindFilter {
    /// Alternate Prolog and IntCode cases.
    Both,
    /// Prolog programs only.
    Prolog,
    /// IntCode fragments only.
    IntCode,
}

/// A fuzz run's parameters.
#[derive(Clone, Debug)]
pub struct FuzzOptions {
    /// Base seed; case `i` runs on the independent stream
    /// [`Rng::for_case`]`(seed, i)`.
    pub seed: u64,
    /// Number of cases to attempt.
    pub cases: u64,
    /// Sequential step limit per case.
    pub max_steps: u64,
    /// Wall-clock budget; the loop stops cleanly when exceeded.
    pub budget: Option<Duration>,
    /// Which generators to run.
    pub kind: KindFilter,
    /// Whether to run the compaction + VLIW stage.
    pub check_vliw: bool,
    /// Stop after this many findings (each one is shrunk, which costs
    /// many oracle evaluations).
    pub max_failures: usize,
    /// Candidate-evaluation bound per shrink.
    pub shrink_evals: usize,
}

impl Default for FuzzOptions {
    fn default() -> Self {
        FuzzOptions {
            seed: 0,
            cases: 100,
            max_steps: 200_000,
            budget: None,
            kind: KindFilter::Both,
            check_vliw: true,
            max_failures: 5,
            shrink_evals: 3_000,
        }
    }
}

/// One shrunk finding.
#[derive(Clone, Debug)]
pub struct FailureRecord {
    /// Case index within the run.
    pub index: u64,
    /// Stable failure tag.
    pub kind_tag: String,
    /// Diagnosis from the oracle (for the original, un-shrunk case).
    pub detail: String,
    /// Generation level of the case.
    pub case_kind: &'static str,
    /// The shrunk reproducer, rendered in the corpus format with
    /// `expect: fail <tag>`.
    pub reproducer: String,
}

/// The outcome of a fuzz run.
#[derive(Clone, Debug)]
pub struct FuzzReport {
    /// Base seed of the run.
    pub seed: u64,
    /// Cases requested.
    pub requested: u64,
    /// Cases actually executed.
    pub executed: u64,
    /// How many were Prolog programs.
    pub prolog_cases: u64,
    /// How many were IntCode fragments.
    pub intcode_cases: u64,
    /// Whether the wall-clock budget cut the run short.
    pub budget_exhausted: bool,
    /// Wall-clock duration.
    pub elapsed: Duration,
    /// Shrunk findings, in discovery order.
    pub failures: Vec<FailureRecord>,
}

impl FuzzReport {
    /// True when every executed case passed the oracle.
    pub fn clean(&self) -> bool {
        self.failures.is_empty()
    }

    /// Renders the report as JSON (hand-rolled; the workspace has no
    /// serialization dependency).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        let _ = write!(
            s,
            "\"seed\":{},\"requested\":{},\"executed\":{},\"prolog_cases\":{},\
             \"intcode_cases\":{},\"budget_exhausted\":{},\"elapsed_secs\":{:.3},\"failures\":[",
            self.seed,
            self.requested,
            self.executed,
            self.prolog_cases,
            self.intcode_cases,
            self.budget_exhausted,
            self.elapsed.as_secs_f64()
        );
        for (i, f) in self.failures.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"index\":{},\"kind\":{},\"case_kind\":{},\"detail\":{},\"reproducer\":{}}}",
                f.index,
                json_string(&f.kind_tag),
                json_string(f.case_kind),
                json_string(&f.detail),
                json_string(&f.reproducer)
            );
        }
        s.push_str("]}");
        s
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Runs the oracle with panics converted into [`FailureKind::Panic`]
/// findings instead of aborting the loop.
fn run_guarded(case: &Case, cfg: &OracleConfig) -> Option<Failure> {
    match panic::catch_unwind(AssertUnwindSafe(|| run_case(case, cfg))) {
        Ok(Ok(())) => None,
        Ok(Err(f)) => Some(f),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            Some(Failure {
                kind: FailureKind::Panic,
                detail: msg,
            })
        }
    }
}

/// Runs the fuzz loop to completion (or budget / failure-cap exit).
pub fn run_fuzz(opts: &FuzzOptions) -> FuzzReport {
    let start = Instant::now();
    let cfg = OracleConfig {
        max_steps: opts.max_steps,
        check_vliw: opts.check_vliw,
    };

    // Findings are shrunk, and every failing shrink candidate would
    // print a panic message for Panic-kind findings; keep the loop
    // quiet and restore the hook afterwards.
    let saved_hook = panic::take_hook();
    panic::set_hook(Box::new(|_| {}));

    let mut report = FuzzReport {
        seed: opts.seed,
        requested: opts.cases,
        executed: 0,
        prolog_cases: 0,
        intcode_cases: 0,
        budget_exhausted: false,
        elapsed: Duration::ZERO,
        failures: Vec::new(),
    };

    for i in 0..opts.cases {
        if let Some(budget) = opts.budget {
            if start.elapsed() >= budget {
                report.budget_exhausted = true;
                break;
            }
        }
        if report.failures.len() >= opts.max_failures {
            break;
        }
        let mut rng = Rng::for_case(opts.seed, i);
        let prolog = match opts.kind {
            KindFilter::Both => i % 2 == 0,
            KindFilter::Prolog => true,
            KindFilter::IntCode => false,
        };
        let case = if prolog {
            report.prolog_cases += 1;
            Case::Prolog(gen_prolog::generate(&mut rng))
        } else {
            report.intcode_cases += 1;
            Case::IntCode(gen_intcode::generate(&mut rng))
        };
        report.executed += 1;

        if let Some(failure) = run_guarded(&case, &cfg) {
            let key = failure.kind.clone();
            let mut check = |c: &Case| run_guarded(c, &cfg).map(|f| f.kind);
            let shrunk = shrink_case(case, &key, &mut check, opts.shrink_evals);
            report.failures.push(FailureRecord {
                index: i,
                kind_tag: key.tag(),
                detail: failure.detail,
                case_kind: shrunk.kind_name(),
                reproducer: render(
                    &shrunk,
                    &Expect::Fail(key),
                    Some(opts.seed),
                    Some(&failure.kind.tag()),
                ),
            });
        }
    }

    panic::set_hook(saved_hook);
    report.elapsed = start.elapsed();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_small_run_is_clean_and_deterministic() {
        let opts = FuzzOptions {
            seed: 1,
            cases: 20,
            ..FuzzOptions::default()
        };
        let a = run_fuzz(&opts);
        let b = run_fuzz(&opts);
        assert!(a.clean(), "findings: {:?}", a.failures);
        assert_eq!(a.executed, 20);
        assert_eq!(a.prolog_cases, 10);
        assert_eq!(a.intcode_cases, 10);
        assert_eq!(b.executed, a.executed);
    }

    #[test]
    fn the_budget_stops_the_loop() {
        let opts = FuzzOptions {
            seed: 2,
            cases: 1_000_000,
            budget: Some(Duration::from_millis(200)),
            ..FuzzOptions::default()
        };
        let r = run_fuzz(&opts);
        assert!(r.budget_exhausted);
        assert!(r.executed < 1_000_000);
    }

    #[test]
    fn json_report_escapes_and_balances() {
        let mut r = FuzzReport {
            seed: 3,
            requested: 1,
            executed: 1,
            prolog_cases: 1,
            intcode_cases: 0,
            budget_exhausted: false,
            elapsed: Duration::from_millis(1500),
            failures: Vec::new(),
        };
        r.failures.push(FailureRecord {
            index: 0,
            kind_tag: "expectation".into(),
            detail: "line\n\"quoted\"".into(),
            case_kind: "prolog",
            reproducer: "# kind: prolog\n".into(),
        });
        let j = r.to_json();
        assert!(j.contains("\\n"));
        assert!(j.contains("\\\"quoted\\\""));
        assert!(j.starts_with('{') && j.ends_with('}'));
    }
}
