//! End-to-end pipeline tests: Prolog source → BAM → ICI → sequential
//! emulation, checking query success/failure for programs that exercise
//! every compiler feature.

use symbol_intcode::emu::{Emulator, ExecConfig, Outcome};
use symbol_intcode::layout::Layout;
use symbol_intcode::translate::translate;
use symbol_prolog::{parse_program, PredId};

fn small_layout() -> Layout {
    Layout {
        heap_size: 1 << 16,
        env_size: 1 << 14,
        cp_size: 1 << 14,
        trail_size: 1 << 14,
        pdl_size: 1 << 12,
    }
}

fn run(src: &str) -> Outcome {
    let program = parse_program(src).expect("parse");
    let bam = symbol_bam::compile(&program).expect("compile");
    let main = PredId::new(program.symbols().lookup("main").expect("main atom"), 0);
    let layout = small_layout();
    let ici = translate(&bam, main, &layout).expect("translate");
    let result = Emulator::new(&ici, &layout)
        .run(&ExecConfig {
            max_steps: 50_000_000,
        })
        .expect("clean run");
    result.outcome
}

fn succeeds(src: &str) {
    assert_eq!(run(src), Outcome::Success, "expected success: {src}");
}

fn fails(src: &str) {
    assert_eq!(run(src), Outcome::Failure, "expected failure: {src}");
}

#[test]
fn fact_succeeds() {
    succeeds("main.");
}

#[test]
fn missing_match_fails() {
    fails("main :- a(1). a(2).");
}

#[test]
fn constant_unification() {
    succeeds("main :- a = a, 1 = 1.");
    fails("main :- a = b.");
    fails("main :- 1 = 2.");
    fails("main :- a = 1.");
}

#[test]
fn variable_binding_and_equality() {
    succeeds("main :- X = 3, X = 3.");
    fails("main :- X = 3, X = 4.");
    succeeds("main :- X = Y, X = 1, Y = 1.");
}

#[test]
fn structures_unify_recursively() {
    succeeds("main :- f(X, g(Y)) = f(1, g(2)), X = 1, Y = 2.");
    fails("main :- f(X, g(X)) = f(1, g(2)).");
    fails("main :- f(1) = g(1).");
    fails("main :- f(1) = f(1, 2).");
}

#[test]
fn lists_and_append() {
    succeeds(
        "main :- app([1,2], [3,4], R), R = [1,2,3,4].
         app([], L, L).
         app([X|T], L, [X|R]) :- app(T, L, R).",
    );
    succeeds(
        "main :- app(X, [3], [1,2,3]), X = [1,2].
         app([], L, L).
         app([X|T], L, [X|R]) :- app(T, L, R).",
    );
}

#[test]
fn backtracking_finds_later_clause() {
    succeeds("main :- a(X), X = 3. a(1). a(2). a(3).");
    fails("main :- a(X), X = 9. a(1). a(2). a(3).");
}

#[test]
fn backtracking_with_bindings_undone() {
    // First clause binds X=1 then fails; trail must undo before X=2.
    succeeds("main :- p(X), q(X). p(1). p(2). q(2).");
}

#[test]
fn cut_commits() {
    fails("main :- a(X), X = 2. a(1) :- !. a(2).");
    succeeds("main :- a(X), X = 1. a(1) :- !. a(2).");
}

#[test]
fn neck_cut_and_deep_cut() {
    // Deep cut (after a call) requires the saved barrier.
    succeeds(
        "main :- p(X), X = 1.
         p(X) :- q(X), !, r(X).
         p(99).
         q(1). q(2).
         r(1).",
    );
    // Once cut, q's alternatives must be gone.
    fails(
        "main :- p(X), X = 2.
         p(X) :- q(X), !, r(X).
         q(1). q(2).
         r(1). r(2).",
    );
}

#[test]
fn cut_is_transparent_to_earlier_choices() {
    // Cut in p must not remove main's own alternatives.
    succeeds(
        "main :- a(X), p, X = 2.
         a(1). a(2).
         p :- !.",
    );
}

#[test]
fn arithmetic_evaluates() {
    succeeds("main :- X is 2 + 3 * 4, X = 14.");
    succeeds("main :- X is (10 - 4) // 2, X = 3.");
    succeeds("main :- X is 17 mod 5, X = 2.");
    succeeds("main :- X is -3, Y is 0 - X, Y = 3.");
    succeeds("main :- X is 1 << 4, X = 16.");
}

#[test]
fn arithmetic_with_variables() {
    succeeds("main :- X = 5, Y is X * X, Y = 25.");
    succeeds("main :- X = 2, Y = 3, Z is X + Y, Z = 5.");
}

#[test]
fn comparisons() {
    succeeds("main :- 1 < 2, 2 =< 2, 3 > 1, 3 >= 3, 1 =:= 1, 1 =\\= 2.");
    fails("main :- 2 < 1.");
    fails("main :- 1 =\\= 1.");
    succeeds("main :- X = 4, X > 3.");
}

#[test]
fn structural_equality() {
    succeeds("main :- f(1, g(2)) == f(1, g(2)).");
    fails("main :- f(1) == f(2).");
    succeeds("main :- f(1) \\== f(2).");
    succeeds("main :- X = f(Y), Z = f(Y), X == Z.");
    // distinct unbound variables are not ==
    fails("main :- X == Y, X = x, Y = x.");
    succeeds("main :- X = Y, X == Y, X = 1.");
}

#[test]
fn type_tests() {
    succeeds("main :- var(X), X = 1, integer(X), nonvar(X), atomic(X).");
    succeeds("main :- atom(foo), atomic(foo), atomic(42).");
    fails("main :- atom(42).");
    fails("main :- X = 1, var(X).");
    fails("main :- integer(f(1)).");
}

#[test]
fn negation_as_failure() {
    succeeds("main :- \\+ fail_goal. fail_goal :- fail.");
    succeeds("main :- \\+ a(9). a(1). a(2).");
    fails("main :- \\+ a(1). a(1). a(2).");
}

#[test]
fn if_then_else() {
    succeeds("main :- (1 < 2 -> X = yes ; X = no), X = yes.");
    succeeds("main :- (2 < 1 -> X = yes ; X = no), X = no.");
}

#[test]
fn disjunction() {
    succeeds("main :- (X = 1 ; X = 2), X = 2.");
    fails("main :- (X = 1 ; X = 2), X = 3.");
}

#[test]
fn deep_recursion_with_environments() {
    succeeds(
        "main :- count(200, R), R = 200.
         count(0, 0).
         count(N, R) :- N > 0, N1 is N - 1, count(N1, R1), R is R1 + 1.",
    );
}

#[test]
fn naive_reverse() {
    succeeds(
        "main :- nrev([1,2,3,4,5,6,7,8,9,10], R), R = [10,9,8,7,6,5,4,3,2,1].
         nrev([], []).
         nrev([H|T], R) :- nrev(T, RT), app(RT, [H], R).
         app([], L, L).
         app([X|T], L, [X|R]) :- app(T, L, R).",
    );
}

#[test]
fn first_arg_indexing_on_constants() {
    succeeds(
        "main :- color(banana, C), C = yellow.
         color(apple, red). color(banana, yellow). color(plum, purple).",
    );
    fails(
        "main :- color(kiwi, _).
         color(apple, red). color(banana, yellow). color(plum, purple).",
    );
}

#[test]
fn indexing_on_structures() {
    succeeds(
        "main :- eval(plus(1, 2), V), V = 3.
         eval(plus(A, B), V) :- eval(A, VA), eval(B, VB), V is VA + VB.
         eval(times(A, B), V) :- eval(A, VA), eval(B, VB), V is VA * VB.
         eval(N, N) :- integer(N).",
    );
}

#[test]
fn head_builds_structures_in_write_mode() {
    succeeds(
        "main :- mk(X), X = point(1, 2).
         mk(point(1, 2)).",
    );
    succeeds(
        "main :- pairs([1,2], P), P = [p(1),p(2)].
         pairs([], []).
         pairs([X|T], [p(X)|R]) :- pairs(T, R).",
    );
}

#[test]
fn repeated_head_variables() {
    succeeds("main :- same(3, 3). same(X, X).");
    fails("main :- same(3, 4). same(X, X).");
    succeeds("main :- same(f(A), f(1)), A = 1. same(X, X).");
}

#[test]
fn permanent_variables_survive_calls() {
    succeeds(
        "main :- p(1, 2).
         p(X, Y) :- q(X), r(Y), s(X, Y).
         q(1). r(2). s(1, 2).",
    );
}

#[test]
fn unbound_in_structure_passes_through_call() {
    // An unbound variable inside a built structure must be globalized
    // correctly so the callee can bind it.
    succeeds(
        "main :- p(R), R = 7.
         p(X) :- q(f(X)).
         q(f(7)).",
    );
}

#[test]
fn last_call_with_permanent_var_is_safe() {
    // Classic unsafe-variable case: Y occurs in two chunks, is unbound
    // at the last call, and the environment is gone when r binds it.
    succeeds(
        "main :- p(V), V = 42.
         p(X) :- q(Y), r(Y, X).
         q(_).
         r(Z, Z) :- Z = 42.",
    );
}

#[test]
fn fail_and_true_builtins() {
    fails("main :- fail.");
    succeeds("main :- true.");
    succeeds("main :- a. a :- true, true.");
}

#[test]
fn zero_arity_aux_predicates() {
    succeeds("main :- (a ; b). b. a :- fail.");
}

#[test]
fn deterministic_append_leaves_no_choicepoints() {
    // Not directly observable, but deep deterministic recursion in
    // bounded stack space implies Trust popped choice points.
    succeeds(
        "main :- len(L, 300), app(L, [x], _).
         len([], 0).
         len([a|T], N) :- N > 0, N1 is N - 1, len(T, N1).
         app([], L, L).
         app([X|T], L, [X|R]) :- app(T, L, R).",
    );
}

#[test]
fn multiple_solutions_via_failure_driven_loop() {
    succeeds(
        "main :- gen. main :- true.
         gen :- a(_), fail.
         a(1). a(2). a(3).",
    );
}

#[test]
fn extended_arithmetic_functions() {
    succeeds("main :- X is abs(-5), X = 5.");
    succeeds("main :- X is abs(7), X = 7.");
    succeeds("main :- X is max(3, 9), X = 9.");
    succeeds("main :- X is min(3, 9), X = 3.");
    succeeds("main :- X is min(-3, -9), X = -9.");
    succeeds("main :- X is max(2 * 3, 10 - 7), X = 6.");
}
