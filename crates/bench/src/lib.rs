//! # symbol-bench
//!
//! The benchmark harness of the SYMBOL reproduction.
//!
//! * The `tables` binary regenerates every table and figure of the
//!   paper in one run:
//!   `cargo run --release -p symbol-bench --bin tables`.
//! * The benches under `benches/` — one per table and figure — time
//!   the regeneration kernels on representative workloads with the
//!   self-contained [`timing`] harness and print the regenerated rows
//!   next to the paper's numbers.

use symbol_core::benchmarks::{self, Benchmark};
use symbol_core::experiments::{measure_cached, BenchResult};
use symbol_core::pipeline::{Compiled, CompiledCache};

pub mod timing;

/// Small benchmarks used inside timed loops (the full suite runs once,
/// outside the timed section, to print the actual tables).
pub const TIMING_SUBSET: &[&str] = &["conc30", "nreverse", "ops8", "qsort"];

/// Compiles and profiles one named benchmark.
///
/// # Panics
///
/// Panics if the benchmark is unknown or fails to compile/run — the
/// harness cannot proceed without it.
pub fn compiled(name: &str) -> (Compiled, symbol_intcode::RunResult) {
    let b = benchmarks::by_name(name).unwrap_or_else(|| panic!("unknown benchmark {name}"));
    let c = Compiled::from_source(b.source).expect("benchmark compiles");
    let run = c.run_sequential().expect("benchmark runs");
    (c, run)
}

/// Measures a list of benchmarks (used by the report-printing side of
/// each bench). Each benchmark compiles and profiles once through a
/// [`CompiledCache`]; the per-(mode, machine) simulations share that
/// profile on the parallel driver.
///
/// # Panics
///
/// Panics if any benchmark fails its self-check anywhere.
pub fn measure_named(names: &[&str]) -> Vec<BenchResult> {
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    names
        .iter()
        .map(|n| {
            let b: &Benchmark = benchmarks::by_name(n).expect("known benchmark");
            let c = Compiled::from_source(b.source).expect("benchmark compiles");
            let cache = CompiledCache::new(&c).expect("benchmark runs");
            measure_cached(b.name, &cache, threads).expect("benchmark measures")
        })
        .collect()
}
