//! Register pressure of trace-scheduled code — how feasible is the
//! prototype's 16-register bank (paper §5.2)?
//!
//! ```sh
//! cargo run --release -p symbol-core --example register_pressure
//! ```

use symbol_compactor::{compact, pressure, regalloc, CompactMode, TracePolicy};
use symbol_core::benchmarks;
use symbol_core::pipeline::Compiled;
use symbol_vliw::MachineConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let machine = MachineConfig::units(3);
    let mut rows = Vec::new();
    for b in benchmarks::ALL {
        let compiled = Compiled::from_source(b.source)?;
        let run = compiled.run_sequential()?;
        let compacted = compact(
            &compiled.ici,
            &run.stats,
            &machine,
            CompactMode::TraceSchedule,
            &TracePolicy::default(),
        );
        let (_, phys) =
            regalloc::allocate(&compacted.program, 64).expect("benchmarks allocate comfortably");
        let p = pressure::measure(&compacted.program);
        rows.push((format!("{} (alloc {phys} regs)", b.name), p));
    }
    print!("{}", pressure::pressure_summary(&rows));
    let worst = rows
        .iter()
        .map(|(_, p)| p.max_live_temps)
        .max()
        .unwrap_or(0);
    println!(
        "\nworst-case simultaneous temporaries: {worst} — the virtual\n\
         register space a register allocator would have to fold into the\n\
         prototype's 16-entry banks (values above ~12 per unit would\n\
         force spilling)."
    );
    Ok(())
}
