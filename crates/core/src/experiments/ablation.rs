//! Ablation study (experiment E9 of DESIGN.md): how much each design
//! choice of the compactor and machine contributes.
//!
//! Variants, each measured as average speed-up over the sequential
//! machine on a benchmark subset at 3 units:
//!
//! * full trace scheduling (the default),
//! * no speculation (no hoisting above side exits),
//! * no multi-way branches (one control transfer per word),
//! * no tail duplication / larger duplication budgets,
//! * 2 and 4 memory ports (relaxing the shared-memory constraint),
//! * the four-slot-per-unit "wide" reading of Figure 5,
//! * the prototype's two-format issue restriction (§5.1).

use symbol_compactor::{sequential_cycles, try_compact, CompactMode, SeqDurations, TracePolicy};
use symbol_vliw::{MachineConfig, SimConfig, SimOutcome, VliwSim};

use crate::benchmarks;
use crate::pipeline::{Compiled, PipelineError};

/// One ablation variant.
#[derive(Clone, Debug)]
pub struct Variant {
    /// Display name.
    pub name: &'static str,
    /// Machine configuration.
    pub machine: MachineConfig,
    /// Trace policy.
    pub policy: TracePolicy,
    /// Compaction mode.
    pub mode: CompactMode,
    /// Run IR copy propagation before compaction (the sequential
    /// baseline is recomputed on the optimized code, so the speed-up
    /// isolates the *scheduling* gain).
    pub copyprop: bool,
}

/// The standard variant list.
pub fn variants() -> Vec<Variant> {
    let base = MachineConfig::units(3);
    let policy = TracePolicy::default();
    let mut v = vec![
        Variant {
            name: "full (3 units)",
            machine: base,
            policy,
            mode: CompactMode::TraceSchedule,
            copyprop: false,
        },
        Variant {
            name: "with copy propagation",
            machine: base,
            policy,
            mode: CompactMode::TraceSchedule,
            copyprop: true,
        },
        Variant {
            name: "no speculation",
            machine: base,
            policy: TracePolicy {
                speculate: false,
                ..policy
            },
            mode: CompactMode::TraceSchedule,
            copyprop: false,
        },
        Variant {
            name: "no multiway branch",
            machine: MachineConfig {
                multiway_branch: false,
                ..base
            },
            policy,
            mode: CompactMode::TraceSchedule,
            copyprop: false,
        },
        Variant {
            name: "no tail duplication",
            machine: base,
            policy: TracePolicy {
                tail_dup_ops: 0,
                ..policy
            },
            mode: CompactMode::TraceSchedule,
            copyprop: false,
        },
        Variant {
            name: "tail dup budget 64",
            machine: base,
            policy: TracePolicy {
                tail_dup_ops: 64,
                ..policy
            },
            mode: CompactMode::TraceSchedule,
            copyprop: false,
        },
        Variant {
            name: "2 memory ports",
            machine: MachineConfig {
                mem_ports: 2,
                ..base
            },
            policy,
            mode: CompactMode::TraceSchedule,
            copyprop: false,
        },
        Variant {
            name: "4 memory ports",
            machine: MachineConfig {
                mem_ports: 4,
                ..base
            },
            policy,
            mode: CompactMode::TraceSchedule,
            copyprop: false,
        },
        Variant {
            name: "wide units (4 slots)",
            machine: MachineConfig::wide_units(3),
            policy,
            mode: CompactMode::TraceSchedule,
            copyprop: false,
        },
        Variant {
            name: "prototype formats",
            machine: MachineConfig::prototype(),
            policy,
            mode: CompactMode::TraceSchedule,
            copyprop: false,
        },
        Variant {
            name: "basic blocks only",
            machine: base,
            policy,
            mode: CompactMode::BasicBlock,
            copyprop: false,
        },
    ];
    v.shrink_to_fit();
    v
}

/// One measured row of the ablation table.
#[derive(Clone, Debug)]
pub struct AblationRow {
    /// Variant name.
    pub name: &'static str,
    /// Average speed-up over the subset.
    pub avg_speedup: f64,
    /// Average static code growth.
    pub avg_growth: f64,
}

/// Runs the ablation over `subset` benchmark names.
///
/// # Errors
///
/// Propagates compilation/simulation errors; every variant re-checks
/// every benchmark's answer.
pub fn run(subset: &[&str]) -> Result<Vec<AblationRow>, PipelineError> {
    let mut prepared = Vec::new();
    for name in subset {
        let b = benchmarks::by_name(name).unwrap_or_else(|| panic!("unknown benchmark {name}"));
        let c = Compiled::from_source(b.source)?;
        let run = c.run_sequential()?;
        let seq = sequential_cycles(&c.ici, &run.stats, &SeqDurations::default());
        prepared.push((c, run, seq));
    }

    let mut rows = Vec::new();
    for v in variants() {
        let mut speedups = 0.0;
        let mut growth = 0.0;
        for (c, run, seq) in &prepared {
            let (compacted, baseline) = if v.copyprop {
                let opt = symbol_compactor::try_copy_propagate(&c.ici, &run.stats)?;
                let seq_opt = sequential_cycles(&opt.program, &opt.stats, &SeqDurations::default());
                (
                    try_compact(&opt.program, &opt.stats, &v.machine, v.mode, &v.policy)?,
                    seq_opt,
                )
            } else {
                (
                    try_compact(&c.ici, &run.stats, &v.machine, v.mode, &v.policy)?,
                    *seq,
                )
            };
            let result =
                VliwSim::new(&compacted.program, v.machine, &c.layout).run(&SimConfig::default())?;
            if result.outcome != SimOutcome::Success {
                return Err(PipelineError::WrongAnswer);
            }
            speedups += baseline as f64 / result.cycles as f64;
            growth += compacted.stats.code_growth();
        }
        let n = prepared.len() as f64;
        rows.push(AblationRow {
            name: v.name,
            avg_speedup: speedups / n,
            avg_growth: growth / n,
        });
    }
    Ok(rows)
}

/// Renders the ablation rows.
pub fn render(rows: &[AblationRow]) -> String {
    use symbol_analysis::table::{f, TextTable};
    let mut t = TextTable::new(&["variant", "avg speed-up", "code growth"]);
    for r in rows {
        t.row(vec![r.name.into(), f(r.avg_speedup, 2), f(r.avg_growth, 2)]);
    }
    format!(
        "Ablation — contribution of each design choice (3-unit machine,\n\
         average over a benchmark subset)\n\n{t}"
    )
}
