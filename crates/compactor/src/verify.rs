//! Static schedule verification.
//!
//! The VLIW simulator validates every *executed* instruction word, but
//! profile-guided compaction also emits cold code the profile never
//! touches. This verifier checks the whole program statically: per-word
//! resource budgets (including the issue width and the shared memory
//! port), per-unit slot conflicts, the prototype's format restriction,
//! and the single-writer rule. [`crate::compact`] runs it on every
//! schedule it produces.

use std::fmt;

use symbol_intcode::OpClass;
use symbol_vliw::{MachineConfig, VliwProgram};

/// A static violation of the machine model.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Violation {
    /// A word issues more ops than the machine's issue width.
    IssueWidth {
        /// Instruction index.
        at: usize,
        /// Ops in the word.
        ops: usize,
    },
    /// A word exceeds a class's slot budget.
    ClassBudget {
        /// Instruction index.
        at: usize,
        /// The class.
        class: String,
        /// Ops of that class in the word.
        used: usize,
    },
    /// Two ops of the same class share a unit.
    UnitConflict {
        /// Instruction index.
        at: usize,
        /// The oversubscribed unit.
        unit: usize,
    },
    /// ALU/move and control ops share a unit under split formats.
    FormatConflict {
        /// Instruction index.
        at: usize,
        /// The conflicted unit.
        unit: usize,
    },
    /// Two ops write the same register in one word.
    DoubleWrite {
        /// Instruction index.
        at: usize,
        /// The register.
        reg: u32,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::IssueWidth { at, ops } => {
                write!(f, "word {at} issues {ops} ops past the issue width")
            }
            Violation::ClassBudget { at, class, used } => {
                write!(f, "word {at} uses {used} {class} slots")
            }
            Violation::UnitConflict { at, unit } => {
                write!(f, "word {at} oversubscribes unit {unit}")
            }
            Violation::FormatConflict { at, unit } => {
                write!(f, "word {at} mixes formats on unit {unit}")
            }
            Violation::DoubleWrite { at, reg } => {
                write!(f, "word {at} writes r{reg} twice")
            }
        }
    }
}

impl std::error::Error for Violation {}

/// Verifies every instruction word of `program` against `machine`.
///
/// # Errors
///
/// Returns the first [`Violation`] found.
pub fn verify_program(program: &VliwProgram, machine: &MachineConfig) -> Result<(), Violation> {
    for (at, word) in program.instrs().iter().enumerate() {
        if word.slots.len() > machine.issue_width {
            return Err(Violation::IssueWidth {
                at,
                ops: word.slots.len(),
            });
        }
        let mut class_used = [0usize; OpClass::COUNT];
        let mut unit_class: Vec<(usize, OpClass)> = Vec::new();
        let mut written: Vec<u32> = Vec::new();
        for s in &word.slots {
            let class = s.op.class();
            let idx = class.index();
            class_used[idx] += 1;
            if class_used[idx] > machine.slots(class) {
                return Err(Violation::ClassBudget {
                    at,
                    class: format!("{class}"),
                    used: class_used[idx],
                });
            }
            if unit_class.contains(&(s.unit, class)) {
                return Err(Violation::UnitConflict { at, unit: s.unit });
            }
            if machine.split_formats {
                let conflicting = match class {
                    OpClass::Alu | OpClass::Move => Some(OpClass::Control),
                    OpClass::Control => None, // checked from the other side
                    OpClass::Memory => None,
                };
                if let Some(other) = conflicting {
                    if unit_class.contains(&(s.unit, other)) {
                        return Err(Violation::FormatConflict { at, unit: s.unit });
                    }
                }
                if class == OpClass::Control
                    && (unit_class.contains(&(s.unit, OpClass::Alu))
                        || unit_class.contains(&(s.unit, OpClass::Move)))
                {
                    return Err(Violation::FormatConflict { at, unit: s.unit });
                }
            }
            unit_class.push((s.unit, class));
            if let Some(d) = s.op.def() {
                if written.contains(&d.0) {
                    return Err(Violation::DoubleWrite { at, reg: d.0 });
                }
                written.push(d.0);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use symbol_intcode::{Label, Op, Word, R};
    use symbol_vliw::{SlotOp, VliwInstr};

    fn program(words: Vec<VliwInstr>) -> VliwProgram {
        let mut labels = HashMap::new();
        labels.insert(Label(0), 0);
        VliwProgram::new(words, labels, 1, Label(0))
    }

    fn slot(unit: usize, op: Op) -> SlotOp {
        SlotOp {
            unit,
            op,
            speculative: false,
        }
    }

    #[test]
    fn accepts_legal_word() {
        let p = program(vec![VliwInstr {
            slots: vec![
                slot(
                    0,
                    Op::MvI {
                        d: R(40),
                        w: Word::int(1),
                    },
                ),
                slot(
                    1,
                    Op::MvI {
                        d: R(41),
                        w: Word::int(2),
                    },
                ),
            ],
        }]);
        assert!(verify_program(&p, &MachineConfig::units(2)).is_ok());
    }

    #[test]
    fn rejects_issue_width_overflow() {
        let p = program(vec![VliwInstr {
            slots: vec![
                slot(
                    0,
                    Op::MvI {
                        d: R(40),
                        w: Word::int(1),
                    },
                ),
                slot(
                    1,
                    Op::MvI {
                        d: R(41),
                        w: Word::int(2),
                    },
                ),
            ],
        }]);
        let err = verify_program(&p, &MachineConfig::units(1)).unwrap_err();
        assert!(matches!(err, Violation::IssueWidth { .. }));
    }

    #[test]
    fn rejects_memory_port_overflow() {
        let p = program(vec![VliwInstr {
            slots: vec![
                slot(
                    0,
                    Op::Ld {
                        d: R(40),
                        base: R(50),
                        off: 0,
                    },
                ),
                slot(
                    1,
                    Op::Ld {
                        d: R(41),
                        base: R(50),
                        off: 1,
                    },
                ),
            ],
        }]);
        let err = verify_program(&p, &MachineConfig::wide_units(2)).unwrap_err();
        assert!(matches!(err, Violation::ClassBudget { .. }));
    }

    #[test]
    fn rejects_double_write() {
        let p = program(vec![VliwInstr {
            slots: vec![
                slot(
                    0,
                    Op::MvI {
                        d: R(40),
                        w: Word::int(1),
                    },
                ),
                slot(
                    1,
                    Op::MvI {
                        d: R(40),
                        w: Word::int(2),
                    },
                ),
            ],
        }]);
        let err = verify_program(&p, &MachineConfig::units(2)).unwrap_err();
        assert!(matches!(err, Violation::DoubleWrite { reg: 40, .. }));
    }

    #[test]
    fn rejects_format_mix_on_prototype() {
        let p = program(vec![VliwInstr {
            slots: vec![
                slot(
                    0,
                    Op::MvI {
                        d: R(40),
                        w: Word::int(1),
                    },
                ),
                slot(0, Op::Jmp { t: Label(0) }),
            ],
        }]);
        let err = verify_program(&p, &MachineConfig::prototype()).unwrap_err();
        assert!(matches!(err, Violation::FormatConflict { .. }));
        // fine on a machine without the restriction
        assert!(verify_program(&p, &MachineConfig::units(3)).is_ok());
    }
}
