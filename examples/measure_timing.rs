//! Times the suite measurement sequentially and on the parallel
//! driver, verifying the results are bit-identical (the determinism
//! guarantee of `experiments::measure_all_with`).
//!
//! ```sh
//! cargo run --release -p symbol-core --example measure_timing
//! ```

use std::time::Instant;

use symbol_core::experiments::measure_all_with;

fn main() {
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());

    let t0 = Instant::now();
    let sequential = measure_all_with(1).expect("suite measures");
    let seq_time = t0.elapsed();
    println!("sequential (1 thread):   {seq_time:?}");

    let t1 = Instant::now();
    let parallel = measure_all_with(threads).expect("suite measures");
    let par_time = t1.elapsed();
    println!("parallel ({threads} threads):  {par_time:?}");

    assert_eq!(
        sequential, parallel,
        "parallel driver must be bit-identical"
    );
    println!(
        "speed-up: {:.2}x (bit-identical results over {} benchmarks)",
        seq_time.as_secs_f64() / par_time.as_secs_f64(),
        parallel.len()
    );
}
