use symbol_core::experiments::ablation;
fn main() {
    let rows = ablation::run(&[
        "conc30",
        "nreverse",
        "qsort",
        "serialise",
        "times10",
        "queens_8",
    ])
    .unwrap();
    println!("{}", ablation::render(&rows));
}
