//! Concurrency correctness of the atomic metric cells: many scoped
//! threads hammering shared handles must lose no updates, and
//! registration races must resolve to a single shared cell per
//! identity.

use std::thread;

use symbol_obs::{bucket_bounds, bucket_index, FlightKind, FlightRecorder, Level, Registry};

#[test]
fn concurrent_counter_updates_are_lossless() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 10_000;
    let obs = Registry::new();
    let c = obs.counter("hammered", &[]);
    thread::scope(|s| {
        for _ in 0..THREADS {
            let c = c.clone();
            s.spawn(move || {
                for _ in 0..PER_THREAD {
                    c.inc();
                }
            });
        }
    });
    assert_eq!(c.get(), THREADS as u64 * PER_THREAD);
    assert_eq!(
        obs.snapshot().counters[0].value,
        THREADS as u64 * PER_THREAD
    );
}

#[test]
fn concurrent_registration_resolves_to_one_cell() {
    const THREADS: usize = 8;
    let obs = Registry::new();
    thread::scope(|s| {
        for _ in 0..THREADS {
            let obs = obs.clone();
            s.spawn(move || {
                // Every thread find-or-creates the same identity and
                // bumps it once.
                obs.counter("raced", &[("k", "v")]).inc();
            });
        }
    });
    let snap = obs.snapshot();
    assert_eq!(snap.counters.len(), 1, "one cell per identity");
    assert_eq!(snap.counters[0].value, THREADS as u64);
}

#[test]
fn concurrent_histogram_records_preserve_count_and_sum() {
    const THREADS: u64 = 6;
    const PER_THREAD: u64 = 5_000;
    let obs = Registry::new();
    let h = obs.histogram("samples", &[]);
    thread::scope(|s| {
        for t in 0..THREADS {
            let h = h.clone();
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    h.record(t * PER_THREAD + i);
                }
            });
        }
    });
    let total = THREADS * PER_THREAD;
    assert_eq!(h.count(), total);
    assert_eq!(h.sum(), total * (total - 1) / 2);
    let snap = obs.snapshot();
    let bucket_total: u64 = snap.histograms[0].buckets.iter().map(|b| b.count).sum();
    assert_eq!(bucket_total, total, "every sample landed in some bucket");
}

#[test]
fn concurrent_spans_from_worker_threads_all_surface() {
    const THREADS: usize = 4;
    let obs = Registry::new();
    thread::scope(|s| {
        for i in 0..THREADS {
            let obs = obs.clone();
            s.spawn(move || {
                let _span = obs.span("work", &[("job", &i.to_string())]);
            });
        }
    });
    let events = obs.trace_events();
    assert_eq!(events.len(), THREADS);
    let mut tids: Vec<u64> = events.iter().map(|e| e.tid).collect();
    tids.sort();
    tids.dedup();
    assert_eq!(tids.len(), THREADS, "each worker thread got its own tid");
}

#[test]
fn concurrent_events_do_not_lose_counts() {
    const THREADS: usize = 8;
    const PER_THREAD: usize = 500;
    let events = symbol_obs::Events::collecting(Level::Debug);
    thread::scope(|s| {
        for _ in 0..THREADS {
            let e = events.clone();
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    e.emit(Level::Info, "test", &format!("event {i}"));
                }
            });
        }
    });
    assert_eq!(events.count(Level::Info), (THREADS * PER_THREAD) as u64);
}

#[test]
fn concurrent_flight_writers_never_tear_records() {
    // Many writer threads hammer a small ring (maximum overwrite
    // pressure) while a reader snapshots in a loop. Every record the
    // reader sees must be internally consistent: the payload word `a`
    // carries the writer's sequence-correlated value, so a torn read
    // (payload from one write, seq from another) is detectable.
    const WRITERS: u64 = 6;
    const PER_WRITER: u64 = 20_000;
    let f = FlightRecorder::new(32);
    thread::scope(|s| {
        for t in 0..WRITERS {
            let f = &f;
            s.spawn(move || {
                for i in 0..PER_WRITER {
                    // a encodes (writer, i); b is a checksum of a.
                    let a = t * PER_WRITER + i;
                    f.record(FlightKind::Mark, a, a.wrapping_mul(31));
                }
            });
        }
        let f = &f;
        s.spawn(move || {
            for _ in 0..200 {
                for r in f.snapshot() {
                    assert_eq!(r.b, r.a.wrapping_mul(31), "torn record: {r:?}");
                    assert_ne!(r.seq, 0);
                }
            }
        });
    });
    assert_eq!(f.recorded(), WRITERS * PER_WRITER);
    let final_snap = f.snapshot();
    assert_eq!(final_snap.len(), 32, "quiescent ring is full");
    let seqs: Vec<u64> = final_snap.iter().map(|r| r.seq).collect();
    let want: Vec<u64> = (WRITERS * PER_WRITER - 31..=WRITERS * PER_WRITER).collect();
    assert_eq!(seqs, want, "the newest records survive, in order");
}

#[test]
fn flight_sequences_are_unique_across_threads() {
    // With a ring larger than the total writes, every record survives
    // and the claimed sequence numbers must be exactly 1..=N.
    const WRITERS: u64 = 8;
    const PER_WRITER: u64 = 100;
    let f = FlightRecorder::new((WRITERS * PER_WRITER) as usize);
    thread::scope(|s| {
        for t in 0..WRITERS {
            let f = &f;
            s.spawn(move || {
                for i in 0..PER_WRITER {
                    f.record(FlightKind::Enqueue, t, i);
                }
            });
        }
    });
    let snap = f.snapshot();
    assert_eq!(snap.len(), (WRITERS * PER_WRITER) as usize);
    let seqs: Vec<u64> = snap.iter().map(|r| r.seq).collect();
    assert_eq!(seqs, (1..=WRITERS * PER_WRITER).collect::<Vec<_>>());
    let mut tids: Vec<u64> = snap.iter().map(|r| r.tid).collect();
    tids.sort();
    tids.dedup();
    assert_eq!(tids.len(), WRITERS as usize, "each writer left its tid");
}

#[test]
fn bucket_boundaries_cover_u64_without_gaps() {
    // Exhaustive walk of all 65 buckets plus spot checks at the edges
    // of each power of two.
    let mut next_expected = 0u64;
    for i in 0..symbol_obs::metrics::HISTOGRAM_BUCKETS {
        let (lo, hi) = bucket_bounds(i);
        assert_eq!(lo, next_expected, "bucket {i} starts where {} ended", i - 1);
        assert!(lo <= hi);
        if hi == u64::MAX {
            assert_eq!(i, symbol_obs::metrics::HISTOGRAM_BUCKETS - 1);
            break;
        }
        next_expected = hi + 1;
    }
    for shift in 1..64u32 {
        let v = 1u64 << shift;
        assert_eq!(bucket_index(v - 1), shift as usize, "below 2^{shift}");
        assert_eq!(bucket_index(v), shift as usize + 1, "at 2^{shift}");
    }
}
