//! Register pressure of scheduled benchmarks stays within the range a
//! 16-register-per-unit prototype could allocate.

use symbol_compactor::{compact, pressure, CompactMode, TracePolicy};
use symbol_intcode::{Emulator, ExecConfig, Layout};
use symbol_prolog::PredId;
use symbol_vliw::MachineConfig;

fn pressure_of(src: &str) -> pressure::Pressure {
    let program = symbol_prolog::parse_program(src).expect("parse");
    let bam = symbol_bam::compile(&program).expect("compile");
    let main = PredId::new(program.symbols().lookup("main").expect("main"), 0);
    let layout = Layout {
        heap_size: 1 << 16,
        env_size: 1 << 14,
        cp_size: 1 << 14,
        trail_size: 1 << 14,
        pdl_size: 1 << 12,
    };
    let ici = symbol_intcode::translate(&bam, main, &layout).expect("translate");
    let run = Emulator::new(&ici, &layout)
        .run(&ExecConfig::default())
        .expect("run");
    let machine = MachineConfig::units(3);
    let compacted = compact(
        &ici,
        &run.stats,
        &machine,
        CompactMode::TraceSchedule,
        &TracePolicy::default(),
    );
    pressure::measure(&compacted.program)
}

#[test]
fn recursive_list_code_pressure_is_modest() {
    let p = pressure_of(
        "main :- nrev([1,2,3,4,5,6,7,8], R), R = [8,7,6,5,4,3,2,1].
         nrev([], []).
         nrev([H|T], R) :- nrev(T, RT), app(RT, [H], R).
         app([], L, L).
         app([X|T], L, [X|R]) :- app(T, L, R).",
    );
    assert!(
        p.max_live_temps <= 24,
        "pressure {} would be unallocatable on the prototype",
        p.max_live_temps
    );
    assert!(p.temps_used > p.max_live_temps, "renaming spreads temps");
}

#[test]
fn fixed_registers_stay_architectural() {
    let p = pressure_of("main :- X is 1 + 1, X = 2.");
    // H/HB/E/ETOP/EB/B/TR/CP/B0/RR/U1/U2/FLAG/PDL + a few A registers
    assert!(p.fixed_regs_used <= 24, "{}", p.fixed_regs_used);
}
