//! Leveled, silenceable diagnostic events.
//!
//! Library crates (`symbol-bam`, `symbol-intcode`, `symbol-prolog`)
//! never write to stderr themselves: they emit events through an
//! [`Events`] handle, and the *application* decides what happens —
//! nothing (the default silent handle), collection into a bounded
//! in-memory ring, or forwarding to stderr above a level threshold.
//!
//! The handle is cheap to clone and a disabled handle reduces every
//! emission to a null check, so passing one through the compiler
//! pipeline costs nothing when observability is off.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};

/// Maximum retained records in the recent-events ring.
const RECENT_CAP: usize = 256;

/// Event severity, ordered from most to least severe.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Level {
    /// Unrecoverable problems (the library also returns an error).
    Error = 0,
    /// Suspicious conditions the caller may want to know about.
    Warn = 1,
    /// Milestone diagnostics (stage completed, sizes, counts).
    Info = 2,
    /// Verbose internals.
    Debug = 3,
}

impl Level {
    /// Lower-case display name.
    pub fn name(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }
}

/// One collected event.
#[derive(Clone, Debug)]
pub struct EventRecord {
    /// Severity.
    pub level: Level,
    /// Emitting component, e.g. `"bam::compile"`.
    pub target: String,
    /// Rendered message.
    pub message: String,
}

#[derive(Debug)]
pub(crate) struct EventInner {
    /// Highest accepted level (as `u8`); emissions above it are dropped
    /// before the message is even formatted.
    max_level: AtomicU8,
    /// Whether accepted events are echoed to stderr.
    to_stderr: bool,
    /// Per-level counts (`Level as usize` indexed).
    pub counts: [AtomicU64; 4],
    /// The last [`RECENT_CAP`] accepted records.
    recent: Mutex<VecDeque<EventRecord>>,
}

/// A cloneable event sink handle. `Events::silent()` drops everything.
#[derive(Clone, Debug, Default)]
pub struct Events(pub(crate) Option<Arc<EventInner>>);

impl Events {
    /// The silent handle: every emission is a no-op.
    pub fn silent() -> Self {
        Events(None)
    }

    /// A collecting handle accepting events up to `max_level`.
    pub fn collecting(max_level: Level) -> Self {
        Events::with_config(max_level, false)
    }

    /// A handle that both collects and echoes accepted events to
    /// stderr — for binaries that want live diagnostics.
    pub fn stderr(max_level: Level) -> Self {
        Events::with_config(max_level, true)
    }

    fn with_config(max_level: Level, to_stderr: bool) -> Self {
        Events(Some(Arc::new(EventInner {
            max_level: AtomicU8::new(max_level as u8),
            to_stderr,
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            recent: Mutex::new(VecDeque::new()),
        })))
    }

    /// Whether an event at `level` would be accepted — use to skip
    /// expensive message formatting.
    #[inline]
    pub fn enabled(&self, level: Level) -> bool {
        match &self.0 {
            None => false,
            Some(i) => (level as u8) <= i.max_level.load(Ordering::Relaxed),
        }
    }

    /// Raises or lowers the acceptance threshold at run time.
    pub fn set_max_level(&self, level: Level) {
        if let Some(i) = &self.0 {
            i.max_level.store(level as u8, Ordering::Relaxed);
        }
    }

    /// Emits a pre-rendered message.
    pub fn emit(&self, level: Level, target: &str, message: &str) {
        let Some(inner) = &self.0 else { return };
        if (level as u8) > inner.max_level.load(Ordering::Relaxed) {
            return;
        }
        inner.counts[level as usize].fetch_add(1, Ordering::Relaxed);
        if inner.to_stderr {
            eprintln!("[{}] {target}: {message}", level.name());
        }
        let mut recent = inner.recent.lock().expect("event ring poisoned");
        if recent.len() == RECENT_CAP {
            recent.pop_front();
        }
        recent.push_back(EventRecord {
            level,
            target: target.to_string(),
            message: message.to_string(),
        });
    }

    /// Emits with lazy formatting: `render` only runs if the level is
    /// accepted.
    #[inline]
    pub fn emit_with(&self, level: Level, target: &str, render: impl FnOnce() -> String) {
        if self.enabled(level) {
            self.emit(level, target, &render());
        }
    }

    /// Number of accepted events at `level`.
    pub fn count(&self, level: Level) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |i| i.counts[level as usize].load(Ordering::Relaxed))
    }

    /// Copies out the retained recent records, oldest first.
    pub fn recent(&self) -> Vec<EventRecord> {
        self.0.as_ref().map_or_else(Vec::new, |i| {
            i.recent
                .lock()
                .expect("event ring poisoned")
                .iter()
                .cloned()
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn silent_handle_drops_everything() {
        let e = Events::silent();
        e.emit(Level::Error, "t", "boom");
        assert!(!e.enabled(Level::Error));
        assert_eq!(e.count(Level::Error), 0);
        assert!(e.recent().is_empty());
    }

    #[test]
    fn level_threshold_filters() {
        let e = Events::collecting(Level::Warn);
        e.emit(Level::Error, "t", "e");
        e.emit(Level::Warn, "t", "w");
        e.emit(Level::Info, "t", "i");
        e.emit(Level::Debug, "t", "d");
        assert_eq!(e.count(Level::Error), 1);
        assert_eq!(e.count(Level::Warn), 1);
        assert_eq!(e.count(Level::Info), 0);
        assert_eq!(e.count(Level::Debug), 0);
        assert_eq!(e.recent().len(), 2);
    }

    #[test]
    fn lazy_formatting_skips_disabled_levels() {
        let e = Events::collecting(Level::Error);
        let mut rendered = false;
        e.emit_with(Level::Debug, "t", || {
            rendered = true;
            "never".into()
        });
        assert!(!rendered);
    }

    #[test]
    fn threshold_is_adjustable_at_run_time() {
        let e = Events::collecting(Level::Error);
        assert!(!e.enabled(Level::Debug));
        e.set_max_level(Level::Debug);
        assert!(e.enabled(Level::Debug));
    }

    #[test]
    fn ring_is_bounded() {
        let e = Events::collecting(Level::Debug);
        for i in 0..RECENT_CAP + 10 {
            e.emit(Level::Info, "t", &format!("m{i}"));
        }
        let recent = e.recent();
        assert_eq!(recent.len(), RECENT_CAP);
        assert_eq!(recent[0].message, "m10", "oldest records are evicted");
        assert_eq!(e.count(Level::Info), (RECENT_CAP + 10) as u64);
    }
}
