//! Structural tests of the first-argument indexing compiler: the
//! dispatch code emitted for different clause-head patterns.

use symbol_bam::{BamInstr, Const};
use symbol_prolog::parse_program;

fn compile_pred(src: &str, name: &str, arity: usize) -> Vec<BamInstr> {
    let p = parse_program(src).unwrap();
    let bam = symbol_bam::compile(&p).unwrap();
    let atom = p.symbols().lookup(name).unwrap();
    bam.predicate(symbol_prolog::PredId::new(atom, arity))
        .unwrap_or_else(|| panic!("{name}/{arity} missing"))
        .code
        .clone()
}

fn count<F: Fn(&BamInstr) -> bool>(code: &[BamInstr], f: F) -> usize {
    code.iter().filter(|i| f(i)).count()
}

#[test]
fn single_clause_needs_no_choice_point() {
    let code = compile_pred("p(1). main :- p(1).", "p", 1);
    assert_eq!(count(&code, |i| matches!(i, BamInstr::Try { .. })), 0);
    assert_eq!(
        count(&code, |i| matches!(i, BamInstr::SwitchOnTerm { .. })),
        0
    );
}

#[test]
fn distinct_constants_dispatch_without_choice_points() {
    let code = compile_pred("p(1). p(2). p(3). main :- p(2).", "p", 1);
    // switch_on_term + switch_on_const, but no try/retry/trust: each
    // constant selects exactly one clause
    assert_eq!(
        count(&code, |i| matches!(i, BamInstr::SwitchOnTerm { .. })),
        1
    );
    assert_eq!(
        count(&code, |i| matches!(i, BamInstr::SwitchOnConst { .. })),
        1
    );
    // the variable entry still needs the full chain
    assert_eq!(count(&code, |i| matches!(i, BamInstr::Try { .. })), 1);
    assert_eq!(count(&code, |i| matches!(i, BamInstr::Retry { .. })), 1);
    assert_eq!(count(&code, |i| matches!(i, BamInstr::Trust { .. })), 1);
}

#[test]
fn const_table_contains_every_constant() {
    let code = compile_pred("p(10). p(20). p(30). main :- p(10).", "p", 1);
    let table = code
        .iter()
        .find_map(|i| match i {
            BamInstr::SwitchOnConst { table, .. } => Some(table.clone()),
            _ => None,
        })
        .expect("has a constant switch");
    let consts: Vec<Const> = table.iter().map(|(c, _)| *c).collect();
    assert_eq!(consts.len(), 3);
    assert!(consts.contains(&Const::Int(10)));
    assert!(consts.contains(&Const::Int(30)));
}

#[test]
fn variable_head_disables_indexing() {
    let code = compile_pred("p(1). p(X) :- q(X). q(_). main :- p(1).", "p", 1);
    assert_eq!(
        count(&code, |i| matches!(i, BamInstr::SwitchOnTerm { .. })),
        0
    );
    assert_eq!(count(&code, |i| matches!(i, BamInstr::Try { .. })), 1);
    assert_eq!(count(&code, |i| matches!(i, BamInstr::Trust { .. })), 1);
}

#[test]
fn list_and_nil_split_by_type() {
    let code = compile_pred(
        "app([], L, L). app([X|T], L, [X|R]) :- app(T, L, R). main :- app([], [], []).",
        "app",
        3,
    );
    // switch_on_term sends [] to the constant clause and cons cells to
    // the list clause directly: no choice point on either typed path
    assert_eq!(
        count(&code, |i| matches!(i, BamInstr::SwitchOnTerm { .. })),
        1
    );
    // the var chain is the only try/trust pair
    assert_eq!(count(&code, |i| matches!(i, BamInstr::Try { .. })), 1);
    assert_eq!(count(&code, |i| matches!(i, BamInstr::Trust { .. })), 1);
}

#[test]
fn structure_heads_dispatch_on_functor() {
    let code = compile_pred(
        "eval(plus(A, B), R) :- R is A + B.
         eval(minus(A, B), R) :- R is A - B.
         eval(times(A, B), R) :- R is A * B.
         main :- eval(plus(1, 2), 3).",
        "eval",
        2,
    );
    let table_len = code
        .iter()
        .find_map(|i| match i {
            BamInstr::SwitchOnStruct { table, .. } => Some(table.len()),
            _ => None,
        })
        .expect("has a structure switch");
    assert_eq!(table_len, 3);
}

#[test]
fn repeated_constants_share_a_chain() {
    let code = compile_pred("p(1, a). p(2, b). p(1, c). main :- p(1, a).", "p", 2);
    // constant 1 selects a try/trust chain of its two clauses
    let table = code
        .iter()
        .find_map(|i| match i {
            BamInstr::SwitchOnConst { table, .. } => Some(table.clone()),
            _ => None,
        })
        .expect("constant switch");
    assert_eq!(table.len(), 2, "distinct constants only");
    // chains: full var chain (3 clauses: try+retry+trust) plus the
    // 2-clause chain for constant 1 (try+trust)
    assert_eq!(count(&code, |i| matches!(i, BamInstr::Try { .. })), 2);
    assert_eq!(count(&code, |i| matches!(i, BamInstr::Trust { .. })), 2);
    assert_eq!(count(&code, |i| matches!(i, BamInstr::Retry { .. })), 1);
}

#[test]
fn every_predicate_sets_its_cut_barrier_first() {
    let p = parse_program("p :- q, !. q. main :- p.").unwrap();
    let bam = symbol_bam::compile(&p).unwrap();
    for pred in bam.predicates() {
        assert_eq!(
            pred.code.first(),
            Some(&BamInstr::SetCutBarrier),
            "{}",
            pred.id.display(p.symbols())
        );
    }
}

#[test]
fn deep_cut_saves_the_barrier() {
    let code = compile_pred("p(X) :- q(X), !, r(X). q(1). r(1). main :- p(1).", "p", 1);
    assert_eq!(
        count(&code, |i| matches!(i, BamInstr::SaveCutBarrier(_))),
        1
    );
    assert_eq!(count(&code, |i| matches!(i, BamInstr::Cut(Some(_)))), 1);
}

#[test]
fn neck_cut_uses_the_register_barrier() {
    let code = compile_pred("p(X) :- !, q(X). q(1). main :- p(1).", "p", 1);
    assert_eq!(
        count(&code, |i| matches!(i, BamInstr::SaveCutBarrier(_))),
        0
    );
    assert_eq!(count(&code, |i| matches!(i, BamInstr::Cut(None))), 1);
}

#[test]
fn last_call_is_execute_after_deallocate() {
    let code = compile_pred("p :- q, r. q. r. main :- p.", "p", 0);
    let dealloc = code
        .iter()
        .position(|i| matches!(i, BamInstr::Deallocate))
        .expect("deallocates");
    let exec = code
        .iter()
        .position(|i| matches!(i, BamInstr::Execute(_)))
        .expect("executes");
    assert!(dealloc < exec, "deallocate precedes the tail call");
    assert_eq!(count(&code, |i| matches!(i, BamInstr::Proceed)), 0);
}
