//! A small deterministic differential-fuzz batch inside the tier-1
//! suite: every engine pair stays in agreement on freshly generated
//! inputs, not just on the seven benchmarks.
//!
//! CI's `fuzz-smoke` job and the nightly deep-fuzz workflow run much
//! larger batches through the `fuzz_run` binary; this test exists so
//! plain `cargo test` exercises the oracle end to end with zero setup.

use symbol_fuzz::{run_fuzz, FuzzOptions, KindFilter};

#[test]
fn a_deterministic_fuzz_batch_runs_clean() {
    let opts = FuzzOptions {
        // The same mnemonic seed CI uses, so a failure here reproduces
        // with `fuzz_run --seed 0xSYMBOL5`.
        seed: symbol_fuzz::parse_seed("0xSYMBOL5"),
        cases: 60,
        kind: KindFilter::Both,
        ..FuzzOptions::default()
    };
    let report = run_fuzz(&opts);
    assert_eq!(report.executed, 60);
    assert!(
        report.clean(),
        "differential findings:\n{}",
        report
            .failures
            .iter()
            .map(|f| format!(
                "case {} [{}]: {}\n{}",
                f.index, f.kind_tag, f.detail, f.reproducer
            ))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn fuzz_reports_are_reproducible() {
    let opts = FuzzOptions {
        seed: 11,
        cases: 12,
        kind: KindFilter::IntCode,
        ..FuzzOptions::default()
    };
    let a = run_fuzz(&opts);
    let b = run_fuzz(&opts);
    assert_eq!(a.executed, b.executed);
    assert_eq!(a.clean(), b.clean());
    assert_eq!(
        a.to_json().split("\"elapsed_secs\"").next(),
        b.to_json().split("\"elapsed_secs\"").next()
    );
}
