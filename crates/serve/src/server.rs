//! The long-running query server.
//!
//! One immutable [`Compiled`] image is shared (via `Arc`) by a bounded
//! pool of `std::thread` workers that answer independent queries
//! against it. Requests flow through a bounded queue — submitters
//! block when it is full, giving natural backpressure — and workers
//! drain them in small batches, paying the lock once per batch rather
//! than once per request.
//!
//! The server is panic-free by construction: each query runs under
//! `catch_unwind`, so even a defect that would panic the emulator is
//! converted into a failed [`QueryResult`] (and counted) instead of
//! killing the worker.
//!
//! ## Request kinds
//!
//! Besides plain run queries ([`QueryServer::submit`]), the pool
//! answers live [`QueryServer::submit_stats`] requests from the same
//! queue: a stats request snapshots the shared registry, folds the
//! per-stage latency histograms into p50/p90/p99 quantile views, and
//! attaches the image's hottest program counters — so an operator can
//! interrogate a running server without stopping it.
//!
//! ## Observability
//!
//! All on the registry handed to [`QueryServer::start`]:
//!
//! * `serve.queries.ok` / `serve.queries.failed` /
//!   `serve.queries.panicked` counters,
//! * a `serve.tier` counter labelled `tier=fused` / `tier=decoded`
//!   with which execution tier answered each successful query,
//! * `serve.queue.depth` gauge, incremented on enqueue and
//!   decremented on dequeue (exactly zero once the queue drains),
//! * `serve.batch` histogram of batch sizes,
//! * `serve.stage.ns` histograms labelled `stage=queue_wait` /
//!   `select` / `execute` and by `tier` — the per-stage latency split
//!   live stats queries report quantiles over,
//! * a per-request `serve.query` trace span carrying the request id
//!   (see [`Compiled::run_query_obs`]).
//!
//! And, independent of the registry, a lock-free
//! [`FlightRecorder`] ring capturing the last
//! `ServerConfig::flight_capacity` structured events (enqueue,
//! dequeue, query start/end, stats, dumps). When a query exceeds
//! `ServerConfig::slow_query_ns` or panics and
//! `ServerConfig::flight_dir` is set, the ring is dumped to an
//! ndjson file stamped with the offending request id.

use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Instant;

use symbol_core::pipeline::Compiled;
use symbol_obs::{FlightKind, FlightRecorder, Gauge, QuantileView, Registry, Snapshot};

/// Tuning knobs of a [`QueryServer`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Worker threads (clamped to at least 1).
    pub workers: usize,
    /// Maximum queued requests before [`QueryServer::submit`] blocks
    /// (clamped to at least 1).
    pub queue_capacity: usize,
    /// Maximum requests a worker takes per lock acquisition (clamped
    /// to at least 1).
    pub max_batch: usize,
    /// Flight-recorder ring capacity in records (0 disables the
    /// recorder entirely).
    pub flight_capacity: usize,
    /// Directory incident dumps are written to. `None` disables
    /// dumping; the directory is created on first dump.
    pub flight_dir: Option<PathBuf>,
    /// Execute-time threshold (nanoseconds) beyond which a query is
    /// considered slow and triggers a flight dump.
    pub slow_query_ns: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            queue_capacity: 64,
            max_batch: 8,
            flight_capacity: 1024,
            flight_dir: None,
            slow_query_ns: None,
        }
    }
}

/// What a request asks the pool to do.
#[derive(Clone, Debug)]
enum Request {
    /// Run the compiled query.
    Run(u64),
    /// Produce a live [`StatsReport`].
    Stats(u64),
    /// Panic inside the protected region — exercises the containment
    /// and panic-dump paths end to end (used by tests and smoke
    /// drills, never by normal serving).
    PanicProbe(u64),
}

impl Request {
    fn id(&self) -> u64 {
        match self {
            Request::Run(id) | Request::Stats(id) | Request::PanicProbe(id) => *id,
        }
    }
}

/// A queued request and when it entered the queue.
struct Pending {
    req: Request,
    enqueued: Instant,
}

/// The live statistics a stats query ([`QueryServer::submit_stats`])
/// answers with.
#[derive(Clone, Debug)]
pub struct StatsReport {
    /// The stats request's own id.
    pub request_id: u64,
    /// Quantiles of `serve.stage.ns{stage=queue_wait}`, merged across
    /// tiers (`None` until at least one query has been served).
    pub queue_wait: Option<QuantileView>,
    /// Quantiles of the tier-selection stage.
    pub select: Option<QuantileView>,
    /// Quantiles of the execute stage.
    pub execute: Option<QuantileView>,
    /// The image's hottest program counters `(pc, executions)` from a
    /// deterministic profiling run, hottest first.
    pub hot_pcs: Vec<(usize, u64)>,
    /// Full metric snapshot at answer time.
    pub snapshot: Snapshot,
}

impl StatsReport {
    /// Renders the report as one JSON document (`metrics` embeds the
    /// full `metrics.json` snapshot).
    pub fn to_json(&self) -> String {
        let quantiles = |v: &Option<QuantileView>| match v {
            Some(q) => format!(
                "{{\"count\": {}, \"p50\": {:.1}, \"p90\": {:.1}, \"p99\": {:.1}, \"max\": {}}}",
                q.count, q.p50, q.p90, q.p99, q.max
            ),
            None => "null".to_string(),
        };
        let hot: Vec<String> = self
            .hot_pcs
            .iter()
            .map(|(pc, n)| format!("{{\"pc\": {pc}, \"count\": {n}}}"))
            .collect();
        format!(
            "{{\"request_id\": {}, \"stages\": {{\"queue_wait\": {}, \"select\": {}, \
             \"execute\": {}}}, \"hot_pcs\": [{}], \"metrics\": {}}}",
            self.request_id,
            quantiles(&self.queue_wait),
            quantiles(&self.select),
            quantiles(&self.execute),
            hot.join(", "),
            self.snapshot.to_json()
        )
    }
}

/// What a successful request produced.
#[derive(Clone, Debug)]
pub enum QueryAnswer {
    /// Emulator steps of a successful run query.
    Steps(u64),
    /// The report of a live stats query (boxed: the report carries a
    /// full metric snapshot and would otherwise dominate the enum).
    Stats(Box<StatsReport>),
}

impl QueryAnswer {
    /// The step count, if this answered a run query.
    pub fn steps(&self) -> Option<u64> {
        match self {
            QueryAnswer::Steps(s) => Some(*s),
            QueryAnswer::Stats(_) => None,
        }
    }

    /// The report, if this answered a stats query.
    pub fn stats(&self) -> Option<&StatsReport> {
        match self {
            QueryAnswer::Stats(r) => Some(r),
            QueryAnswer::Steps(_) => None,
        }
    }
}

/// The answer to one query.
#[derive(Clone, Debug)]
pub struct QueryResult {
    /// The id passed to [`QueryServer::submit`] (or
    /// [`QueryServer::submit_stats`]).
    pub id: u64,
    /// The answer on success; a rendered error otherwise. A worker
    /// panic surfaces here as an error string, never as a dead
    /// thread.
    pub outcome: Result<QueryAnswer, String>,
}

struct Queue {
    pending: VecDeque<Pending>,
    closed: bool,
}

struct Shared {
    queue: Mutex<Queue>,
    /// Signalled when requests arrive or the queue closes.
    work: Condvar,
    /// Signalled when a batch is drained (space for submitters).
    space: Condvar,
    results: Mutex<Vec<QueryResult>>,
    capacity: usize,
    max_batch: usize,
    /// `serve.queue.depth`: +1 on enqueue, -batch on dequeue.
    depth: Gauge,
    flight: Arc<FlightRecorder>,
    flight_dir: Option<PathBuf>,
    slow_query_ns: Option<u64>,
    /// Distinguishes dump files triggered by the same request id.
    dump_seq: AtomicU64,
    /// Hottest pcs of the shared image, profiled lazily on the first
    /// stats query (deterministic, so once is enough).
    hot_pcs: OnceLock<Vec<(usize, u64)>>,
}

/// A running worker pool answering queries against one shared
/// [`Compiled`] image. Dropping the server without calling
/// [`QueryServer::finish`] also shuts it down cleanly (results are
/// discarded).
pub struct QueryServer {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

/// Writes the flight ring to `flight_dir` with a header line naming
/// the triggering request. Never panics: dump failures are counted
/// and otherwise ignored — an incident dump must not take the server
/// down with it.
fn dump_flight(shared: &Shared, obs: &Registry, req_id: u64, reason: &str, elapsed_ns: u64) {
    let Some(dir) = &shared.flight_dir else {
        return;
    };
    if !shared.flight.enabled() {
        return;
    }
    shared.flight.record(FlightKind::Dump, req_id, 0);
    let n = shared.dump_seq.fetch_add(1, Ordering::Relaxed);
    let mut doc = format!(
        "{{\"request_id\": {req_id}, \"reason\": \"{reason}\", \"elapsed_ns\": {elapsed_ns}, \
         \"dropped\": {}}}\n",
        shared.flight.dropped()
    );
    doc.push_str(&shared.flight.dump_ndjson());
    let ok = std::fs::create_dir_all(dir).is_ok()
        && std::fs::write(dir.join(format!("flight-{req_id}-{n}.ndjson")), doc).is_ok();
    let status = if ok { "ok" } else { "write_failed" };
    obs.counter(
        "serve.flight.dumps",
        &[("reason", reason), ("status", status)],
    )
    .inc();
}

fn stats_report(compiled: &Compiled, obs: &Registry, shared: &Shared, id: u64) -> StatsReport {
    let hot_pcs = shared
        .hot_pcs
        .get_or_init(|| {
            compiled
                .profile()
                .map(|(stats, _, _)| stats.hot_pcs(8))
                .unwrap_or_default()
        })
        .clone();
    let snapshot = obs.snapshot();
    let stage = |name: &str| {
        QuantileView::from_samples(snapshot.histograms.iter().filter(|h| {
            h.name == "serve.stage.ns" && h.labels.iter().any(|(k, v)| k == "stage" && v == name)
        }))
    };
    StatsReport {
        request_id: id,
        queue_wait: stage("queue_wait"),
        select: stage("select"),
        execute: stage("execute"),
        hot_pcs,
        snapshot,
    }
}

fn run_one(
    compiled: &Compiled,
    req: &Request,
    waited_ns: u64,
    obs: &Registry,
    shared: &Shared,
) -> QueryResult {
    let id = req.id();
    let flight = &shared.flight;
    // Tier selection is timed as its own stage: today it is one
    // branch, but it is where a multi-image server would route, and
    // the split keeps queue wait and execute honest.
    let t_select = Instant::now();
    let tier = if compiled.fused.is_some() {
        "fused"
    } else {
        "decoded"
    };
    let select_ns = t_select.elapsed().as_nanos() as u64;
    obs.histogram("serve.stage.ns", &[("stage", "queue_wait"), ("tier", tier)])
        .record(waited_ns);
    obs.histogram("serve.stage.ns", &[("stage", "select"), ("tier", tier)])
        .record(select_ns);

    if let Request::Stats(id) = req {
        flight.record(FlightKind::StatsQuery, *id, 0);
        let report = stats_report(compiled, obs, shared, *id);
        obs.counter("serve.queries.stats", &[]).inc();
        return QueryResult {
            id: *id,
            outcome: Ok(QueryAnswer::Stats(Box::new(report))),
        };
    }

    flight.record(FlightKind::QueryStart, id, 0);
    let probe = matches!(req, Request::PanicProbe(_));
    let t_exec = Instant::now();
    let ran = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        if probe {
            panic!("panic probe");
        }
        compiled.run_query_obs(obs, id)
    }));
    let execute_ns = t_exec.elapsed().as_nanos() as u64;
    obs.histogram("serve.stage.ns", &[("stage", "execute"), ("tier", tier)])
        .record(execute_ns);
    let panicked = ran.is_err();
    let outcome = match ran {
        Ok(Ok(run)) => {
            obs.counter("serve.queries.ok", &[]).inc();
            obs.counter("serve.tier", &[("tier", tier)]).inc();
            flight.record(FlightKind::QueryOk, id, run.steps);
            Ok(QueryAnswer::Steps(run.steps))
        }
        Ok(Err(e)) => {
            obs.counter("serve.queries.failed", &[]).inc();
            flight.record(FlightKind::QueryFail, id, 0);
            Err(e.to_string())
        }
        Err(_) => {
            obs.counter("serve.queries.panicked", &[]).inc();
            flight.record(FlightKind::QueryPanic, id, 0);
            dump_flight(shared, obs, id, "panic", execute_ns);
            Err("query panicked".to_string())
        }
    };
    if !panicked && shared.slow_query_ns.is_some_and(|t| execute_ns >= t) {
        dump_flight(shared, obs, id, "slow", execute_ns);
    }
    QueryResult { id, outcome }
}

fn worker_loop(shared: &Shared, compiled: &Compiled, obs: &Registry) {
    let batch_sizes = obs.histogram("serve.batch", &[]);
    loop {
        let batch: Vec<Pending> = {
            let mut q = shared.queue.lock().expect("queue lock");
            loop {
                if !q.pending.is_empty() {
                    break;
                }
                if q.closed {
                    return;
                }
                q = shared.work.wait(q).expect("queue lock");
            }
            let n = q.pending.len().min(shared.max_batch);
            let batch: Vec<Pending> = q.pending.drain(..n).collect();
            shared.depth.add(-(n as i64));
            shared
                .flight
                .record(FlightKind::Dequeue, batch[0].req.id(), n as u64);
            shared.space.notify_all();
            batch
        };
        batch_sizes.record(batch.len() as u64);
        let answered: Vec<QueryResult> = batch
            .into_iter()
            .map(|p| {
                let waited_ns = p.enqueued.elapsed().as_nanos() as u64;
                run_one(compiled, &p.req, waited_ns, obs, shared)
            })
            .collect();
        shared
            .results
            .lock()
            .expect("results lock")
            .extend(answered);
    }
}

impl QueryServer {
    /// Starts `cfg.workers` threads serving queries against
    /// `compiled`. The registry may be shared with the artifact cache
    /// so one `metrics.json` covers both tiers.
    pub fn start(compiled: Arc<Compiled>, cfg: &ServerConfig, obs: &Registry) -> Self {
        Self::start_with_flight(
            compiled,
            cfg,
            obs,
            Arc::new(FlightRecorder::new(cfg.flight_capacity)),
        )
    }

    /// [`QueryServer::start`] recording into a caller-supplied flight
    /// ring instead of a fresh one — share it with the
    /// [`crate::cache::ArtifactCache`] (and across restarts of the
    /// server) so one dump shows cache and query traffic interleaved.
    /// `cfg.flight_capacity` is ignored on this path.
    pub fn start_with_flight(
        compiled: Arc<Compiled>,
        cfg: &ServerConfig,
        obs: &Registry,
        flight: Arc<FlightRecorder>,
    ) -> Self {
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue {
                pending: VecDeque::new(),
                closed: false,
            }),
            work: Condvar::new(),
            space: Condvar::new(),
            results: Mutex::new(Vec::new()),
            capacity: cfg.queue_capacity.max(1),
            max_batch: cfg.max_batch.max(1),
            depth: obs.gauge("serve.queue.depth", &[]),
            flight,
            flight_dir: cfg.flight_dir.clone(),
            slow_query_ns: cfg.slow_query_ns,
            dump_seq: AtomicU64::new(0),
            hot_pcs: OnceLock::new(),
        });
        let workers = (0..cfg.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                let compiled = Arc::clone(&compiled);
                let obs = obs.clone();
                std::thread::spawn(move || worker_loop(&shared, &compiled, &obs))
            })
            .collect();
        QueryServer { shared, workers }
    }

    /// The server's flight recorder (disabled when
    /// `ServerConfig::flight_capacity` was 0). Snapshot or dump it at
    /// any time, including while queries are in flight.
    pub fn flight(&self) -> Arc<FlightRecorder> {
        Arc::clone(&self.shared.flight)
    }

    fn enqueue(&self, req: Request) {
        let id = req.id();
        let mut q = self.shared.queue.lock().expect("queue lock");
        while q.pending.len() >= self.shared.capacity {
            q = self.shared.space.wait(q).expect("queue lock");
        }
        q.pending.push_back(Pending {
            req,
            enqueued: Instant::now(),
        });
        let depth = q.pending.len() as u64;
        self.shared.depth.add(1);
        self.shared.flight.record(FlightKind::Enqueue, id, depth);
        self.shared.work.notify_one();
    }

    /// Enqueues one run query, blocking while the queue is full.
    ///
    /// # Panics
    ///
    /// Panics if called after [`QueryServer::finish`] consumed the
    /// server (the borrow checker prevents this) or if a lock is
    /// poisoned, which only happens after a panic *outside* the
    /// `catch_unwind`-protected query path — an internal bug.
    pub fn submit(&self, id: u64) {
        self.enqueue(Request::Run(id));
    }

    /// Enqueues a live stats query: the worker that dequeues it
    /// answers with a [`StatsReport`] over the shared registry instead
    /// of running the image.
    ///
    /// # Panics
    ///
    /// See [`QueryServer::submit`].
    pub fn submit_stats(&self, id: u64) {
        self.enqueue(Request::Stats(id));
    }

    /// Enqueues a request that panics inside the protected region —
    /// a containment drill for tests and smoke checks. The panic is
    /// caught, counted and (when a flight dir is configured) dumped,
    /// exactly like a real engine defect would be.
    ///
    /// # Panics
    ///
    /// See [`QueryServer::submit`] (the probe's own panic never
    /// escapes).
    pub fn submit_panic_probe(&self, id: u64) {
        self.enqueue(Request::PanicProbe(id));
    }

    /// Closes the queue, waits for every in-flight query, joins the
    /// workers and returns all results sorted by id.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread itself panicked — impossible through
    /// the query path, which is `catch_unwind`-protected.
    pub fn finish(mut self) -> Vec<QueryResult> {
        self.close();
        for th in self.workers.drain(..) {
            th.join().expect("worker thread exited cleanly");
        }
        let mut results = std::mem::take(&mut *self.shared.results.lock().expect("results lock"));
        results.sort_by_key(|r| r.id);
        results
    }

    fn close(&self) {
        let mut q = self.shared.queue.lock().expect("queue lock");
        q.closed = true;
        self.shared.work.notify_all();
    }
}

impl Drop for QueryServer {
    fn drop(&mut self) {
        self.close();
        for th in self.workers.drain(..) {
            let _ = th.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compiled() -> Arc<Compiled> {
        Arc::new(Compiled::from_source("main :- X is 2 + 2, X = 4.").expect("compiles"))
    }

    /// A unique, self-cleaning temp dir for dump tests.
    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> Self {
            let dir = std::env::temp_dir()
                .join(format!("symbol-serve-test-{tag}-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            TempDir(dir)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn steps_of(r: &QueryResult) -> u64 {
        r.outcome
            .as_ref()
            .expect("query succeeds")
            .steps()
            .expect("run answer")
    }

    #[test]
    fn serves_many_queries_against_one_image() {
        let obs = Registry::new();
        let server = QueryServer::start(
            compiled(),
            &ServerConfig {
                workers: 4,
                queue_capacity: 8,
                max_batch: 4,
                ..ServerConfig::default()
            },
            &obs,
        );
        for id in 0..100 {
            server.submit(id);
        }
        let results = server.finish();
        assert_eq!(results.len(), 100);
        let steps = steps_of(&results[0]);
        for r in &results {
            assert_eq!(steps_of(r), steps);
        }
        assert_eq!(
            results.iter().map(|r| r.id).collect::<Vec<_>>(),
            (0..100).collect::<Vec<_>>()
        );
        assert_eq!(obs.counter("serve.queries.ok", &[]).get(), 100);
        assert_eq!(obs.counter("serve.queries.failed", &[]).get(), 0);
        assert_eq!(obs.counter("serve.queries.panicked", &[]).get(), 0);
        assert_eq!(
            obs.counter("serve.tier", &[("tier", "decoded")]).get(),
            100,
            "no fused tier installed: every query ran decoded"
        );
        assert!(obs.histogram("serve.batch", &[]).count() > 0);
        assert_eq!(
            obs.gauge("serve.queue.depth", &[]).get(),
            0,
            "every enqueue was matched by a dequeue"
        );
        assert_eq!(
            obs.histogram(
                "serve.stage.ns",
                &[("stage", "execute"), ("tier", "decoded")]
            )
            .count(),
            100,
            "every query recorded its execute latency"
        );
    }

    #[test]
    fn fused_image_serves_queries_on_the_fused_tier() {
        let obs = Registry::new();
        let src = "main :- count(20). count(0). count(N) :- N > 0, M is N - 1, count(M).";
        let mut c = Compiled::from_source(src).expect("compiles");
        let decoded_steps = c.run_sequential().expect("decoded runs").steps;
        c.build_fused_tier().expect("fuses");
        let server = QueryServer::start(Arc::new(c), &ServerConfig::default(), &obs);
        for id in 0..25 {
            server.submit(id);
        }
        let results = server.finish();
        assert_eq!(results.len(), 25);
        for r in &results {
            assert_eq!(
                steps_of(r),
                decoded_steps,
                "fused tier is bit-identical to decoded"
            );
        }
        assert_eq!(obs.counter("serve.tier", &[("tier", "fused")]).get(), 25);
        assert_eq!(obs.counter("serve.tier", &[("tier", "decoded")]).get(), 0);
    }

    #[test]
    fn failing_queries_come_back_as_errors_not_panics() {
        let obs = Registry::new();
        let failing =
            Arc::new(Compiled::from_source("main :- 1 = 2.").expect("compiles (query fails)"));
        let server = QueryServer::start(failing, &ServerConfig::default(), &obs);
        for id in 0..10 {
            server.submit(id);
        }
        let results = server.finish();
        assert_eq!(results.len(), 10);
        for r in &results {
            assert!(r.outcome.is_err());
        }
        assert_eq!(obs.counter("serve.queries.failed", &[]).get(), 10);
        assert_eq!(obs.gauge("serve.queue.depth", &[]).get(), 0);
    }

    #[test]
    fn zero_worker_config_is_clamped() {
        let server = QueryServer::start(
            compiled(),
            &ServerConfig {
                workers: 0,
                queue_capacity: 0,
                max_batch: 0,
                flight_capacity: 0,
                ..ServerConfig::default()
            },
            &Registry::disabled(),
        );
        server.submit(1);
        let results = server.finish();
        assert_eq!(results.len(), 1);
        assert!(results[0].outcome.is_ok());
    }

    #[test]
    fn stats_query_answers_live_quantiles_and_hot_pcs() {
        let obs = Registry::new();
        let server = QueryServer::start(compiled(), &ServerConfig::default(), &obs);
        for id in 0..40 {
            server.submit(id);
        }
        server.submit_stats(1000);
        let results = server.finish();
        assert_eq!(results.len(), 41);
        let stats = results
            .iter()
            .find(|r| r.id == 1000)
            .expect("stats result present");
        let report = stats
            .outcome
            .as_ref()
            .expect("stats succeeds")
            .stats()
            .expect("stats answer");
        assert_eq!(report.request_id, 1000);
        let exec = report.execute.expect("execute quantiles after 40 queries");
        assert!(exec.count >= 1);
        assert!(exec.is_finite(), "p99 must be finite: {exec:?}");
        assert!(exec.p50 <= exec.p99);
        let wait = report.queue_wait.expect("queue-wait quantiles");
        assert!(wait.is_finite());
        assert!(!report.hot_pcs.is_empty(), "hot pcs from the lazy profile");
        assert!(
            report.hot_pcs.windows(2).all(|w| w[0].1 >= w[1].1),
            "hot pcs are hottest-first: {:?}",
            report.hot_pcs
        );
        assert!(
            report
                .snapshot
                .counters
                .iter()
                .any(|c| c.name == "serve.queries.ok"),
            "report embeds the live snapshot"
        );
        let json = report.to_json();
        assert!(json.contains("\"request_id\": 1000"));
        assert!(json.contains("\"hot_pcs\""));
        assert_eq!(obs.counter("serve.queries.stats", &[]).get(), 1);
    }

    #[test]
    fn panic_probe_is_contained_counted_and_dumped() {
        let tmp = TempDir::new("panic");
        let obs = Registry::new();
        let server = QueryServer::start(
            compiled(),
            &ServerConfig {
                flight_dir: Some(tmp.0.clone()),
                ..ServerConfig::default()
            },
            &obs,
        );
        for id in 0..10 {
            server.submit(id);
        }
        server.submit_panic_probe(77);
        let results = server.finish();
        assert_eq!(results.len(), 11);
        let probe = results.iter().find(|r| r.id == 77).expect("probe result");
        assert_eq!(probe.outcome.as_ref().unwrap_err(), "query panicked");
        assert_eq!(obs.counter("serve.queries.panicked", &[]).get(), 1);
        assert_eq!(obs.counter("serve.queries.ok", &[]).get(), 10);
        assert_eq!(
            obs.gauge("serve.queue.depth", &[]).get(),
            0,
            "depth returns to zero through the panic path too"
        );
        let dumps: Vec<_> = std::fs::read_dir(&tmp.0)
            .expect("dump dir exists")
            .map(|e| e.expect("entry").path())
            .collect();
        assert_eq!(dumps.len(), 1, "one panic dump: {dumps:?}");
        let body = std::fs::read_to_string(&dumps[0]).expect("dump readable");
        assert!(body.starts_with("{\"request_id\": 77, \"reason\": \"panic\""));
        assert!(body.contains("\"kind\": \"query_panic\""));
        assert_eq!(
            obs.counter(
                "serve.flight.dumps",
                &[("reason", "panic"), ("status", "ok")]
            )
            .get(),
            1
        );
    }

    #[test]
    fn slow_query_trigger_dumps_with_the_request_id() {
        let tmp = TempDir::new("slow");
        let obs = Registry::new();
        let server = QueryServer::start(
            compiled(),
            &ServerConfig {
                workers: 1,
                flight_dir: Some(tmp.0.clone()),
                slow_query_ns: Some(0),
                ..ServerConfig::default()
            },
            &obs,
        );
        server.submit(5);
        let results = server.finish();
        assert!(results[0].outcome.is_ok());
        let dumps: Vec<_> = std::fs::read_dir(&tmp.0)
            .expect("dump dir exists")
            .map(|e| e.expect("entry").path())
            .collect();
        assert_eq!(dumps.len(), 1);
        let body = std::fs::read_to_string(&dumps[0]).expect("dump readable");
        assert!(body.starts_with("{\"request_id\": 5, \"reason\": \"slow\""));
        assert!(body.contains("\"kind\": \"query_start\""));
        assert!(body.contains("\"kind\": \"enqueue\""));
    }

    #[test]
    fn flight_ring_traces_the_request_lifecycle() {
        let obs = Registry::new();
        let server = QueryServer::start(compiled(), &ServerConfig::default(), &obs);
        let flight = server.flight();
        assert!(flight.enabled());
        for id in 0..5 {
            server.submit(id);
        }
        server.finish();
        let kinds: Vec<&str> = flight.snapshot().iter().map(|r| r.kind_name()).collect();
        for kind in ["enqueue", "dequeue", "query_start", "query_ok"] {
            assert!(kinds.contains(&kind), "{kind} missing from {kinds:?}");
        }
        assert_eq!(
            kinds.iter().filter(|k| **k == "query_ok").count(),
            5,
            "every query left an ok record"
        );
    }
}
