//! RAII span timers and the Chrome Trace Format export.
//!
//! A [`Span`] measures the wall-clock duration of a scope. On drop it
//! appends one complete (`"ph": "X"`) event to the registry's trace
//! buffer — timestamped against the registry's epoch, tagged with a
//! small dense thread id — and records the duration into a log2
//! histogram named `span.<name>.ns` carrying the span's labels. The
//! resulting `trace.json` opens directly in Perfetto or
//! `chrome://tracing`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use crate::json;
use crate::metrics::Histogram;

/// Process-wide dense thread-id allocator. Chrome Trace wants small
/// integer `tid`s; `std::thread::ThreadId` has no stable integer
/// accessor, so each thread takes the next id on first use.
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

/// This thread's dense id (stable for the thread's lifetime).
pub fn thread_id() -> u64 {
    TID.with(|t| *t)
}

/// One completed trace event (Chrome Trace Format `"ph": "X"`).
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Span name (the trace viewer's slice title).
    pub name: String,
    /// Microseconds from the registry epoch to the span start.
    pub ts_us: u64,
    /// Span duration in microseconds.
    pub dur_us: u64,
    /// Dense thread id of the recording thread.
    pub tid: u64,
    /// Label set, exported as the event's `args`.
    pub labels: Vec<(String, String)>,
}

/// An RAII span: created by [`crate::Registry::span`], finished on
/// drop. A span from a disabled registry is entirely inert.
#[derive(Debug)]
pub struct Span {
    pub(crate) state: Option<SpanState>,
}

#[derive(Debug)]
pub(crate) struct SpanState {
    pub registry: crate::Registry,
    pub name: String,
    pub labels: Vec<(String, String)>,
    pub start: Instant,
    pub histogram: Histogram,
}

impl Span {
    /// An inert span (what disabled registries hand out).
    pub fn noop() -> Self {
        Span { state: None }
    }

    /// Elapsed time so far (zero for an inert span).
    pub fn elapsed_ns(&self) -> u64 {
        self.state
            .as_ref()
            .map_or(0, |s| s.start.elapsed().as_nanos() as u64)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(state) = self.state.take() else {
            return;
        };
        let dur = state.start.elapsed();
        state.histogram.record(dur.as_nanos() as u64);
        state.registry.push_trace_event(TraceEvent {
            ts_us: state.registry.elapsed_since_epoch(state.start).as_micros() as u64,
            dur_us: dur.as_micros() as u64,
            tid: thread_id(),
            name: state.name,
            labels: state.labels,
        });
    }
}

/// Renders events as a Chrome Trace Format JSON document
/// (`{"traceEvents": [...]}`).
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let mut out = String::from("{\"traceEvents\": [\n");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&format!(
            "  {{\"name\": {}, \"cat\": \"symbol\", \"ph\": \"X\", \"ts\": {}, \"dur\": {}, \
             \"pid\": 1, \"tid\": {}, \"args\": {}}}",
            json::string(&e.name),
            e.ts_us,
            e.dur_us,
            e.tid,
            json::label_object(&e.labels),
        ));
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_ids_are_stable_within_a_thread() {
        assert_eq!(thread_id(), thread_id());
    }

    #[test]
    fn thread_ids_differ_across_threads() {
        let mine = thread_id();
        let theirs = std::thread::spawn(thread_id).join().unwrap();
        assert_ne!(mine, theirs);
    }

    #[test]
    fn chrome_trace_renders_valid_shape() {
        let events = vec![TraceEvent {
            name: "parse".into(),
            ts_us: 10,
            dur_us: 5,
            tid: 1,
            labels: vec![("bench".into(), "qsort".into())],
        }];
        let json = chrome_trace_json(&events);
        assert!(json.starts_with("{\"traceEvents\": ["));
        assert!(json.contains("\"ph\": \"X\""));
        assert!(json.contains("\"ts\": 10"));
        assert!(json.contains("\"dur\": 5"));
        assert!(json.contains("\"bench\": \"qsort\""));
        assert!(json.trim_end().ends_with("]}"));
    }

    #[test]
    fn empty_trace_is_still_valid() {
        let json = chrome_trace_json(&[]);
        assert_eq!(json, "{\"traceEvents\": [\n\n]}\n");
    }

    #[test]
    fn noop_span_is_inert() {
        let s = Span::noop();
        assert_eq!(s.elapsed_ns(), 0);
        drop(s);
    }
}
