% zebra -- the five-houses puzzle: who owns the zebra, who drinks
% water? Solved by constraint-by-unification over a list of house/5
% structures (Aquarius "zebra").
% House attributes: house(Nationality, Color, Pet, Drink, Smoke).

main :-
    houses(Hs),
    memb(house(ZebraOwner, _, zebra, _, _), Hs),
    memb(house(WaterDrinker, _, _, water, _), Hs),
    ZebraOwner = japanese,
    WaterDrinker = norwegian.

houses(Hs) :-
    Hs = [house(norwegian, _, _, _, _), _, house(_, _, _, milk, _), _, _],
    memb(house(english, red, _, _, _), Hs),
    memb(house(spaniard, _, dog, _, _), Hs),
    memb(house(_, green, _, coffee, _), Hs),
    memb(house(ukrainian, _, _, tea, _), Hs),
    left_of(house(_, ivory, _, _, _), house(_, green, _, _, _), Hs),
    memb(house(_, _, snails, _, oldgold), Hs),
    memb(house(_, yellow, _, _, kools), Hs),
    next_to(house(_, _, _, _, chesterfields), house(_, _, fox, _, _), Hs),
    next_to(house(_, _, _, _, kools), house(_, _, horse, _, _), Hs),
    memb(house(_, _, _, orange_juice, luckystrike), Hs),
    memb(house(japanese, _, _, _, parliaments), Hs),
    next_to(house(norwegian, _, _, _, _), house(_, blue, _, _, _), Hs).

left_of(L, R, [L, R | _]).
left_of(L, R, [_ | T]) :- left_of(L, R, T).

next_to(A, B, Hs) :- left_of(A, B, Hs).
next_to(A, B, Hs) :- left_of(B, A, Hs).

memb(X, [X | _]).
memb(X, [_ | T]) :- memb(X, T).
