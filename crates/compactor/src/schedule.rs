#![allow(clippy::needless_range_loop)] // index loops mirror the DAG math

//! Trace rewriting, dependence analysis, list scheduling and
//! compensation-code generation.
//!
//! This is the back end's core (paper §3.2): an in-house arrangement of
//! Trace Scheduling. A trace's ops are rewritten so the on-trace path
//! falls through (off-trace transfers are the taken edges), a
//! dependence DAG is built over registers, memory and control, and a
//! greedy list scheduler packs the ops into instruction words of the
//! target [`MachineConfig`]. Ops delayed below a side exit are copied
//! onto the exit edge (compensation code); ops hoisted above a side
//! exit are speculated only when provably safe and are marked so the
//! simulator treats their faults as benign.

use std::collections::HashMap;

use symbol_intcode::{Cond, Label, Op, OpClass, R};
use symbol_vliw::{MachineConfig, SlotOp, VliwInstr};

use crate::cfg::{Cfg, Edge};
use crate::liveness::LiveAtLabel;
use crate::trace::Trace;

/// One op of a rewritten trace.
#[derive(Clone, Debug)]
pub struct TraceOp {
    /// The (possibly sense-inverted) operation.
    pub op: Op,
    /// Original op index in the IntCode program (`usize::MAX` for ops
    /// synthesized during rewriting, e.g. the terminal jump).
    pub orig: usize,
    /// BAM group id (for the BAM-machine barrier mode).
    pub group: u32,
    /// Index of the containing block within the trace (for the
    /// basic-block barrier mode).
    pub block: u32,
}

/// A compensation block generated for one side exit.
#[derive(Clone, Debug)]
pub struct CompBlock {
    /// Fresh label the exit branch was retargeted to.
    pub label: Label,
    /// The delayed ops, in original order.
    pub ops: Vec<Op>,
    /// Where the off-trace path continues.
    pub target: Label,
}

/// Result of scheduling one trace.
#[derive(Clone, Debug)]
pub struct ScheduledTrace {
    /// The instruction words.
    pub words: Vec<VliwInstr>,
    /// Compensation blocks for the side exits.
    pub comps: Vec<CompBlock>,
    /// Number of ops that entered the scheduler.
    pub num_ops: usize,
}

/// Allocates labels beyond the IntCode program's namespace.
#[derive(Debug)]
pub struct LabelAlloc {
    next: u32,
}

impl LabelAlloc {
    /// Starts allocating after `existing` labels.
    pub fn new(existing: usize) -> Self {
        LabelAlloc {
            next: existing as u32,
        }
    }

    /// A fresh label.
    pub fn fresh(&mut self) -> Label {
        let l = Label(self.next);
        self.next += 1;
        l
    }

    /// Total labels allocated (existing + fresh).
    pub fn total(&self) -> u32 {
        self.next
    }
}

/// Rewrites a trace's ops for scheduling: inverts branches the trace
/// follows through their taken edge (so the trace is the fall-through
/// path), deletes internal unconditional jumps, and appends a terminal
/// jump when the last block falls through to off-trace code.
///
/// `block_label` must yield a label bound at any block's start (it may
/// allocate one).
pub fn rewrite_trace(
    program: &symbol_intcode::IciProgram,
    cfg: &Cfg,
    trace: &Trace,
    mut block_label: impl FnMut(usize) -> Label,
) -> Vec<TraceOp> {
    let ops = program.ops();
    let groups = program.groups();
    let mut out = Vec::new();
    for (k, &b) in trace.blocks.iter().enumerate() {
        let block = &cfg.blocks[b];
        let last = block.end - 1;
        let kb = k as u32;
        let next_in_trace = trace.blocks.get(k + 1).copied();
        for i in block.start..block.end {
            let op = &ops[i];
            let is_terminator = i == last;
            if !is_terminator {
                out.push(TraceOp {
                    op: op.clone(),
                    orig: i,
                    group: groups[i],
                    block: kb,
                });
                continue;
            }
            match (op, next_in_trace) {
                // Internal unconditional jump: the trace continues at
                // its target; drop it.
                (Op::Jmp { .. }, Some(_)) => {}
                // Conditional branch followed in-trace.
                (o, Some(next)) if o.is_control() => {
                    let taken_dest = o
                        .target()
                        .map(|t| cfg.label_block[&t])
                        .expect("conditional branches have targets");
                    if taken_dest == next {
                        // Trace follows the taken edge: invert so the
                        // trace falls through; off-trace = old
                        // fall-through block.
                        let fall = block
                            .succs
                            .iter()
                            .find_map(|e| match e {
                                Edge::Fall(d) => Some(*d),
                                Edge::Taken(_) => None,
                            })
                            .expect("conditional branch has a fall-through");
                        let mut inv = invert(o.clone());
                        inv.set_target(block_label(fall));
                        out.push(TraceOp {
                            op: inv,
                            orig: i,
                            group: groups[i],
                            block: kb,
                        });
                    } else {
                        // Trace follows the fall-through: keep as-is.
                        out.push(TraceOp {
                            op: op.clone(),
                            orig: i,
                            group: groups[i],
                            block: kb,
                        });
                    }
                }
                (o, Some(_)) => {
                    // Plain fall-through into the next trace block.
                    out.push(TraceOp {
                        op: o.clone(),
                        orig: i,
                        group: groups[i],
                        block: kb,
                    });
                }
                // Last block of the trace.
                (o, None) => {
                    out.push(TraceOp {
                        op: o.clone(),
                        orig: i,
                        group: groups[i],
                        block: kb,
                    });
                    if o.falls_through() {
                        // Execution continues at the original
                        // fall-through block: make it explicit.
                        let fall = block.succs.iter().find_map(|e| match e {
                            Edge::Fall(d) => Some(*d),
                            Edge::Taken(_) if !o.is_control() => Some(e.dest()),
                            _ => None,
                        });
                        if let Some(f) = fall {
                            out.push(TraceOp {
                                op: Op::Jmp { t: block_label(f) },
                                orig: usize::MAX,
                                group: groups[i],
                                block: kb,
                            });
                        }
                    }
                }
            }
        }
    }
    out
}

fn invert(op: Op) -> Op {
    match op {
        Op::Br { cond, a, b, t } => Op::Br {
            cond: cond.negate(),
            a,
            b,
            t,
        },
        Op::BrTag { a, tag, eq, t } => Op::BrTag { a, tag, eq: !eq, t },
        Op::BrWord { a, w, eq, t } => Op::BrWord { a, w, eq: !eq, t },
        Op::BrWEq { a, b, eq, t } => Op::BrWEq { a, b, eq: !eq, t },
        other => other,
    }
}

/// Scheduling options beyond the machine description.
#[derive(Copy, Clone, Debug)]
pub struct ScheduleOptions {
    /// Allow hoisting safe ops above side exits (speculation).
    pub speculate: bool,
    /// Insert BAM-instruction group barriers (the BAM cost model).
    pub group_barriers: bool,
    /// Insert basic-block barriers: code motion stays inside blocks,
    /// but blocks of a trace are laid out hot-path-first (the paper's
    /// basic-block compaction baseline).
    pub block_barriers: bool,
}

impl Default for ScheduleOptions {
    fn default() -> Self {
        ScheduleOptions {
            speculate: true,
            group_barriers: false,
            block_barriers: false,
        }
    }
}

/// Schedules a rewritten trace onto `machine`.
///
/// Returns instruction words (with explicit empty words for latency
/// stalls) plus compensation blocks for its side exits.
pub fn schedule_trace(
    trace_ops: &[TraceOp],
    machine: &MachineConfig,
    live: &LiveAtLabel,
    labels: &mut LabelAlloc,
    opts: &ScheduleOptions,
) -> ScheduledTrace {
    let n = trace_ops.len();
    if n == 0 {
        return ScheduledTrace {
            words: Vec::new(),
            comps: Vec::new(),
            num_ops: 0,
        };
    }

    // ---------------- dependence DAG ----------------
    let mut adj: Vec<Vec<(usize, u32)>> = vec![Vec::new(); n];
    let mut indeg = vec![0usize; n];
    let add_edge = |adj: &mut Vec<Vec<(usize, u32)>>,
                    indeg: &mut Vec<usize>,
                    from: usize,
                    to: usize,
                    lat: u32| {
        adj[from].push((to, lat));
        indeg[to] += 1;
    };

    // Register dependences.
    {
        let mut last_def: HashMap<R, usize> = HashMap::new();
        let mut last_uses: HashMap<R, Vec<usize>> = HashMap::new();
        for (j, top) in trace_ops.iter().enumerate() {
            for u in top.op.uses() {
                if let Some(&d) = last_def.get(&u) {
                    let lat = machine.latency(&trace_ops[d].op);
                    add_edge(&mut adj, &mut indeg, d, j, lat);
                }
                last_uses.entry(u).or_default().push(j);
            }
            if let Some(d) = top.op.def() {
                if let Some(&pd) = last_def.get(&d) {
                    add_edge(&mut adj, &mut indeg, pd, j, 1); // WAW
                }
                if let Some(us) = last_uses.get(&d) {
                    for &u in us {
                        if u != j {
                            add_edge(&mut adj, &mut indeg, u, j, 0); // WAR
                        }
                    }
                }
                last_def.insert(d, j);
                last_uses.insert(d, Vec::new());
            }
        }
    }

    // Memory dependences: conservative, with same-base/different-offset
    // disambiguation (the base register version must match).
    {
        #[derive(PartialEq, Clone, Copy)]
        struct MemRef {
            base: R,
            version: usize,
            off: i32,
            store: bool,
            pos: usize,
        }
        let mut version: HashMap<R, usize> = HashMap::new();
        let mut refs: Vec<MemRef> = Vec::new();
        for (j, top) in trace_ops.iter().enumerate() {
            let mr = match &top.op {
                Op::Ld { base, off, .. } => Some(MemRef {
                    base: *base,
                    version: *version.get(base).unwrap_or(&0),
                    off: *off,
                    store: false,
                    pos: j,
                }),
                Op::St { base, off, .. } => Some(MemRef {
                    base: *base,
                    version: *version.get(base).unwrap_or(&0),
                    off: *off,
                    store: true,
                    pos: j,
                }),
                _ => None,
            };
            if let Some(m) = mr {
                for p in &refs {
                    if !p.store && !m.store {
                        continue; // load-load independent
                    }
                    let disambiguated =
                        p.base == m.base && p.version == m.version && p.off != m.off;
                    if disambiguated {
                        continue;
                    }
                    // store→load / store→store need a full cycle;
                    // load→store may share a cycle (load reads the
                    // pre-state).
                    let lat = u32::from(p.store);
                    add_edge(&mut adj, &mut indeg, p.pos, m.pos, lat);
                }
                refs.push(m);
            }
            if let Some(d) = top.op.def() {
                *version.entry(d).or_insert(0) += 1;
            }
        }
    }

    // Control dependences.
    let branch_positions: Vec<usize> = (0..n).filter(|&i| trace_ops[i].op.is_control()).collect();
    {
        // Branch-order chain.
        for w in branch_positions.windows(2) {
            let lat = u32::from(!machine.multiway_branch);
            add_edge(&mut adj, &mut indeg, w[0], w[1], lat);
        }
        // Ops after a side exit: hoisting rules.
        for &b in &branch_positions {
            let off_target = trace_ops[b].op.target();
            for j in (b + 1)..n {
                let top = &trace_ops[j];
                if top.op.is_control() {
                    continue; // covered by the chain
                }
                let safe = opts.speculate
                    && !matches!(top.op, Op::St { .. })
                    && match (top.op.def(), off_target) {
                        (Some(d), Some(t)) => !live.live(t, d),
                        (Some(_), None) => false,
                        (None, _) => true,
                    };
                if !safe {
                    add_edge(&mut adj, &mut indeg, b, j, 1);
                }
            }
        }
        // Values visible at a control transfer must be *ready* when
        // the successor code resumes, `1 + taken_branch_penalty`
        // cycles after the transfer word. On machines with a branch
        // bubble the bubble itself covers a 2-cycle load; without one
        // (the BAM model) producers must retire a cycle before the
        // transfer. An op that instead sinks fully below the exit ends
        // up in the compensation block and needs no edge — but a
        // nonzero drain edge pins it above, which is the conservative
        // choice.
        let resume = 1 + machine.taken_branch_penalty;
        for &b in &branch_positions {
            for i in 0..b {
                if trace_ops[i].op.is_control() {
                    continue;
                }
                let drain = machine.latency(&trace_ops[i].op).saturating_sub(resume);
                if drain > 0 {
                    add_edge(&mut adj, &mut indeg, i, b, drain);
                }
            }
        }
        // Everything must issue no later than the terminal transfer
        // (with the same drain requirement).
        let term = n - 1;
        if trace_ops[term].op.is_control() {
            for i in 0..term {
                let drain = machine.latency(&trace_ops[i].op).saturating_sub(resume);
                add_edge(&mut adj, &mut indeg, i, term, drain);
            }
        }
    }

    // BAM-instruction group / basic-block barriers.
    if opts.group_barriers || opts.block_barriers {
        let seg_id = |i: usize| {
            if opts.group_barriers {
                trace_ops[i].group as u64 | ((trace_ops[i].block as u64) << 32)
            } else {
                trace_ops[i].block as u64
            }
        };
        let mut seg_start = 0usize;
        for j in 1..=n {
            let boundary = j == n || seg_id(j) != seg_id(j - 1);
            if boundary && j < n {
                // next segment: find its extent
                let mut k = j;
                while k < n && seg_id(k) == seg_id(j) {
                    k += 1;
                }
                for a in seg_start..j {
                    for b in j..k {
                        add_edge(&mut adj, &mut indeg, a, b, 0);
                    }
                }
                seg_start = j;
            }
        }
    }

    // ---------------- priorities (critical-path height) ----------------
    let mut height = vec![0u32; n];
    for i in (0..n).rev() {
        for &(to, lat) in &adj[i] {
            height[i] = height[i].max(height[to] + lat.max(1));
        }
    }

    // ---------------- list scheduling ----------------
    let mut cycle_of = vec![u32::MAX; n];
    let mut earliest = vec![0u32; n];
    let mut remaining = n;
    let mut cycle: u32 = 0;
    // Guard against scheduler deadlock (a DAG bug would loop forever).
    let max_cycles = (n as u32 + 4) * 8 + 64;

    while remaining > 0 {
        assert!(
            cycle < max_cycles,
            "scheduler failed to place all ops (dependence cycle?)"
        );
        // Ready ops at this cycle, by priority.
        let mut ready: Vec<usize> = (0..n)
            .filter(|&i| cycle_of[i] == u32::MAX && indeg[i] == 0 && earliest[i] <= cycle)
            .collect();
        ready.sort_by_key(|&i| (std::cmp::Reverse(height[i]), i));

        let mut used = [0usize; OpClass::COUNT]; // indexed by OpClass::index()
        let mut total_used = 0usize;
        let mut placed_any = false;
        let mut placed: Vec<usize> = Vec::new();
        for i in ready {
            let class = trace_ops[i].op.class();
            let idx = class.index();
            let budget = machine.slots(class);
            let fits = total_used < machine.issue_width
                && used[idx] < budget
                && (!machine.split_formats || fits_split_formats(machine, &used, class));
            if fits {
                used[idx] += 1;
                total_used += 1;
                cycle_of[i] = cycle;
                placed.push(i);
                placed_any = true;
                remaining -= 1;
            }
        }
        for i in placed {
            for &(to, lat) in &adj[i] {
                indeg[to] -= 1;
                earliest[to] = earliest[to].max(cycle + lat);
            }
        }
        let _ = placed_any;
        cycle += 1;
    }

    let max_cycle = *cycle_of.iter().max().expect("nonempty");

    // ---------------- compensation code ----------------
    let mut comps = Vec::new();
    let mut retarget: HashMap<usize, Label> = HashMap::new();
    for &b in &branch_positions {
        if b == n - 1 {
            continue; // the terminal transfer has no delayed ops below it
        }
        let target = match trace_ops[b].op.target() {
            Some(t) => t,
            None => continue,
        };
        let delayed: Vec<usize> = (0..b).filter(|&i| cycle_of[i] > cycle_of[b]).collect();
        if delayed.is_empty() {
            continue;
        }
        let label = labels.fresh();
        let ops = delayed.iter().map(|&i| trace_ops[i].op.clone()).collect();
        comps.push(CompBlock { label, ops, target });
        retarget.insert(b, label);
    }

    // ---------------- emit words ----------------
    let mut words: Vec<VliwInstr> = (0..=max_cycle).map(|_| VliwInstr::default()).collect();
    let mut by_cycle: Vec<Vec<usize>> = vec![Vec::new(); max_cycle as usize + 1];
    for i in 0..n {
        by_cycle[cycle_of[i] as usize].push(i);
    }
    for c in 0..=max_cycle as usize {
        by_cycle[c].sort_unstable(); // branch priority = original order
        let mut unit_next = [0usize; OpClass::COUNT];
        for &i in &by_cycle[c] {
            let mut op = trace_ops[i].op.clone();
            if let Some(l) = retarget.get(&i) {
                op.set_target(*l);
            }
            let class = op.class();
            let idx = class.index();
            let unit = assign_unit(machine, class, &mut unit_next, idx);
            let speculative = branch_positions
                .iter()
                .any(|&b| b < i && cycle_of[i] <= cycle_of[b]);
            words[c].slots.push(SlotOp {
                unit,
                op,
                speculative,
            });
        }
    }

    ScheduledTrace {
        words,
        comps,
        num_ops: n,
    }
}

fn fits_split_formats(
    machine: &MachineConfig,
    used: &[usize; OpClass::COUNT],
    adding: OpClass,
) -> bool {
    let (mut alu, mut mov, mut ctl) = (
        used[OpClass::Alu.index()],
        used[OpClass::Move.index()],
        used[OpClass::Control.index()],
    );
    match adding {
        OpClass::Alu => alu += 1,
        OpClass::Move => mov += 1,
        OpClass::Control => ctl += 1,
        OpClass::Memory => return true, // memory fits either format
    }
    ctl + alu.max(mov) <= machine.units
}

fn assign_unit(
    machine: &MachineConfig,
    class: OpClass,
    unit_next: &mut [usize; OpClass::COUNT],
    idx: usize,
) -> usize {
    let unit = if machine.split_formats && class == OpClass::Control {
        // control ops take the highest units to keep formats apart
        machine.units - 1 - unit_next[idx]
    } else {
        unit_next[idx] % machine.units
    };
    unit_next[idx] += 1;
    unit
}

/// Schedules a compensation block: straight-line ops plus the final
/// jump, packed for the machine (no further compensation arises).
pub fn schedule_comp_block(
    comp: &CompBlock,
    machine: &MachineConfig,
    live: &LiveAtLabel,
    labels: &mut LabelAlloc,
) -> Vec<VliwInstr> {
    let mut ops: Vec<TraceOp> = comp
        .ops
        .iter()
        .map(|o| TraceOp {
            op: o.clone(),
            orig: usize::MAX,
            group: 0,
            block: 0,
        })
        .collect();
    ops.push(TraceOp {
        op: Op::Jmp { t: comp.target },
        orig: usize::MAX,
        group: 0,
        block: 0,
    });
    let st = schedule_trace(
        &ops,
        machine,
        live,
        labels,
        &ScheduleOptions {
            speculate: false,
            group_barriers: false,
            block_barriers: false,
        },
    );
    assert!(st.comps.is_empty(), "compensation blocks are straight-line");
    st.words
}

/// Can a [`Cond`]-negation round-trip? (sanity helper used in tests)
pub fn negate_roundtrip(c: Cond) -> bool {
    c.negate().negate() == c
}
