//! The Prolog → BAM compiler.

pub mod arith;
pub mod clause;
pub mod index;

use std::collections::HashSet;

use symbol_prolog::{PredId, Program};

use crate::error::CompileError;
use crate::program::BamProgram;

/// Compiles a whole normalized Prolog program to BAM code.
///
/// Every predicate is compiled with first-argument indexing; calls are
/// checked against the set of defined predicates.
///
/// # Errors
///
/// Returns [`CompileError::UndefinedPredicate`] if any goal calls a
/// predicate with no clauses, or propagates clause-level errors.
pub fn compile_program(program: &Program) -> Result<BamProgram, CompileError> {
    let symbols = program.symbols();
    let mut preds = Vec::new();
    let mut defined: HashSet<PredId> = HashSet::new();
    for p in program.predicates() {
        defined.insert(p.id);
    }
    for p in program.predicates() {
        let compiled = index::compile_predicate(p, symbols)?;
        for callee in &compiled.called {
            if !defined.contains(callee) {
                return Err(CompileError::UndefinedPredicate {
                    pred: format!("{}", callee.display(symbols)),
                });
            }
        }
        preds.push(compiled);
    }
    Ok(BamProgram::new(preds))
}
