//! Trace selection.
//!
//! Traces are picked greedily by execution frequency (the Expect
//! gathered by the sequential emulator), extended forward along the
//! most probable successor edge, and stopped at side entrances (blocks
//! with several predecessors), back edges, indirect transfers, and
//! already-placed blocks — the superblock arrangement of Trace
//! Scheduling described in DESIGN.md.

use crate::cfg::{Cfg, Edge};

/// One trace: block ids in execution order.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Trace {
    /// Block ids.
    pub blocks: Vec<usize>,
}

/// Trace-picking policy knobs (for the ablation experiments).
#[derive(Copy, Clone, Debug)]
pub struct TracePolicy {
    /// Upper bound on blocks per trace.
    pub max_blocks: usize,
    /// Minimum probability an edge needs to extend the trace.
    pub min_prob: f64,
    /// Op budget for tail duplication per trace (0 disables it).
    /// Duplicating the blocks behind a side entrance is what lets
    /// traces grow past the frequent read/write-mode joins of Prolog
    /// code, at the cost of compensation copies (paper §4.4).
    pub tail_dup_ops: usize,
    /// Only duplicate through blocks at least this hot (execution
    /// count), so cold joins do not bloat the code.
    pub tail_dup_min_expect: u64,
    /// Allow hoisting safe ops above side exits (speculation); only
    /// meaningful for trace scheduling.
    pub speculate: bool,
}

impl Default for TracePolicy {
    fn default() -> Self {
        TracePolicy {
            max_blocks: 64,
            min_prob: 0.0,
            tail_dup_ops: 32,
            tail_dup_min_expect: 2,
            speculate: true,
        }
    }
}

/// Picks traces covering every block at least once. Blocks may appear
/// additionally as tail-duplicated copies inside hot traces.
pub fn pick_traces(cfg: &Cfg, policy: &TracePolicy) -> Vec<Trace> {
    let nb = cfg.blocks.len();
    let mut visited = vec![false; nb];
    let mut traces = Vec::new();

    // Seeds in descending execution frequency; never-executed blocks
    // come last in layout order (still need code for correctness).
    let mut seeds: Vec<usize> = (0..nb).collect();
    seeds.sort_by_key(|&b| (std::cmp::Reverse(cfg.blocks[b].expect), b));

    for seed in seeds {
        if visited[seed] {
            continue;
        }
        let mut blocks = vec![seed];
        visited[seed] = true;

        // Backward extension: grow through a unique, un-placed
        // predecessor whose most probable successor is the head.
        loop {
            let head = blocks[0];
            if cfg.blocks[head].preds.len() != 1 || cfg.blocks[head].address_taken {
                break;
            }
            let pred = cfg.blocks[head].preds[0];
            if visited[pred] || blocks.contains(&pred) || blocks.len() >= policy.max_blocks {
                break;
            }
            let best = best_succ(cfg, pred);
            if best != Some(head) {
                break;
            }
            blocks.insert(0, pred);
            visited[pred] = true;
        }

        // Forward extension with tail duplication at side entrances.
        let mut dup_budget = policy.tail_dup_ops;
        let mut cur = *blocks.last().expect("nonempty");
        while blocks.len() < policy.max_blocks {
            let mut best: Option<(f64, usize)> = None;
            for &e in &cfg.blocks[cur].succs {
                let p = cfg.edge_prob(cur, e);
                let better = match best {
                    None => true,
                    Some((bp, _)) => p > bp,
                };
                if better {
                    best = Some((p, e.dest()));
                }
            }
            let (prob, next) = match best {
                Some(x) => x,
                None => break, // indirect transfer or halt
            };
            if prob < policy.min_prob || blocks.contains(&next) {
                break;
            }
            let is_join =
                visited[next] || cfg.blocks[next].preds.len() > 1 || cfg.blocks[next].address_taken;
            if is_join {
                // Tail duplication: copy the join block into the trace
                // (the original remains reachable for the other
                // predecessors), within the growth budget. Only worth
                // it while the continuation is still about as hot as
                // the trace head — duplicating cold joins bloats the
                // code for nothing.
                let len = cfg.blocks[next].len();
                let head_expect = cfg.blocks[blocks[0]].expect;
                let hot = cfg.blocks[next].expect >= policy.tail_dup_min_expect
                    && cfg.blocks[next].expect * 2 >= head_expect;
                if hot && len <= dup_budget {
                    dup_budget -= len;
                    blocks.push(next);
                    cur = next;
                    continue;
                }
                break;
            }
            blocks.push(next);
            visited[next] = true;
            cur = next;
        }
        traces.push(Trace { blocks });
    }
    resolve_interior_references(cfg, &mut traces);
    traces
}

/// The off-trace blocks a trace will reference once rewritten
/// (mirrors `rewrite_trace`'s decisions).
fn referenced_blocks(cfg: &Cfg, trace: &Trace, out: &mut Vec<usize>) {
    use symbol_intcode::Op;
    let blocks = &trace.blocks;
    for (k, &b) in blocks.iter().enumerate() {
        let block = &cfg.blocks[b];
        let next = blocks.get(k + 1).copied();
        let taken = block.succs.iter().find_map(|e| match e {
            Edge::Taken(d) => Some(*d),
            Edge::Fall(_) => None,
        });
        let fall = block.succs.iter().find_map(|e| match e {
            Edge::Fall(d) => Some(*d),
            Edge::Taken(_) => None,
        });
        let is_cond = block.taken_prob.is_some() || (taken.is_some() && fall.is_some());
        let is_jmp = taken.is_some() && fall.is_none();
        let _ = is_jmp;
        match next {
            Some(n) => {
                if is_cond {
                    if taken == Some(n) {
                        out.extend(fall); // inverted branch
                    } else {
                        out.extend(taken); // kept branch
                    }
                }
                // unconditional jump followed in-trace: deleted, no ref
            }
            None => {
                // last block: whatever is off-trace gets referenced
                if is_cond {
                    out.extend(taken);
                    out.extend(fall); // appended jump
                } else if let Some(t) = taken {
                    out.push(t); // trailing unconditional jump
                } else if matches!(cfg.blocks[b].succs.as_slice(), [Edge::Fall(_)]) {
                    out.extend(fall); // appended jump after fall-through
                }
                let _ = Op::Halt { success: true }; // (JmpR/Halt: no refs)
            }
        }
    }
}

/// Splits traces so every block referenced from off-trace is a trace
/// head (whose label can be bound), iterating to a fixpoint.
fn resolve_interior_references(cfg: &Cfg, traces: &mut Vec<Trace>) {
    loop {
        let mut referenced: Vec<usize> = Vec::new();
        for t in traces.iter() {
            referenced_blocks(cfg, t, &mut referenced);
        }
        referenced.sort_unstable();
        referenced.dedup();

        let heads: std::collections::HashSet<usize> = traces.iter().map(|t| t.blocks[0]).collect();

        // Find a referenced block that is not a head: split the first
        // trace containing it so it becomes one.
        let mut split_at: Option<(usize, usize)> = None;
        'search: for &b in &referenced {
            if heads.contains(&b) {
                continue;
            }
            for (ti, t) in traces.iter().enumerate() {
                if let Some(pos) = t.blocks.iter().position(|&x| x == b) {
                    split_at = Some((ti, pos));
                    break 'search;
                }
            }
        }
        match split_at {
            None => break,
            Some((ti, pos)) => {
                let suffix: Vec<usize> = traces[ti].blocks.split_off(pos);
                traces.push(Trace { blocks: suffix });
            }
        }
    }
}

fn best_succ(cfg: &Cfg, block: usize) -> Option<usize> {
    let mut best: Option<(f64, usize)> = None;
    for &e in &cfg.blocks[block].succs {
        let p = cfg.edge_prob(block, e);
        if best.is_none_or(|(bp, _)| p > bp) {
            best = Some((p, e.dest()));
        }
    }
    best.map(|(_, d)| d)
}

/// Execution-weighted average trace length, in ops (paper Table 1's
/// "Average Length").
pub fn average_trace_length(cfg: &Cfg, traces: &[Trace]) -> f64 {
    let mut weighted = 0.0;
    let mut weight = 0.0;
    for t in traces {
        let head = t.blocks[0];
        let w = cfg.blocks[head].expect as f64;
        let len: usize = t.blocks.iter().map(|&b| cfg.blocks[b].len()).sum();
        weighted += w * len as f64;
        weight += w;
    }
    if weight == 0.0 {
        0.0
    } else {
        weighted / weight
    }
}

/// Decomposes the CFG into single-block traces (basic-block
/// compaction baseline).
pub fn single_block_traces(cfg: &Cfg) -> Vec<Trace> {
    (0..cfg.blocks.len())
        .map(|b| Trace { blocks: vec![b] })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::Cfg;
    use symbol_intcode::{Asm, Cond, Op, Operand, Word};

    fn diamond() -> (symbol_intcode::IciProgram, symbol_intcode::ExecStats) {
        // entry -> (likely) A -> join ; entry -> (rare) B -> join
        let mut a = Asm::new();
        let entry = a.fresh_label();
        let rare = a.fresh_label();
        let join = a.fresh_label();
        let lp = a.fresh_label();
        let i = a.fresh_reg();
        let t = a.fresh_reg();
        a.bind(entry);
        a.emit(Op::MvI {
            d: i,
            w: Word::int(0),
        });
        a.bind(lp);
        a.emit(Op::Alu {
            op: symbol_intcode::AluOp::Add,
            d: i,
            a: i,
            b: Operand::Imm(1),
        });
        // every 5th iteration take the rare path
        a.emit(Op::Alu {
            op: symbol_intcode::AluOp::Mod,
            d: t,
            a: i,
            b: Operand::Imm(5),
        });
        a.emit(Op::Br {
            cond: Cond::Eq,
            a: t,
            b: Operand::Imm(0),
            t: rare,
        });
        // likely path
        a.emit(Op::Mv { d: t, s: i });
        a.emit(Op::Jmp { t: join });
        a.bind(rare);
        a.emit(Op::Mv { d: t, s: i });
        a.bind(join);
        a.emit(Op::Br {
            cond: Cond::Lt,
            a: i,
            b: Operand::Imm(20),
            t: lp,
        });
        a.emit(Op::Halt { success: true });
        let p = a.finish(entry);
        let layout = symbol_intcode::Layout {
            heap_size: 16,
            env_size: 16,
            cp_size: 16,
            trail_size: 16,
            pdl_size: 16,
        };
        let stats = symbol_intcode::Emulator::new(&p, &layout)
            .run(&symbol_intcode::ExecConfig::default())
            .unwrap()
            .stats;
        (p, stats)
    }

    #[test]
    fn traces_cover_every_block() {
        let (p, stats) = diamond();
        let cfg = Cfg::build(&p, &stats);
        let traces = pick_traces(&cfg, &TracePolicy::default());
        let mut seen = vec![false; cfg.blocks.len()];
        for t in &traces {
            for &b in &t.blocks {
                seen[b] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn no_duplication_when_budget_is_zero() {
        let (p, stats) = diamond();
        let cfg = Cfg::build(&p, &stats);
        let policy = TracePolicy {
            tail_dup_ops: 0,
            ..TracePolicy::default()
        };
        let traces = pick_traces(&cfg, &policy);
        let mut seen = vec![false; cfg.blocks.len()];
        for t in &traces {
            for &b in &t.blocks {
                assert!(!seen[b], "block {b} placed twice without duplication");
                seen[b] = true;
            }
        }
    }

    #[test]
    fn hot_trace_follows_likely_path() {
        let (p, stats) = diamond();
        let cfg = Cfg::build(&p, &stats);
        let traces = pick_traces(&cfg, &TracePolicy::default());
        // some hot trace extends through the likely branch direction
        let extended = traces
            .iter()
            .any(|t| t.blocks.len() >= 2 && cfg.blocks[t.blocks[0]].expect > 1);
        assert!(extended, "no hot trace extended: {traces:?}");
    }

    #[test]
    fn joins_inside_traces_are_duplicates() {
        let (p, stats) = diamond();
        let cfg = Cfg::build(&p, &stats);
        let traces = pick_traces(&cfg, &TracePolicy::default());
        // every join block that appears inside some trace must also be
        // placed as an original (the head of its own trace), so the
        // other predecessors still have a target
        for t in &traces {
            for &b in &t.blocks[1..] {
                if cfg.blocks[b].preds.len() > 1 {
                    assert!(
                        traces.iter().any(|o| o.blocks[0] == b),
                        "duplicated join {b} has no original"
                    );
                }
            }
        }
    }

    #[test]
    fn single_block_mode_is_identity() {
        let (p, stats) = diamond();
        let cfg = Cfg::build(&p, &stats);
        let traces = single_block_traces(&cfg);
        assert_eq!(traces.len(), cfg.blocks.len());
    }
}
